"""Consolidated reproduction report.

Runs every table/figure reproduction directly (no pytest) and writes
``benchmarks/results/REPORT.md``. Usage::

    python benchmarks/run_all.py [scale]

Scale defaults to 1.0 (the most faithful shapes; ~2-4 minutes).
"""

from __future__ import annotations

import pathlib
import sys
import time

RESULTS = pathlib.Path(__file__).parent / "results"


def main(scale=1.0):
    sys.path.insert(0, str(pathlib.Path(__file__).parent.parent))
    import os

    os.environ["REPRO_BENCH_SCALE"] = str(scale)

    from repro.workloads.experiments import (
        PAPER_TABLE1,
        run_all_experiments,
        format_table1,
    )

    started = time.time()
    lines = [
        "# Reproduction report",
        "",
        "scale=%.2f, generated in %s" % (scale, time.strftime("%Y-%m-%d %H:%M")),
        "",
        "## Table 1",
        "",
        "```",
    ]
    print("running Table 1 experiments (scale %.2f)..." % scale)
    runs = run_all_experiments(scale=scale, repeats=3)
    table = format_table1(runs)
    print(table)
    lines.append(table)
    lines.append("```")
    lines.append("")
    ok = all(r.shape_ok and r.rows_agree for r in runs.values())
    lines.append(
        "all rows agree across strategies: %s; all shape criteria met: %s"
        % (
            all(r.rows_agree for r in runs.values()),
            all(r.shape_ok for r in runs.values()),
        )
    )
    lines.append("")
    lines.append("## Regenerated numbers")
    lines.append("")
    lines.append(
        "`distinct_drop.json` and `scaling.txt` are regenerated at scale"
        " 1.0 since the columnar batch executor landed: `scaling.txt`"
        " gained a `batchx` column (batch vs tuple on the original plan)"
        " and `distinct_drop.json` reports per-executor speedups, each"
        " the median of interleaved relaxed/forced run pairs with the GC"
        " held off during timing. Earlier `.txt` figures predate the"
        " batch executor and still time the tuple engine."
    )
    lines.append("")

    # Figures and ablations are produced by their pytest benches; collect
    # whatever outputs exist.
    lines.append("## Figures and ablations")
    lines.append("")
    for name in sorted(RESULTS.glob("*.txt")):
        lines.append("### %s" % name.name)
        lines.append("")
        lines.append("```")
        lines.append(name.read_text().rstrip())
        lines.append("```")
        lines.append("")

    RESULTS.mkdir(exist_ok=True)
    report = RESULTS / "REPORT.md"
    report.write_text("\n".join(lines) + "\n")
    print()
    print("report written to %s (%.1fs)" % (report, time.time() - started))
    return 0 if ok else 1


if __name__ == "__main__":
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0
    sys.exit(main(scale))
