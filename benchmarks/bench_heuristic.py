"""§3.2 ablation — the cost-based join-order heuristic.

Compares three optimization policies over a pool of queries:

* never-EMST (phase 1 + plan only),
* always-EMST (apply EMST unconditionally, keep its plan),
* the paper's heuristic (compare costs, keep the cheaper plan),

and verifies the §3.2 guarantee: the heuristic's chosen cost never exceeds
the never-EMST cost, on every query in the pool.
"""

from __future__ import annotations

import copy
import time

from repro.qgm import build_query_graph
from repro.sql import parse_statement
from repro.optimizer.heuristic import optimize_with_heuristic

from benchmarks.conftest import write_result

#: A mixed pool: queries that benefit from magic and queries that don't.
QUERY_POOL = [
    # strong binding through the aggregate view: magic wins
    (
        "SELECT d.deptname, s.avgsalary FROM department d, avgMgrSal s "
        "WHERE d.deptno = s.workdept AND d.deptname = 'Planning'"
    ),
    # moderate binding set
    (
        "SELECT d.deptno, s.avgsalary FROM department d, avgMgrSal s "
        "WHERE d.deptno = s.workdept AND d.division = 'DIV03'"
    ),
    # no binding at all: magic is useless
    "SELECT workdept, avgsalary FROM avgMgrSal",
    # plain single-table scan
    "SELECT empno, salary FROM employee WHERE salary > 100000",
    # join without view
    (
        "SELECT e.empname, d.deptname FROM employee e, department d "
        "WHERE e.workdept = d.deptno AND d.deptname = 'Planning'"
    ),
]


def _optimize_pool(db, use_emst):
    costs = []
    for sql in QUERY_POOL:
        graph = build_query_graph(parse_statement(sql), db.catalog)
        result = optimize_with_heuristic(graph, db.catalog, use_emst=use_emst)
        costs.append(result)
    return costs


def test_heuristic_never_degrades(benchmark, paper_connection):
    db = paper_connection.database
    results = benchmark(lambda: _optimize_pool(db, use_emst=True))

    lines = [
        "Heuristic ablation: chosen cost vs never-EMST cost per query",
        "",
        "%-4s %14s %14s %10s" % ("q#", "never-EMST", "with-EMST", "chosen"),
    ]
    for index, result in enumerate(results):
        chosen = "emst" if result.used_emst else "original"
        lines.append(
            "%-4d %14.1f %14.1f %10s"
            % (index, result.cost_without_emst, result.cost_with_emst, chosen)
        )
        # The §3.2 guarantee.
        assert result.plan.total_cost <= result.cost_without_emst + 1e-6
    decisions = {r.used_emst for r in results}
    lines.append("")
    lines.append("the pool exercises both decisions: %s" % decisions)
    output = "\n".join(lines)
    print("\n" + output)
    write_result("heuristic.txt", output)
    assert True in decisions  # magic chosen somewhere


def test_heuristic_execution_never_slower_than_never_emst(paper_connection, benchmark):
    """End-to-end: executing the heuristic's chosen plan is not slower than
    the never-EMST plan by more than measurement noise."""
    db = paper_connection.database
    rows = []
    for sql in QUERY_POOL:
        prepared_plain = paper_connection.prepare_statement(sql, strategy="phase1")
        prepared_heuristic = paper_connection.prepare_statement(sql, strategy="emst")
        prepared_plain.execute()
        prepared_heuristic.execute()
        t0 = time.perf_counter()
        prepared_plain.execute()
        plain = time.perf_counter() - t0
        t0 = time.perf_counter()
        prepared_heuristic.execute()
        chosen = time.perf_counter() - t0
        rows.append((plain, chosen))

    def measured():
        return rows

    benchmark.pedantic(measured, iterations=1, rounds=1)
    # Allow generous noise on sub-millisecond queries, but the heuristic
    # must never lose by a large factor anywhere.
    for plain, chosen in rows:
        assert chosen < plain * 3 + 0.01
