"""Figure 3 — "Query-Rewrite, EMST, and Plan Optimization": the three
rewrite phases, with the EMST rule active only in phase 2.

Measures time spent per phase and records the per-phase rule firing counts
for the paper's query D.
"""

from __future__ import annotations

import time

from repro.qgm import build_query_graph
from repro.sql import parse_statement
from repro.rewrite import RewriteEngine, default_rules
from repro.optimizer import optimize_graph
from repro.optimizer.heuristic import _clear_magic_links
from repro.workloads.empdept import PAPER_QUERY_SQL

from benchmarks.conftest import write_result


def _run_phases(db):
    graph = build_query_graph(parse_statement(PAPER_QUERY_SQL), db.catalog)
    engine = RewriteEngine(default_rules(include_emst=True))
    timings = {}
    firings = {}

    started = time.perf_counter()
    context = engine.run_phase(graph, 1)
    timings[1] = time.perf_counter() - started
    firings[1] = dict(context.firing_counts)

    plan = optimize_graph(graph, db.catalog)

    before = dict(context.firing_counts)
    started = time.perf_counter()
    context = engine.run_phase(graph, 2, join_orders=plan.join_orders, context=context)
    timings[2] = time.perf_counter() - started
    firings[2] = {
        k: v - before.get(k, 0)
        for k, v in context.firing_counts.items()
        if v - before.get(k, 0)
    }

    _clear_magic_links(graph)
    before = dict(context.firing_counts)
    started = time.perf_counter()
    engine.run_phase(graph, 3, context=context)
    timings[3] = time.perf_counter() - started
    firings[3] = {
        k: v - before.get(k, 0)
        for k, v in context.firing_counts.items()
        if v - before.get(k, 0)
    }
    return timings, firings


def test_figure3_three_phase_rewrite(benchmark, paper_connection):
    db = paper_connection.database
    timings, firings = benchmark(lambda: _run_phases(db))

    lines = ["Figure 3: three rewrite phases around two plan-optimization passes", ""]
    for phase in (1, 2, 3):
        lines.append(
            "phase %d: %.4fs  firings: %s" % (phase, timings[phase], firings[phase])
        )
    output = "\n".join(lines)
    print("\n" + output)
    write_result("figure3.txt", output)

    # EMST is active only in phase 2.
    assert "emst" not in firings[1]
    assert firings[2].get("emst", 0) >= 3
    assert "emst" not in firings[3]
    # Phase 1 does the classical rewrites (merge), phase 3 the cleanup.
    assert firings[1].get("merge", 0) >= 2
    assert firings[3].get("merge", 0) >= 2
