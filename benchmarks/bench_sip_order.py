"""Sip-order ablation: "The choice of the join-order is very important for
an efficient transformation, and is one of the weak points of all
implementations of magic in deductive databases." (§2)

Compares EMST with the sip refinement (follow equality connectivity from
the magic quantifiers) against EMST that takes the pre-magic join order
verbatim, on the two-level view chain of Experiment H — where the pre-magic
planner's order can strand the binding.
"""

from __future__ import annotations

import time

from repro.engine import Evaluator
from repro.magic.emst import EmstRule
from repro.optimizer import optimize_graph
from repro.optimizer.heuristic import _clear_magic_links
from repro.qgm import build_query_graph
from repro.rewrite import RewriteEngine, default_rules
from repro.sql import parse_statement
from repro.workloads.experiments import EXPERIMENTS

from benchmarks.conftest import bench_scale, write_result


def _pipeline(db, sql, emst_rule):
    graph = build_query_graph(parse_statement(sql), db.catalog)
    engine = RewriteEngine(default_rules(emst_rule=emst_rule))
    context = engine.run_phase(graph, 1)
    plan = optimize_graph(graph, db.catalog)
    context = engine.run_phase(graph, 2, join_orders=plan.join_orders, context=context)
    _clear_magic_links(graph)
    engine.run_phase(graph, 3, context=context)
    return graph, optimize_graph(graph, db.catalog)


def _run(graph, plan, db, repeats=3):
    Evaluator(graph, db, join_orders=plan.join_orders).run()
    best = float("inf")
    rows = None
    for _ in range(repeats):
        started = time.perf_counter()
        rows = Evaluator(graph, db, join_orders=plan.join_orders).run().rows
        best = min(best, time.perf_counter() - started)
    return best, sorted(rows, key=repr)


def test_sip_reorder_ablation(benchmark):
    db, views_sql, query_sql = EXPERIMENTS["H"].build(bench_scale())
    if views_sql:
        from repro.api import Connection

        Connection(db).run_script(views_sql)

    with_sip, plan_with = _pipeline(db, query_sql, EmstRule())
    without_sip, plan_without = _pipeline(
        db, query_sql, EmstRule(sip_reorder=False)
    )
    seconds_with, rows_with = _run(with_sip, plan_with, db)
    seconds_without, rows_without = _run(without_sip, plan_without, db)
    assert rows_with == rows_without  # sips change cost, never results

    benchmark.pedantic(
        lambda: Evaluator(with_sip, db, join_orders=plan_with.join_orders).run(),
        iterations=1,
        rounds=3,
    )

    lines = [
        "Sip-order ablation (experiment H's two-level view chain):",
        "  sip refinement on:  %.4fs" % seconds_with,
        "  pre-magic order:    %.4fs" % seconds_without,
        "",
        "With the refinement the customer binding flows into the revenue",
        "view; without it the pre-magic join order can visit the view",
        "before anything binds it, stranding the restriction.",
    ]
    output = "\n".join(lines)
    print("\n" + output)
    write_result("sip_order.txt", output)
    # Never worse (both are valid transformations of the same query).
    assert seconds_with <= seconds_without * 1.5 + 0.01
