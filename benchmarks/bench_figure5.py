"""Figure 5 — the SQL statements for query D before and after optimization
by EMST.

Renders the QGM graph back to SQL at each stage and checks the statement
inventory against the figure: the original query is three statements
(D0–D2), the phase-2 graph adds the supplementary and two magic statements
(SD0–SD5), and phase 3 eliminates the two magic statements (SD3/SD4),
merging them into SD2'.
"""

from __future__ import annotations

from repro.qgm import build_query_graph
from repro.qgm.to_sql import graph_to_sql
from repro.sql import parse_statement
from repro.rewrite import RewriteEngine, default_rules
from repro.optimizer import optimize_graph
from repro.optimizer.heuristic import _clear_magic_links
from repro.workloads.empdept import PAPER_QUERY_SQL

from benchmarks.conftest import write_result


def _stages(db):
    stages = {}
    graph = build_query_graph(parse_statement(PAPER_QUERY_SQL), db.catalog)
    stages["original"] = graph_to_sql(graph)

    engine = RewriteEngine(default_rules(include_emst=True))
    context = engine.run_phase(graph, 1)
    stages["after phase 1"] = graph_to_sql(graph)

    plan = optimize_graph(graph, db.catalog)
    context = engine.run_phase(graph, 2, join_orders=plan.join_orders, context=context)
    stages["after phase 2 (EMST)"] = graph_to_sql(graph)

    _clear_magic_links(graph)
    engine.run_phase(graph, 3, context=context)
    stages["after phase 3"] = graph_to_sql(graph)
    return stages


def test_figure5_sql_listings(benchmark, paper_connection):
    db = paper_connection.database
    stages = benchmark(lambda: _stages(db))

    lines = ["Figure 5: SQL before and after optimization by EMST"]
    for name in ("original", "after phase 1", "after phase 2 (EMST)", "after phase 3"):
        lines.append("")
        lines.append("-- %s (%d statements)" % (name, len(stages[name])))
        for statement in stages[name]:
            lines.append("   %s" % statement)
    output = "\n".join(lines)
    print("\n" + output)
    write_result("figure5.txt", output)

    original = stages["original"]
    phase2 = stages["after phase 2 (EMST)"]
    phase3 = stages["after phase 3"]

    # D0-D2 map to 5 statements in QGM form (the groupby triplet splits D1).
    assert len(original) == 5
    # Phase 2 adds the supplementary box and two magic boxes (SD0-SD5).
    assert len(phase2) == len(stages["after phase 1"]) + 3
    text2 = "\n".join(phase2)
    assert "SM_" in text2
    assert "MG" in text2
    # Phase 3 eliminates the two magic statements (SD3/SD4 merged away);
    # only the supplementary statement survives.
    assert len(phase3) == len(phase2) - 2
    text3 = "\n".join(phase3)
    assert "SM_" in text3
    assert "MG" not in text3
    # SD2': the view now reads the supplementary box directly.
    t1_statements = [s for s in phase3 if s.startswith("T1")]
    assert t1_statements and "SM_" in t1_statements[0]
