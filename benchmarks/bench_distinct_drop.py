"""Benchmark: proven-duplicate-free DISTINCT elimination.

The fixpoint key analysis lets the magic pipeline drop DISTINCT
enforcement from magic/supplementary boxes it proves duplicate-free —
including boxes on recursive cycles, which the historical derivation
bailed out on. This bench runs the magic strategy with the relaxation as
shipped and with the shed enforcements forced back on, asserts both
produce identical rows, and reports the runtime delta plus how many
enforcements the proof removed.

Emits ``BENCH {json}`` on stdout and ``distinct_drop.json`` in
``benchmarks/results/``.
"""

from __future__ import annotations

import copy
import json
import time

from repro.engine import Evaluator
from repro.optimizer.heuristic import optimize_with_heuristic
from repro.qgm import build_query_graph
from repro.qgm.model import DistinctMode, MagicRole
from repro.sql import parse_script
from repro.workloads.empdept import PAPER_VIEWS_SQL, build_empdept_database

from benchmarks.conftest import bench_scale, write_result

CLOSURE_BOUND = (
    "WITH RECURSIVE path (src, dst) AS ("
    "  SELECT src, dst FROM edge "
    "  UNION "
    "  SELECT p.src, e.dst FROM path p, edge e WHERE e.src = p.dst) "
    "SELECT dst FROM path WHERE src = 0 ORDER BY dst"
)

PAPER_QUERY = (
    "SELECT d.deptname, s.avgsalary FROM department d, avgMgrSal s "
    "WHERE d.deptno = s.workdept AND d.deptname = 'Planning'"
)


def _chain_db(scale):
    from repro import Database

    n_chains = max(int(120 * scale), 8)
    depth = 6
    rows = []
    for chain in range(n_chains):
        base = chain * (depth + 1)
        for hop in range(depth):
            rows.append((base + hop, base + hop + 1))
    db = Database()
    db.create_table("edge", ["src", "dst"], rows=rows)
    return db


def _empdept_db(scale):
    from repro import Connection

    db = build_empdept_database(
        n_departments=max(int(400 * scale), 10),
        employees_per_department=6,
        seed=31,
    )
    connection = Connection(db)
    connection.run_script(PAPER_VIEWS_SQL)
    return db


def _best_of(graph, db, join_orders, repeats=3):
    Evaluator(graph, db, join_orders=join_orders).run()  # warm up
    best = float("inf")
    rows = None
    for _ in range(repeats):
        started = time.perf_counter()
        rows = Evaluator(graph, db, join_orders=join_orders).run().rows
        best = min(best, time.perf_counter() - started)
    return best, sorted(rows, key=repr)


def _measure(db, sql):
    """Run the magic pipeline; time the shipped graph against a copy with
    the proof-shed enforcements forced back on."""
    graph = build_query_graph(parse_script(sql).queries[0], db.catalog)
    result = optimize_with_heuristic(graph, db.catalog)

    # Every enforcement the duplicate-freeness proof removed: per-box
    # distinct-pullup firings plus the whole-graph sweep. (Many of the
    # relaxed boxes are then merged away in phase 3 — that is the point —
    # so the surviving PERMIT count below can be smaller.)
    proof_removals = sum(
        firings.get("distinct-pullup", 0)
        for firings in result.phase_firings.values()
    ) + len(result.relaxed_distinct)

    relaxed = [
        box
        for box in result.graph.boxes()
        if box.magic_role != MagicRole.REGULAR
        and box.distinct == DistinctMode.PERMIT
    ]

    forced_graph = copy.deepcopy(result.graph)
    forced = 0
    for box in forced_graph.boxes():
        if (
            box.magic_role != MagicRole.REGULAR
            and box.distinct == DistinctMode.PERMIT
        ):
            box.distinct = DistinctMode.ENFORCE
            forced += 1

    relaxed_seconds, relaxed_rows = _best_of(
        result.graph, db, result.join_orders
    )
    forced_seconds, forced_rows = _best_of(
        forced_graph, db, result.join_orders
    )
    assert relaxed_rows == forced_rows  # the enforcement removed nothing
    return {
        "proof_removals": proof_removals,
        "relaxed_boxes": len(relaxed),
        "forced_back": forced,
        "seconds_without_distinct": relaxed_seconds,
        "seconds_with_distinct": forced_seconds,
        "speedup": forced_seconds / relaxed_seconds
        if relaxed_seconds
        else 1.0,
        "rows": len(relaxed_rows),
    }


def test_distinct_drop_benchmark():
    scale = bench_scale()
    payload = {
        "bench": "distinct_drop",
        "scale": scale,
        "scenarios": {
            "empdept_paper_query": _measure(_empdept_db(scale), PAPER_QUERY),
            "recursive_closure": _measure(_chain_db(scale), CLOSURE_BOUND),
        },
    }
    # The duplicate-freeness proof must have removed at least one
    # enforcement on the recursive workload — the acceptance bar.
    assert payload["scenarios"]["recursive_closure"]["relaxed_boxes"] >= 1
    assert payload["scenarios"]["empdept_paper_query"]["proof_removals"] >= 1

    text = json.dumps(payload, indent=2, sort_keys=True)
    print("\nBENCH " + json.dumps(payload, sort_keys=True))
    write_result("distinct_drop.json", text)
