"""Benchmark: proven-duplicate-free DISTINCT elimination.

The fixpoint key analysis lets the magic pipeline drop DISTINCT
enforcement from magic/supplementary boxes it proves duplicate-free —
including boxes on recursive cycles, which the historical derivation
bailed out on. This bench runs the magic strategy with the relaxation as
shipped and with the shed enforcements forced back on, asserts both
produce identical rows, and reports the runtime delta plus how many
enforcements the proof removed. Both the tuple-at-a-time engine and the
columnar batch executor are measured.

Emits ``BENCH {json}`` on stdout and ``distinct_drop.json`` in
``benchmarks/results/``.
"""

from __future__ import annotations

import copy
import gc
import json
import statistics
import time

from repro.engine import BatchEvaluator, Evaluator
from repro.optimizer.heuristic import optimize_with_heuristic
from repro.qgm import build_query_graph
from repro.qgm.model import DistinctMode, MagicRole
from repro.sql import parse_script
from repro.workloads.empdept import PAPER_VIEWS_SQL, build_empdept_database

from benchmarks.conftest import bench_scale, write_result

CLOSURE_BOUND = (
    "WITH RECURSIVE path (src, dst) AS ("
    "  SELECT src, dst FROM edge "
    "  UNION "
    "  SELECT e.src, p.dst FROM edge e, path p WHERE p.src = e.dst) "
    "SELECT dst FROM path WHERE src = 0 ORDER BY dst"
)

PAPER_QUERY = (
    "SELECT d.deptname, s.avgsalary FROM department d, avgMgrSal s "
    "WHERE d.deptno = s.workdept AND d.deptname = 'Planning'"
)


def _tree_db(scale):
    """A wide, shallow tree rooted at node 0 (fanout 32).

    Every node has exactly one parent and the unique key on ``dst``
    declares it, so the fixpoint key analysis proves the recursive magic
    boxes duplicate-free: every magic binding has exactly one derivation
    and the shed enforcement removes nothing — forcing it back on
    measures its pure overhead. The shallow shape keeps the magic
    fixpoint's row volume a large share of the whole query, so that
    overhead is measurable rather than timer noise."""
    from repro import Database

    n_nodes = max(int(24000 * scale), 96)
    fanout = 32
    rows = []
    for node in range(n_nodes):
        for k in range(fanout):
            child = fanout * node + k + 1
            if child < n_nodes:
                rows.append((node, child))
    db = Database()
    db.create_table(
        "edge", ["src", "dst"], rows=rows, unique_keys=[("dst",)]
    )
    return db


def _empdept_db(scale):
    from repro import Connection

    db = build_empdept_database(
        n_departments=max(int(400 * scale), 10),
        employees_per_department=6,
        seed=31,
    )
    connection = Connection(db)
    connection.run_script(PAPER_VIEWS_SQL)
    return db


def _run_once(graph, db, join_orders, evaluator_class):
    # GC pauses of a generation-2 collection landing inside one timed run
    # but not its partner are the dominant noise source at these run
    # lengths; collect up front and keep the collector off while timing
    # (the same policy ``timeit`` applies by default).
    gc.collect()
    gc.disable()
    try:
        started = time.perf_counter()
        rows = evaluator_class(graph, db, join_orders=join_orders).run().rows
        return time.perf_counter() - started, rows
    finally:
        gc.enable()


def _measure(db, sql):
    """Run the magic pipeline; time the shipped graph against a copy with
    the proof-shed enforcements forced back on."""
    graph = build_query_graph(parse_script(sql).queries[0], db.catalog)
    result = optimize_with_heuristic(graph, db.catalog)

    # Every enforcement the duplicate-freeness proof removed: per-box
    # distinct-pullup firings plus the whole-graph sweep. (Many of the
    # relaxed boxes are then merged away in phase 3 — that is the point —
    # so the surviving PERMIT count below can be smaller.)
    proof_removals = sum(
        firings.get("distinct-pullup", 0)
        for firings in result.phase_firings.values()
    ) + len(result.relaxed_distinct)

    relaxed = [
        box
        for box in result.graph.boxes()
        if box.magic_role != MagicRole.REGULAR
        and box.distinct == DistinctMode.PERMIT
    ]

    # Both timed graphs are fresh deep copies: the optimizer-mutated
    # original and a copy have different allocation locality, which showed
    # up as a systematic timing bias when only one side was copied.
    relaxed_graph = copy.deepcopy(result.graph)
    forced_graph = copy.deepcopy(result.graph)
    forced = 0
    for box in forced_graph.boxes():
        if (
            box.magic_role != MagicRole.REGULAR
            and box.distinct == DistinctMode.PERMIT
        ):
            box.distinct = DistinctMode.ENFORCE
            forced += 1

    executors = {}
    baseline_rows = None
    # Batch runs first, on the freshest heap; the tuple engine's longer
    # runs churn the allocator far more.
    for name, evaluator_class in (
        ("batch", BatchEvaluator),
        ("tuple", Evaluator),
    ):
        # Interleaved paired runs: alternating relaxed/forced absorbs
        # clock-speed and allocator drift that sequential best-of blocks
        # would fold into the ratio, and the median of the per-pair
        # ratios is robust to the stray slow run that best-of-N lets a
        # single lucky outlier dominate.
        _run_once(relaxed_graph, db, result.join_orders, evaluator_class)
        _run_once(forced_graph, db, result.join_orders, evaluator_class)
        relaxed_seconds = forced_seconds = float("inf")
        relaxed_rows = forced_rows = None
        ratios = []
        for _ in range(9):
            seconds, relaxed_rows = _run_once(
                relaxed_graph, db, result.join_orders, evaluator_class
            )
            relaxed_seconds = min(relaxed_seconds, seconds)
            pair = seconds
            seconds, forced_rows = _run_once(
                forced_graph, db, result.join_orders, evaluator_class
            )
            forced_seconds = min(forced_seconds, seconds)
            ratios.append(seconds / pair if pair else 1.0)
        relaxed_rows = sorted(relaxed_rows, key=repr)
        forced_rows = sorted(forced_rows, key=repr)
        # The enforcement removed nothing, under either executor.
        assert relaxed_rows == forced_rows
        if baseline_rows is None:
            baseline_rows = relaxed_rows
        else:
            assert relaxed_rows == baseline_rows  # executors agree too
        executors[name] = {
            "seconds_without_distinct": relaxed_seconds,
            "seconds_with_distinct": forced_seconds,
            "speedup": statistics.median(ratios),
        }
    return {
        "proof_removals": proof_removals,
        "relaxed_boxes": len(relaxed),
        "forced_back": forced,
        "executors": executors,
        "speedup": executors["tuple"]["speedup"],
        "rows": len(baseline_rows),
    }


def test_distinct_drop_benchmark():
    scale = bench_scale()
    payload = {
        "bench": "distinct_drop",
        "scale": scale,
        "scenarios": {
            "empdept_paper_query": _measure(_empdept_db(scale), PAPER_QUERY),
            "recursive_closure": _measure(_tree_db(scale), CLOSURE_BOUND),
        },
    }
    # The duplicate-freeness proof must have removed at least one
    # enforcement on the recursive workload — the acceptance bar.
    assert payload["scenarios"]["recursive_closure"]["relaxed_boxes"] >= 1
    assert payload["scenarios"]["empdept_paper_query"]["proof_removals"] >= 1
    # At realistic scale the relaxation must pay for itself under the
    # batch executor wherever forcing the enforcement back on actually
    # changed the plan (forced_back 0 means relaxed and forced graphs are
    # identical and the ratio is pure timer noise). Smaller scales time
    # in the sub-millisecond noise and are exempt.
    if scale >= 1.0:
        for scenario in payload["scenarios"].values():
            if scenario["forced_back"]:
                assert scenario["executors"]["batch"]["speedup"] >= 1.0

    text = json.dumps(payload, indent=2, sort_keys=True)
    print("\nBENCH " + json.dumps(payload, sort_keys=True))
    write_result("distinct_drop.json", text)
