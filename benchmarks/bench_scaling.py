"""§1's "two and a half orders of magnitude" claim (Experiment G).

Measures the EMST speedup on the paper's query D as the data scales,
showing the gap *widening* with size — the restricted computation stays
constant while the original grows linearly. Also measures the columnar
batch executor against the tuple-at-a-time engine on the *original*
(unrestricted) plan, where whole-table joins and group-bys leave the
most room for vectorization.
"""

from __future__ import annotations

import time

from repro.api import Connection
from repro.workloads.empdept import (
    PAPER_QUERY_SQL,
    PAPER_VIEWS_SQL,
    build_empdept_database,
)

from benchmarks.conftest import bench_scale, write_result


def _measure(n_departments):
    db = build_empdept_database(
        n_departments=n_departments, employees_per_department=5, seed=107
    )
    connection = Connection(db)
    connection.run_script(PAPER_VIEWS_SQL)
    timings = {}
    for label, strategy, executor in (
        ("original", "original", "tuple"),
        ("original_batch", "original", "batch"),
        ("emst", "emst", "tuple"),
    ):
        prepared = connection.prepare_statement(
            PAPER_QUERY_SQL, strategy=strategy, executor=executor
        )
        prepared.execute()
        best = float("inf")
        for _ in range(3):
            started = time.perf_counter()
            prepared.execute()
            best = min(best, time.perf_counter() - started)
        timings[label] = best
    return timings


def test_scaling_speedup_grows(benchmark):
    base = max(int(2000 * bench_scale()), 50)
    sizes = [base, base * 2, base * 4]
    lines = [
        "Query D speedup vs data size (the 'two and a half orders of",
        "magnitude' claim of Experiment G), plus the columnar batch",
        "executor against the tuple engine on the original plan",
        "",
        "%-10s %12s %12s %12s %9s %7s"
        % ("#depts", "original(s)", "batch(s)", "emst(s)", "speedup", "batchx"),
    ]
    speedups = []
    batch_speedups = []
    for size in sizes:
        timings = _measure(size)
        speedup = timings["original"] / max(timings["emst"], 1e-9)
        batch_speedup = timings["original"] / max(
            timings["original_batch"], 1e-9
        )
        speedups.append(speedup)
        batch_speedups.append(batch_speedup)
        lines.append(
            "%-10d %12.4f %12.4f %12.6f %8.0fx %6.1fx"
            % (
                size,
                timings["original"],
                timings["original_batch"],
                timings["emst"],
                speedup,
                batch_speedup,
            )
        )

    benchmark.pedantic(lambda: _measure(sizes[0]), iterations=1, rounds=1)

    output = "\n".join(lines)
    print("\n" + output)
    write_result("scaling.txt", output)

    assert speedups[-1] > speedups[0]  # the gap widens with scale
    assert speedups[-1] > 30  # orders of magnitude at the largest size
    # The columnar executor must beat the tuple engine on the original
    # plan: >=3x at the realistic scales, relaxed for CI smoke scales
    # where the absolute timings shrink into scheduler noise.
    batch_bar = 3.0 if bench_scale() >= 0.3 else 2.0
    assert batch_speedups[-1] >= batch_bar, (
        "batch executor only %.2fx faster than tuple at the largest size"
        % batch_speedups[-1]
    )
