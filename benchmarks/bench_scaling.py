"""§1's "two and a half orders of magnitude" claim (Experiment G).

Measures the EMST speedup on the paper's query D as the data scales,
showing the gap *widening* with size — the restricted computation stays
constant while the original grows linearly.
"""

from __future__ import annotations

import time

from repro.api import Connection
from repro.workloads.empdept import (
    PAPER_QUERY_SQL,
    PAPER_VIEWS_SQL,
    build_empdept_database,
)

from benchmarks.conftest import bench_scale, write_result


def _measure(n_departments):
    db = build_empdept_database(
        n_departments=n_departments, employees_per_department=5, seed=107
    )
    connection = Connection(db)
    connection.run_script(PAPER_VIEWS_SQL)
    timings = {}
    for strategy in ("original", "emst"):
        prepared = connection.prepare_statement(PAPER_QUERY_SQL, strategy=strategy)
        prepared.execute()
        best = float("inf")
        for _ in range(3):
            started = time.perf_counter()
            prepared.execute()
            best = min(best, time.perf_counter() - started)
        timings[strategy] = best
    return timings


def test_scaling_speedup_grows(benchmark):
    base = max(int(2000 * bench_scale()), 50)
    sizes = [base, base * 2, base * 4]
    lines = [
        "Query D speedup vs data size (the 'two and a half orders of",
        "magnitude' claim of Experiment G)",
        "",
        "%-12s %12s %12s %10s" % ("#depts", "original(s)", "emst(s)", "speedup"),
    ]
    speedups = []
    for size in sizes:
        timings = _measure(size)
        speedup = timings["original"] / max(timings["emst"], 1e-9)
        speedups.append(speedup)
        lines.append(
            "%-12d %12.4f %12.6f %9.0fx"
            % (size, timings["original"], timings["emst"], speedup)
        )

    benchmark.pedantic(lambda: _measure(sizes[0]), iterations=1, rounds=1)

    output = "\n".join(lines)
    print("\n" + output)
    write_result("scaling.txt", output)

    assert speedups[-1] > speedups[0]  # the gap widens with scale
    assert speedups[-1] > 30  # orders of magnitude at the largest size
