"""Figure 2 — the Starburst architecture with the back edge from plan
optimization to query rewrite.

Traces the pipeline stages for the paper's query D and asserts the §3.2
invariant the figure encodes: plan optimization runs exactly twice, with
the join orders of pass 1 feeding the EMST rewrite (the back edge).
"""

from __future__ import annotations

from repro.qgm import build_query_graph
from repro.sql import parse_statement
from repro.optimizer.heuristic import optimize_with_heuristic
from repro.workloads.empdept import PAPER_QUERY_SQL

from benchmarks.conftest import write_result


def test_figure2_pipeline_trace(benchmark, paper_connection):
    db = paper_connection.database

    def pipeline():
        graph = build_query_graph(parse_statement(PAPER_QUERY_SQL), db.catalog)
        return optimize_with_heuristic(graph, db.catalog)

    result = benchmark(pipeline)

    lines = [
        "Figure 2: parse -> query rewrite <-> plan optimization -> execute",
        "",
        "stage trace for query D:",
        "  1. parse                    -> QGM",
        "  2. query rewrite, phase 1   -> rules fired: %s"
        % (result.phase_firings.get(1) or {}),
        "  3. plan optimization pass 1 -> cost without EMST: %.1f"
        % result.cost_without_emst,
        "  4. query rewrite, phase 2   -> (back edge: join orders in) %s"
        % (result.phase_firings.get(2) or {}),
        "  5. query rewrite, phase 3   -> %s" % (result.phase_firings.get(3) or {}),
        "  6. plan optimization pass 2 -> cost with EMST: %.1f"
        % result.cost_with_emst,
        "  7. choose cheaper plan      -> EMST used: %s" % result.used_emst,
        "",
        "plan optimizer invocations: %d (the architecture requires exactly 2)"
        % result.optimizer_invocations,
    ]
    output = "\n".join(lines)
    print("\n" + output)
    write_result("figure2.txt", output)

    assert result.optimizer_invocations == 2
    assert result.used_emst
    assert result.phase_firings[2].get("emst", 0) > 0
