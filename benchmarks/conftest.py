"""Shared benchmark configuration.

Data scale is controlled by the ``REPRO_BENCH_SCALE`` environment variable
(default 0.4): 1.0 reproduces the shapes most faithfully, smaller values
run faster. Each bench module writes the table/figure it regenerates into
``benchmarks/results/``.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_scale():
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.4"))


def write_result(name, text):
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text + "\n")
    return path


@pytest.fixture(scope="session")
def scale():
    return bench_scale()


@pytest.fixture(scope="session")
def paper_connection(scale):
    """A Connection over the paper's schema at benchmark scale, with the
    Example 1.1 views registered."""
    from repro.api import Connection
    from repro.workloads.empdept import PAPER_VIEWS_SQL, build_empdept_database

    db = build_empdept_database(
        n_departments=max(int(12000 * scale), 10),
        employees_per_department=5,
        seed=107,
    )
    connection = Connection(db)
    connection.run_script(PAPER_VIEWS_SQL)
    return connection
