"""Benchmark: chase-based translation validation and FK join elimination.

Two questions the equivalence subsystem has to answer with numbers:

1. **What does paranoid-mode translation validation cost per firing?**
   The paper query runs through the EMST pipeline under
   ``ResiliencePolicy(paranoid=True)`` twice — with and without the
   chase — and every per-firing verification time is sampled (p50/p99),
   alongside the end-to-end delta.
2. **What does dependency-driven join elimination buy?** The FK-covered
   ``lineitem ⋈ orders`` probe is evaluated as written and after
   :class:`~repro.rewrite.redundant_join.RedundantJoinRule` removes the
   parent join; both must return identical rows.

Emits ``BENCH {json}`` on stdout and ``equivalence.json`` in
``benchmarks/results/``.
"""

from __future__ import annotations

import json
import time

from repro.api import Connection
from repro.engine import Evaluator
from repro.qgm import build_query_graph
from repro.resilience.fallback import ResiliencePolicy
from repro.rewrite.engine import RewriteEngine
from repro.rewrite.redundant_join import RedundantJoinRule
from repro.rewrite.rule import RuleContext
from repro.sql import parse_statement
from repro.workloads.decision_support import build_decision_support_database
from repro.workloads.empdept import PAPER_VIEWS_SQL, build_empdept_database

from benchmarks.conftest import bench_scale, write_result

PAPER_QUERY = (
    "SELECT d.deptname, s.avgsalary FROM department d, avgMgrSal s "
    "WHERE d.deptno = s.workdept AND d.deptname = 'Planning'"
)

FK_PROBE = (
    "SELECT l.quantity, l.extendedprice FROM lineitem l, orders o "
    "WHERE l.orderkey = o.orderkey"
)


def _percentile(samples, fraction):
    if not samples:
        return None
    ordered = sorted(samples)
    index = min(int(len(ordered) * fraction), len(ordered) - 1)
    return ordered[index]


def _empdept_connection(scale):
    db = build_empdept_database(
        n_departments=max(int(400 * scale), 10),
        employees_per_department=6,
        seed=61,
    )
    connection = Connection(db)
    connection.run_script(PAPER_VIEWS_SQL)
    return connection


def _timed_paranoid_run(connection, equivalence):
    policy = ResiliencePolicy(paranoid=True, equivalence=equivalence)
    started = time.perf_counter()
    outcome = connection.explain_execute(
        PAPER_QUERY, strategy="emst", resilience=policy
    )
    elapsed = time.perf_counter() - started
    return elapsed, outcome


def _verification_overhead(scale):
    """Per-firing chase times, sampled by interposing on the telemetry
    hook every verdict already flows through."""
    samples = []
    recorded = RuleContext.record_equivalence

    def recording(self, rule_name, status, seconds=0.0, reason_code=None):
        samples.append(seconds)
        return recorded(self, rule_name, status, seconds, reason_code)

    connection = _empdept_connection(scale)
    RuleContext.record_equivalence = recording
    try:
        with_seconds, outcome = _timed_paranoid_run(connection, True)
    finally:
        RuleContext.record_equivalence = recorded
    without_seconds, baseline = _timed_paranoid_run(connection, False)

    verdicts = {}
    reasons = {}
    for statuses in outcome.stats.get("equivalence_verdicts", {}).values():
        for status, codes in statuses.items():
            bucket = reasons.setdefault(status, {})
            for code, count in codes.items():
                bucket[code] = bucket.get(code, 0) + count
            verdicts[status] = verdicts.get(status, 0) + sum(codes.values())
    assert samples, "paranoid mode produced no validated firings"
    assert not baseline.stats.get("equivalence_verdicts")
    assert sorted(outcome.rows, key=repr) == sorted(baseline.rows, key=repr)
    return {
        "firings_validated": len(samples),
        "verified_firings": verdicts.get("VERIFIED", 0),
        "verdicts": verdicts,
        "verdict_reasons": reasons,
        "per_firing_ms_p50": _percentile(samples, 0.50) * 1000.0,
        "per_firing_ms_p99": _percentile(samples, 0.99) * 1000.0,
        "chase_seconds_total": outcome.stats.get("equivalence_seconds", 0.0),
        "seconds_with_validation": with_seconds,
        "seconds_without_validation": without_seconds,
    }


def _best_of(graph, db, repeats=3):
    Evaluator(graph, db).run()  # warm up
    best = float("inf")
    rows = None
    for _ in range(repeats):
        started = time.perf_counter()
        rows = Evaluator(graph, db).run().rows
        best = min(best, time.perf_counter() - started)
    return best, sorted(rows, key=repr)


def _fk_elimination_win(scale):
    db = build_decision_support_database(scale=max(scale * 0.5, 0.02), seed=61)
    joined = build_query_graph(parse_statement(FK_PROBE), db.catalog)
    rewritten = build_query_graph(parse_statement(FK_PROBE), db.catalog)
    RewriteEngine([RedundantJoinRule()]).run_phase(rewritten, 1)

    before = len(joined.top_box.foreach_quantifiers())
    after = len(rewritten.top_box.foreach_quantifiers())
    assert (before, after) == (2, 1), "the FK parent join was not eliminated"

    joined_seconds, joined_rows = _best_of(joined, db)
    eliminated_seconds, eliminated_rows = _best_of(rewritten, db)
    assert joined_rows == eliminated_rows  # the join carried no information
    return {
        "quantifiers_before": before,
        "quantifiers_after": after,
        "rows": len(joined_rows),
        "seconds_joined": joined_seconds,
        "seconds_eliminated": eliminated_seconds,
        "speedup": joined_seconds / eliminated_seconds
        if eliminated_seconds
        else 1.0,
    }


def test_equivalence_benchmark():
    scale = bench_scale()
    payload = {
        "bench": "equivalence",
        "scale": scale,
        "verification_overhead": _verification_overhead(scale),
        "fk_join_elimination": _fk_elimination_win(scale),
    }
    text = json.dumps(payload, indent=2, sort_keys=True)
    print("\nBENCH " + json.dumps(payload, sort_keys=True))
    write_result("equivalence.json", text)
