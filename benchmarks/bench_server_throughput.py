"""Server throughput under increasing overload.

Drives the real socket stack (asyncio server + blocking clients on
threads) with a parameterized EMST query and measures, at 1x / 4x / 16x
of the admission capacity:

* p50/p99 client-observed latency of successful requests,
* plan-cache hit rate (the adornment-keyed cache is what makes the
  per-request cost "execute only", the paper's prepared-statement model),
* shed counts and whether load shedding kept the admitted latency
  bounded instead of letting the queue melt down,
* cold (prepare + plan) vs warm (clone + bind + execute) latency.

Writes ``benchmarks/results/server_throughput.json``.
"""

from __future__ import annotations

import json
import threading
import time

from repro.api import Connection
from repro.server.chaos import ServerHarness
from repro.server.client import ServerError
from repro.server.core import ServerConfig
from repro.resilience.retry import RetryPolicy
from repro.workloads.empdept import PAPER_VIEWS_SQL, build_empdept_database

from benchmarks.conftest import RESULTS_DIR, bench_scale

PARAM_QUERY = (
    "SELECT d.deptname, s.avgsalary FROM department d, avgMgrSal s "
    "WHERE d.deptno = s.workdept AND d.deptname = ?"
)

MAX_CONCURRENT = 4
MAX_QUEUE = 8


def _percentile(samples, fraction):
    if not samples:
        return None
    ordered = sorted(samples)
    index = min(int(len(ordered) * fraction), len(ordered) - 1)
    return ordered[index]


def _drive(harness, clients, requests_per_client, deptnames):
    """``clients`` threads, each its own session, no client-side retry —
    sheds must show up in the numbers, not hide behind backoff."""
    latencies = []
    sheds = 0
    errors = 0
    lock = threading.Lock()

    def worker(offset):
        nonlocal sheds, errors
        with harness.client(retry=RetryPolicy(max_attempts=1)) as client:
            for index in range(requests_per_client):
                name = deptnames[(offset + index) % len(deptnames)]
                started = time.perf_counter()
                try:
                    client.query(PARAM_QUERY, params=[name], deadline=30)
                except ServerError as exc:
                    with lock:
                        if exc.error_type == "ServerOverloadedError":
                            sheds += 1
                        else:
                            errors += 1
                    continue
                elapsed = time.perf_counter() - started
                with lock:
                    latencies.append(elapsed)

    threads = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(clients)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    return {
        "clients": clients,
        "requests": clients * requests_per_client,
        "completed": len(latencies),
        "shed": sheds,
        "errors": errors,
        "wall_seconds": round(wall, 4),
        "throughput_qps": round(len(latencies) / wall, 2) if wall else None,
        "p50_seconds": round(_percentile(latencies, 0.50), 6),
        "p99_seconds": round(_percentile(latencies, 0.99), 6),
    }


def run_bench(scale=None, requests_per_client=12):
    scale = scale if scale is not None else bench_scale()
    database = build_empdept_database(
        n_departments=max(int(250 * scale), 10),
        employees_per_department=8,
        seed=107,
    )
    Connection(database).run_script(PAPER_VIEWS_SQL)
    deptnames = ["Planning"] + [
        "Dept%04d" % i
        for i in range(1, min(len(database.table("department").rows), 24))
    ]
    config = ServerConfig(
        port=0, max_concurrent=MAX_CONCURRENT, max_queue=MAX_QUEUE,
        default_deadline_seconds=30.0,
    )
    report = {
        "scale": scale,
        "max_concurrent": MAX_CONCURRENT,
        "max_queue": MAX_QUEUE,
        "levels": [],
    }
    with ServerHarness(database, config) as harness:
        # Cold vs warm: the first request pays parse + rewrite + plan; the
        # second only clone + bind + execute.
        with harness.client() as probe:
            cold_start = time.perf_counter()
            probe.query(PARAM_QUERY, params=["Planning"])
            cold = time.perf_counter() - cold_start
            warm_samples = []
            for name in deptnames[:10]:
                warm_start = time.perf_counter()
                probe.query(PARAM_QUERY, params=[name])
                warm_samples.append(time.perf_counter() - warm_start)
        report["cold_prepare_seconds"] = round(cold, 6)
        report["warm_execute_p50_seconds"] = round(
            _percentile(warm_samples, 0.5), 6
        )
        report["cold_over_warm"] = round(
            cold / max(_percentile(warm_samples, 0.5), 1e-9), 1
        )
        for multiplier in (1, 4, 16):
            level = _drive(
                harness,
                clients=MAX_CONCURRENT * multiplier,
                requests_per_client=requests_per_client,
                deptnames=deptnames,
            )
            level["overload"] = "%dx" % multiplier
            stats = harness.server.handle_stats()
            level["cache_hit_rate"] = round(stats["cache"]["hit_rate"], 4)
            report["levels"].append(level)
        final = harness.server.handle_stats()
        report["final_cache"] = final["cache"]
        report["final_admission"] = final["admission"]
    return report


def test_server_throughput():
    report = run_bench()
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "server_throughput.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )
    # Sanity: the cache must be doing its job under load, and shedding
    # must be the overflow valve, not the common case at 1x.
    assert report["levels"][0]["shed"] == 0 or (
        report["levels"][0]["shed"] < report["levels"][0]["requests"] * 0.1
    )
    assert report["final_cache"]["hit_rate"] > 0.9
    assert report["cold_over_warm"] > 1.0
    for level in report["levels"]:
        assert level["completed"], "no requests completed at %s" % level["overload"]


if __name__ == "__main__":
    print(json.dumps(run_bench(), indent=2))
