"""Server throughput under increasing overload.

Drives the real socket stack (asyncio server + blocking clients on
threads) with a parameterized EMST query and measures, at 1x / 4x / 16x
of the admission capacity:

* p50/p99 client-observed latency of successful requests,
* plan-cache hit rate (the adornment-keyed cache is what makes the
  per-request cost "execute only", the paper's prepared-statement model),
* shed counts and whether load shedding kept the admitted latency
  bounded instead of letting the queue melt down,
* cold (prepare + plan) vs warm (clone + bind + execute) latency.

A second section compares serving modes on a read-heavy (~99/1) mix over
a hot set of parameterized queries: a single-process baseline (workers=0,
no result cache) against the multi-process configuration (workers=2 plus
the cross-request result cache). On this box the win comes from the
result cache — warm hits are served by the parent without re-executing —
with the worker pool keeping the misses off the session threads.

Writes ``benchmarks/results/server_throughput.json``.
"""

from __future__ import annotations

import json
import threading
import time

from repro.api import Connection
from repro.server.chaos import ServerHarness
from repro.server.client import ServerError
from repro.server.core import ServerConfig
from repro.resilience.retry import RetryPolicy
from repro.workloads.empdept import PAPER_VIEWS_SQL, build_empdept_database

from benchmarks.conftest import RESULTS_DIR, bench_scale

PARAM_QUERY = (
    "SELECT d.deptname, s.avgsalary FROM department d, avgMgrSal s "
    "WHERE d.deptno = s.workdept AND d.deptname = ?"
)

MAX_CONCURRENT = 4
MAX_QUEUE = 8

#: One request in WRITE_EVERY is an UPDATE script (the ~1% write side of
#: the read-heavy mix); every write invalidates the whole hot set in the
#: result cache, so the hit rate is earned against real churn.
WRITE_EVERY = 100
HOT_SET = 8

#: The hot read of the workers comparison. Deliberately heavier than
#: PARAM_QUERY (a non-equi salary-rank self-join, ~10ms warm at scale
#: 0.4): the single-process baseline pays that execution on every
#: request, the cached configuration only on invalidation misses — which
#: is exactly the work a result cache exists to delete.
HOT_QUERY = (
    "SELECT COUNT(*) FROM employee e1, employee e2 "
    "WHERE e1.salary < e2.salary AND e1.workdept = ?"
)


def _percentile(samples, fraction):
    if not samples:
        return None
    ordered = sorted(samples)
    index = min(int(len(ordered) * fraction), len(ordered) - 1)
    return ordered[index]


def _drive(harness, clients, requests_per_client, deptnames):
    """``clients`` threads, each its own session, no client-side retry —
    sheds must show up in the numbers, not hide behind backoff."""
    latencies = []
    sheds = 0
    errors = 0
    lock = threading.Lock()

    def worker(offset):
        nonlocal sheds, errors
        with harness.client(retry=RetryPolicy(max_attempts=1)) as client:
            for index in range(requests_per_client):
                name = deptnames[(offset + index) % len(deptnames)]
                started = time.perf_counter()
                try:
                    client.query(PARAM_QUERY, params=[name], deadline=30)
                except ServerError as exc:
                    with lock:
                        if exc.error_type == "ServerOverloadedError":
                            sheds += 1
                        else:
                            errors += 1
                    continue
                elapsed = time.perf_counter() - started
                with lock:
                    latencies.append(elapsed)

    threads = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(clients)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    return {
        "clients": clients,
        "requests": clients * requests_per_client,
        "completed": len(latencies),
        "shed": sheds,
        "errors": errors,
        "wall_seconds": round(wall, 4),
        "throughput_qps": round(len(latencies) / wall, 2) if wall else None,
        "p50_seconds": round(_percentile(latencies, 0.50), 6),
        "p99_seconds": round(_percentile(latencies, 0.99), 6),
    }


def _drive_read_heavy(harness, clients, requests_per_client, hotnames):
    """The read-heavy mix: each client loops the hot query set; every
    ``WRITE_EVERY``-th request (globally numbered) is an UPDATE script."""
    latencies = []
    writes = 0
    errors = 0
    lock = threading.Lock()

    def worker(offset):
        nonlocal writes, errors
        with harness.client(retry=RetryPolicy(max_attempts=1)) as client:
            for index in range(requests_per_client):
                tick = offset * requests_per_client + index
                started = time.perf_counter()
                try:
                    if tick % WRITE_EVERY == WRITE_EVERY - 1:
                        client.script(
                            "UPDATE employee SET salary = salary + 1 "
                            "WHERE workdept = 'D0000'"
                        )
                        with lock:
                            writes += 1
                    else:
                        client.query(
                            HOT_QUERY,
                            params=[hotnames[tick % len(hotnames)]],
                            deadline=30,
                        )
                except ServerError:
                    with lock:
                        errors += 1
                    continue
                elapsed = time.perf_counter() - started
                with lock:
                    latencies.append(elapsed)

    threads = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(clients)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    return {
        "clients": clients,
        "requests": clients * requests_per_client,
        "completed": len(latencies),
        "writes": writes,
        "errors": errors,
        "wall_seconds": round(wall, 4),
        "throughput_qps": round(len(latencies) / wall, 2) if wall else None,
        "p50_seconds": round(_percentile(latencies, 0.50), 6),
        "p99_seconds": round(_percentile(latencies, 0.99), 6),
    }


def _bench_workers(scale, requests_per_client):
    """Single-process baseline vs workers=2 + result cache, same mix,
    fresh identically-seeded databases for each mode."""
    from repro.server.workers import fork_available

    if not fork_available():
        return {"skipped": "fork start method unavailable"}
    modes = {
        "single_process": {},
        "multiprocess_cached": {"workers": 2, "result_cache_capacity": 256},
    }
    section = {"requests_per_client": requests_per_client}
    for mode, extra in modes.items():
        database = build_empdept_database(
            n_departments=max(int(250 * scale), 10),
            employees_per_department=8,
            seed=107,
        )
        Connection(database).run_script(PAPER_VIEWS_SQL)
        hotnames = ["D%04d" % i for i in range(HOT_SET)]
        config = ServerConfig(
            port=0, max_concurrent=MAX_CONCURRENT, max_queue=MAX_QUEUE,
            default_deadline_seconds=30.0, **extra,
        )
        with ServerHarness(database, config) as harness:
            result = _drive_read_heavy(
                harness,
                clients=MAX_CONCURRENT,
                requests_per_client=requests_per_client,
                hotnames=hotnames,
            )
            stats = harness.server.handle_stats()
            result["result_cache"] = stats.get("result_cache")
            workers = stats.get("workers")
            if workers is not None:
                result["pool"] = {
                    "workers": workers["workers"],
                    "dispatches": workers["dispatches"],
                    "crashes": workers["crashes"],
                }
        section[mode] = result
    baseline = section["single_process"]["throughput_qps"] or 0
    cached = section["multiprocess_cached"]["throughput_qps"] or 0
    section["speedup"] = round(cached / baseline, 2) if baseline else None
    return section


def run_bench(scale=None, requests_per_client=12):
    scale = scale if scale is not None else bench_scale()
    database = build_empdept_database(
        n_departments=max(int(250 * scale), 10),
        employees_per_department=8,
        seed=107,
    )
    Connection(database).run_script(PAPER_VIEWS_SQL)
    deptnames = ["Planning"] + [
        "Dept%04d" % i
        for i in range(1, min(len(database.table("department").rows), 24))
    ]
    config = ServerConfig(
        port=0, max_concurrent=MAX_CONCURRENT, max_queue=MAX_QUEUE,
        default_deadline_seconds=30.0,
    )
    report = {
        "scale": scale,
        "max_concurrent": MAX_CONCURRENT,
        "max_queue": MAX_QUEUE,
        "levels": [],
    }
    with ServerHarness(database, config) as harness:
        # Cold vs warm: the first request pays parse + rewrite + plan; the
        # second only clone + bind + execute.
        with harness.client() as probe:
            cold_start = time.perf_counter()
            probe.query(PARAM_QUERY, params=["Planning"])
            cold = time.perf_counter() - cold_start
            warm_samples = []
            for name in deptnames[:10]:
                warm_start = time.perf_counter()
                probe.query(PARAM_QUERY, params=[name])
                warm_samples.append(time.perf_counter() - warm_start)
        report["cold_prepare_seconds"] = round(cold, 6)
        report["warm_execute_p50_seconds"] = round(
            _percentile(warm_samples, 0.5), 6
        )
        report["cold_over_warm"] = round(
            cold / max(_percentile(warm_samples, 0.5), 1e-9), 1
        )
        for multiplier in (1, 4, 16):
            level = _drive(
                harness,
                clients=MAX_CONCURRENT * multiplier,
                requests_per_client=requests_per_client,
                deptnames=deptnames,
            )
            level["overload"] = "%dx" % multiplier
            stats = harness.server.handle_stats()
            level["cache_hit_rate"] = round(stats["cache"]["hit_rate"], 4)
            report["levels"].append(level)
        final = harness.server.handle_stats()
        report["final_cache"] = final["cache"]
        report["final_admission"] = final["admission"]
    report["workers"] = _bench_workers(
        scale, requests_per_client=75 if scale >= 0.4 else 40
    )
    return report


def test_server_throughput():
    report = run_bench()
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "server_throughput.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )
    # Sanity: the cache must be doing its job under load, and shedding
    # must be the overflow valve, not the common case at 1x.
    assert report["levels"][0]["shed"] == 0 or (
        report["levels"][0]["shed"] < report["levels"][0]["requests"] * 0.1
    )
    assert report["final_cache"]["hit_rate"] > 0.9
    assert report["cold_over_warm"] > 1.0
    for level in report["levels"]:
        assert level["completed"], "no requests completed at %s" % level["overload"]
    workers = report["workers"]
    if "skipped" not in workers:
        for mode in ("single_process", "multiprocess_cached"):
            assert workers[mode]["errors"] == 0, workers[mode]
            assert workers[mode]["completed"] == workers[mode]["requests"]
        cache = workers["multiprocess_cached"]["result_cache"]
        assert cache["hits"] > 0, "result cache never hit on the hot set"
        # The headline claim, gated on a representative scale: warm
        # result-cache hits must carry the read-heavy mix to >= 2.5x the
        # single-process qps.
        if report["scale"] >= 0.4:
            assert workers["speedup"] >= 2.5, workers


if __name__ == "__main__":
    print(json.dumps(run_bench(), indent=2))
