"""Figure 4 — the QGM graph for query D before and after phases 1, 2 and 3
(the figure's four quadrants).

Emits the box inventory of each quadrant and asserts the figure's shape
claims: phase 1 shrinks the graph by merging, phase 2 adds the magic /
supplementary scaffolding, phase 3 leaves exactly one extra box and one
extra join over the phase-1 graph.
"""

from __future__ import annotations

from repro.qgm import build_query_graph, graph_summary
from repro.sql import parse_statement
from repro.rewrite import RewriteEngine, default_rules
from repro.optimizer import optimize_graph
from repro.optimizer.heuristic import _clear_magic_links
from repro.workloads.empdept import PAPER_QUERY_SQL

from benchmarks.conftest import write_result


def _quadrants(db):
    quadrants = {}
    graph = build_query_graph(parse_statement(PAPER_QUERY_SQL), db.catalog)
    quadrants["initial"] = (graph.summary_counts(), graph_summary(graph))

    engine = RewriteEngine(default_rules(include_emst=True))
    context = engine.run_phase(graph, 1)
    quadrants["after phase 1"] = (graph.summary_counts(), graph_summary(graph))

    plan = optimize_graph(graph, db.catalog)
    context = engine.run_phase(graph, 2, join_orders=plan.join_orders, context=context)
    quadrants["after phase 2"] = (graph.summary_counts(), graph_summary(graph))

    _clear_magic_links(graph)
    engine.run_phase(graph, 3, context=context)
    quadrants["after phase 3"] = (graph.summary_counts(), graph_summary(graph))
    return quadrants


def test_figure4_four_quadrants(benchmark, paper_connection):
    db = paper_connection.database
    quadrants = benchmark(lambda: _quadrants(db))

    lines = ["Figure 4: query D through the rewrite phases", ""]
    for name in ("initial", "after phase 1", "after phase 2", "after phase 3"):
        counts, summary = quadrants[name]
        lines.append("%-15s %s" % (name + ":", summary))
    output = "\n".join(lines)
    print("\n" + output)
    write_result("figure4.txt", output)

    initial = quadrants["initial"][0]
    phase1 = quadrants["after phase 1"][0]
    phase2 = quadrants["after phase 2"][0]
    phase3 = quadrants["after phase 3"][0]

    # Phase 1 merges boxes away (upper-left -> upper-right).
    assert phase1[0] < initial[0]
    # Phase 2 adds magic/supplementary boxes (lower-left quadrant).
    assert phase2[0] > phase1[0]
    # Phase 3 simplifies back to one extra box and one extra join.
    assert phase3[0] == phase1[0] + 1
    assert phase3[2] == phase1[2] + 1
    assert phase3[0] < phase2[0]
