"""Subquery-form correlated queries: magic decorrelation ablation.

Table 1's experiments compare the strategies on view-form queries; this
companion bench runs the *subquery-written* form the paper's "Correlated"
column embodies — ``salary > (SELECT AVG(...) WHERE dept = outer.dept)`` —
where the Original strategy itself must re-evaluate the correlated
aggregate per outer row, and EMST's magic decorrelation ([MPR90]'s
aggregate construction) turns it into one grouped table plus selectors.
"""

from __future__ import annotations

import time

from repro.api import Connection
from repro.workloads.empdept import build_empdept_database

from benchmarks.conftest import bench_scale, write_result

ABOVE_AVG = (
    "SELECT e.empname FROM employee e WHERE e.salary > "
    "(SELECT AVG(e2.salary) FROM employee e2 WHERE e2.workdept = e.workdept)"
)

COUNT_PER_DEPT = (
    "SELECT d.deptno, "
    "(SELECT COUNT(*) FROM employee e WHERE e.workdept = d.deptno) AS n "
    "FROM department d WHERE d.division = 'DIV01'"
)


def _measure(connection, sql, strategy, repeats=3):
    prepared = connection.prepare_statement(sql, strategy=strategy)
    result, _ = prepared.execute()
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        prepared.execute()
        best = min(best, time.perf_counter() - started)
    return best, sorted(result.rows, key=repr)


def test_scalar_decorrelation_speedup(benchmark, scale):
    db = build_empdept_database(
        n_departments=max(int(800 * scale), 10),
        employees_per_department=8,
        seed=31,
    )
    connection = Connection(db)

    lines = ["Magic decorrelation of correlated scalar subqueries", ""]
    for name, sql in (("above-avg", ABOVE_AVG), ("count-per-dept", COUNT_PER_DEPT)):
        original_seconds, original_rows = _measure(connection, sql, "original")
        emst_seconds, emst_rows = _measure(connection, sql, "emst")
        assert original_rows == emst_rows
        lines.append(
            "%-15s original=%.4fs  emst(decorrelated)=%.4fs  speedup=%.1fx"
            % (name, original_seconds, emst_seconds, original_seconds / emst_seconds)
        )
        if name == "above-avg":
            # Per-row re-aggregation vs one grouped pass: a clear win.
            assert emst_seconds < original_seconds

    prepared = connection.prepare_statement(ABOVE_AVG, strategy="emst")
    prepared.execute()
    benchmark(prepared.execute)

    output = "\n".join(lines)
    print("\n" + output)
    write_result("subquery_decorrelation.txt", output)
