"""Phase-3 cleanup ablation.

The paper stresses that EMST must be *integrated* with the other rewrite
rules: phase 3 (merge + distinct pullup) eliminates the complexity EMST
introduces. This bench compares the graph complexity and execution time of
the phase-2 graph (magic boxes left in place, deductive-systems style)
against the phase-3 graph (cleaned up).
"""

from __future__ import annotations

import time

from repro.engine import Evaluator
from repro.qgm import build_query_graph
from repro.sql import parse_statement
from repro.rewrite import RewriteEngine, default_rules
from repro.optimizer import optimize_graph
from repro.optimizer.heuristic import _clear_magic_links
from repro.workloads.empdept import PAPER_QUERY_SQL

from benchmarks.conftest import write_result


def _prepare(db, run_phase3):
    graph = build_query_graph(parse_statement(PAPER_QUERY_SQL), db.catalog)
    engine = RewriteEngine(default_rules(include_emst=True))
    context = engine.run_phase(graph, 1)
    plan = optimize_graph(graph, db.catalog)
    context = engine.run_phase(graph, 2, join_orders=plan.join_orders, context=context)
    if run_phase3:
        _clear_magic_links(graph)
        engine.run_phase(graph, 3, context=context)
    else:
        _clear_magic_links(graph)
    final_plan = optimize_graph(graph, db.catalog)
    return graph, final_plan


def _time_execution(graph, plan, db, repeats=3):
    Evaluator(graph, db, join_orders=plan.join_orders).run()
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        Evaluator(graph, db, join_orders=plan.join_orders).run()
        best = min(best, time.perf_counter() - started)
    return best


def test_phase3_cleanup_value(benchmark, paper_connection):
    db = paper_connection.database
    with_cleanup, plan_clean = _prepare(db, run_phase3=True)
    without_cleanup, plan_raw = _prepare(db, run_phase3=False)

    raw_seconds = _time_execution(without_cleanup, plan_raw, db)
    clean_seconds = benchmark(
        lambda: Evaluator(with_cleanup, db, join_orders=plan_clean.join_orders).run()
    ) or _time_execution(with_cleanup, plan_clean, db)
    clean_seconds = benchmark.stats.stats.mean

    raw_counts = without_cleanup.summary_counts()
    clean_counts = with_cleanup.summary_counts()
    lines = [
        "Phase-3 cleanup ablation (query D):",
        "",
        "without cleanup: boxes=%d quantifiers=%d preds=%d  exec=%.6fs"
        % (raw_counts + (raw_seconds,)),
        "with cleanup:    boxes=%d quantifiers=%d preds=%d  exec=%.6fs"
        % (clean_counts + (clean_seconds,)),
    ]
    output = "\n".join(lines)
    print("\n" + output)
    write_result("cleanup.txt", output)

    # Cleanup reduces graph complexity; execution is at least as fast
    # (within noise) and both graphs return identical results.
    assert clean_counts[0] < raw_counts[0]
    left = Evaluator(with_cleanup, db, join_orders=plan_clean.join_orders).run()
    right = Evaluator(without_cleanup, db, join_orders=plan_raw.join_orders).run()
    assert sorted(left.rows) == sorted(right.rows)
    assert clean_seconds < raw_seconds * 2 + 0.01
