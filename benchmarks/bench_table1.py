"""Table 1 — the paper's central result.

Runs experiments A–H under the three strategies (Original / Correlated /
EMST), prints the normalised table next to the paper's numbers, verifies
the per-row *shape* criteria, and writes the result to
``benchmarks/results/table1.txt``.

Additionally registers one pytest-benchmark timing per (experiment,
strategy) pair so ``pytest benchmarks/ --benchmark-only`` reports the raw
execution times.
"""

from __future__ import annotations

import pytest

from repro.workloads.experiments import (
    EXPERIMENTS,
    PAPER_TABLE1,
    format_table1,
    run_experiment,
)

from benchmarks.conftest import bench_scale, write_result

_RUNS = {}


def _run(key):
    cached = _RUNS.get(key)
    if cached is None:
        cached = run_experiment(EXPERIMENTS[key], scale=bench_scale(), repeats=3)
        _RUNS[key] = cached
    return cached


@pytest.mark.parametrize("key", sorted(EXPERIMENTS))
@pytest.mark.parametrize("strategy", ["original", "correlated", "emst"])
def test_table1_strategy_timing(benchmark, key, strategy):
    """Per-cell timing of Table 1 (prepared once, execution timed)."""
    from repro.api import Connection

    experiment = EXPERIMENTS[key]
    db, views_sql, query_sql = experiment.build(bench_scale())
    connection = Connection(db)
    if views_sql:
        connection.run_script(views_sql)
    prepared = connection.prepare_statement(query_sql, strategy=strategy)
    prepared.execute()  # warm indexes
    benchmark(prepared.execute)


@pytest.mark.parametrize("key", sorted(EXPERIMENTS))
def test_table1_row_shape(benchmark, key):
    """Each row reproduces the paper's win/loss pattern, and all three
    strategies return identical rows."""
    run = benchmark.pedantic(
        lambda: _run(key), iterations=1, rounds=1
    )
    assert run.rows_agree, "strategies disagree on experiment %s" % key
    failed = [d for d, ok in run.shape_results if not ok]
    assert not failed, "experiment %s shape violations: %s" % (key, failed)


def test_table1_emit(benchmark):
    """Assemble and persist the full Table 1 reproduction."""

    def assemble():
        return {key: _run(key) for key in sorted(EXPERIMENTS)}

    runs = benchmark.pedantic(assemble, iterations=1, rounds=1)
    text = format_table1(runs)
    lines = [
        "Table 1 reproduction (normalised elapsed time, Original = 100)",
        "scale=%.2f" % bench_scale(),
        "",
        text,
        "",
        "paper reference:",
    ]
    for key in sorted(PAPER_TABLE1):
        row = PAPER_TABLE1[key]
        lines.append(
            "  Exp %s: correlated=%.2f emst=%.2f"
            % (key, row["correlated"], row["emst"])
        )
    output = "\n".join(lines)
    print("\n" + output)
    write_result("table1.txt", output)
    # Global stability claim: EMST never collapses the way correlation does.
    for key, run in runs.items():
        assert run.normalized["emst"] < 400, (
            "EMST must stay stable on experiment %s" % key
        )
