"""Figure 1 — "Magic Transformation introduces more joins, but leads to
better performance."

Reproduces the figure's two panels for the paper's query D: the query graph
before and after the magic transformation (box/quantifier/join counts) and
the measured speedup despite the added complexity.
"""

from __future__ import annotations

from repro.qgm import build_query_graph, graph_summary, render_dot
from repro.sql import parse_statement
from repro.optimizer.heuristic import optimize_with_heuristic
from repro.workloads.empdept import PAPER_QUERY_SQL

from benchmarks.conftest import write_result


def test_figure1_complexity_vs_performance(benchmark, paper_connection):
    db = paper_connection.database

    before = build_query_graph(parse_statement(PAPER_QUERY_SQL), db.catalog)
    before_summary = graph_summary(before)
    before_counts = before.summary_counts()

    graph = build_query_graph(parse_statement(PAPER_QUERY_SQL), db.catalog)
    result = optimize_with_heuristic(graph, db.catalog)
    after_summary = graph_summary(result.graph)
    after_counts = result.graph.summary_counts()

    original = paper_connection.prepare_statement(PAPER_QUERY_SQL, strategy="original")
    emst = paper_connection.prepare_statement(PAPER_QUERY_SQL, strategy="emst")
    original.execute()
    emst.execute()

    import time

    started = time.perf_counter()
    original.execute()
    original_seconds = time.perf_counter() - started

    def run_emst():
        emst.execute()

    benchmark(run_emst)
    emst_seconds = benchmark.stats.stats.mean

    speedup = original_seconds / max(emst_seconds, 1e-9)
    lines = [
        "Figure 1: magic introduces more joins, but leads to better performance",
        "",
        "before magic: %s" % before_summary,
        "after EMST + cleanup: %s" % after_summary,
        "",
        "original execution: %.4fs" % original_seconds,
        "emst execution:     %.6fs" % emst_seconds,
        "speedup:            %.0fx" % speedup,
        "",
        "DOT (after):",
        render_dot(result.graph),
    ]
    output = "\n".join(lines)
    print("\n" + output)
    write_result("figure1.txt", output)

    # The transformed graph is *more complex* ...
    assert after_counts[0] > before_counts[0] - 2  # boxes (post-merge baseline)
    # ... yet executes much faster.
    assert speedup > 10
