"""Magic-variant ablations.

The paper's EMST composes three extensions over plain magic sets
[BMSU86]: supplementary tables [BR91] (shared common subexpressions),
condition pushing [MFPR90b] (``c`` adornments, ground semi-joins) and
subquery decorrelation. This bench toggles each off and measures the query
D pipeline and the relevant Table-1 regimes, so the contribution of each
piece is visible.
"""

from __future__ import annotations

import time

from repro.engine import Evaluator
from repro.magic.emst import EmstRule
from repro.optimizer import optimize_graph
from repro.optimizer.heuristic import _clear_magic_links
from repro.qgm import build_query_graph
from repro.qgm.model import MagicRole
from repro.rewrite import RewriteEngine, default_rules
from repro.sql import parse_statement
from repro.workloads.empdept import PAPER_QUERY_SQL

from benchmarks.conftest import write_result


def _pipeline(db, sql, emst_rule):
    graph = build_query_graph(parse_statement(sql), db.catalog)
    engine = RewriteEngine(default_rules(emst_rule=emst_rule))
    context = engine.run_phase(graph, 1)
    plan = optimize_graph(graph, db.catalog)
    context = engine.run_phase(graph, 2, join_orders=plan.join_orders, context=context)
    _clear_magic_links(graph)
    engine.run_phase(graph, 3, context=context)
    final_plan = optimize_graph(graph, db.catalog)
    return graph, final_plan


def _execute(graph, plan, db, repeats=3):
    Evaluator(graph, db, join_orders=plan.join_orders).run()
    best = float("inf")
    rows = None
    for _ in range(repeats):
        started = time.perf_counter()
        rows = Evaluator(graph, db, join_orders=plan.join_orders).run().rows
        best = min(best, time.perf_counter() - started)
    return best, sorted(rows, key=repr)


def test_supplementary_ablation(benchmark, paper_connection):
    """Plain magic (no supplementary tables) duplicates the prefix work;
    the supplementary variant shares it as a common subexpression."""
    db = paper_connection.database
    with_supp, plan_with = _pipeline(db, PAPER_QUERY_SQL, EmstRule())
    without_supp, plan_without = _pipeline(
        db, PAPER_QUERY_SQL, EmstRule(use_supplementary=False)
    )

    supp_boxes = [
        b for b in with_supp.boxes() if b.magic_role == MagicRole.SUPPLEMENTARY
    ]
    no_supp_boxes = [
        b for b in without_supp.boxes() if b.magic_role == MagicRole.SUPPLEMENTARY
    ]
    assert supp_boxes and not no_supp_boxes

    seconds_with, rows_with = _execute(with_supp, plan_with, db)
    seconds_without, rows_without = _execute(without_supp, plan_without, db)
    assert rows_with == rows_without

    benchmark.pedantic(
        lambda: Evaluator(with_supp, db, join_orders=plan_with.join_orders).run(),
        iterations=1,
        rounds=3,
    )

    lines = [
        "Supplementary-magic ablation (query D):",
        "  supplementary (EMST):  %.6fs  %s boxes" % (seconds_with, len(with_supp.boxes())),
        "  plain magic [BMSU86]:  %.6fs  %s boxes"
        % (seconds_without, len(without_supp.boxes())),
        "  both return identical rows; plain magic re-computes the",
        "  department selection inside every magic box.",
    ]
    output = "\n".join(lines)
    print("\n" + output)
    write_result("magic_variants_supplementary.txt", output)
    # Sharing never loses; with bigger prefixes it wins outright.
    assert seconds_with < seconds_without * 2 + 0.01


def test_condition_pushing_ablation(benchmark):
    """Equality-only magic leaves dependent conditions unpushed."""
    from repro import Database

    db = Database()
    db.create_table(
        "bounds", ["k", "lo"], primary_key=["k"], rows=[(1, 9000), (2, 9900)]
    )
    db.create_table(
        "fact",
        ["k", "v"],
        rows=[(i % 3, i) for i in range(10000)],
    )
    db.catalog.add_view(
        parse_statement("CREATE VIEW fv (k, v) AS SELECT DISTINCT k, v FROM fact")
    )
    sql = "SELECT b.k, f.v FROM bounds b, fv f WHERE f.v > b.lo AND f.k = b.k"

    results = {}
    timings = {}
    for name, rule in (
        ("with-conditions", EmstRule()),
        ("equality-only", EmstRule(push_conditions=False)),
    ):
        graph, plan = _pipeline(db, sql, rule)
        timings[name], results[name] = _execute(graph, plan, db)
    assert results["with-conditions"] == results["equality-only"]

    def run_with_conditions():
        graph, plan = _pipeline(db, sql, EmstRule())
        return Evaluator(graph, db, join_orders=plan.join_orders).run()

    benchmark.pedantic(run_with_conditions, iterations=1, rounds=2)

    lines = [
        "Condition-pushing (ground magic) ablation:",
        "  with conditions: %.4fs" % timings["with-conditions"],
        "  equality only:   %.4fs" % timings["equality-only"],
    ]
    output = "\n".join(lines)
    print("\n" + output)
    write_result("magic_variants_conditions.txt", output)


def test_decorrelation_ablation(benchmark):
    """Without subquery decorrelation, correlated subqueries stay
    tuple-at-a-time even under EMST."""
    from repro.workloads.empdept import build_empdept_database

    db = build_empdept_database(n_departments=300, employees_per_department=8)
    sql = (
        "SELECT e.empname FROM employee e WHERE e.salary > "
        "(SELECT AVG(e2.salary) FROM employee e2 WHERE e2.workdept = e.workdept)"
    )
    graph_on, plan_on = _pipeline(db, sql, EmstRule())
    graph_off, plan_off = _pipeline(db, sql, EmstRule(decorrelate_subqueries=False))
    seconds_on, rows_on = _execute(graph_on, plan_on, db)
    seconds_off, rows_off = _execute(graph_off, plan_off, db)
    assert rows_on == rows_off

    benchmark.pedantic(
        lambda: Evaluator(graph_on, db, join_orders=plan_on.join_orders).run(),
        iterations=1,
        rounds=2,
    )

    lines = [
        "Subquery-decorrelation ablation (above-department-average):",
        "  decorrelated:     %.4fs" % seconds_on,
        "  left correlated:  %.4fs" % seconds_off,
        "  speedup:          %.1fx" % (seconds_off / seconds_on),
    ]
    output = "\n".join(lines)
    print("\n" + output)
    write_result("magic_variants_decorrelation.txt", output)
    assert seconds_on < seconds_off
