"""§3.2 optimization-time argument.

The naive way to combine magic with cost-based join ordering is to apply
EMST once per candidate join order of a box and plan every alternative —
the paper's O(2^n) plan-optimizer invocations. The Starburst heuristic
invokes the plan optimizer exactly twice. This bench measures both
optimization times and invocation counts as the number of joined tables
grows, reproducing the blow-up the paper argues against.
"""

from __future__ import annotations

import time

from repro import Database
from repro.qgm import build_query_graph
from repro.sql import parse_statement
from repro.optimizer.heuristic import (
    optimize_exhaustive_emst,
    optimize_with_heuristic,
)

from benchmarks.conftest import write_result


def _chain_database(n_tables, rows_per_table=40):
    db = Database()
    for index in range(n_tables):
        db.create_table(
            "t%d" % index,
            ["id", "fk", "val"],
            primary_key=["id"],
            rows=[(i, (i + 1) % rows_per_table, i) for i in range(rows_per_table)],
        )
    db.catalog.add_view(
        parse_statement(
            "CREATE VIEW agg0 (id, total) AS "
            "SELECT fk, SUM(val) FROM t0 GROUP BY fk"
        )
    )
    return db


def _chain_query(n_tables):
    tables = ", ".join("t%d x%d" % (i, i) for i in range(1, n_tables))
    joins = " AND ".join(
        "x%d.fk = x%d.id" % (i, i + 1) for i in range(1, n_tables - 1)
    )
    sql = "SELECT v.total FROM agg0 v, %s WHERE v.id = x1.id" % tables
    if joins:
        sql += " AND " + joins
    return sql


def test_optimization_time_heuristic_vs_exhaustive(benchmark):
    lines = [
        "Optimization time: the 3.2 heuristic (2 plan passes) vs",
        "exhaustive per-join-order EMST (one plan pass per permutation)",
        "",
        "%-3s %16s %16s %12s %12s"
        % ("n", "heuristic (s)", "exhaustive (s)", "h-invocs", "x-invocs"),
    ]
    series = []
    for n_tables in (3, 4, 5):
        db = _chain_database(n_tables)
        sql = _chain_query(n_tables)

        started = time.perf_counter()
        graph = build_query_graph(parse_statement(sql), db.catalog)
        heuristic = optimize_with_heuristic(graph, db.catalog)
        heuristic_seconds = time.perf_counter() - started

        started = time.perf_counter()
        graph = build_query_graph(parse_statement(sql), db.catalog)
        _, invocations = optimize_exhaustive_emst(graph, db.catalog)
        exhaustive_seconds = time.perf_counter() - started

        series.append(
            (n_tables, heuristic_seconds, exhaustive_seconds,
             heuristic.optimizer_invocations, invocations)
        )
        lines.append(
            "%-3d %16.4f %16.4f %12d %12d"
            % (n_tables, heuristic_seconds, exhaustive_seconds,
               heuristic.optimizer_invocations, invocations)
        )

    def measure_largest():
        db = _chain_database(5)
        sql = _chain_query(5)
        graph = build_query_graph(parse_statement(sql), db.catalog)
        return optimize_with_heuristic(graph, db.catalog)

    benchmark(measure_largest)

    output = "\n".join(lines)
    print("\n" + output)
    write_result("opt_time.txt", output)

    # Invocation counts: always 2 for the heuristic, factorial growth for
    # the exhaustive strategy.
    for n_tables, _, _, h_invocations, x_invocations in series:
        assert h_invocations == 2
        assert x_invocations > h_invocations
    assert series[-1][4] > series[0][4]  # the blow-up grows with n
    # Exhaustive optimization is much slower at the largest size.
    assert series[-1][2] > series[-1][1]
