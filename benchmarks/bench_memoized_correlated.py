"""Ablation: correlated execution *with memoisation* vs magic.

A modern defence of correlated execution is caching per-binding results.
This bench measures the memoising variant on two Table-1 regimes:

* **experiment E** (orders outer — *duplicate* custkey bindings): the cache
  absorbs the repeats, but magic still computes each distinct binding once
  *and* shares the scans, so it stays ahead;
* **experiment C** (managers outer — every binding *distinct*, and the
  join column computed): the cache never hits; memoisation does not even
  dent the catastrophe. Only the set-oriented rewrite helps.
"""

from __future__ import annotations

import time

from repro.api import Connection
from repro.engine import CorrelatedEvaluator
from repro.workloads.experiments import EXPERIMENTS

from benchmarks.conftest import bench_scale, write_result


def _measure_all(key):
    db, views_sql, query_sql = EXPERIMENTS[key].build(bench_scale())
    connection = Connection(db)
    if views_sql:
        connection.run_script(views_sql)

    timings = {}
    rows = {}
    for strategy in ("original", "emst"):
        prepared = connection.prepare_statement(query_sql, strategy=strategy)
        result, _ = prepared.execute()
        rows[strategy] = sorted(result.rows, key=repr)
        best = float("inf")
        for _ in range(3):
            started = time.perf_counter()
            prepared.execute()
            best = min(best, time.perf_counter() - started)
        timings[strategy] = best

    prepared = connection.prepare_statement(query_sql, strategy="correlated")

    def run_correlated(memoize):
        evaluator = CorrelatedEvaluator(
            prepared.graph,
            db,
            join_orders=prepared.plan.join_orders,
            memoize=memoize,
        )
        return evaluator.run()

    for memoize, label in ((False, "correlated"), (True, "correlated+memo")):
        result = run_correlated(memoize)
        rows[label] = sorted(result.rows, key=repr)
        best = float("inf")
        for _ in range(3):
            started = time.perf_counter()
            run_correlated(memoize)
            best = min(best, time.perf_counter() - started)
        timings[label] = best

    assert all(r == rows["original"] for r in rows.values())
    base = timings["original"]
    normalized = {k: 100.0 * v / base for k, v in timings.items()}
    return normalized


def _duplicate_binding_db():
    """A regime engineered for caching: a big outer with only 12 distinct
    binding values, flowing into an aggregate view."""
    from repro import Database
    from repro.sql import parse_statement

    db = Database()
    db.create_table(
        "fact",
        ["grp", "v"],
        rows=[(i % 12, i) for i in range(4000)],
    )
    db.create_table(
        "outer_rows",
        ["k", "grp"],
        rows=[(i, (i * 7) % 12) for i in range(800)],
    )
    db.catalog.add_view(
        parse_statement(
            "CREATE VIEW gv (grp, total) AS "
            "SELECT grp || '', SUM(v) FROM fact GROUP BY grp || ''"
        )
    )
    # The computed grouping column blocks per-binding pushdown, so each
    # evaluation is a full pass — exactly where a cache shines.
    sql = "SELECT o.k, g.total FROM outer_rows o, gv g WHERE g.grp = o.grp || ''"
    return db, sql


def _measure_duplicates():
    db, sql = _duplicate_binding_db()
    connection = Connection(db)
    timings = {}
    rows = {}
    for strategy in ("original", "emst"):
        prepared = connection.prepare_statement(sql, strategy=strategy)
        result, _ = prepared.execute()
        rows[strategy] = sorted(result.rows, key=repr)
        best = float("inf")
        for _ in range(3):
            started = time.perf_counter()
            prepared.execute()
            best = min(best, time.perf_counter() - started)
        timings[strategy] = best
    prepared = connection.prepare_statement(sql, strategy="correlated")
    for memoize, label in ((False, "correlated"), (True, "correlated+memo")):
        evaluator = CorrelatedEvaluator(
            prepared.graph, db, join_orders=prepared.plan.join_orders,
            memoize=memoize,
        )
        result = evaluator.run()
        rows[label] = sorted(result.rows, key=repr)
        best = float("inf")
        for _ in range(2):
            evaluator = CorrelatedEvaluator(
                prepared.graph, db, join_orders=prepared.plan.join_orders,
                memoize=memoize,
            )
            started = time.perf_counter()
            evaluator.run()
            best = min(best, time.perf_counter() - started)
        timings[label] = best
    assert all(r == rows["original"] for r in rows.values())
    base = timings["original"]
    return {k: 100.0 * v / base for k, v in timings.items()}


def test_memoized_correlated_ablation(benchmark):
    dup_norm = _measure_duplicates()
    c_norm = _measure_all("C")

    benchmark.pedantic(_measure_duplicates, iterations=1, rounds=1)

    lines = [
        "Memoised correlated execution (normalised, Original = 100):",
        "",
        "%-18s %14s %12s" % ("", "dup bindings", "regime C"),
    ]
    for label in ("original", "correlated", "correlated+memo", "emst"):
        lines.append(
            "%-18s %14.2f %12.2f" % (label, dup_norm[label], c_norm[label])
        )
    lines += [
        "",
        "Left: an 800-row outer over 12 distinct bindings and a computed",
        "grouping column — each evaluation is a full pass, so the cache",
        "rescues correlated execution; magic still wins (one shared pass).",
        "Right: Table 1's regime C — every binding distinct, the cache",
        "never hits, the catastrophe stands; only the rewrite fixes it.",
    ]
    output = "\n".join(lines)
    print("\n" + output)
    write_result("memoized_correlated.txt", output)

    # Duplicates: memoisation must help dramatically; magic still wins.
    assert dup_norm["correlated+memo"] * 2 < dup_norm["correlated"]
    assert dup_norm["emst"] < dup_norm["correlated+memo"]
    # C: distinct bindings — memoisation is within noise of no-memo and
    # both remain far above the original; magic is far below it.
    assert c_norm["correlated+memo"] > 150
    assert c_norm["emst"] < 100
