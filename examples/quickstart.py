"""Quickstart: the paper's running example (Example 1.1) end to end.

Builds the employee/department database, defines the mgrSal / avgMgrSal
views, and runs query D — "the average salary of all the managers in the
department named 'Planning'" — under the three strategies of Table 1,
printing the rewritten query graph and the timings.

Run:  python examples/quickstart.py
"""

import time

from repro import Connection, render_text
from repro.workloads.empdept import (
    PAPER_QUERY_SQL,
    PAPER_VIEWS_SQL,
    build_empdept_database,
)


def main():
    # A mid-sized instance: 3000 departments x 5 employees.
    db = build_empdept_database(n_departments=3000, employees_per_department=5)
    conn = Connection(db)
    conn.run_script(PAPER_VIEWS_SQL)

    print("Query D:")
    print(" ", PAPER_QUERY_SQL)
    print()

    print("=" * 72)
    print("The EMST-rewritten query graph (Figure 4, lower right):")
    print("=" * 72)
    print(conn.explain(PAPER_QUERY_SQL, strategy="emst"))
    print()

    print("=" * 72)
    print("Execution under the three strategies of Table 1:")
    print("=" * 72)
    timings = {}
    for strategy in ("original", "correlated", "emst"):
        prepared = conn.prepare_statement(PAPER_QUERY_SQL, strategy=strategy)
        result, stats = prepared.execute()  # warm up indexes
        started = time.perf_counter()
        result, stats = prepared.execute()
        timings[strategy] = time.perf_counter() - started
        print(
            "%-11s %8.4fs  rows=%r  work=%s"
            % (strategy, timings[strategy], result.rows, stats.as_dict())
        )

    base = timings["original"]
    print()
    print("normalised (Original = 100):")
    for strategy, seconds in timings.items():
        print("  %-11s %10.2f" % (strategy, 100.0 * seconds / base))


if __name__ == "__main__":
    main()
