"""Datalog-style program analysis on the SQL engine.

The deductive-database systems the paper compares against (Coral, LDL,
NAIL!, Glue-Nail) were built for exactly this workload: recursive rules
over program facts. This example runs a field-insensitive *points-to*
analysis as recursive SQL — and shows the magic-sets transformation doing
what it was invented for: answering "what does THIS variable point to?"
without computing the whole-program analysis.

Rules (Andersen-style, simplified):

    pointsTo(v, o) :- newFact(v, o).                    -- v = new Obj
    pointsTo(v, o) :- assign(v, w), pointsTo(w, o).     -- v = w

Run:  python examples/program_analysis.py
"""

import random
import time

from repro import Connection, Database

QUERY_TEMPLATE = """
WITH RECURSIVE pointsTo (var, obj) AS (
    SELECT var, obj FROM newFact
    UNION
    SELECT a.dst, p.obj FROM assign a, pointsTo p WHERE p.var = a.src
)
SELECT obj FROM pointsTo WHERE var = {var} ORDER BY obj
"""


def build_program(n_functions=120, vars_per_function=30, seed=13):
    """A synthetic program with realistic locality: assignments flow mostly
    within a function, with occasional calls passing values across."""
    rng = random.Random(seed)
    news = []
    assigns = []
    alloc = 0
    for function in range(n_functions):
        base = function * vars_per_function
        # allocation sites: one at the chain head, a couple at random
        news.append((base, alloc)); alloc += 1
        for _ in range(2):
            news.append((base + rng.randrange(vars_per_function), alloc))
            alloc += 1
        # local dataflow: a chain through the function's variables
        for offset in range(vars_per_function - 1):
            assigns.append((base + offset + 1, base + offset))
        # one or two cross-function flows (parameter passing)
        for _ in range(2):
            callee = rng.randrange(n_functions)
            assigns.append(
                (
                    callee * vars_per_function + rng.randrange(vars_per_function),
                    base + rng.randrange(vars_per_function),
                )
            )
    db = Database()
    db.create_table("newFact", ["var", "obj"], rows=news)
    db.create_table("assign", ["dst", "src"], rows=assigns)
    return db


def main():
    db = build_program()
    conn = Connection(db)
    variable = 29  # the end of function 0's local dataflow chain
    sql = QUERY_TEMPLATE.format(var=variable)
    print("points-to query for variable %d:" % variable)
    print(sql.strip())
    print()

    for strategy in ("original", "emst"):
        prepared = conn.prepare_statement(sql, strategy=strategy)
        result, stats = prepared.execute()
        started = time.perf_counter()
        result, stats = prepared.execute()
        elapsed = time.perf_counter() - started
        print(
            "%-9s %8.4fs  objects=%d  rows_produced=%d"
            % (
                strategy,
                elapsed,
                len(result.rows),
                stats.as_dict()["rows_produced"],
            )
        )
    print()
    print(
        "Original computes the whole-program points-to relation; the magic\n"
        "transformation seeds the fixpoint with variable %d and explores\n"
        "only its assignment chain — the deductive-database use case the\n"
        "paper's related-work section contrasts with." % variable
    )


if __name__ == "__main__":
    main()
