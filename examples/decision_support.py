"""Decision-support scenario (the paper's motivation: complex TPCD-style
queries that vendors were hand-optimizing).

A revenue roll-up through two view levels, restricted to one region —
exactly the query shape where correlated execution is unstable and the
magic-sets rewrite is "a far more stable optimization".

Run:  python examples/decision_support.py
"""

import time

from repro import Connection
from repro.workloads.decision_support import build_decision_support_database

VIEWS = """
CREATE VIEW custRev (custkey, rev) AS
  SELECT o.custkey, SUM(o.totalprice) FROM orders o GROUP BY o.custkey;
CREATE VIEW nationRev (nationkey, totrev, ncust) AS
  SELECT c.nationkey, SUM(v.rev), COUNT(*)
  FROM customer c, custRev v WHERE v.custkey = c.custkey
  GROUP BY c.nationkey;
"""

QUERY = (
    "SELECT n.nname, v.totrev, v.ncust "
    "FROM nation n, nationRev v "
    "WHERE v.nationkey = n.nationkey AND n.regionkey = 2 "
    "ORDER BY totrev DESC"
)


def main():
    db = build_decision_support_database(scale=6.0)
    conn = Connection(db)
    conn.run_script(VIEWS)

    print("Revenue roll-up for one region, through two view levels:")
    print(" ", QUERY)
    print()

    outcome = conn.explain_execute(QUERY, strategy="emst")
    print("result:")
    for row in outcome.rows:
        print("   %-12s %14.2f  %4d customers" % row)
    print()

    heuristic = outcome.heuristic
    print(
        "EMST chosen: %s (cost %.0f vs %.0f without); optimizer ran %d times"
        % (
            heuristic.used_emst,
            heuristic.cost_with_emst,
            heuristic.cost_without_emst,
            heuristic.optimizer_invocations,
        )
    )
    print()

    print("strategy comparison (execution time):")
    for strategy in ("original", "correlated", "emst"):
        prepared = conn.prepare_statement(QUERY, strategy=strategy)
        prepared.execute()
        started = time.perf_counter()
        prepared.execute()
        print("  %-11s %8.4fs" % (strategy, time.perf_counter() - started))


if __name__ == "__main__":
    main()
