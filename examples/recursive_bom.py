"""Recursive queries and recursive magic.

The paper notes that magic can turn a nonrecursive query into a recursive
one — and that the transformation applies to "general recursive queries
with stratified negation and aggregation" too. This example runs a
bill-of-materials (transitive closure) query: all components of one
product. Magic restricts the closure to the single product of interest,
which is dramatically cheaper than computing the closure of the entire
catalog.

Run:  python examples/recursive_bom.py
"""

import random
import time

from repro import Connection, Database

QUERY = """
WITH RECURSIVE uses (part, component) AS (
    SELECT parent, child FROM bom
    UNION
    SELECT u.part, b.child FROM uses u, bom b WHERE b.parent = u.component
)
SELECT component FROM uses WHERE part = 1 ORDER BY component
"""


def build_bom(n_products=300, depth=4, fanout=3, seed=11):
    """A forest of product structures: each product explodes into
    sub-assemblies over ``depth`` levels."""
    rng = random.Random(seed)
    rows = []
    next_id = n_products + 1
    frontier = {p: [p] for p in range(1, n_products + 1)}
    for _ in range(depth):
        for product, nodes in frontier.items():
            new_nodes = []
            for node in nodes:
                for _ in range(rng.randint(1, fanout)):
                    rows.append((node, next_id))
                    new_nodes.append(next_id)
                    next_id += 1
            frontier[product] = new_nodes
    db = Database()
    db.create_table("bom", ["parent", "child"], rows=rows)
    return db


def main():
    db = build_bom()
    conn = Connection(db)
    print("bill-of-materials edges:", len(db.table("bom")))
    print()
    print("all components of product 1 (transitive closure, magic-restricted):")
    print(QUERY.strip())
    print()

    for strategy in ("original", "emst"):
        prepared = conn.prepare_statement(QUERY, strategy=strategy)
        result, stats = prepared.execute()
        started = time.perf_counter()
        result, stats = prepared.execute()
        elapsed = time.perf_counter() - started
        print(
            "%-9s %8.4fs  components=%d  rows_produced=%d"
            % (strategy, elapsed, len(result.rows), stats.as_dict()["rows_produced"])
        )
    print()
    print(
        "The magic transformation restricts the fixpoint to product 1's"
        " sub-tree;\nthe original computes the closure of every product."
    )


if __name__ == "__main__":
    main()
