"""Extensibility (§5 of the paper).

A database customizer adds a new QGM operation — here a SAMPLE-FIRST-N box
that passes through the first N rows of its input — by:

1. registering the new box kind's EMST properties (AMQ or NMQ, plus an
   optional pass-down handler): "a simple property to state",
2. giving the box an evaluation hook,
3. (optionally) adding new rewrite rules.

The EMST rule itself is untouched: it consults the registry and treats the
custom NMQ box like any other — the magic restriction is simply dropped at
the box (always safe) or passed down by the customizer's handler.

Run:  python examples/extensibility.py
"""

from repro import Connection, Database, render_text
from repro.magic.properties import OperationProperties, register_operation
from repro.qgm import build_query_graph
from repro.qgm.model import Box, OutputColumn, Quantifier, QuantifierType
from repro.optimizer.heuristic import optimize_with_heuristic
from repro.sql import parse_statement

SAMPLE_KIND = "SAMPLE"


def evaluate_sample(evaluator, box, env):
    """Evaluation hook: first N rows of the single input."""
    limit = box.properties["sample_limit"]
    child_rows = evaluator.rows_for(box.quantifiers[0].input_box, env)
    return child_rows[:limit]


def make_sample_box(graph, child, limit):
    """Wrap ``child`` in a SAMPLE box keeping its first ``limit`` rows."""
    box = graph.new_box(SAMPLE_KIND, graph.fresh_name("SAMPLE"))
    quantifier = Quantifier(
        name=graph.fresh_name("smp"),
        qtype=QuantifierType.FOREACH,
        input_box=child,
    )
    box.add_quantifier(quantifier)
    box.columns = [OutputColumn(name=c.name) for c in child.columns]
    box.properties["sample_limit"] = limit
    box.properties["evaluate"] = evaluate_sample
    return box


def main():
    # 1. Declare the operation's EMST properties: SAMPLE must not accept a
    #    magic quantifier (filtering *before* the sample would change which
    #    rows are sampled), and it does not pass restrictions down either —
    #    so it is NMQ with no pass-down handler. EMST will simply leave it
    #    (and everything below it) unrestricted. Sound by construction.
    register_operation(
        OperationProperties(kind=SAMPLE_KIND, amq=False, pass_down=None)
    )

    db = Database()
    db.create_table(
        "readings",
        ["sensor", "value"],
        rows=[(i % 10, i * 1.5) for i in range(1000)],
    )
    conn = Connection(db)

    # 2. Build a query graph and splice the custom box in under the top box.
    graph = build_query_graph(
        parse_statement(
            "SELECT r.sensor, r.value FROM readings r WHERE r.sensor = 3"
        ),
        db.catalog,
    )
    top = graph.top_box
    child = top.quantifiers[0].input_box
    sample = make_sample_box(graph, child, limit=100)
    top.quantifiers[0].input_box = sample

    # 3. The whole pipeline — rewrite rules, EMST, planning, execution —
    #    handles the foreign box without modification.
    result = optimize_with_heuristic(graph, db.catalog)
    print(render_text(result.graph))
    print()

    from repro.engine import Evaluator

    rows = Evaluator(result.graph, db, join_orders=result.join_orders).run()
    print("rows over the first-100 sample with sensor = 3:", len(rows))
    assert all(sensor == 3 for sensor, _ in rows.rows)
    print("custom operation integrated: EMST ran, the SAMPLE box survived,")
    print("and the predicate was not pushed through it.")


if __name__ == "__main__":
    main()
