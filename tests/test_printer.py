"""SQL printer tests, including parse → print → parse round-trips."""

import pytest

from repro.sql import parse_expression, parse_statement, to_sql
from repro.sql.printer import expr_to_sql

ROUND_TRIP_QUERIES = [
    "SELECT a FROM t",
    "SELECT DISTINCT a AS x, b + 1 AS y FROM t u WHERE u.a > 3",
    "SELECT a, SUM(b) AS total FROM t GROUP BY a HAVING SUM(b) > 10",
    "SELECT a FROM t WHERE a IN (1, 2, 3) AND b NOT LIKE 'x%'",
    "SELECT a FROM t WHERE a IN (SELECT b FROM s WHERE s.c = t.c)",
    "SELECT a FROM t WHERE EXISTS (SELECT b FROM s)",
    "SELECT a FROM t WHERE NOT EXISTS (SELECT b FROM s)",
    "SELECT a FROM t WHERE a > ANY (SELECT b FROM s)",
    "SELECT a FROM t WHERE a BETWEEN 1 AND 10 OR a IS NULL",
    "SELECT a FROM t UNION ALL SELECT a FROM s",
    "SELECT a FROM t EXCEPT SELECT a FROM s",
    "SELECT a FROM t INTERSECT ALL SELECT a FROM s",
    "SELECT x.a FROM (SELECT a FROM t) AS x",
    "SELECT a FROM t ORDER BY a DESC LIMIT 3",
    "WITH v AS (SELECT a FROM t) SELECT a FROM v",
    "SELECT CASE WHEN a = 1 THEN 'one' ELSE 'many' END AS label FROM t",
    "SELECT COUNT(*), COUNT(DISTINCT a) FROM t",
    "SELECT a FROM t WHERE a > (SELECT AVG(b) FROM s)",
]


@pytest.mark.parametrize("sql", ROUND_TRIP_QUERIES)
def test_query_round_trip(sql):
    first = parse_statement(sql)
    printed = to_sql(first)
    second = parse_statement(printed)
    assert to_sql(second) == printed  # idempotent after one round


ROUND_TRIP_EXPRESSIONS = [
    "a + b * c",
    "(a + b) * c",
    "a = 1 OR b = 2 AND c = 3",
    "(a = 1 OR b = 2) AND c = 3",
    "NOT (a = 1 OR b = 2)",
    "a || 'suffix'",
    "-a + 4",
    "a % 3 = 0",
    "a <> b",
]


@pytest.mark.parametrize("text", ROUND_TRIP_EXPRESSIONS)
def test_expression_round_trip_preserves_structure(text):
    first = parse_expression(text)
    printed = expr_to_sql(first)
    second = parse_expression(printed)
    assert expr_to_sql(second) == printed


def test_string_literal_escaping():
    expr = parse_expression("'it''s'")
    assert expr_to_sql(expr) == "'it''s'"
    assert parse_expression(expr_to_sql(expr)).value == "it's"


def test_create_view_rendering():
    statement = parse_statement("CREATE VIEW v (x, y) AS SELECT a, b FROM t")
    text = to_sql(statement)
    assert text.startswith("CREATE VIEW v (x, y) AS SELECT")
    again = parse_statement(text)
    assert again.columns == ["x", "y"]


def test_recursive_view_rendering():
    statement = parse_statement(
        "CREATE RECURSIVE VIEW r (n) AS SELECT a FROM t UNION ALL SELECT n FROM r"
    )
    assert "CREATE RECURSIVE VIEW" in to_sql(statement)


def test_precedence_parentheses_inserted():
    expr = parse_expression("(a + b) * c")
    assert expr_to_sql(expr) == "(a + b) * c"


def test_null_true_false_rendering():
    assert expr_to_sql(parse_expression("NULL")) == "NULL"
    assert expr_to_sql(parse_expression("TRUE")) == "TRUE"
    assert expr_to_sql(parse_expression("FALSE")) == "FALSE"
