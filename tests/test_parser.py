"""Parser unit tests."""

import pytest

from repro.errors import ParseError
from repro.sql import ast, parse_expression, parse_script, parse_statement


def q(text):
    statement = parse_statement(text)
    assert isinstance(statement, ast.Query)
    return statement


def test_minimal_select():
    query = q("SELECT a FROM t")
    core = query.body
    assert isinstance(core, ast.SelectCore)
    assert len(core.items) == 1
    assert isinstance(core.items[0].expr, ast.ColumnRef)
    assert core.from_tables[0].name == "t"


def test_select_distinct_and_aliases():
    core = q("SELECT DISTINCT a AS x, b y FROM t u").body
    assert core.distinct
    assert core.items[0].alias == "x"
    assert core.items[1].alias == "y"
    assert core.from_tables[0].alias == "u"


def test_star_and_qualified_star():
    core = q("SELECT *, t.* FROM t").body
    assert isinstance(core.items[0].expr, ast.Star)
    assert core.items[1].expr.table == "t"


def test_where_precedence_or_and():
    expr = parse_expression("a = 1 OR b = 2 AND c = 3")
    assert isinstance(expr, ast.BinaryOp) and expr.op == "OR"
    assert isinstance(expr.right, ast.BinaryOp) and expr.right.op == "AND"


def test_not_binds_tighter_than_and():
    expr = parse_expression("NOT a = 1 AND b = 2")
    assert expr.op == "AND"
    assert isinstance(expr.left, ast.UnaryOp) and expr.left.op == "NOT"


def test_arithmetic_precedence():
    expr = parse_expression("1 + 2 * 3")
    assert expr.op == "+"
    assert expr.right.op == "*"


def test_parenthesized_expression():
    expr = parse_expression("(1 + 2) * 3")
    assert expr.op == "*"
    assert expr.left.op == "+"


def test_comparison_operators_normalised():
    expr = parse_expression("a != b")
    assert expr.op == "<>"


def test_between_and_not_between():
    expr = parse_expression("a BETWEEN 1 AND 5")
    assert isinstance(expr, ast.Between) and not expr.negated
    expr = parse_expression("a NOT BETWEEN 1 AND 5")
    assert expr.negated


def test_in_list_and_in_subquery():
    expr = parse_expression("a IN (1, 2, 3)")
    assert isinstance(expr, ast.InList)
    assert len(expr.items) == 3
    core = q("SELECT a FROM t WHERE a IN (SELECT b FROM s)").body
    assert isinstance(core.where, ast.InSubquery)


def test_not_in_subquery_negated():
    core = q("SELECT a FROM t WHERE a NOT IN (SELECT b FROM s)").body
    assert core.where.negated


def test_exists_and_not_exists():
    core = q("SELECT a FROM t WHERE EXISTS (SELECT b FROM s)").body
    assert isinstance(core.where, ast.Exists) and not core.where.negated
    core = q("SELECT a FROM t WHERE NOT EXISTS (SELECT b FROM s)").body
    assert core.where.negated


def test_quantified_comparison_any_all_some():
    expr = q("SELECT a FROM t WHERE a > ANY (SELECT b FROM s)").body.where
    assert isinstance(expr, ast.QuantifiedComparison)
    assert expr.quantifier == "ANY"
    expr = q("SELECT a FROM t WHERE a > SOME (SELECT b FROM s)").body.where
    assert expr.quantifier == "ANY"
    expr = q("SELECT a FROM t WHERE a <= ALL (SELECT b FROM s)").body.where
    assert expr.quantifier == "ALL"


def test_scalar_subquery_in_comparison():
    expr = q("SELECT a FROM t WHERE a > (SELECT AVG(b) FROM s)").body.where
    assert isinstance(expr.right, ast.ScalarSubquery)


def test_is_null_and_is_not_null():
    assert not parse_expression("a IS NULL").negated
    assert parse_expression("a IS NOT NULL").negated


def test_like_and_not_like():
    assert not parse_expression("a LIKE 'x%'").negated
    assert parse_expression("a NOT LIKE 'x%'").negated


def test_case_expression():
    expr = parse_expression("CASE WHEN a = 1 THEN 'one' ELSE 'many' END")
    assert isinstance(expr, ast.CaseWhen)
    assert len(expr.branches) == 1
    assert expr.default.value == "many"


def test_function_calls_and_count_star():
    expr = parse_expression("COUNT(*)")
    assert isinstance(expr, ast.FuncCall)
    assert isinstance(expr.args[0], ast.Star)
    expr = parse_expression("COUNT(DISTINCT a)")
    assert expr.distinct


def test_group_by_and_having():
    core = q(
        "SELECT a, SUM(b) FROM t GROUP BY a HAVING SUM(b) > 10"
    ).body
    assert len(core.group_by) == 1
    assert isinstance(core.having, ast.BinaryOp)


def test_order_by_and_limit():
    query = q("SELECT a FROM t ORDER BY a DESC, 2 LIMIT 5")
    assert len(query.order_by) == 2
    assert not query.order_by[0].ascending
    assert query.limit == 5


def test_union_precedence_intersect_binds_tighter():
    query = q("SELECT a FROM t UNION SELECT a FROM s INTERSECT SELECT a FROM u")
    assert query.body.op == "UNION"
    assert query.body.right.op == "INTERSECT"


def test_union_all_flag():
    query = q("SELECT a FROM t UNION ALL SELECT a FROM s")
    assert query.body.all


def test_except():
    query = q("SELECT a FROM t EXCEPT SELECT a FROM s")
    assert query.body.op == "EXCEPT"
    assert not query.body.all


def test_derived_table():
    core = q("SELECT x.a FROM (SELECT a FROM t) AS x").body
    ref = core.from_tables[0]
    assert isinstance(ref, ast.SubqueryRef)
    assert ref.alias == "x"


def test_create_view_with_columns():
    statement = parse_statement(
        "CREATE VIEW v (x, y) AS SELECT a, b FROM t"
    )
    assert isinstance(statement, ast.CreateView)
    assert statement.columns == ["x", "y"]
    assert not statement.recursive


def test_create_recursive_view():
    statement = parse_statement(
        "CREATE RECURSIVE VIEW anc (x, y) AS "
        "SELECT p, c FROM par UNION ALL SELECT a.x, p.c FROM anc a, par p WHERE a.y = p.p"
    )
    assert statement.recursive


def test_with_clause():
    query = q("WITH v AS (SELECT a FROM t) SELECT a FROM v")
    assert len(query.ctes) == 1
    assert query.ctes[0].name == "v"
    assert not query.recursive_ctes


def test_with_recursive_clause():
    query = q(
        "WITH RECURSIVE r (n) AS (SELECT a FROM t UNION ALL SELECT n FROM r) "
        "SELECT n FROM r"
    )
    assert query.recursive_ctes


def test_script_multiple_statements():
    script = parse_script(
        "CREATE VIEW v AS SELECT a FROM t; SELECT a FROM v;"
    )
    assert len(script.views) == 1
    assert len(script.queries) == 1


def test_trailing_garbage_rejected():
    with pytest.raises(ParseError):
        parse_statement("SELECT a FROM t extra garbage ( ")


def test_missing_from_rejected():
    with pytest.raises(ParseError):
        parse_statement("SELECT a WHERE b = 1")


def test_empty_case_rejected():
    with pytest.raises(ParseError):
        parse_expression("CASE END")


def test_literal_types():
    assert parse_expression("42").value == 42
    assert parse_expression("4.5").value == 4.5
    assert parse_expression("NULL").value is None
    assert parse_expression("TRUE").value is True
    assert parse_expression("'hi'").value == "hi"


def test_unary_minus_and_plus():
    expr = parse_expression("-a")
    assert isinstance(expr, ast.UnaryOp) and expr.op == "-"
    expr = parse_expression("+a")
    assert isinstance(expr, ast.ColumnRef)


def test_double_not_cancels():
    expr = parse_expression("NOT NOT a = 1")
    assert isinstance(expr, ast.BinaryOp)
    assert expr.op == "="
