"""Physical-plan (EXPLAIN) rendering."""

from repro import Connection, Database
from repro.sql import parse_statement
from repro.qgm import build_query_graph
from repro.optimizer import optimize_graph
from repro.optimizer.explain import physical_plan


def plan_text(db, sql):
    graph = build_query_graph(parse_statement(sql), db.catalog)
    plan = optimize_graph(graph, db.catalog)
    return physical_plan(graph, plan, db.catalog)


def test_scan_then_hashjoin(empdept_db):
    text = plan_text(
        empdept_db,
        "SELECT e.empname FROM employee e, department d WHERE e.workdept = d.deptno",
    )
    assert "SCAN" in text
    assert "HASHJOIN" in text
    assert "RETURN SELECT" in text


def test_cross_product_shows_nljoin(empdept_db):
    text = plan_text(
        empdept_db, "SELECT e.empno FROM employee e, department d"
    )
    assert "NLJOIN" in text


def test_filter_and_distinct_shown(empdept_db):
    # A predicate over no table at all stays a residual FILTER.
    text = plan_text(
        empdept_db,
        "SELECT DISTINCT empname FROM employee WHERE 1 = 1",
    )
    assert "FILTER" in text
    assert "DISTINCT" in text


def test_local_predicate_applied_at_scan(empdept_db):
    text = plan_text(
        empdept_db,
        "SELECT empname FROM employee WHERE salary > 100",
    )
    assert "SCAN" in text
    assert "ON (employee.salary > 100)" in text or "ON (" in text


def test_groupby_rendering(empdept_db):
    text = plan_text(
        empdept_db,
        "SELECT workdept, AVG(salary) FROM employee GROUP BY workdept",
    )
    assert "GROUPBY [" in text
    assert "AVG(" in text


def test_semijoin_antijoin_scalar(empdept_db):
    text = plan_text(
        empdept_db,
        "SELECT empname FROM employee e WHERE workdept IN "
        "(SELECT deptno FROM department) "
        "AND NOT EXISTS (SELECT 1 FROM department d2 WHERE d2.mgrno = e.empno) "
        "AND salary > (SELECT AVG(salary) FROM employee e3)",
    )
    assert "SEMIJOIN" in text
    assert "ANTIJOIN" in text
    assert "SCALAR" in text


def test_setop_rendering(empdept_db):
    text = plan_text(
        empdept_db,
        "SELECT empno FROM employee EXCEPT SELECT mgrno FROM department",
    )
    assert "EXCEPT DISTINCT" in text


def test_outerjoin_rendering(empdept_db):
    text = plan_text(
        empdept_db,
        "SELECT e.empname, d.deptname FROM employee e "
        "LEFT JOIN department d ON d.deptno = e.workdept",
    )
    assert "LEFT OUTER JOIN" in text


def test_sort_and_limit_rendering(empdept_db):
    text = plan_text(
        empdept_db,
        "SELECT empno FROM employee ORDER BY empno DESC LIMIT 3",
    )
    assert "SORT #1 DESC" in text
    assert "LIMIT 3" in text


def test_fixpoint_rendering(empdept_db):
    empdept_db.create_table("edge", ["src", "dst"], rows=[(1, 2)])
    text = plan_text(
        empdept_db,
        "WITH RECURSIVE r (n) AS (SELECT dst FROM edge UNION "
        "SELECT e.dst FROM r x, edge e WHERE e.src = x.n) SELECT n FROM r",
    )
    assert "FIXPOINT" in text


def test_magic_quantifier_labelled(empdept_conn):
    text = empdept_conn.explain(
        "SELECT d.deptname, s.avgsalary FROM department d, avgMgrSal s "
        "WHERE d.deptno = s.workdept AND d.deptname = 'Planning'",
        strategy="emst",
    )
    assert "physical plan:" in text
    assert "MATERIALIZE" in text


def test_row_estimates_present(empdept_db):
    text = plan_text(empdept_db, "SELECT empno FROM employee")
    assert "~7 rows" in text
