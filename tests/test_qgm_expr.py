"""Unit tests for the QGM expression module: walkers, rewriters,
structural equality."""

import pytest

from repro.qgm import expr as qe
from repro.qgm.model import Box, BoxKind, OutputColumn, Quantifier, QuantifierType


def make_quantifier(name="t", columns=("a", "b")):
    base = Box(
        kind=BoxKind.BASE,
        name=name.upper(),
        columns=[OutputColumn(name=c) for c in columns],
    )
    return Quantifier(name=name, qtype=QuantifierType.FOREACH, input_box=base)


@pytest.fixture
def t():
    return make_quantifier("t")


@pytest.fixture
def s():
    return make_quantifier("s")


def test_walk_visits_all_nodes(t):
    expr = qe.QBinary(
        op="AND",
        left=qe.QBinary(op="=", left=t.ref("a"), right=qe.QLiteral(1)),
        right=qe.QIsNull(operand=t.ref("b")),
    )
    nodes = list(qe.walk(expr))
    assert len(nodes) == 6


def test_column_refs_and_referenced_quantifiers(t, s):
    expr = qe.QBinary(op="=", left=t.ref("a"), right=s.ref("a"))
    refs = qe.column_refs(expr)
    assert len(refs) == 2
    assert qe.referenced_quantifiers(expr) == {t, s}


def test_substitute_refs_targets_only_matches(t, s):
    expr = qe.QBinary(op="+", left=t.ref("a"), right=s.ref("a"))

    def mapping(ref):
        if ref.quantifier is t:
            return qe.QLiteral(42)
        return None

    out = qe.substitute_refs(expr, mapping)
    assert isinstance(out.left, qe.QLiteral)
    assert isinstance(out.right, qe.QColRef)
    assert out.right.quantifier is s
    # The original expression is untouched.
    assert isinstance(expr.left, qe.QColRef)


def test_remap_quantifier(t, s):
    expr = qe.QFunc(name="ABS", args=[t.ref("a")])
    out = qe.remap_quantifier(expr, {t: s})
    assert out.args[0].quantifier is s


def test_conjuncts_flatten_nested_ands(t):
    a = qe.QBinary(op="=", left=t.ref("a"), right=qe.QLiteral(1))
    b = qe.QBinary(op="=", left=t.ref("b"), right=qe.QLiteral(2))
    c = qe.QIsNull(operand=t.ref("a"))
    nested = qe.QBinary(op="AND", left=qe.QBinary(op="AND", left=a, right=b), right=c)
    assert qe.conjuncts(nested) == [a, b, c]


def test_conjuncts_leaves_or_alone(t):
    disjunction = qe.QBinary(
        op="OR",
        left=qe.QLiteral(True),
        right=qe.QLiteral(False),
    )
    assert qe.conjuncts(disjunction) == [disjunction]


def test_is_simple_equality_and_sides(t, s):
    eq = qe.QBinary(op="=", left=t.ref("a"), right=s.ref("b"))
    assert qe.is_simple_equality(eq)
    left, right = qe.equality_sides(eq)
    assert left.quantifier is t and right.quantifier is s
    not_eq = qe.QBinary(op="<", left=t.ref("a"), right=s.ref("b"))
    assert not qe.is_simple_equality(not_eq)
    assert qe.equality_sides(not_eq) is None


def test_is_comparison(t):
    assert qe.is_comparison(qe.QBinary(op="<=", left=t.ref("a"), right=qe.QLiteral(1)))
    assert not qe.is_comparison(qe.QBinary(op="+", left=t.ref("a"), right=qe.QLiteral(1)))


def test_expr_equal_structural(t, s):
    first = qe.QBinary(op="=", left=t.ref("a"), right=qe.QLiteral(1))
    second = qe.QBinary(op="=", left=t.ref("a"), right=qe.QLiteral(1))
    assert qe.expr_equal(first, second)
    different_quantifier = qe.QBinary(op="=", left=s.ref("a"), right=qe.QLiteral(1))
    assert not qe.expr_equal(first, different_quantifier)


def test_expr_equal_distinguishes_literal_types(t):
    assert not qe.expr_equal(qe.QLiteral(1), qe.QLiteral(1.0))
    assert not qe.expr_equal(qe.QLiteral(True), qe.QLiteral(1))
    assert qe.expr_equal(qe.QLiteral("x"), qe.QLiteral("x"))


def test_expr_equal_aggregates(t):
    first = qe.QAggregate(func="SUM", arg=t.ref("a"))
    second = qe.QAggregate(func="SUM", arg=t.ref("a"))
    assert qe.expr_equal(first, second)
    assert not qe.expr_equal(first, qe.QAggregate(func="SUM", arg=t.ref("a"), distinct=True))
    assert not qe.expr_equal(first, qe.QAggregate(func="AVG", arg=t.ref("a")))
    star = qe.QAggregate(func="COUNT", arg=None)
    assert qe.expr_equal(star, qe.QAggregate(func="COUNT", arg=None))
    assert not qe.expr_equal(star, qe.QAggregate(func="COUNT", arg=t.ref("a")))


def test_expr_equal_case(t):
    def make():
        return qe.QCase(
            branches=[(qe.QIsNull(operand=t.ref("a")), qe.QLiteral(0))],
            default=qe.QLiteral(1),
        )

    assert qe.expr_equal(make(), make())
    without_default = qe.QCase(
        branches=[(qe.QIsNull(operand=t.ref("a")), qe.QLiteral(0))]
    )
    assert not qe.expr_equal(make(), without_default)


def test_map_expr_rebuilds_every_node_type(t):
    expr = qe.QCase(
        branches=[
            (
                qe.QLike(operand=t.ref("a"), pattern=qe.QLiteral("x%")),
                qe.QFunc(name="UPPER", args=[t.ref("b")]),
            )
        ],
        default=qe.QUnary(op="-", operand=qe.QLiteral(3)),
    )
    count = [0]

    def visit(node):
        count[0] += 1
        return node

    out = qe.map_expr(expr, visit)
    assert count[0] >= 6
    assert qe.expr_equal(out, expr)


def test_str_representations(t):
    assert str(t.ref("a")) == "t.a"
    assert "SUM" in str(qe.QAggregate(func="SUM", arg=t.ref("a")))
    assert "DISTINCT" in str(qe.QAggregate(func="COUNT", arg=t.ref("a"), distinct=True))
    assert "NULL" in str(qe.QLiteral(None))
    assert "IS NOT NULL" in str(qe.QIsNull(operand=t.ref("a"), negated=True))
    assert "LIKE" in str(qe.QLike(operand=t.ref("a"), pattern=qe.QLiteral("%")))
    assert "CASE" in str(qe.QCase(branches=[(qe.QLiteral(True), qe.QLiteral(1))]))
