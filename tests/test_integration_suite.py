"""Integration battery: complex, realistic decision-support queries run
under every strategy, all required to agree. This is the broad correctness
net over the whole pipeline (parser → QGM → rewrite → EMST → plan →
execute)."""

import pytest

from repro import Connection
from repro.workloads.decision_support import build_decision_support_database
from repro.workloads.empdept import PAPER_VIEWS_SQL, build_empdept_database

from tests.helpers import run_all_strategies


@pytest.fixture(scope="module")
def ds_conn():
    db = build_decision_support_database(scale=1.0, seed=77)
    conn = Connection(db)
    conn.run_script(
        """
        CREATE VIEW custRev (custkey, rev, norders) AS
          SELECT o.custkey, SUM(o.totalprice), COUNT(*)
          FROM orders o GROUP BY o.custkey;
        CREATE VIEW bigParts (partkey, pname, brand) AS
          SELECT partkey, pname, brand FROM part WHERE size > 25;
        CREATE VIEW orderValue (orderkey, value) AS
          SELECT l.orderkey, SUM(l.extendedprice * (1 - l.discount))
          FROM lineitem l GROUP BY l.orderkey;
        """
    )
    return conn


@pytest.fixture(scope="module")
def emp_conn():
    db = build_empdept_database(
        n_departments=60, employees_per_department=7, seed=78
    )
    conn = Connection(db)
    conn.run_script(PAPER_VIEWS_SQL)
    return conn


DS_QUERIES = [
    # restricted aggregate view
    "SELECT c.cname, v.rev FROM customer c, custRev v "
    "WHERE v.custkey = c.custkey AND c.mktsegment = 'MACHINERY'",
    # two views joined
    "SELECT o.orderkey, ov.value, cr.norders "
    "FROM orders o, orderValue ov, custRev cr "
    "WHERE ov.orderkey = o.orderkey AND cr.custkey = o.custkey "
    "AND o.omonth = 6",
    # view + IN subquery
    "SELECT v.custkey, v.rev FROM custRev v WHERE v.custkey IN "
    "(SELECT c.custkey FROM customer c WHERE c.nationkey = 3)",
    # correlated EXISTS over orders
    "SELECT c.cname FROM customer c WHERE EXISTS "
    "(SELECT o.orderkey FROM orders o WHERE o.custkey = c.custkey "
    " AND o.totalprice > 250000)",
    # NOT EXISTS: customers without orders
    "SELECT c.custkey FROM customer c WHERE NOT EXISTS "
    "(SELECT o.orderkey FROM orders o WHERE o.custkey = c.custkey)",
    # scalar correlated aggregate
    "SELECT o.orderkey FROM orders o WHERE o.totalprice > "
    "(SELECT AVG(o2.totalprice) FROM orders o2 WHERE o2.custkey = o.custkey) * 1.5",
    # grouped over a join with HAVING
    "SELECT c.nationkey, COUNT(*) AS n, SUM(o.totalprice) AS total "
    "FROM customer c, orders o WHERE o.custkey = c.custkey "
    "GROUP BY c.nationkey HAVING COUNT(*) > 20",
    # set operation between views
    "SELECT custkey FROM custRev WHERE rev > 500000 "
    "EXCEPT SELECT custkey FROM customer WHERE acctbal < 0",
    # left join with aggregation above
    "SELECT c.custkey, COUNT(o.orderkey) AS n FROM customer c "
    "LEFT JOIN orders o ON o.custkey = c.custkey "
    "GROUP BY c.custkey HAVING COUNT(o.orderkey) = 0",
    # derived table with distinct + join
    "SELECT d.brand, COUNT(*) AS n FROM "
    "(SELECT DISTINCT l.partkey FROM lineitem l WHERE l.quantity > 45) AS hot, "
    "part d WHERE d.partkey = hot.partkey GROUP BY d.brand",
    # BETWEEN / LIKE / IS NULL mix
    "SELECT p.pname FROM part p WHERE p.size BETWEEN 10 AND 12 "
    "AND p.pname LIKE 'Part%' AND p.brand IS NOT NULL",
    # quantified comparison
    "SELECT p.partkey FROM part p WHERE p.size >= ALL "
    "(SELECT p2.size FROM part p2 WHERE p2.brand = p.brand)",
    # nested: view over view restricted through two levels
    "SELECT n.nname, x.total FROM nation n, "
    "(SELECT c.nationkey AS nk, SUM(v.rev) AS total FROM customer c, custRev v "
    " WHERE v.custkey = c.custkey GROUP BY c.nationkey) AS x "
    "WHERE x.nk = n.nationkey AND n.regionkey = 1",
    # CASE expression + ordering
    "SELECT o.orderkey, CASE WHEN o.totalprice > 150000 THEN 'big' "
    "ELSE 'small' END AS bucket FROM orders o WHERE o.omonth = 1 "
    "ORDER BY bucket, orderkey LIMIT 20",
    # IN over a union
    "SELECT c.cname FROM customer c WHERE c.custkey IN "
    "(SELECT custkey FROM orders WHERE omonth = 2 "
    " UNION SELECT custkey FROM orders WHERE omonth = 3)",
]


@pytest.mark.parametrize("index", range(len(DS_QUERIES)))
def test_decision_support_query(ds_conn, index):
    run_all_strategies(ds_conn, DS_QUERIES[index])


EMP_QUERIES = [
    # the paper's query D
    "SELECT d.deptname, s.workdept, s.avgsalary FROM department d, avgMgrSal s "
    "WHERE d.deptno = s.workdept AND d.deptname = 'Planning'",
    # division-wide manager salaries
    "SELECT d.division, AVG(s.avgsalary) FROM department d, avgMgrSal s "
    "WHERE d.deptno = s.workdept GROUP BY d.division",
    # employees of well-paid-manager departments
    "SELECT e.empname FROM employee e WHERE e.workdept IN "
    "(SELECT workdept FROM avgMgrSal WHERE avgsalary > 120000)",
    # self-join through the view
    "SELECT a.workdept, b.workdept FROM avgMgrSal a, avgMgrSal b "
    "WHERE a.avgsalary = b.avgsalary AND a.workdept < b.workdept",
    # triple-nested restriction
    "SELECT d.deptname FROM department d WHERE d.deptno IN "
    "(SELECT e.workdept FROM employee e WHERE e.salary > "
    " (SELECT AVG(e2.salary) FROM employee e2 WHERE e2.workdept = e.workdept))",
    # managers earning above the division's average manager salary
    "SELECT m.empname FROM mgrSal m, department d WHERE m.workdept = d.deptno "
    "AND m.salary > (SELECT AVG(s.avgsalary) FROM avgMgrSal s, department d2 "
    "WHERE s.workdept = d2.deptno AND d2.division = d.division)",
]


@pytest.mark.parametrize("index", range(len(EMP_QUERIES)))
def test_empdept_query(emp_conn, index):
    run_all_strategies(emp_conn, EMP_QUERIES[index])
