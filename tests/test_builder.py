"""SQL → QGM builder tests (structure of the produced graphs)."""

import pytest

from repro.errors import BindError, NotSupportedError
from repro.sql import parse_statement
from repro.qgm import (
    BoxKind,
    DistinctMode,
    QuantifierType,
    build_query_graph,
    validate_graph,
)


def build(sql, db):
    graph = build_query_graph(parse_statement(sql), db.catalog)
    validate_graph(graph)
    return graph


def test_simple_select_box(empdept_db):
    graph = build("SELECT empno, salary FROM employee WHERE salary > 100", empdept_db)
    top = graph.top_box
    assert top.kind == BoxKind.SELECT
    assert top.column_names == ["empno", "salary"]
    assert len(top.predicates) == 1
    assert top.quantifiers[0].input_box.kind == BoxKind.BASE


def test_base_boxes_are_shared(empdept_db):
    graph = build(
        "SELECT e.empno FROM employee e, employee e2 WHERE e.empno = e2.empno",
        empdept_db,
    )
    targets = [q.input_box for q in graph.top_box.quantifiers]
    assert targets[0] is targets[1]


def test_groupby_triplet_structure(empdept_db):
    graph = build(
        "SELECT workdept, AVG(salary) FROM employee GROUP BY workdept "
        "HAVING COUNT(*) > 1",
        empdept_db,
    )
    having_box = graph.top_box
    assert having_box.kind == BoxKind.SELECT
    assert having_box.predicates  # the HAVING condition
    groupby = having_box.quantifiers[0].input_box
    assert groupby.kind == BoxKind.GROUPBY
    assert len(groupby.group_keys) == 1
    t1 = groupby.quantifiers[0].input_box
    assert t1.kind == BoxKind.SELECT


def test_scalar_aggregate_without_group_by(empdept_db):
    graph = build("SELECT AVG(salary) FROM employee", empdept_db)
    groupby = graph.top_box.quantifiers[0].input_box
    assert groupby.kind == BoxKind.GROUPBY
    assert groupby.group_keys == []


def test_distinct_sets_enforce(empdept_db):
    graph = build("SELECT DISTINCT workdept FROM employee", empdept_db)
    assert graph.top_box.distinct == DistinctMode.ENFORCE


def test_union_box_and_all_flag(empdept_db):
    graph = build(
        "SELECT empno FROM employee UNION ALL SELECT mgrno FROM department",
        empdept_db,
    )
    assert graph.top_box.kind == BoxKind.UNION
    assert graph.top_box.distinct == DistinctMode.PRESERVE
    graph = build(
        "SELECT empno FROM employee UNION SELECT mgrno FROM department",
        empdept_db,
    )
    assert graph.top_box.distinct == DistinctMode.ENFORCE


def test_except_and_intersect(empdept_db):
    graph = build(
        "SELECT empno FROM employee EXCEPT SELECT mgrno FROM department",
        empdept_db,
    )
    assert graph.top_box.kind == BoxKind.EXCEPT
    graph = build(
        "SELECT empno FROM employee INTERSECT SELECT mgrno FROM department",
        empdept_db,
    )
    assert graph.top_box.kind == BoxKind.INTERSECT


def test_set_op_arity_mismatch_rejected(empdept_db):
    with pytest.raises(BindError):
        build(
            "SELECT empno, salary FROM employee UNION SELECT mgrno FROM department",
            empdept_db,
        )


def test_in_subquery_creates_existential_quantifier(empdept_db):
    graph = build(
        "SELECT empname FROM employee WHERE workdept IN "
        "(SELECT deptno FROM department)",
        empdept_db,
    )
    subs = graph.top_box.subquery_quantifiers()
    assert len(subs) == 1
    assert subs[0].qtype == QuantifierType.EXISTENTIAL


def test_not_in_creates_null_aware_anti(empdept_db):
    graph = build(
        "SELECT empname FROM employee WHERE workdept NOT IN "
        "(SELECT deptno FROM department)",
        empdept_db,
    )
    sub = graph.top_box.subquery_quantifiers()[0]
    assert sub.qtype == QuantifierType.ANTI
    assert sub.null_aware


def test_not_exists_creates_plain_anti(empdept_db):
    graph = build(
        "SELECT empname FROM employee e WHERE NOT EXISTS "
        "(SELECT deptno FROM department d WHERE d.mgrno = e.empno)",
        empdept_db,
    )
    sub = graph.top_box.subquery_quantifiers()[0]
    assert sub.qtype == QuantifierType.ANTI
    assert not sub.null_aware


def test_correlated_subquery_references_outer_quantifier(empdept_db):
    graph = build(
        "SELECT empname FROM employee e WHERE EXISTS "
        "(SELECT deptno FROM department d WHERE d.mgrno = e.empno)",
        empdept_db,
    )
    sub_box = graph.top_box.subquery_quantifiers()[0].input_box
    correlated = sub_box.correlated_quantifiers()
    assert len(correlated) == 1
    assert correlated[0] in graph.top_box.quantifiers


def test_scalar_subquery_quantifier(empdept_db):
    graph = build(
        "SELECT empname FROM employee e WHERE salary > "
        "(SELECT AVG(salary) FROM employee e2 WHERE e2.workdept = e.workdept)",
        empdept_db,
    )
    sub = graph.top_box.subquery_quantifiers()[0]
    assert sub.qtype == QuantifierType.SCALAR


def test_view_expansion_shares_box(empdept_conn):
    db = empdept_conn.database
    graph = build(
        "SELECT a.workdept FROM avgMgrSal a, avgMgrSal b "
        "WHERE a.workdept = b.workdept",
        db,
    )
    targets = [q.input_box for q in graph.top_box.foreach_quantifiers()]
    assert targets[0] is targets[1]  # common subexpression


def test_view_column_rename(empdept_conn):
    graph = build("SELECT workdept, avgsalary FROM avgMgrSal", empdept_conn.database)
    view_box = graph.top_box.quantifiers[0].input_box
    assert view_box.column_names == ["workdept", "avgsalary"]


def test_unknown_table_rejected(empdept_db):
    with pytest.raises(BindError):
        build("SELECT a FROM nonexistent", empdept_db)


def test_unknown_column_rejected(empdept_db):
    with pytest.raises(BindError):
        build("SELECT nonexistent FROM employee", empdept_db)


def test_ambiguous_column_rejected(empdept_db):
    with pytest.raises(BindError):
        build(
            "SELECT deptno FROM department d1, department d2",
            empdept_db,
        )


def test_duplicate_from_alias_rejected(empdept_db):
    with pytest.raises(BindError):
        build("SELECT e.empno FROM employee e, department e", empdept_db)


def test_select_star_with_group_by_rejected(empdept_db):
    with pytest.raises(NotSupportedError):
        build("SELECT * FROM employee GROUP BY workdept", empdept_db)


def test_non_grouped_column_rejected(empdept_db):
    with pytest.raises(BindError):
        build(
            "SELECT empname, AVG(salary) FROM employee GROUP BY workdept",
            empdept_db,
        )


def test_having_without_group_rejected(empdept_db):
    with pytest.raises(NotSupportedError):
        build("SELECT empno FROM employee HAVING empno > 1", empdept_db)


def test_recursive_cte_creates_cycle(empdept_db):
    empdept_db.create_table(
        "edge", ["src", "dst"], rows=[(1, 2), (2, 3)]
    )
    graph = build(
        "WITH RECURSIVE reach (n) AS ("
        "  SELECT dst FROM edge WHERE src = 1"
        "  UNION SELECT e.dst FROM reach r, edge e WHERE e.src = r.n) "
        "SELECT n FROM reach",
        empdept_db,
    )
    from repro.qgm.stratum import is_recursive

    assert is_recursive(graph)


def test_order_by_position_and_name(empdept_db):
    graph = build(
        "SELECT empno, salary FROM employee ORDER BY salary DESC, 1",
        empdept_db,
    )
    assert graph.order_by == [(1, False), (0, True)]


def test_order_by_bad_position_rejected(empdept_db):
    with pytest.raises(BindError):
        build("SELECT empno FROM employee ORDER BY 5", empdept_db)


def test_star_expansion_order(empdept_db):
    graph = build("SELECT * FROM department", empdept_db)
    assert graph.top_box.column_names == ["deptno", "deptname", "mgrno"]


def test_duplicate_output_names_uniquified(empdept_db):
    graph = build(
        "SELECT e.empno, d.mgrno AS empno FROM employee e, department d",
        empdept_db,
    )
    names = graph.top_box.column_names
    assert len(set(n.lower() for n in names)) == 2


def test_derived_table(empdept_db):
    graph = build(
        "SELECT x.n FROM (SELECT empno AS n FROM employee) AS x WHERE x.n > 2",
        empdept_db,
    )
    child = graph.top_box.quantifiers[0].input_box
    assert child.kind == BoxKind.SELECT
    assert child.column_names == ["n"]
