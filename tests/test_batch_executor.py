"""Unit tests for the columnar batch executor: the Batch representation,
the vectorized expression compiler, stats counters, and the executor
switch with its batch→tuple fallback in the API and the server."""

import pytest

from repro import Connection, Database
from repro.engine import BatchEvaluator, Evaluator
from repro.engine.columnar import Batch, compile_vector
from repro.errors import ExecutionError, ReproError
from repro.qgm import expr as qe
from repro.resilience import ResiliencePolicy
from repro.server import QueryServer, ServerConfig
from repro.sql import parse_statement

from tests.helpers import assert_same_rows


def _db():
    db = Database()
    db.create_table(
        "emp",
        ["eno", "name", "dno", "sal"],
        primary_key=["eno"],
        rows=[
            (1, "ann", 10, 100),
            (2, "bob", 10, 200),
            (3, "cat", 20, 300),
            (4, "dan", None, 50),
        ],
    )
    db.create_table(
        "dept", ["dno", "dname"], primary_key=["dno"],
        rows=[(10, "X"), (20, "Y"), (30, "Z")],
    )
    return db


def _both(db, sql, strategy="emst"):
    conn = Connection(db)
    query = parse_statement(sql)
    tuple_rows = conn.execute_query(query, strategy=strategy, executor="tuple")
    batch_rows = conn.execute_query(query, strategy=strategy, executor="batch")
    assert_same_rows(tuple_rows.rows, batch_rows.rows)
    return batch_rows


# -- Batch representation ------------------------------------------------------


class _Q:
    """Stand-in quantifier: batches key slots by object identity only."""

    def __init__(self, name):
        self.name = name


def test_batch_column_extraction_and_caching():
    q = _Q("q")
    batch = Batch(3, slots={q: [(1, "a"), (2, "b"), (3, "c")]})
    column = batch.column(q, 0)
    assert column == [1, 2, 3]
    assert batch.column(q, 0) is column  # cached


def test_batch_constants_broadcast():
    q, outer = _Q("q"), _Q("outer")
    batch = Batch(2, slots={q: [(1,), (2,)]}, constants={outer: (7, 8)})
    assert batch.column(outer, 1) == [8, 8]


def test_batch_unbound_quantifier_raises():
    batch = Batch(1)
    with pytest.raises(ExecutionError):
        batch.column(_Q("nope"), 0)


def test_batch_take_and_expand():
    q, r = _Q("q"), _Q("r")
    batch = Batch(3, slots={q: [(1,), (2,), (3,)]})
    taken = batch.take([0, 2])
    assert taken.length == 2
    assert taken.column(q, 0) == [1, 3]
    expanded = taken.expand([0, 0, 1], r, [(10,), (11,), (12,)])
    assert expanded.length == 3
    assert expanded.column(q, 0) == [1, 1, 3]
    assert expanded.column(r, 0) == [10, 11, 12]


def test_batch_row_envs():
    q, outer = _Q("q"), _Q("outer")
    batch = Batch(2, slots={q: [(1,), (2,)]}, constants={outer: (9,)})
    envs = batch.row_envs()
    assert envs[0][q] == (1,) and envs[1][q] == (2,)
    assert envs[0][outer] == (9,)


def test_batch_zero_copy_column_source():
    db = _db()
    table = db.table("emp")
    q = _Q("scan")
    batch = Batch(
        len(table),
        slots={q: table.rows},
        column_sources={q: table.column_data},
    )
    assert batch.column(q, 3) is table.column_data("sal")


# -- vectorized expression compiler -------------------------------------------


def test_compile_vector_three_valued_logic():
    lit = qe.QLiteral
    true, false, null = lit(True), lit(False), lit(None)
    batch = Batch(1)
    assert compile_vector(qe.QBinary("AND", true, null))(batch) == [None]
    assert compile_vector(qe.QBinary("AND", false, null))(batch) == [False]
    assert compile_vector(qe.QBinary("OR", true, null))(batch) == [True]
    assert compile_vector(qe.QBinary("OR", false, null))(batch) == [None]
    assert compile_vector(qe.QBinary("=", lit(1), null))(batch) == [None]
    assert compile_vector(qe.QBinary("+", null, lit(2)))(batch) == [None]


def test_compile_vector_mixed_types_raise_execution_error():
    batch = Batch(1)
    with pytest.raises(ExecutionError):
        compile_vector(
            qe.QBinary("<", qe.QLiteral(1), qe.QLiteral("x"))
        )(batch)


def test_case_branches_stay_lazy_per_row():
    # A vectorized CASE must not evaluate untaken branches: row (4, dan)
    # divides by a zero guard the WHEN clause excludes.
    db = Database()
    db.create_table("t", ["a", "b"], rows=[(10, 2), (7, 0)])
    _both(
        db,
        "SELECT t.a, CASE WHEN t.b <> 0 THEN t.a / t.b ELSE -1 END FROM t",
    )


def test_division_by_zero_raises_in_both_executors():
    db = Database()
    db.create_table("t", ["a", "b"], rows=[(1, 0)])
    conn = Connection(db)
    query = parse_statement("SELECT t.a / t.b FROM t")
    for executor in ("tuple", "batch"):
        with pytest.raises(ExecutionError):
            conn.execute_query(query, strategy="norewrite", executor=executor)


# -- stats ---------------------------------------------------------------------


def test_batch_counters_surface_only_when_batch_ran():
    db = _db()
    conn = Connection(db)
    sql = "SELECT e.name FROM emp e, dept d WHERE e.dno = d.dno"
    query = parse_statement(sql)
    tuple_stats = conn.execute_query(query, executor="tuple").stats
    assert "batches" not in tuple_stats
    batch_stats = conn.execute_query(query, executor="batch").stats
    assert batch_stats["batches"] > 0
    assert batch_stats["batch_rows"] >= batch_stats["batches"] > 0
    assert batch_stats["batch_probes"] > 0
    assert batch_stats["probe_fanout"] > 0
    assert "rows_per_batch" in batch_stats


# -- executor switch -----------------------------------------------------------


def test_connection_rejects_unknown_executor():
    with pytest.raises(ReproError):
        Connection(_db(), executor="gpu")
    conn = Connection(_db())
    with pytest.raises(ReproError):
        conn.execute_query(parse_statement("SELECT e.eno FROM emp e"),
                           executor="gpu")


def test_prepared_query_runs_batch():
    conn = Connection(_db(), executor="batch")
    prepared = conn.prepare_statement(
        "SELECT e.name, d.dname FROM emp e, dept d WHERE e.dno = d.dno"
    )
    assert prepared.executor == "batch"
    result, stats = prepared.execute()
    assert stats.batches > 0
    oracle = conn.execute(
        "SELECT e.name, d.dname FROM emp e, dept d WHERE e.dno = d.dno",
        executor="tuple",
    )
    assert_same_rows(result.rows, oracle.rows)


def test_explain_mentions_executor():
    conn = Connection(_db(), executor="batch")
    text = conn.explain("SELECT e.eno FROM emp e")
    assert "executor: batch" in text
    assert "executor: tuple" in Connection(_db()).explain(
        "SELECT e.eno FROM emp e"
    )


def test_outcome_records_executor():
    conn = Connection(_db())
    outcome = conn.execute_query(
        parse_statement("SELECT e.eno FROM emp e"), executor="batch"
    )
    assert outcome.executor == "batch"


# -- batch -> tuple fallback ---------------------------------------------------


def test_resilience_falls_back_batch_to_tuple(monkeypatch):
    def boom(self):
        raise RuntimeError("vectorized paths exploded")

    monkeypatch.setattr(BatchEvaluator, "run", boom)
    conn = Connection(_db(), resilience=ResiliencePolicy(), executor="batch")
    outcome = conn.execute_query(
        parse_statement("SELECT e.name FROM emp e WHERE e.sal > 60")
    )
    report = outcome.resilience
    assert report.requested_executor == "batch"
    assert report.executed_executor == "tuple"
    assert report.executed == report.requested == "emst"
    assert report.degraded
    assert "executor degraded batch -> tuple" in report.describe()
    assert any("vectorized paths exploded" in err for _, err in report.attempts)
    assert sorted(outcome.rows) == [("ann",), ("bob",), ("cat",)]


def test_batch_error_without_resilience_propagates(monkeypatch):
    def boom(self):
        raise RuntimeError("vectorized paths exploded")

    monkeypatch.setattr(BatchEvaluator, "run", boom)
    conn = Connection(_db(), executor="batch")
    with pytest.raises(RuntimeError):
        conn.execute_query(parse_statement("SELECT e.eno FROM emp e"))


def test_server_executor_switch_and_fallback(monkeypatch):
    server = QueryServer(_db(), ServerConfig(default_executor="batch"))
    try:
        response = server.handle_query(
            "SELECT e.name FROM emp e WHERE e.sal > 150"
        )
        assert response["executor"] == "batch"
        assert sorted(map(tuple, response["rows"])) == [("bob",), ("cat",)]

        def boom(self):
            raise RuntimeError("batch broke")

        monkeypatch.setattr(BatchEvaluator, "run", boom)
        fallback = server.handle_query(
            "SELECT e.name FROM emp e WHERE e.sal > 250"
        )
        assert fallback["executor"] == "tuple"
        assert sorted(map(tuple, fallback["rows"])) == [("cat",)]
        stats = server.handle_stats()
        assert stats["counters"]["executor_fallbacks"] == 1
    finally:
        server.shutdown()


def test_server_rejects_unknown_executor():
    server = QueryServer(_db(), ServerConfig())
    try:
        with pytest.raises(ReproError):
            server.handle_query("SELECT e.eno FROM emp e", executor="gpu")
    finally:
        server.shutdown()


# -- engine-level differential spot checks -------------------------------------


def test_batch_evaluator_matches_tuple_on_joins_and_aggregates():
    db = _db()
    for sql in [
        "SELECT e.name, d.dname FROM emp e, dept d WHERE e.dno = d.dno",
        "SELECT d.dname, COUNT(*), SUM(e.sal), MIN(e.sal), MAX(e.sal), "
        "AVG(e.sal) FROM emp e, dept d WHERE e.dno = d.dno GROUP BY d.dname",
        "SELECT COUNT(*), COUNT(e.dno), SUM(e.sal) FROM emp e",
        "SELECT e.name FROM emp e WHERE e.dno IS NULL",
        "SELECT e.name FROM emp e, dept d",  # cross product
        "SELECT UPPER(e.name) || '-' || e.eno FROM emp e WHERE e.sal % 2 = 0",
    ]:
        _both(db, sql, strategy="original")


def test_batch_evaluator_groupby_empty_input_scalar_aggregate():
    db = Database()
    db.create_table("t", ["a"], rows=[])
    _both(db, "SELECT COUNT(*), SUM(t.a), MIN(t.a) FROM t", strategy="norewrite")


def test_batch_fixpoint_matches_tuple():
    db = Database()
    edges = [(i, i + 1) for i in range(30)] + [(5, 2), (12, 3), (29, 0)]
    db.create_table("edge", ["src", "dst"], rows=edges)
    _both(
        db,
        "WITH RECURSIVE reach (n) AS ("
        "  SELECT e.dst FROM edge e WHERE e.src = 0"
        "  UNION"
        "  SELECT e.dst FROM edge e, reach r WHERE e.src = r.n"
        ") SELECT r.n FROM reach r",
    )
