"""QGM infrastructure: strata, keys, cloning, validation, rendering."""

import pytest

from repro.errors import QgmError
from repro.sql import parse_statement
from repro.qgm import (
    BoxKind,
    DistinctMode,
    build_query_graph,
    graph_summary,
    render_dot,
    render_text,
    validate_graph,
)
from repro.qgm.clone import clone_box
from repro.qgm.keys import box_keys, is_duplicate_free
from repro.qgm.stratum import assign_strata, is_recursive, reduced_dependency_graph


def build(sql, db):
    return build_query_graph(parse_statement(sql), db.catalog)


# -- strata ---------------------------------------------------------------------


def test_base_tables_stratum_zero(empdept_db):
    graph = build("SELECT empno FROM employee", empdept_db)
    strata = assign_strata(graph)
    base = graph.top_box.quantifiers[0].input_box
    assert strata[id(base)] == 0
    assert strata[id(graph.top_box)] == 1


def test_view_chain_strata(empdept_conn):
    graph = build(
        "SELECT workdept FROM avgMgrSal",
        empdept_conn.database,
    )
    strata = assign_strata(graph)
    values = sorted(set(strata.values()))
    assert values[0] == 0
    assert len(values) >= 4  # base, mgrSal, T1, groupby, having, top


def test_recursive_component_shares_stratum(empdept_db):
    empdept_db.create_table("edge", ["src", "dst"], rows=[(1, 2)])
    graph = build(
        "WITH RECURSIVE r (n) AS ("
        "SELECT dst FROM edge UNION SELECT e.dst FROM r x, edge e WHERE e.src = x.n) "
        "SELECT n FROM r",
        empdept_db,
    )
    assert is_recursive(graph)
    strata = assign_strata(graph)
    components, component_of = reduced_dependency_graph(graph)
    cyclic = [c for c in components if len(c) > 1]
    assert cyclic
    cycle_strata = {strata[id(b)] for b in cyclic[0]}
    assert len(cycle_strata) == 1


def test_nonrecursive_graph_reported(empdept_db):
    graph = build("SELECT empno FROM employee", empdept_db)
    assert not is_recursive(graph)


# -- keys / duplicate freeness -----------------------------------------------------


def test_base_table_key_derived(empdept_db):
    graph = build("SELECT deptno, deptname FROM department", empdept_db)
    base = graph.top_box.quantifiers[0].input_box
    assert frozenset({"deptno"}) in box_keys(base)


def test_select_box_key_through_projection(empdept_db):
    graph = build("SELECT deptno, deptname FROM department", empdept_db)
    assert frozenset({"deptno"}) in box_keys(graph.top_box)
    assert is_duplicate_free(graph.top_box)


def test_projection_without_key_is_not_duplicate_free(empdept_db):
    graph = build("SELECT deptname FROM department", empdept_db)
    assert not is_duplicate_free(graph.top_box)


def test_distinct_box_is_duplicate_free(empdept_db):
    graph = build("SELECT DISTINCT workdept FROM employee", empdept_db)
    assert is_duplicate_free(graph.top_box)
    assert not is_duplicate_free(graph.top_box, ignore_enforce=True)


def test_groupby_keys(empdept_db):
    graph = build(
        "SELECT workdept, COUNT(*) AS n FROM employee GROUP BY workdept",
        empdept_db,
    )
    groupby = graph.top_box.quantifiers[0].input_box
    assert frozenset({"gk0"}) in box_keys(groupby)


def test_join_on_full_key_preserves_other_side_key(empdept_db):
    # employee joined to department on department's primary key: empno stays
    # a key of the join.
    graph = build(
        "SELECT e.empno, d.deptno FROM employee e, department d "
        "WHERE d.deptno = e.workdept",
        empdept_db,
    )
    keys = box_keys(graph.top_box)
    assert frozenset({"empno"}) in keys


def test_join_without_key_equation_has_composite_key(empdept_db):
    graph = build(
        "SELECT e.empno, d.deptno FROM employee e, department d",
        empdept_db,
    )
    keys = box_keys(graph.top_box)
    assert frozenset({"empno", "deptno"}) in keys


# -- clone ------------------------------------------------------------------------


def test_clone_shares_uncorrelated_children(empdept_conn):
    graph = build("SELECT workdept FROM avgMgrSal", empdept_conn.database)
    view_box = graph.top_box.quantifiers[0].input_box
    copy, quantifier_map = clone_box(graph, view_box)
    assert copy is not view_box
    assert copy.name == view_box.name
    # The copy's quantifier points at the same (shared) child.
    assert copy.quantifiers[0].input_box is view_box.quantifiers[0].input_box
    assert view_box.quantifiers[0] in quantifier_map


def test_clone_remaps_expressions(empdept_db):
    graph = build(
        "SELECT empno FROM employee WHERE salary > 100", empdept_db
    )
    copy, _ = clone_box(graph, graph.top_box)
    from repro.qgm import expr as qe

    for predicate in copy.predicates:
        for ref in qe.column_refs(predicate):
            assert ref.quantifier in copy.quantifiers


def test_clone_deep_copies_correlated_subquery(empdept_db):
    graph = build(
        "SELECT empname FROM employee e WHERE EXISTS "
        "(SELECT deptno FROM department d WHERE d.mgrno = e.empno)",
        empdept_db,
    )
    copy, _ = clone_box(graph, graph.top_box)
    original_sub = graph.top_box.subquery_quantifiers()[0].input_box
    copied_sub = copy.subquery_quantifiers()[0].input_box
    assert copied_sub is not original_sub
    # The copied subquery correlates to the *copied* outer quantifier.
    correlated = copied_sub.correlated_quantifiers()
    assert correlated[0] in copy.quantifiers


def test_clone_recursive_box_clones_whole_cycle(empdept_db):
    empdept_db.create_table("edge", ["src", "dst"], rows=[(1, 2)])
    graph = build(
        "WITH RECURSIVE r (n) AS ("
        "SELECT dst FROM edge UNION SELECT e.dst FROM r x, edge e WHERE e.src = x.n) "
        "SELECT n FROM r",
        empdept_db,
    )
    union = graph.top_box.quantifiers[0].input_box
    assert union.kind == BoxKind.UNION
    copy, _ = clone_box(graph, union)
    # The copy's recursive branch must reference the copy, not the original.
    recursive_targets = [
        q.input_box
        for branch_q in copy.quantifiers
        for q in branch_q.input_box.quantifiers
    ]
    assert copy in recursive_targets
    assert union not in recursive_targets


# -- validation ---------------------------------------------------------------------


def test_validate_accepts_builder_output(empdept_conn):
    graph = build(
        "SELECT d.deptname, s.avgsalary FROM department d, avgMgrSal s "
        "WHERE d.deptno = s.workdept",
        empdept_conn.database,
    )
    assert validate_graph(graph)


def test_validate_rejects_dangling_reference(empdept_db):
    graph = build("SELECT empno FROM employee", empdept_db)
    from repro.qgm.model import Box, OutputColumn, Quantifier, QuantifierType
    from repro.qgm import expr as qe

    stray_base = Box(kind=BoxKind.BASE, name="STRAY", columns=[OutputColumn(name="x")])
    stray = Quantifier(name="zz", qtype=QuantifierType.FOREACH, input_box=stray_base)
    graph.top_box.predicates.append(
        qe.QBinary(op="=", left=stray.ref("x"), right=qe.QLiteral(1))
    )
    with pytest.raises(QgmError):
        validate_graph(graph)


def test_validate_rejects_bad_distinct_mode(empdept_db):
    graph = build("SELECT empno FROM employee", empdept_db)
    graph.top_box.distinct = "BOGUS"
    with pytest.raises(QgmError):
        validate_graph(graph)


def test_validate_rejects_groupby_with_predicates(empdept_db):
    graph = build(
        "SELECT workdept, COUNT(*) FROM employee GROUP BY workdept", empdept_db
    )
    groupby = graph.top_box.quantifiers[0].input_box
    from repro.qgm import expr as qe

    groupby.predicates.append(qe.QLiteral(True))
    with pytest.raises(QgmError):
        validate_graph(graph)


# -- rendering -------------------------------------------------------------------------


def test_render_text_mentions_boxes(empdept_conn):
    graph = build("SELECT workdept FROM avgMgrSal", empdept_conn.database)
    text = render_text(graph)
    assert "GROUPBY" in text
    assert "BASE EMPLOYEE" in text
    assert "(shared)" not in text or True


def test_render_dot_is_valid_dotish(empdept_db):
    graph = build("SELECT empno FROM employee", empdept_db)
    dot = render_dot(graph)
    assert dot.startswith("digraph qgm {")
    assert dot.rstrip().endswith("}")
    assert "EMPLOYEE" in dot


def test_graph_summary_counts(empdept_conn):
    graph = build(
        "SELECT d.deptname FROM department d, avgMgrSal s "
        "WHERE d.deptno = s.workdept",
        empdept_conn.database,
    )
    summary = graph_summary(graph)
    assert "boxes=" in summary
    assert "quantifiers=" in summary
