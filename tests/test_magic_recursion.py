"""Recursive magic: the transformation that motivated magic sets in the
first place — restricting a fixpoint to the bindings of interest."""

import pytest

from repro import Connection, Database
from repro.sql import parse_script
from repro.qgm import build_query_graph, validate_graph
from repro.qgm.model import BoxKind, MagicRole
from repro.optimizer.heuristic import optimize_with_heuristic
from repro.engine import Evaluator

from tests.helpers import canonical


def chain_db(n_chains=40, depth=6):
    """Disjoint chains: closure of everything is big, closure of one chain
    is small."""
    rows = []
    for chain in range(n_chains):
        base = chain * (depth + 1)
        for hop in range(depth):
            rows.append((base + hop, base + hop + 1))
    db = Database()
    db.create_table("edge", ["src", "dst"], rows=rows)
    return db


REACH = (
    "WITH RECURSIVE reach (n) AS ("
    "  SELECT dst FROM edge WHERE src = 0 "
    "  UNION "
    "  SELECT e.dst FROM reach r, edge e WHERE e.src = r.n) "
    "SELECT n FROM reach ORDER BY n"
)

CLOSURE_BOUND = (
    "WITH RECURSIVE path (src, dst) AS ("
    "  SELECT src, dst FROM edge "
    "  UNION "
    "  SELECT p.src, e.dst FROM path p, edge e WHERE e.src = p.dst) "
    "SELECT dst FROM path WHERE src = 0 ORDER BY dst"
)


def run(db, sql, strategy):
    graph = build_query_graph(parse_script(sql).queries[0], db.catalog)
    if strategy == "emst":
        result = optimize_with_heuristic(graph, db.catalog)
        graph = result.graph
        orders = result.join_orders
    else:
        from repro.optimizer import optimize_graph

        orders = optimize_graph(graph, db.catalog).join_orders
    validate_graph(graph)
    evaluator = Evaluator(graph, db, join_orders=orders)
    rows = evaluator.run().rows
    return rows, evaluator.stats


def test_bound_closure_magic_restricts_fixpoint():
    db = chain_db()
    original_rows, original_stats = run(db, CLOSURE_BOUND, "original")
    emst_rows, emst_stats = run(db, CLOSURE_BOUND, "emst")
    assert canonical(original_rows) == canonical(emst_rows)
    # The original computes the closure of every chain; magic only chain 0.
    assert emst_stats.rows_produced * 5 < original_stats.rows_produced


def test_magic_seed_becomes_constant_contribution():
    db = chain_db(n_chains=5, depth=3)
    graph = build_query_graph(
        parse_script(CLOSURE_BOUND).queries[0], db.catalog
    )
    result = optimize_with_heuristic(graph, db.catalog)
    assert result.used_emst
    magic_unions = [
        b
        for b in result.graph.boxes()
        if b.is_magic_box and b.kind == BoxKind.UNION
    ]
    assert magic_unions, "the recursive magic table must be a union"
    # One branch is the constant seed (a select box with no quantifiers).
    seeds = [
        branch.input_box
        for union in magic_unions
        for branch in union.quantifiers
        if not branch.input_box.quantifiers
    ]
    assert seeds


def test_recursive_magic_graph_is_cyclic_through_magic():
    db = chain_db(n_chains=5, depth=3)
    graph = build_query_graph(
        parse_script(CLOSURE_BOUND).queries[0], db.catalog
    )
    result = optimize_with_heuristic(graph, db.catalog)
    from repro.qgm.stratum import reduced_dependency_graph

    components, _ = reduced_dependency_graph(result.graph)
    cyclic = [c for c in components if len(c) > 1]
    assert cyclic  # recursion survives the transformation


def test_seeded_reach_all_strategies_agree():
    db = chain_db(n_chains=10, depth=4)
    conn = Connection(db)
    original = conn.explain_execute(REACH, strategy="original").rows
    emst = conn.explain_execute(REACH, strategy="emst").rows
    assert canonical(original) == canonical(emst)
    assert len(original) == 4


def test_same_generation_bound_query():
    db = Database()
    rows = []
    # A binary tree of depth 5: sg pairs explode without magic.
    for parent in range(1, 32):
        rows.append((2 * parent, parent))
        rows.append((2 * parent + 1, parent))
    db.create_table("par", ["child", "parent"], rows=rows)
    sql = (
        "WITH RECURSIVE sg (x, y) AS ("
        "  SELECT p1.child, p2.child FROM par p1, par p2 "
        "  WHERE p1.parent = p2.parent AND p1.child <> p2.child "
        "  UNION "
        "  SELECT c1.child, c2.child FROM par c1, sg s, par c2 "
        "  WHERE c1.parent = s.x AND s.y = c2.parent) "
        "SELECT y FROM sg WHERE x = 40 ORDER BY y"
    )
    conn = Connection(db)
    original = conn.explain_execute(sql, strategy="original")
    emst = conn.explain_execute(sql, strategy="emst")
    assert canonical(original.rows) == canonical(emst.rows)
    # 40's generation: all other nodes at depth 5 except itself.
    assert len(original.rows) == 31


def test_dead_boxes_do_not_pollute_magic():
    """Regression: after EMST clones a recursive cycle, the original
    (now unreachable) branches appear later in the same rewrite sweep;
    processing them used to add *unrestricted* contributions to the shared
    magic union, destroying the restriction."""
    from repro.qgm.model import MagicRole

    db = Database()
    db.create_table(
        "assign", ["dst", "src"], rows=[(i + 1, i) for i in range(30)]
    )
    db.create_table("newfact", ["var", "obj"], rows=[(0, 100), (15, 200)])
    sql = (
        "WITH RECURSIVE pt (var, obj) AS ("
        "  SELECT var, obj FROM newfact "
        "  UNION "
        "  SELECT a.dst, p.obj FROM assign a, pt p WHERE p.var = a.src) "
        "SELECT obj FROM pt WHERE var = 5 ORDER BY obj"
    )
    graph = build_query_graph(parse_script(sql).queries[0], db.catalog)
    result = optimize_with_heuristic(graph, db.catalog)
    assert result.used_emst
    # Every branch of every magic union must be restricted: no branch may
    # scan the full assign table without a magic quantifier or selection.
    for box in result.graph.boxes():
        if not box.is_magic_box or box.kind != BoxKind.UNION:
            continue
        for branch_q in box.quantifiers:
            branch = branch_q.input_box
            if not branch.quantifiers:
                continue  # the constant seed
            restricted = (
                bool(branch.predicates)
                or any(q.is_magic for q in branch.quantifiers)
                or any(
                    q.input_box.magic_role != MagicRole.REGULAR
                    for q in branch.quantifiers
                )
            )
            assert restricted, "unrestricted magic branch %s" % branch.name
    rows = Evaluator(result.graph, db, join_orders=result.join_orders).run()
    assert rows.rows == [(100,)]
