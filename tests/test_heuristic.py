"""The §3.2 heuristic module: phase control, snapshot fallback, the
exhaustive strawman."""

import pytest

from repro import Connection, Database
from repro.sql import parse_statement
from repro.qgm import build_query_graph, validate_graph
from repro.engine import Evaluator
from repro.optimizer.heuristic import (
    optimize_exhaustive_emst,
    optimize_with_heuristic,
)

from tests.helpers import canonical


@pytest.fixture
def chain_db():
    db = Database()
    db.create_table(
        "a", ["id", "fk"], primary_key=["id"], rows=[(i, i % 7) for i in range(60)]
    )
    db.create_table(
        "b", ["id", "fk"], primary_key=["id"], rows=[(i, i % 5) for i in range(7)]
    )
    db.create_table(
        "c", ["id", "tag"], primary_key=["id"], rows=[(i, "t%d" % i) for i in range(5)]
    )
    db.catalog.add_view(
        parse_statement(
            "CREATE VIEW stats (fk, n) AS SELECT fk, COUNT(*) FROM a GROUP BY fk"
        )
    )
    return db


QUERY = (
    "SELECT c.tag, v.n FROM c, b, stats v "
    "WHERE b.fk = c.id AND v.fk = b.id AND c.tag = 't3'"
)


def test_heuristic_runs_both_plan_passes(chain_db):
    graph = build_query_graph(parse_statement(QUERY), chain_db.catalog)
    result = optimize_with_heuristic(graph, chain_db.catalog)
    assert result.optimizer_invocations == 2
    assert set(result.phase_firings) == {1, 2, 3}
    validate_graph(result.graph)


def test_heuristic_without_emst_single_pass(chain_db):
    graph = build_query_graph(parse_statement(QUERY), chain_db.catalog)
    result = optimize_with_heuristic(graph, chain_db.catalog, use_emst=False)
    assert result.optimizer_invocations == 1
    assert not result.used_emst
    assert result.cost_with_emst == float("inf")


def test_snapshot_fallback_is_executable(chain_db):
    """When the heuristic rejects EMST, the snapshot graph it falls back to
    must be intact and runnable (the deepcopy must not corrupt anything)."""
    graph = build_query_graph(parse_statement(QUERY), chain_db.catalog)
    result = optimize_with_heuristic(graph, chain_db.catalog)
    # Whatever was chosen, both captured graphs must execute identically.
    chosen = Evaluator(
        result.graph, chain_db, join_orders=result.join_orders
    ).run()
    fallback = Evaluator(
        result.graph_without_emst,
        chain_db,
        join_orders=result.plan_without_emst.join_orders,
    ).run()
    assert canonical(chosen.rows) == canonical(fallback.rows)


def test_exhaustive_strawman_counts_invocations(chain_db):
    graph = build_query_graph(parse_statement(QUERY), chain_db.catalog)
    result, invocations = optimize_exhaustive_emst(graph, chain_db.catalog)
    # 1 baseline pass + one per permutation of the top box's 3 quantifiers.
    assert invocations == 1 + 6
    validate_graph(result.graph)
    rows = Evaluator(result.graph, chain_db, join_orders=result.join_orders).run()
    conn = Connection(chain_db)
    reference = conn.explain_execute(QUERY, strategy="original").rows
    assert canonical(rows.rows) == canonical(reference)


def test_phase_firings_are_deltas(chain_db):
    graph = build_query_graph(parse_statement(QUERY), chain_db.catalog)
    result = optimize_with_heuristic(graph, chain_db.catalog)
    for phase, firings in result.phase_firings.items():
        assert all(count > 0 for count in firings.values())
    assert "emst" not in result.phase_firings[1]
    assert "emst" not in result.phase_firings[3]


def test_heuristic_mutation_isolation(chain_db):
    """The caller's graph object is the one mutated; the snapshot is
    separate (no aliasing between the two)."""
    graph = build_query_graph(parse_statement(QUERY), chain_db.catalog)
    result = optimize_with_heuristic(graph, chain_db.catalog)
    chosen_ids = {id(b) for b in result.graph.boxes()}
    snapshot_ids = {id(b) for b in result.graph_without_emst.boxes()}
    assert not (chosen_ids & snapshot_ids) or result.graph is result.graph_without_emst
