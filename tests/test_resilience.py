"""The resilience layer: resource governor, rewrite rollback + rule
quarantine, strategy fallback, and the fault-injection harness."""

from __future__ import annotations

import pytest

from repro import (
    Connection,
    Database,
    FaultPlan,
    ResiliencePolicy,
    ResourceExhaustedError,
    ResourceGovernor,
)
from repro.errors import QgmError
from repro.qgm import build_query_graph, validate_graph
from repro.qgm.clone import clone_graph, restore_graph
from repro.resilience.faults import InjectedFault
from repro.rewrite.rule import RewriteRule
from repro.sql import parse_statement

from tests.helpers import canonical
from tests.test_integration_suite import DS_QUERIES, EMP_QUERIES


# -- fixtures -----------------------------------------------------------------


@pytest.fixture(scope="module")
def ds_conn():
    from repro.workloads.decision_support import build_decision_support_database

    conn = Connection(build_decision_support_database(scale=0.5, seed=77))
    conn.run_script(
        """
        CREATE VIEW custRev (custkey, rev, norders) AS
          SELECT o.custkey, SUM(o.totalprice), COUNT(*)
          FROM orders o GROUP BY o.custkey;
        CREATE VIEW bigParts (partkey, pname, brand) AS
          SELECT partkey, pname, brand FROM part WHERE size > 25;
        CREATE VIEW orderValue (orderkey, value) AS
          SELECT l.orderkey, SUM(l.extendedprice * (1 - l.discount))
          FROM lineitem l GROUP BY l.orderkey;
        """
    )
    return conn


@pytest.fixture(scope="module")
def emp_conn():
    from repro.workloads.empdept import PAPER_VIEWS_SQL, build_empdept_database

    conn = Connection(
        build_empdept_database(n_departments=25, employees_per_department=6, seed=78)
    )
    conn.run_script(PAPER_VIEWS_SQL)
    return conn


@pytest.fixture
def edge_conn():
    db = Database()
    db.create_table("edge", ["src", "dst"], rows=[(i, i + 1) for i in range(15)])
    return Connection(db)


TRANSITIVE_CLOSURE = (
    "WITH RECURSIVE tc (src, dst) AS ("
    "  SELECT src, dst FROM edge UNION "
    "  SELECT t.src, e.dst FROM tc t, edge e WHERE t.dst = e.src) "
    "SELECT src, dst FROM tc"
)


# -- acceptance: EMST failing on every firing degrades every query -------------


@pytest.mark.parametrize("index", range(len(DS_QUERIES)))
def test_emst_fault_degrades_ds_query(ds_conn, index):
    sql = DS_QUERIES[index]
    clean = canonical(ds_conn.explain_execute(sql, strategy="original").rows)
    policy = ResiliencePolicy(
        fault_plan=FaultPlan().fail_rule("emst", on_firing=None), paranoid=True
    )
    outcome = ds_conn.explain_execute(sql, strategy="emst", resilience=policy)
    assert canonical(outcome.rows) == clean
    report = outcome.resilience
    assert report is not None
    # The EMST rule either never applied to this query (no report entry) or
    # it raised, was quarantined by name and the query degraded to phase1.
    if "emst" in report.quarantined:
        assert outcome.fallback_strategy == "phase1"
        assert "InjectedFault" in report.quarantined["emst"]["reason"]


@pytest.mark.parametrize("index", range(len(EMP_QUERIES)))
def test_emst_fault_degrades_emp_query(emp_conn, index):
    sql = EMP_QUERIES[index]
    clean = canonical(emp_conn.explain_execute(sql, strategy="original").rows)
    policy = ResiliencePolicy(
        fault_plan=FaultPlan().fail_rule("emst", on_firing=None), paranoid=True
    )
    outcome = emp_conn.explain_execute(sql, strategy="emst", resilience=policy)
    assert canonical(outcome.rows) == clean
    if "emst" in outcome.resilience.quarantined:
        assert "emst" in outcome.quarantined_rules
        assert outcome.fallback_strategy == "phase1"


def test_emst_fault_is_reported_by_name(emp_conn):
    # The paper's query D goes through the EMST rule on this schema, so the
    # injected failure must be visible in the report, not just absorbed.
    sql = EMP_QUERIES[0]
    policy = ResiliencePolicy(fault_plan=FaultPlan().fail_rule("emst"))
    outcome = emp_conn.explain_execute(sql, strategy="emst", resilience=policy)
    assert outcome.quarantined_rules == ["emst"]
    assert outcome.fallback_strategy == "phase1"
    assert outcome.stats["rule_rollbacks"] == {"emst": 1}
    assert "quarantined emst" in outcome.resilience.describe()


@pytest.mark.parametrize("key", sorted("ABCDEFGH"))
def test_emst_fault_degrades_workload_experiment(key):
    # The Table-1 experiment queries of the workload suite (what
    # tests/test_workloads.py exercises), each with EMST forced to raise.
    from repro.workloads.experiments import EXPERIMENTS

    db, views, query = EXPERIMENTS[key].build(scale=0.1)
    conn = Connection(db)
    if views:
        conn.run_script(views)
    clean = canonical(conn.explain_execute(query, strategy="original").rows)
    policy = ResiliencePolicy(
        fault_plan=FaultPlan().fail_rule("emst", on_firing=None), paranoid=True
    )
    outcome = conn.explain_execute(query, strategy="emst", resilience=policy)
    assert canonical(outcome.rows) == clean
    if "emst" in outcome.resilience.quarantined:
        assert outcome.fallback_strategy == "phase1"


# -- acceptance: governor stops a runaway recursion ----------------------------


def test_fixpoint_round_limit_names_limit_and_component(edge_conn):
    policy = ResiliencePolicy(governor=ResourceGovernor(max_fixpoint_rounds=3))
    with pytest.raises(ResourceExhaustedError) as info:
        edge_conn.explain_execute(
            TRANSITIVE_CLOSURE, strategy="emst", resilience=policy
        )
    error = info.value
    assert error.limit == "max_fixpoint_rounds"
    assert "TC" in error.where  # the recursive component is named
    assert error.context["limit"] == "max_fixpoint_rounds"
    # The database stays reusable: same connection, new queries succeed.
    assert len(edge_conn.execute("SELECT src FROM edge").rows) == 15
    full = edge_conn.explain_execute(TRANSITIVE_CLOSURE, strategy="emst")
    assert len(full.rows) == 15 * 16 // 2


def test_governor_default_enforces_historical_round_cap(edge_conn):
    # Without any policy a default governor still guards the fixpoint.
    outcome = edge_conn.explain_execute(TRANSITIVE_CLOSURE, strategy="emst")
    assert len(outcome.rows) == 120


def test_max_materialized_rows(edge_conn):
    policy = ResiliencePolicy(governor=ResourceGovernor(max_materialized_rows=5))
    with pytest.raises(ResourceExhaustedError) as info:
        edge_conn.explain_execute(
            "SELECT src, dst FROM edge", strategy="original", resilience=policy
        )
    assert info.value.limit == "max_materialized_rows"


def test_max_correlated_invocations(emp_conn):
    sql = (
        "SELECT e.empname FROM employee e WHERE e.salary > "
        "(SELECT AVG(e2.salary) FROM employee e2 WHERE e2.workdept = e.workdept)"
    )
    policy = ResiliencePolicy(
        governor=ResourceGovernor(max_correlated_invocations=3)
    )
    with pytest.raises(ResourceExhaustedError) as info:
        emp_conn.explain_execute(sql, strategy="correlated", resilience=policy)
    assert info.value.limit == "max_correlated_invocations"


def test_deadline_tripped_by_slow_evaluation(edge_conn):
    policy = ResiliencePolicy(
        governor=ResourceGovernor(deadline_seconds=0.01),
        fault_plan=FaultPlan().slow_evaluation(on_evaluation=1, seconds=0.05),
    )
    with pytest.raises(ResourceExhaustedError) as info:
        edge_conn.explain_execute(
            "SELECT src FROM edge", strategy="original", resilience=policy
        )
    assert info.value.limit == "deadline_seconds"


def test_governor_budget_resets_between_queries(edge_conn):
    policy = ResiliencePolicy(governor=ResourceGovernor(max_materialized_rows=50))
    for _ in range(3):  # each query gets the full budget
        rows = edge_conn.explain_execute(
            "SELECT src FROM edge", strategy="original", resilience=policy
        ).rows
        assert len(rows) == 15


# -- rollback and quarantine ---------------------------------------------------


class _VandalRule(RewriteRule):
    """Mutates the graph, then raises: the half-done damage must vanish."""

    name = "vandal"
    phases = frozenset({1})
    priority = 1

    def apply(self, box, context):
        if box.quantifiers:
            box.quantifiers[0].parent_box = None
            raise RuntimeError("vandalism interrupted")
        return False


def test_rollback_discards_half_mutated_graph(emp_conn):
    from repro.rewrite.engine import RewriteEngine, default_rules

    sql = EMP_QUERIES[0]
    clean = canonical(emp_conn.explain_execute(sql, strategy="original").rows)
    policy = ResiliencePolicy()
    engine = RewriteEngine(default_rules(include_emst=True) + [_VandalRule()])
    statement = parse_statement(sql)
    from repro.optimizer.heuristic import optimize_with_heuristic

    graph = build_query_graph(statement, emp_conn.database.catalog)
    result = optimize_with_heuristic(
        graph, emp_conn.database.catalog, engine=engine, resilience=policy
    )
    validate_graph(result.graph)  # no dangling damage survived
    assert "vandal" in policy.quarantine
    from repro.engine import Evaluator

    rows = Evaluator(
        result.graph, emp_conn.database, join_orders=result.plan.join_orders
    ).run().rows
    assert canonical(rows) == clean


def test_paranoid_mode_catches_silent_corruption(emp_conn):
    sql = EMP_QUERIES[0]
    clean = canonical(emp_conn.explain_execute(sql, strategy="original").rows)
    policy = ResiliencePolicy(
        fault_plan=FaultPlan().corrupt_rule("merge", on_firing=1), paranoid=True
    )
    outcome = emp_conn.explain_execute(sql, strategy="emst", resilience=policy)
    assert canonical(outcome.rows) == clean
    assert "merge" in outcome.resilience.quarantined
    assert "QgmError" in outcome.resilience.quarantined["merge"]["reason"]


def test_unprotected_rules_fall_back_along_strategy_chain(emp_conn):
    # With per-firing protection off, the raising rule fails the whole emst
    # strategy and the declared chain must degrade to phase1.
    sql = EMP_QUERIES[0]
    clean = canonical(emp_conn.explain_execute(sql, strategy="original").rows)
    policy = ResiliencePolicy(
        fault_plan=FaultPlan().fail_rule("emst", on_firing=None),
        protect_rules=False,
    )
    outcome = emp_conn.explain_execute(sql, strategy="emst", resilience=policy)
    assert canonical(outcome.rows) == clean
    assert outcome.resilience.executed == "phase1"
    assert outcome.resilience.attempts[0][0] == "emst"
    assert "InjectedFault" in outcome.resilience.attempts[0][1]


def test_evaluation_fault_falls_back_to_next_strategy(emp_conn):
    sql = EMP_QUERIES[0]
    clean = canonical(emp_conn.explain_execute(sql, strategy="original").rows)
    policy = ResiliencePolicy(
        fault_plan=FaultPlan().fail_evaluation(on_evaluation=1)
    )
    outcome = emp_conn.explain_execute(sql, strategy="emst", resilience=policy)
    assert canonical(outcome.rows) == clean
    assert outcome.resilience.executed != "emst"
    assert outcome.resilience.degraded


def test_exhaustion_does_not_fall_back_by_default(edge_conn):
    policy = ResiliencePolicy(governor=ResourceGovernor(max_fixpoint_rounds=2))
    with pytest.raises(ResourceExhaustedError):
        edge_conn.explain_execute(
            TRANSITIVE_CLOSURE, strategy="emst", resilience=policy
        )


def test_rollback_restores_graph_object_in_place():
    db = Database()
    db.create_table("t", ["a", "b"], rows=[(1, 2)])
    graph = build_query_graph(
        parse_statement("SELECT a FROM t WHERE b = 2"), db.catalog
    )
    snapshot = clone_graph(graph)
    top = graph.top_box
    top.quantifiers[0].parent_box = None
    with pytest.raises(QgmError):
        validate_graph(graph)
    restore_graph(graph, snapshot)
    assert graph.top_box is not top  # boxes were swapped for the snapshot's
    validate_graph(graph)
    assert graph.top_box.box_id == top.box_id  # ...but ids are preserved


# -- fault plan determinism ----------------------------------------------------


def test_randomized_fault_plans_are_reproducible():
    from repro.resilience.chaos import RULE_NAMES

    first = FaultPlan.randomized(42, RULE_NAMES, faults=3)
    second = FaultPlan.randomized(42, RULE_NAMES, faults=3)
    assert [
        (name, sorted(fault.firings or []), fault.kind)
        for name, faults in sorted(first._rule_faults.items())
        for fault in faults
    ] == [
        (name, sorted(fault.firings or []), fault.kind)
        for name, faults in sorted(second._rule_faults.items())
        for fault in faults
    ]


def test_injected_fault_counts_firings():
    plan = FaultPlan().fail_rule("merge", on_firing=2)
    assert plan.before_apply("merge") == 1  # firing 1 passes
    with pytest.raises(InjectedFault) as info:
        plan.before_apply("merge")
    assert info.value.context["firing"] == 2
    assert plan.injected == [("merge", 2, "raise")]


# -- graph-corruption detection (validate_graph gaps) --------------------------


def _graph(db, sql):
    return build_query_graph(parse_statement(sql), db.catalog)


@pytest.fixture
def two_tables():
    db = Database()
    db.create_table("t", ["a", "b"], rows=[(1, 10)])
    db.create_table("s", ["a", "d"], rows=[(1, 4)])
    return db


def test_validate_catches_dangling_parent_link(two_tables):
    graph = _graph(two_tables, "SELECT a FROM t WHERE b = 10")
    graph.top_box.quantifiers[0].parent_box = None
    with pytest.raises(QgmError, match="wrong parent link"):
        validate_graph(graph)


def test_validate_catches_dangling_quantifier_reference(two_tables):
    graph = _graph(two_tables, "SELECT a, b FROM t")
    # Detach the quantifier but leave the expressions referencing it.
    graph.top_box.quantifiers = []
    with pytest.raises(QgmError, match="dangling quantifier"):
        validate_graph(graph)


def test_validate_catches_missing_local_column(two_tables):
    graph = _graph(
        two_tables,
        "SELECT x.a FROM (SELECT a FROM t) x",
    )
    quantifier = graph.top_box.quantifiers[0]
    quantifier.input_box.columns = quantifier.input_box.columns[:0]
    with pytest.raises(QgmError, match="missing column"):
        validate_graph(graph)


def test_validate_catches_missing_correlated_column(two_tables):
    # The gap closed while wiring paranoid mode: a *correlated* reference
    # to a column its quantifier's input box does not produce.
    graph = _graph(
        two_tables,
        "SELECT a FROM t WHERE EXISTS (SELECT d FROM s WHERE s.a = t.b)",
    )
    from repro.qgm import expr as qe

    top_quantifier = graph.top_box.foreach_quantifiers()[0]
    corrupted = False
    for box in graph.boxes():
        if box is graph.top_box:
            continue
        for expression in box.all_expressions():
            for node in qe.walk(expression):
                if (
                    isinstance(node, qe.QColRef)
                    and node.quantifier is top_quantifier
                ):
                    node.column = "no_such_column"
                    corrupted = True
    assert corrupted
    with pytest.raises(QgmError, match="missing column"):
        validate_graph(graph)


def test_validate_catches_setop_arity_mismatch(two_tables):
    from repro.qgm.model import BoxKind

    graph = _graph(
        two_tables, "SELECT a FROM t UNION SELECT a FROM s"
    )
    for box in graph.boxes():
        if box.kind == BoxKind.UNION:
            child = box.quantifiers[0].input_box
            child.columns = child.columns + child.columns  # arity 2 now
            break
    with pytest.raises(QgmError, match="mismatched arity"):
        validate_graph(graph)


# -- satellite: encapsulated index invalidation --------------------------------


def test_invalidate_indexes_public_api():
    db = Database()
    db.create_table("t", ["a", "b"], rows=[(1, 10), (2, 20)])
    table = db.table("t")
    index = table.index_on("a")
    assert index[1] == [(1, 10)]
    table.rows = [(3, 30)]
    table.invalidate_indexes()
    assert table.index_on("a")[3] == [(3, 30)]


def test_delete_and_update_refresh_indexes_via_public_api():
    db = Database()
    db.create_table("t", ["a", "b"], rows=[(1, 10), (2, 20), (3, 30)])
    conn = Connection(db)
    db.table("t").index_on("a")  # force a stale index to exist
    conn.run_script("DELETE FROM t WHERE a = 2")
    assert sorted(conn.execute("SELECT a FROM t").rows) == [(1,), (3,)]
    assert 2 not in db.table("t").index_on("a")
    conn.run_script("UPDATE t SET a = 9 WHERE a = 3")
    assert 9 in db.table("t").index_on("a")


# -- observability -------------------------------------------------------------


def test_rule_timings_surface_in_stats_and_explain(emp_conn):
    sql = EMP_QUERIES[0]
    outcome = emp_conn.explain_execute(sql, strategy="emst")
    assert "rule_seconds" in outcome.stats
    assert outcome.stats["rule_firings"]  # something fired on this query
    for name, seconds in outcome.stats["rule_seconds"].items():
        assert seconds >= 0.0
    text = emp_conn.explain(sql, strategy="emst")
    assert "rule timings:" in text


def test_prepared_query_executes_under_policy(emp_conn):
    sql = EMP_QUERIES[0]
    policy = ResiliencePolicy(governor=ResourceGovernor())
    prepared = emp_conn.prepare_statement(sql, strategy="emst", resilience=policy)
    result, stats = prepared.execute()
    clean = canonical(emp_conn.explain_execute(sql, strategy="original").rows)
    assert canonical(result.rows) == clean


# -- chaos: the randomized fault sweep (second pytest invocation: -m chaos) ----


@pytest.mark.chaos
def test_chaos_suite_equivalence():
    from repro.resilience.chaos import run_chaos

    failures = run_chaos(seed=7, trials=2, scale=0.25, verbose=False)
    assert failures == []
