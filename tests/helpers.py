"""Test helpers shared across modules."""

from __future__ import annotations


def canonical(rows):
    """Sort rows and round floats so differently-ordered sums compare
    equal. NULLs (None) and mixed types sort by repr."""

    def canon(value):
        if isinstance(value, float):
            return float("%.10g" % value)
        return value

    out = [tuple(canon(v) for v in row) for row in rows]
    return sorted(out, key=repr)


def assert_same_rows(left, right):
    assert canonical(left) == canonical(right)


def run_all_strategies(conn, sql, strategies=("original", "correlated", "emst")):
    """Execute under every strategy; assert all agree; return the rows."""
    reference = None
    for strategy in strategies:
        outcome = conn.explain_execute(sql, strategy=strategy)
        rows = canonical(outcome.rows)
        if reference is None:
            reference = rows
        else:
            assert rows == reference, "strategy %s disagrees on %r" % (strategy, sql)
    return reference
