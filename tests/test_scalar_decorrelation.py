"""Magic decorrelation of scalar subqueries (the [MPR90] aggregate-magic
construction): correlated aggregates become per-binding grouped tables with
selector predicates, preserving empty-means-NULL semantics."""

import pytest

from repro import Connection, Database
from repro.sql import parse_statement
from repro.qgm import QuantifierType, build_query_graph, validate_graph
from repro.optimizer.heuristic import optimize_with_heuristic

from tests.helpers import canonical, run_all_strategies


@pytest.fixture
def sales_db():
    db = Database()
    db.create_table(
        "emp",
        ["id", "dept", "sal"],
        primary_key=["id"],
        rows=[
            (1, "a", 100),
            (2, "a", 300),
            (3, "b", 50),
            (4, "b", 150),
            (5, "c", 500),
            (6, "d", 10),  # a department with a single employee
        ],
    )
    db.create_table(
        "dept",
        ["dept", "head"],
        primary_key=["dept"],
        rows=[("a", 2), ("b", 4), ("c", 5), ("d", 6), ("e", None)],
    )
    return db


ABOVE_AVG = (
    "SELECT e.id FROM emp e WHERE e.sal > "
    "(SELECT AVG(e2.sal) FROM emp e2 WHERE e2.dept = e.dept)"
)


def test_above_department_average(sales_db):
    rows = run_all_strategies(Connection(sales_db), ABOVE_AVG)
    assert rows == canonical([(2,), (4,)])


def test_decorrelation_marks_quantifier_and_removes_correlation():
    from repro.workloads.empdept import build_empdept_database

    db = build_empdept_database(n_departments=100, employees_per_department=10)
    sql = (
        "SELECT e.empname FROM employee e WHERE e.salary > "
        "(SELECT AVG(e2.salary) FROM employee e2 WHERE e2.workdept = e.workdept)"
    )
    graph = build_query_graph(parse_statement(sql), db.catalog)
    result = optimize_with_heuristic(graph, db.catalog)
    assert result.used_emst
    validate_graph(result.graph)
    scalars = [
        q
        for box in result.graph.boxes()
        for q in box.quantifiers
        if q.qtype == QuantifierType.SCALAR
    ]
    assert scalars
    assert scalars[0].decorrelated
    assert scalars[0].selector_predicates
    # The subquery box must no longer correlate to the outer box.
    for box in result.graph.boxes():
        assert not box.correlated_quantifiers()


def test_empty_binding_yields_null_semantics(sales_db):
    # Department 'e' has no employees: the subquery is empty for it, the
    # scalar is NULL, and the comparison is UNKNOWN — the row is filtered,
    # but rows with IS NULL tests keep it.
    sql = (
        "SELECT d.dept FROM dept d WHERE "
        "(SELECT MAX(e.sal) FROM emp e WHERE e.dept = d.dept) IS NULL"
    )
    rows = run_all_strategies(Connection(sales_db), sql)
    assert rows == canonical([("e",)])


def test_scalar_in_select_position(sales_db):
    sql = (
        "SELECT d.dept, (SELECT COUNT(*) FROM emp e WHERE e.dept = d.dept) "
        "AS n FROM dept d"
    )
    rows = run_all_strategies(Connection(sales_db), sql)
    assert rows == canonical(
        [("a", 2), ("b", 2), ("c", 1), ("d", 1), ("e", 0)]
    )


def test_scalar_equality_comparison(sales_db):
    sql = (
        "SELECT e.id FROM emp e WHERE e.sal = "
        "(SELECT MAX(e2.sal) FROM emp e2 WHERE e2.dept = e.dept)"
    )
    rows = run_all_strategies(Connection(sales_db), sql)
    assert rows == canonical([(2,), (4,), (5,), (6,)])


def test_scalar_without_aggregate_per_binding_cardinality(sales_db):
    # dept.head is unique per department, so the subquery is single-row per
    # binding; decorrelation must keep it so.
    sql = (
        "SELECT e.id FROM emp e WHERE e.id = "
        "(SELECT d.head FROM dept d WHERE d.dept = e.dept)"
    )
    rows = run_all_strategies(Connection(sales_db), sql)
    assert rows == canonical([(2,), (4,), (5,), (6,)])


def test_uncorrelated_scalar_still_enforces_single_row(sales_db):
    from repro.errors import ExecutionError

    with pytest.raises(ExecutionError):
        Connection(sales_db).execute(
            "SELECT id FROM emp WHERE sal > (SELECT sal FROM emp)"
        )


def test_scalar_with_extra_local_filter_inside(sales_db):
    sql = (
        "SELECT e.id FROM emp e WHERE e.sal >= "
        "(SELECT SUM(e2.sal) FROM emp e2 WHERE e2.dept = e.dept AND e2.sal < 200)"
    )
    run_all_strategies(Connection(sales_db), sql)


def test_two_scalar_subqueries(sales_db):
    sql = (
        "SELECT e.id FROM emp e WHERE e.sal > "
        "(SELECT AVG(e2.sal) FROM emp e2 WHERE e2.dept = e.dept) "
        "AND e.sal < (SELECT MAX(e3.sal) FROM emp e3 WHERE e3.dept = e.dept) + 1"
    )
    run_all_strategies(Connection(sales_db), sql)


def test_decorrelated_scalar_faster_than_naive():
    """At scale, the decorrelated plan avoids per-row re-aggregation."""
    import time

    from repro.workloads.empdept import build_empdept_database

    db = build_empdept_database(n_departments=400, employees_per_department=10)
    conn = Connection(db)
    sql = (
        "SELECT e.empname FROM employee e WHERE e.salary > "
        "(SELECT AVG(e2.salary) FROM employee e2 "
        " WHERE e2.workdept = e.workdept)"
    )
    timings = {}
    reference = {}
    for strategy in ("original", "emst"):
        prepared = conn.prepare_statement(sql, strategy=strategy)
        result, _ = prepared.execute()
        reference[strategy] = canonical(result.rows)
        started = time.perf_counter()
        prepared.execute()
        timings[strategy] = time.perf_counter() - started
    assert reference["original"] == reference["emst"]
    assert timings["emst"] < timings["original"]
