"""Property-based verification of the dataflow facts (hypothesis).

Random queries run against the stock workload schemas; every fact the
fixpoint analyses claim about the top box is then checked *empirically*
against the rows the evaluator actually produced:

* a derived key must have no duplicate projections;
* a column proven NOT NULL must hold no NULL;
* a column proven all-NULL must hold only NULLs;
* a box proven duplicate-free (ignoring enforcement) must produce no
  duplicate rows even when the enforcement is stripped.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.dataflow import solve_box_keys, solve_nullability
from repro.engine import Evaluator
from repro.qgm import build_query_graph
from repro.qgm.keys import box_keys
from repro.qgm.model import DistinctMode
from repro.sql import parse_statement
from repro.workloads.decision_support import build_decision_support_database
from repro.workloads.empdept import build_empdept_database

_EMPDEPT = build_empdept_database(
    n_departments=6, employees_per_department=3, seed=7
)
_TPCH = build_decision_support_database(scale=0.01, seed=7)


def _check_facts(graph, db):
    result = Evaluator(graph, db).run()
    ordinal = {name.lower(): i for i, name in enumerate(result.columns)}

    for key in box_keys(graph.top_box):
        positions = [ordinal[part] for part in sorted(key)]
        projected = [tuple(row[i] for i in positions) for row in result.rows]
        assert len(projected) == len(set(projected)), (
            "claimed key %s has duplicates" % sorted(key)
        )

    fact = solve_nullability(graph.top_box)[id(graph.top_box)]
    for name in fact.notnull:
        if name not in ordinal:
            continue
        column = [row[ordinal[name]] for row in result.rows]
        assert None not in column, "claimed NOT NULL column %r holds NULL" % name
    for name in fact.allnull:
        if name not in ordinal:
            continue
        column = [row[ordinal[name]] for row in result.rows]
        assert all(value is None for value in column)

    # Duplicate-freeness claimed without enforcement must hold with the
    # enforcement physically stripped.
    if graph.top_box.distinct == DistinctMode.ENFORCE and solve_box_keys(
        graph.top_box, ignore_enforce=True
    ):
        graph.top_box.distinct = DistinctMode.PERMIT
        stripped = Evaluator(graph, db).run().rows
        assert len(stripped) == len(set(stripped))


# ---------------------------------------------------------------------------
# Random single-block queries over the empdept schema
# ---------------------------------------------------------------------------

_PROJECTIONS = [
    "e.empno",
    "e.empname",
    "e.workdept",
    "e.salary",
    "d.deptno",
    "d.deptname",
    "d.mgrno",
]


@st.composite
def empdept_queries(draw):
    columns = draw(
        st.lists(
            st.sampled_from(_PROJECTIONS), min_size=1, max_size=4, unique=True
        )
    )
    distinct = "DISTINCT " if draw(st.booleans()) else ""
    where = ["e.workdept = d.deptno"]
    if draw(st.booleans()):
        where.append(
            "e.salary %s %d"
            % (draw(st.sampled_from([">", "<", ">=", "<="])),
               draw(st.integers(30000, 180000)))
        )
    if draw(st.booleans()):
        where.append("d.mgrno IS NOT NULL")
    if draw(st.booleans()):
        where.append("e.empname IS NULL")
    return "SELECT %s%s FROM employee e, department d WHERE %s" % (
        distinct,
        ", ".join(columns),
        " AND ".join(where),
    )


@given(empdept_queries())
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_facts_hold_empirically_on_empdept(sql):
    graph = build_query_graph(parse_statement(sql), _EMPDEPT.catalog)
    _check_facts(graph, _EMPDEPT)


# ---------------------------------------------------------------------------
# Random queries over the decision-support schema, including aggregation
# ---------------------------------------------------------------------------


@st.composite
def tpch_queries(draw):
    shape = draw(st.sampled_from(["join", "groupby", "point"]))
    if shape == "join":
        columns = draw(
            st.lists(
                st.sampled_from(
                    ["c.custkey", "c.cname", "o.orderkey", "o.totalprice"]
                ),
                min_size=1,
                max_size=3,
                unique=True,
            )
        )
        distinct = "DISTINCT " if draw(st.booleans()) else ""
        return (
            "SELECT %s%s FROM customer c, orders o "
            "WHERE o.custkey = c.custkey AND o.totalprice > %d"
            % (distinct, ", ".join(columns), draw(st.integers(0, 5000)))
        )
    if shape == "groupby":
        aggregate = draw(st.sampled_from(["COUNT(*)", "SUM(o.totalprice)",
                                          "MIN(o.orderkey)"]))
        return (
            "SELECT o.custkey, %s FROM orders o GROUP BY o.custkey"
            % aggregate
        )
    return (
        "SELECT c.cname, c.nationkey FROM customer c WHERE c.custkey = %d"
        % draw(st.integers(0, 40))
    )


@given(tpch_queries())
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_facts_hold_empirically_on_decision_support(sql):
    graph = build_query_graph(parse_statement(sql), _TPCH.catalog)
    _check_facts(graph, _TPCH)
