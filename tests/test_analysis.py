"""The static-analysis subsystem: one table-driven case per diagnostic
code, the lint CLI, the api hook, and rewrite-soundness attribution."""

from __future__ import annotations

import re

import pytest

from repro import Connection, Database, FaultPlan, ResiliencePolicy
from repro.analysis import (
    CODES,
    AnalysisReport,
    Analyzer,
    Severity,
    SoundnessChecker,
    analyze_graph,
    soundness_passes,
)
from repro.analysis.dataflow_checks import DataflowPass
from repro.analysis.deadcode import DeadCodePass
from repro.analysis.magic_checks import MagicWellFormednessPass
from repro.analysis.structural import StructuralPass
from repro.analysis.typecheck import TypeCheckPass
from repro.catalog import ColumnDef
from repro.errors import QgmError
from repro.qgm import BoxKind, build_query_graph, validate_graph
from repro.qgm import expr as qe
from repro.qgm.model import Box, MagicRole, Quantifier, QuantifierType
from repro.qgm.stratum import reduced_dependency_graph
from repro.rewrite.rule import RuleContext
from repro.sql import parse_statement


@pytest.fixture
def typed_db():
    """A small schema with declared column types (the type pass is silent
    on untyped schemas)."""
    db = Database()
    db.create_table(
        "emp",
        [
            ColumnDef("empno", "INT"),
            ColumnDef("empname", "STR"),
            ColumnDef("workdept", "STR"),
            ColumnDef("salary", "INT"),
        ],
        primary_key=["empno"],
        rows=[(1, "a", "D1", 100), (2, "b", "D2", 200)],
    )
    db.create_table(
        "dept",
        [
            ColumnDef("deptno", "STR"),
            ColumnDef("deptname", "STR"),
            ColumnDef("mgrno", "INT"),
        ],
        primary_key=["deptno"],
        rows=[("D1", "Planning", 1), ("D2", "Ops", 2)],
    )
    db.create_table(
        "edge",
        [ColumnDef("src", "INT"), ColumnDef("dst", "INT")],
        rows=[(1, 2), (2, 3)],
    )
    return db


def build(sql, db):
    return build_query_graph(parse_statement(sql), db.catalog)


def structural(graph):
    return Analyzer([StructuralPass()]).analyze(graph)


def union_box(graph):
    return next(b for b in graph.boxes() if b.kind == BoxKind.UNION)


def groupby_box(graph):
    return next(b for b in graph.boxes() if b.kind == BoxKind.GROUPBY)


def recursive_graph(db):
    graph = build(
        "WITH RECURSIVE r (n) AS ("
        "SELECT e.dst FROM edge e "
        "UNION SELECT e2.dst FROM r x, edge e2 WHERE e2.src = x.n) "
        "SELECT n FROM r",
        db,
    )
    components, _ = reduced_dependency_graph(graph)
    cyclic = next(c for c in components if len(c) > 1)
    return graph, cyclic


# -- the case table: one corruption recipe per diagnostic code ---------------
#
# Each case returns the AnalysisReport produced by analyzing a graph that
# exhibits exactly that defect; the shared test asserts the code fired with
# the registered severity and a box-bearing location (plus any extra
# expectations the case declares).

CASES = {}


def case(code, severity, **expect):
    def register(fn):
        assert code not in CASES, code
        CASES[code] = (severity, expect, fn)
        return fn

    return register


@case("QGM101", Severity.ERROR, box="Q")
def _bad_distinct(db):
    graph = build("SELECT e.empno FROM emp e", db)
    graph.top_box.distinct = "BOGUS"
    return structural(graph)


@case("QGM102", Severity.ERROR, quantifier="e")
def _wrong_parent(db):
    graph = build("SELECT e.empno FROM emp e", db)
    graph.top_box.quantifiers[0].parent_box = None
    return structural(graph)


@case("QGM103", Severity.ERROR, box="Q")
def _unreachable_input(db):
    # Unreachable through graph.boxes() means the traversal itself would
    # visit the box, so this check is driven through the public per-box
    # entry point with a restricted universe.
    graph = build("SELECT e.empno FROM emp e", db)
    box = graph.top_box
    report = AnalysisReport()
    StructuralPass().check_box(box, set(), set(box.quantifiers), report)
    return report


@case("QGM104", Severity.ERROR, quantifier="e")
def _bad_qtype(db):
    graph = build("SELECT e.empno FROM emp e", db)
    graph.top_box.quantifiers[0].qtype = "BOGUS"
    return structural(graph)


@case("QGM105", Severity.ERROR, box="Q")
def _duplicate_names(db):
    graph = build(
        "SELECT e.empno FROM emp e, dept d WHERE e.workdept = d.deptno", db
    )
    graph.top_box.quantifiers[1].name = "e"
    return structural(graph)


@case("QGM106", Severity.ERROR)
def _base_with_quantifier(db):
    graph = build(
        "SELECT e.empno FROM emp e, dept d WHERE e.workdept = d.deptno", db
    )
    base_e = graph.top_box.quantifiers[0].input_box
    base_d = graph.top_box.quantifiers[1].input_box
    base_e.add_quantifier(
        Quantifier(name="zz", qtype=QuantifierType.FOREACH, input_box=base_d)
    )
    return structural(graph)


@case("QGM107", Severity.ERROR)
def _base_without_schema(db):
    graph = build("SELECT e.empno FROM emp e", db)
    graph.top_box.quantifiers[0].input_box.schema = None
    return structural(graph)


GROUP_SQL = "SELECT e.workdept, AVG(e.salary) FROM emp e GROUP BY e.workdept"


@case("QGM108", Severity.ERROR)
def _groupby_two_inputs(db):
    graph = build(GROUP_SQL, db)
    box = groupby_box(graph)
    other = graph.top_box.quantifiers[0].input_box
    box.add_quantifier(
        Quantifier(name="zz", qtype=QuantifierType.FOREACH, input_box=other)
    )
    return structural(graph)


@case("QGM109", Severity.ERROR)
def _groupby_predicates(db):
    graph = build(GROUP_SQL, db)
    groupby_box(graph).predicates.append(qe.QLiteral(True))
    return structural(graph)


@case("QGM110", Severity.ERROR)
def _groupby_missing_expr(db):
    graph = build(GROUP_SQL, db)
    groupby_box(graph).columns[0].expr = None
    return structural(graph)


@case("QGM111", Severity.ERROR)
def _groupby_non_key_column(db):
    graph = build(GROUP_SQL, db)
    groupby_box(graph).columns[0].expr = qe.QLiteral(1)
    return structural(graph)


UNION_SQL = "SELECT e.empno FROM emp e UNION SELECT d.mgrno FROM dept d"


@case("QGM112", Severity.ERROR)
def _setop_predicates(db):
    graph = build(UNION_SQL, db)
    union_box(graph).predicates.append(qe.QLiteral(True))
    return structural(graph)


@case("QGM113", Severity.ERROR)
def _setop_no_inputs(db):
    graph = build(UNION_SQL, db)
    union_box(graph).quantifiers = []
    return structural(graph)


@case("QGM114", Severity.ERROR)
def _setop_existential_input(db):
    graph = build(UNION_SQL, db)
    union_box(graph).quantifiers[0].qtype = QuantifierType.EXISTENTIAL
    return structural(graph)


@case("QGM115", Severity.ERROR)
def _setop_arity_mismatch(db):
    graph = build(UNION_SQL, db)
    box = union_box(graph)
    box.quantifiers[1].input_box.columns.pop()
    report = structural(graph)
    # Satellite check: the offending *input* is named, not just the box.
    finding = report.by_code("QGM115")[0]
    assert finding.quantifier == box.quantifiers[1].name
    assert "mismatched arity" in finding.message
    return report


@case("QGM116", Severity.ERROR)
def _setop_column_with_expr(db):
    graph = build(UNION_SQL, db)
    union_box(graph).columns[0].expr = qe.QLiteral(1)
    return structural(graph)


OUTER_SQL = "SELECT e.empno, d.deptname FROM emp e LEFT JOIN dept d ON d.deptno = e.workdept"


def outerjoin_box(graph):
    return next(b for b in graph.boxes() if b.kind == BoxKind.OUTERJOIN)


@case("QGM117", Severity.ERROR)
def _outerjoin_one_input(db):
    graph = build(OUTER_SQL, db)
    outerjoin_box(graph).quantifiers.pop()
    return structural(graph)


@case("QGM118", Severity.ERROR)
def _outerjoin_existential(db):
    graph = build(OUTER_SQL, db)
    outerjoin_box(graph).quantifiers[1].qtype = QuantifierType.EXISTENTIAL
    return structural(graph)


@case("QGM119", Severity.ERROR)
def _outerjoin_missing_expr(db):
    graph = build(OUTER_SQL, db)
    outerjoin_box(graph).columns[0].expr = None
    return structural(graph)


@case("QGM120", Severity.ERROR, box="Q")
def _select_missing_expr(db):
    graph = build("SELECT e.empno FROM emp e", db)
    graph.top_box.columns[0].expr = None
    return structural(graph)


@case("QGM121", Severity.ERROR, quantifier="zz")
def _dangling_quantifier(db):
    graph = build("SELECT e.empno FROM emp e", db)
    from repro.qgm.model import OutputColumn

    stray_base = Box(
        kind=BoxKind.BASE, name="STRAY", columns=[OutputColumn(name="x")]
    )
    stray = Quantifier(
        name="zz", qtype=QuantifierType.FOREACH, input_box=stray_base
    )
    graph.top_box.predicates.append(
        qe.QBinary(op="=", left=stray.ref("x"), right=qe.QLiteral(1))
    )
    return structural(graph)


@case("QGM122", Severity.ERROR, column="nosuch")
def _missing_column(db):
    graph = build("SELECT e.empno FROM emp e", db)
    quantifier = graph.top_box.quantifiers[0]
    graph.top_box.predicates.append(
        qe.QBinary(op="=", left=quantifier.ref("nosuch"), right=qe.QLiteral(1))
    )
    return structural(graph)


@case("QGM123", Severity.ERROR, box="Q")
def _aggregate_outside_groupby(db):
    graph = build("SELECT e.empno FROM emp e", db)
    quantifier = graph.top_box.quantifiers[0]
    graph.top_box.predicates.append(
        qe.QBinary(
            op=">",
            left=qe.QAggregate(func="SUM", arg=quantifier.ref("salary")),
            right=qe.QLiteral(1),
        )
    )
    return structural(graph)


@case("QGM199", Severity.ERROR, box="Q")
def _crash_guard(db):
    graph = build("SELECT e.empno FROM emp e", db)
    graph.top_box.columns = None  # iterating this crashes the select check
    return structural(graph)


def typecheck(graph, db):
    return analyze_graph(graph, catalog=db.catalog, passes=[TypeCheckPass()])


@case("QGM201", Severity.ERROR, box="Q")
def _incompatible_comparison(db):
    graph = build("SELECT e.empno FROM emp e WHERE e.empname > 5", db)
    return typecheck(graph, db)


@case("QGM202", Severity.ERROR)
def _sum_over_string(db):
    graph = build(
        "SELECT e.workdept, SUM(e.empname) FROM emp e GROUP BY e.workdept", db
    )
    return typecheck(graph, db)


@case("QGM203", Severity.ERROR)
def _setop_type_mismatch(db):
    graph = build(
        "SELECT e.empno FROM emp e UNION SELECT d.deptno FROM dept d", db
    )
    return typecheck(graph, db)


@case("QGM204", Severity.ERROR, box="Q")
def _string_arithmetic(db):
    graph = build("SELECT e.empname + 1 FROM emp e", db)
    return typecheck(graph, db)


@case("QGM205", Severity.WARNING, box="Q")
def _numeric_like(db):
    graph = build("SELECT e.empno FROM emp e WHERE e.salary LIKE 'x%'", db)
    return typecheck(graph, db)


@case("QGM301", Severity.WARNING, box="DEAD")
def _magic_only_box(db):
    graph = build("SELECT e.empno FROM emp e", db)
    dead = Box(kind=BoxKind.SELECT, name="DEAD", columns=[])
    graph.top_box.linked_magic.append(dead)
    return analyze_graph(graph, catalog=db.catalog, passes=[DeadCodePass()])


@case("QGM302", Severity.INFO, box="V", column="b")
def _unused_output_column(db):
    connection = Connection(db)
    connection.run_script(
        "CREATE VIEW v (a, b) AS SELECT empno, empname FROM emp"
    )
    graph = build("SELECT x.a FROM v x", db)
    return analyze_graph(graph, catalog=db.catalog, passes=[DeadCodePass()])


def magic(graph, db):
    return analyze_graph(
        graph, catalog=db.catalog, passes=[MagicWellFormednessPass()]
    )


@case("QGM401", Severity.ERROR, box="Q")
def _adornment_arity(db):
    graph = build("SELECT e.empno FROM emp e", db)
    graph.top_box.adornment = "bf"  # one output column
    return magic(graph, db)


@case("QGM402", Severity.ERROR, box="Q")
def _adornment_alphabet(db):
    graph = build("SELECT e.empno FROM emp e", db)
    graph.top_box.adornment = "x"
    return magic(graph, db)


@case("QGM403", Severity.WARNING, box="Q")
def _magic_without_distinct(db):
    graph = build("SELECT e.empname FROM emp e", db)  # empname is no key
    graph.top_box.magic_role = MagicRole.MAGIC
    return magic(graph, db)


@case("QGM404", Severity.ERROR)
def _magic_into_nmq(db):
    graph = build(GROUP_SQL, db)
    groupby_box(graph).quantifiers[0].is_magic = True
    return magic(graph, db)


@case("QGM405", Severity.WARNING, box="Q")
def _unregistered_kind(db):
    graph = build("SELECT e.empno FROM emp e", db)
    graph.top_box.kind = "MYSTERY"
    return magic(graph, db)


@case("QGM406", Severity.ERROR)
def _aggregate_in_recursion(db):
    graph, cyclic = recursive_graph(db)
    box = next(b for b in cyclic if b.kind == BoxKind.SELECT)
    box.kind = BoxKind.GROUPBY
    return magic(graph, db)


@case("QGM407", Severity.ERROR)
def _negation_in_recursion(db):
    graph, cyclic = recursive_graph(db)
    members = {id(b) for b in cyclic}
    box, quantifier = next(
        (b, q)
        for b in cyclic
        for q in b.quantifiers
        if id(q.input_box) in members
    )
    quantifier.qtype = QuantifierType.ANTI
    return magic(graph, db)


def dataflow(graph, db):
    return analyze_graph(graph, catalog=db.catalog, passes=[DataflowPass()])


@case("QGM501", Severity.WARNING, box="Q", column="empno")
def _unjustified_adornment(db):
    # Claims empno is bound, but nothing restricts it: no magic link, no
    # consumer predicate, no binding-propagation path.
    graph = build("SELECT e.empno, e.empname FROM emp e", db)
    graph.top_box.adornment = "bf"
    return dataflow(graph, db)


@case("QGM502", Severity.INFO, box="Q")
def _redundant_distinct(db):
    # empno is the primary key, so the output is duplicate-free without
    # the enforcement.
    graph = build("SELECT DISTINCT e.empno, e.empname FROM emp e", db)
    return dataflow(graph, db)


@case("QGM503", Severity.WARNING, box="Q", column="empno")
def _always_null_column(db):
    graph = build("SELECT e.empno FROM emp e", db)
    graph.top_box.columns[0].expr = qe.QLiteral(None)
    return dataflow(graph, db)


def fk_db():
    """Parent/child tables with a NOT NULL foreign key — the shape the
    chase-based equivalence pass reasons about."""
    db = Database()
    db.create_table(
        "parent",
        [ColumnDef("pid", "INT"), ColumnDef("payload", "STR")],
        primary_key=["pid"],
        rows=[(1, "a"), (2, "b")],
    )
    db.create_table(
        "child",
        [
            ColumnDef("cid", "INT"),
            ColumnDef("pid", "INT", not_null=True),
            ColumnDef("val", "INT"),
        ],
        primary_key=["cid"],
        foreign_keys=[(["pid"], "parent", None)],
        rows=[(10, 1, 100), (11, 2, 200)],
    )
    return db


def equivalence(graph, db):
    from repro.analysis.equivalence_checks import EquivalencePass

    return analyze_graph(graph, catalog=db.catalog, passes=[EquivalencePass()])


@case("QGM601", Severity.ERROR, box="Q", rule="evil")
def _chase_refuted_firing(db):
    from repro.analysis.equivalence import EquivalenceChecker
    from repro.qgm.clone import clone_graph

    graph = build("SELECT e.empno FROM emp e WHERE e.salary = 100", db)
    before = clone_graph(graph)
    checker = SoundnessChecker(
        graph, equivalence_checker=EquivalenceChecker(db.catalog)
    )
    graph.top_box.predicates = []  # an unsound "rewrite": drop the filter
    with pytest.raises(QgmError):
        checker.after_firing(graph, "evil", before=before)
    report = AnalysisReport()
    report.extend(checker.attributed["evil"])
    return report


@case("QGM602", Severity.WARNING, box="Q", quantifier="p")
def _semantically_redundant_join(db):
    db = fk_db()
    graph = build(
        "SELECT c.val FROM child c, parent p WHERE c.pid = p.pid", db
    )
    return equivalence(graph, db)


@case("QGM603", Severity.INFO, box="Q")
def _implied_equality(db):
    # e.empno = e2.empno pins one emp row (empno is the key), so the
    # second equality is implied by the FD empno -> empname.
    graph = build(
        "SELECT e.empno FROM emp e, emp e2 "
        "WHERE e.empno = e2.empno AND e.empname = e2.empname",
        db,
    )
    return equivalence(graph, db)


@case("QGM604", Severity.WARNING, box="Q")
def _contradictory_predicates(db):
    graph = build(
        "SELECT e.empno FROM emp e WHERE e.salary > 100 AND e.salary < 50",
        db,
    )
    return Analyzer([DeadCodePass()]).analyze(graph)


@case("QGM605", Severity.INFO, box="Q")
def _implied_comparison(db):
    # salary >= 200 subsumes salary > 100: the weaker bound is redundant.
    graph = build(
        "SELECT e.empno FROM emp e "
        "WHERE e.salary > 100 AND e.salary >= 200",
        db,
    )
    return equivalence(graph, db)


def test_every_registered_code_has_a_case():
    assert set(CASES) == set(CODES)


@pytest.mark.parametrize("code", sorted(CASES))
def test_diagnostic_case(code, typed_db):
    severity, expect, builder = CASES[code]
    report = builder(typed_db)
    findings = report.by_code(code)
    assert findings, "expected %s, got %s" % (code, report.codes())
    finding = findings[0]
    assert finding.severity == severity
    assert finding.box is not None
    assert finding.location.startswith("box ")
    assert finding.render().startswith("%s %s [box " % (severity, code))
    for attribute, value in expect.items():
        assert getattr(finding, attribute) == value


# -- framework behaviour ------------------------------------------------------


def test_clean_graph_produces_empty_report(typed_db):
    graph = build(
        "SELECT e.empno, d.deptname FROM emp e, dept d "
        "WHERE e.workdept = d.deptno AND e.salary > 100",
        typed_db,
    )
    report = analyze_graph(graph, catalog=typed_db.catalog)
    assert not report.has_errors
    assert report.summary().startswith("0 error(s)")
    assert set(report.pass_seconds) == {
        "structural", "typecheck", "deadcode", "magic", "dataflow",
        "equivalence",
    }


def test_one_run_collects_multiple_distinct_codes(typed_db):
    graph = build("SELECT e.empno FROM emp e WHERE e.empname > 5", typed_db)
    graph.top_box.distinct = "BOGUS"
    report = analyze_graph(graph, catalog=typed_db.catalog)
    assert {"QGM101", "QGM201"} <= set(report.codes())
    ranks = [Severity.rank(d.severity) for d in report.sorted()]
    assert ranks == sorted(ranks)


def test_emit_rejects_unregistered_codes():
    with pytest.raises(ValueError):
        StructuralPass().emit(
            AnalysisReport(), "QGM999", Severity.ERROR, "nope"
        )


def test_validate_graph_wrapper_raises_with_code(typed_db):
    graph = build("SELECT e.empno FROM emp e", typed_db)
    assert validate_graph(graph)
    graph.top_box.distinct = "BOGUS"
    with pytest.raises(QgmError) as excinfo:
        validate_graph(graph)
    assert excinfo.value.context["code"] == "QGM101"
    assert "box" in excinfo.value.context["location"]


def test_untyped_schema_stays_silent():
    db = Database()
    db.create_table("t", ["a", "b"], rows=[(1, "x")])
    graph = build("SELECT t.a FROM t t WHERE t.b > 5", db)
    report = analyze_graph(graph, catalog=db.catalog, passes=[TypeCheckPass()])
    assert not report.diagnostics


def test_docs_table_matches_registry():
    import os

    path = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "docs",
        "diagnostics.md",
    )
    with open(path) as handle:
        text = handle.read()
    documented = set(re.findall(r"^\| (QGM\d{3}) \|", text, flags=re.M))
    assert documented == set(CODES)


# -- soundness checker --------------------------------------------------------


def test_soundness_checker_attributes_new_error(typed_db):
    graph = build("SELECT e.empno FROM emp e", typed_db)
    checker = SoundnessChecker(graph)
    context = RuleContext(graph)
    graph.top_box.quantifiers[0].parent_box = None
    with pytest.raises(QgmError) as excinfo:
        checker.after_firing(graph, "merge", context)
    assert excinfo.value.context["rule"] == "merge"
    assert "QGM102" in excinfo.value.context["codes"]
    assert context.soundness_violations == {"merge": ["QGM102"]}
    assert context.observability()["soundness_violations"] == {
        "merge": ["QGM102"]
    }
    assert checker.attributed["merge"][0].rule == "merge"


def test_soundness_checker_ignores_preexisting_problems(typed_db):
    graph = build("SELECT e.empno FROM emp e", typed_db)
    graph.top_box.quantifiers[0].parent_box = None  # broken *before* baseline
    checker = SoundnessChecker(graph)
    assert checker.after_firing(graph, "merge", RuleContext(graph)) == []
    assert checker.attributed == {}


def test_soundness_checker_absorbs_new_warnings(typed_db):
    graph = build("SELECT e.empname FROM emp e", typed_db)
    checker = SoundnessChecker(graph)
    graph.top_box.magic_role = MagicRole.MAGIC  # introduces QGM403 (warning)
    fresh = checker.after_firing(graph, "distinct_pullup", RuleContext(graph))
    assert [d.code for d in fresh] == ["QGM403"]
    assert fresh[0].rule == "distinct_pullup"
    # Absorbed into the baseline: the next diff is clean.
    assert checker.after_firing(graph, "merge", RuleContext(graph)) == []


def test_soundness_passes_exclude_deadcode_and_types():
    names = {p.name for p in soundness_passes()}
    assert names == {"structural", "magic", "dataflow", "equivalence"}
    shallow = next(p for p in soundness_passes() if p.name == "equivalence")
    assert shallow.deep is False


# -- end-to-end: paranoid mode attributes chaos corruption to its rule --------


@pytest.fixture
def paper_conn():
    from repro.workloads.empdept import PAPER_VIEWS_SQL, build_empdept_database

    connection = Connection(
        build_empdept_database(
            n_departments=10, employees_per_department=4, seed=11
        )
    )
    connection.run_script(PAPER_VIEWS_SQL)
    return connection


PAPER_SQL = (
    "SELECT d.deptname, s.avgsalary FROM department d, avgMgrSal s "
    "WHERE d.deptno = s.workdept AND d.deptname = 'Planning'"
)


def test_corrupting_rule_is_attributed_in_outcome_stats(paper_conn):
    from tests.helpers import canonical

    clean = canonical(
        paper_conn.explain_execute(PAPER_SQL, strategy="original").rows
    )
    policy = ResiliencePolicy(
        fault_plan=FaultPlan().corrupt_rule("merge", on_firing=1),
        paranoid=True,
    )
    outcome = paper_conn.explain_execute(
        PAPER_SQL, strategy="emst", resilience=policy
    )
    assert canonical(outcome.rows) == clean
    assert "merge" in outcome.resilience.quarantined
    violations = outcome.stats["soundness_violations"]
    assert violations["merge"], violations
    assert all(code in CODES for code in violations["merge"])


def test_soundness_opt_out_restores_bare_validate(paper_conn):
    policy = ResiliencePolicy(
        fault_plan=FaultPlan().corrupt_rule("merge", on_firing=1),
        paranoid=True,
        soundness=False,
    )
    outcome = paper_conn.explain_execute(
        PAPER_SQL, strategy="emst", resilience=policy
    )
    assert "merge" in outcome.resilience.quarantined
    assert "soundness_violations" not in outcome.stats or not outcome.stats[
        "soundness_violations"
    ]


def test_explain_execute_analyze_attaches_report(paper_conn):
    outcome = paper_conn.explain_execute(
        PAPER_SQL, strategy="emst", analyze=True
    )
    assert isinstance(outcome.diagnostics, AnalysisReport)
    assert not outcome.diagnostics.has_errors
    assert outcome.stats["analysis"]["error"] == 0


# -- the lint CLI -------------------------------------------------------------


BROKEN_SQL = """
CREATE TABLE people (id INT, name VARCHAR, height FLOAT);
SELECT p.name FROM people p WHERE p.name > 5 AND p.height LIKE 'x%';
SELECT p.name + 1 FROM people p;
"""

CLEAN_SQL = """
CREATE TABLE people (id INT, name VARCHAR, height FLOAT);
SELECT p.name FROM people p WHERE p.id > 5;
"""


def test_lint_cli_broken_file_reports_codes_and_exits_1(tmp_path, capsys):
    from repro.analysis import lint

    path = tmp_path / "broken.sql"
    path.write_text(BROKEN_SQL)
    status = lint.main([str(path)])
    output = capsys.readouterr().out
    assert status == 1
    fired = set(re.findall(r"QGM\d{3}", output))
    assert {"QGM201", "QGM204"} <= fired
    assert len(fired) >= 2
    assert "[box " in output  # diagnostics carry box locations


def test_lint_cli_clean_file_exits_0(tmp_path, capsys):
    from repro.analysis import lint

    path = tmp_path / "clean.sql"
    path.write_text(CLEAN_SQL)
    status = lint.main([str(path)])
    output = capsys.readouterr().out
    assert status == 0
    assert "0 error(s)" in output


def test_lint_cli_strict_promotes_warnings(tmp_path, capsys):
    from repro.analysis import lint

    path = tmp_path / "warn.sql"
    path.write_text(
        "CREATE TABLE t (a INT);"
        "SELECT t.a FROM t t WHERE t.a LIKE 'x%'"  # QGM205, warning only
    )
    assert lint.main([str(path)]) == 0
    capsys.readouterr()
    assert lint.main(["--strict", str(path)]) == 1


def test_lint_cli_unreadable_file_exits_2(tmp_path, capsys):
    from repro.analysis import lint

    assert lint.main([str(tmp_path / "missing.sql")]) == 2


def test_shipped_workloads_lint_clean():
    from repro.analysis.lint import lint_workloads

    results = lint_workloads(scale=0.02, rewritten=True)
    assert len(results) >= 18  # A-H + empdept, built and rewritten
    for label, report in results:
        assert not report.has_errors, "%s: %s" % (label, report.render())
        assert not report.warnings, "%s: %s" % (label, report.render())
