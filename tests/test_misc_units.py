"""Odds-and-ends unit coverage: sort helpers, engine fallbacks, rewrite
budget, constant evaluation, plan descriptions."""

import pytest

from repro import Connection, Database
from repro.errors import NotSupportedError, ResourceExhaustedError


# -- ORDER BY helpers ---------------------------------------------------------


def test_order_by_mixed_directions():
    db = Database()
    db.create_table(
        "t", ["a", "b"], rows=[(1, "x"), (1, "a"), (2, "m"), (None, "z")]
    )
    rows = Connection(db).execute("SELECT a, b FROM t ORDER BY a DESC, b").rows
    assert rows == [(2, "m"), (1, "a"), (1, "x"), (None, "z")]


def test_order_by_desc_nulls_still_last():
    db = Database()
    db.create_table("t", ["a"], rows=[(None,), (3,), (1,)])
    rows = Connection(db).execute("SELECT a FROM t ORDER BY a DESC").rows
    assert rows == [(3,), (1,), (None,)]


def test_limit_without_order():
    db = Database()
    db.create_table("t", ["a"], rows=[(i,) for i in range(10)])
    rows = Connection(db).execute("SELECT a FROM t LIMIT 4").rows
    assert len(rows) == 4


# -- evaluator fallbacks ----------------------------------------------------------


def test_join_order_with_unknown_names_falls_back():
    from repro.sql import parse_statement
    from repro.qgm import build_query_graph
    from repro.engine import Evaluator

    db = Database()
    db.create_table("t", ["a"], rows=[(1,)])
    db.create_table("s", ["a"], rows=[(1,)])
    graph = build_query_graph(
        parse_statement("SELECT t.a FROM t, s WHERE s.a = t.a"), db.catalog
    )
    bogus_orders = {graph.top_box.box_id: ["nope", "also_nope"]}
    rows = Evaluator(graph, db, join_orders=bogus_orders).run().rows
    assert rows == [(1,)]


def test_memoize_correlated_toggle():
    from repro.sql import parse_statement
    from repro.qgm import build_query_graph
    from repro.engine import Evaluator

    db = Database()
    db.create_table("t", ["g", "v"], rows=[(1, 5), (1, 6), (2, 7)])
    sql = (
        "SELECT g FROM t outer1 WHERE v > "
        "(SELECT AVG(v) FROM t i WHERE i.g = outer1.g)"
    )
    graph = build_query_graph(parse_statement(sql), db.catalog)
    memo = Evaluator(graph, db, memoize_correlated=True)
    memo_rows = memo.run().rows
    graph2 = build_query_graph(parse_statement(sql), db.catalog)
    plain = Evaluator(graph2, db, memoize_correlated=False)
    plain_rows = plain.run().rows
    assert sorted(memo_rows) == sorted(plain_rows)
    assert memo.stats.correlated_evaluations <= plain.stats.correlated_evaluations


# -- rewrite engine budget -----------------------------------------------------------


def test_rewrite_budget_guards_against_livelock():
    from repro.rewrite import RewriteEngine
    from repro.rewrite.rule import RewriteRule
    from repro.qgm import build_query_graph
    from repro.sql import parse_statement

    class Livelock(RewriteRule):
        name = "livelock"
        phases = frozenset({1})

        def apply(self, box, context):
            return True  # claims change forever

    db = Database()
    db.create_table("t", ["a"], rows=[])
    graph = build_query_graph(parse_statement("SELECT a FROM t"), db.catalog)
    with pytest.raises(ResourceExhaustedError) as info:
        RewriteEngine([Livelock()]).run_phase(graph, 1)
    assert info.value.limit == "max_rewrite_sweeps"


# -- constant evaluation -----------------------------------------------------------------


def test_constant_value_arithmetic():
    from repro.api import _constant_value
    from repro.sql import parse_expression

    assert _constant_value(parse_expression("2 + 3 * 4")) == 14
    assert _constant_value(parse_expression("-(2)")) == -2
    assert _constant_value(parse_expression("'a' || 'b'")) == "ab"
    with pytest.raises(NotSupportedError):
        _constant_value(parse_expression("some_column"))


# -- plan description / stats ----------------------------------------------------------------


def test_box_plan_total_cost_multiplicity():
    from repro.optimizer.plan import BoxPlan

    plan = BoxPlan(box_name="x", kind="SELECT", cost=10.0, multiplicity=4.0)
    assert plan.total_cost == 40.0


def test_evaluator_stats_dict_keys():
    from repro.engine.evaluator import EvaluatorStats

    stats = EvaluatorStats()
    assert set(stats.as_dict()) == {
        "box_evaluations",
        "rows_produced",
        "join_probes",
        "correlated_evaluations",
    }


def test_result_iteration_protocol():
    db = Database()
    db.create_table("t", ["a"], rows=[(1,), (2,)])
    result = Connection(db).execute("SELECT a FROM t ORDER BY a")
    assert [row for row in result] == [(1,), (2,)]
    assert len(result) == 2


# -- graph helpers --------------------------------------------------------------------------


def test_fresh_name_uniqueness():
    from repro.qgm.model import QueryGraph

    graph = QueryGraph()
    names = {graph.fresh_name("x") for _ in range(5)}
    assert len(names) == 5


def test_use_count_and_find_box():
    from repro.sql import parse_statement
    from repro.qgm import build_query_graph

    db = Database()
    db.create_table("t", ["a"], rows=[])
    graph = build_query_graph(
        parse_statement("SELECT t1.a FROM t t1, t t2 WHERE t1.a = t2.a"),
        db.catalog,
    )
    base = graph.find_box("T")
    assert base is not None
    assert graph.use_count(base) == 2
    assert graph.find_box("NOPE") is None
