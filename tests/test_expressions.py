"""Runtime expression evaluation: three-valued logic, NULL propagation,
LIKE, scalar functions."""

import pytest

from repro.engine.expressions import (
    arithmetic,
    compare,
    evaluate,
    like_match,
    predicate_holds,
    sql_and,
    sql_not,
    sql_or,
)
from repro.errors import ExecutionError
from repro.qgm import expr as qe
from repro.qgm.model import Box, BoxKind, OutputColumn, Quantifier, QuantifierType


def make_env(values, columns=("a", "b")):
    base = Box(
        kind=BoxKind.BASE,
        name="T",
        columns=[OutputColumn(name=c) for c in columns],
    )
    quantifier = Quantifier(name="t", qtype=QuantifierType.FOREACH, input_box=base)
    return quantifier, {quantifier: tuple(values)}


# -- three-valued logic -------------------------------------------------------


@pytest.mark.parametrize(
    "left,right,expected",
    [
        (True, True, True),
        (True, False, False),
        (False, None, False),
        (True, None, None),
        (None, None, None),
    ],
)
def test_sql_and(left, right, expected):
    assert sql_and(left, right) is expected


@pytest.mark.parametrize(
    "left,right,expected",
    [
        (False, False, False),
        (True, None, True),
        (False, None, None),
        (None, None, None),
    ],
)
def test_sql_or(left, right, expected):
    assert sql_or(left, right) is expected


def test_sql_not():
    assert sql_not(True) is False
    assert sql_not(False) is True
    assert sql_not(None) is None


def test_comparisons_with_null_are_unknown():
    for op in ("=", "<>", "<", "<=", ">", ">="):
        assert compare(op, None, 1) is None
        assert compare(op, 1, None) is None


def test_comparisons_basic():
    assert compare("=", 2, 2) is True
    assert compare("<>", 2, 3) is True
    assert compare("<", "a", "b") is True
    assert compare(">=", 5, 5) is True


def test_incomparable_types_raise():
    with pytest.raises(ExecutionError):
        compare("<", 1, "x")


# -- arithmetic ----------------------------------------------------------------


def test_arithmetic_null_propagates():
    for op in ("+", "-", "*", "/", "%", "||"):
        assert arithmetic(op, None, 1) is None


def test_integer_division_exact_stays_int():
    assert arithmetic("/", 6, 3) == 2
    assert isinstance(arithmetic("/", 6, 3), int)
    assert arithmetic("/", 7, 2) == 3.5


def test_division_by_zero_raises():
    with pytest.raises(ExecutionError):
        arithmetic("/", 1, 0)
    with pytest.raises(ExecutionError):
        arithmetic("%", 1, 0)


def test_concat_coerces_to_string():
    assert arithmetic("||", "x", 1) == "x1"


# -- LIKE ------------------------------------------------------------------------


@pytest.mark.parametrize(
    "value,pattern,expected",
    [
        ("hello", "h%", True),
        ("hello", "%lo", True),
        ("hello", "h_llo", True),
        ("hello", "H%", False),
        ("a.b", "a.b", True),
        ("axb", "a.b", False),  # dot is literal
        (None, "x", None),
        ("x", None, None),
    ],
)
def test_like_match(value, pattern, expected):
    assert like_match(value, pattern) is expected


# -- evaluate over environments ---------------------------------------------------


def test_column_reference_lookup():
    quantifier, env = make_env((7, 8))
    assert evaluate(quantifier.ref("b"), env) == 8


def test_unbound_quantifier_raises():
    quantifier, _ = make_env((7, 8))
    with pytest.raises(ExecutionError):
        evaluate(quantifier.ref("a"), {})


def test_case_expression_first_true_branch():
    quantifier, env = make_env((2, 0))
    expr = qe.QCase(
        branches=[
            (qe.QBinary("=", quantifier.ref("a"), qe.QLiteral(1)), qe.QLiteral("one")),
            (qe.QBinary("=", quantifier.ref("a"), qe.QLiteral(2)), qe.QLiteral("two")),
        ],
        default=qe.QLiteral("other"),
    )
    assert evaluate(expr, env) == "two"


def test_case_without_default_yields_null():
    quantifier, env = make_env((9, 0))
    expr = qe.QCase(
        branches=[(qe.QBinary("=", quantifier.ref("a"), qe.QLiteral(1)), qe.QLiteral("one"))]
    )
    assert evaluate(expr, env) is None


def test_is_null_and_negation():
    quantifier, env = make_env((None, 1))
    assert evaluate(qe.QIsNull(operand=quantifier.ref("a")), env) is True
    assert evaluate(qe.QIsNull(operand=quantifier.ref("a"), negated=True), env) is False


def test_predicate_holds_only_on_true():
    quantifier, env = make_env((None, 1))
    unknown = qe.QBinary("=", quantifier.ref("a"), qe.QLiteral(1))
    assert predicate_holds(unknown, env) is False


# -- scalar functions ----------------------------------------------------------------


def test_builtin_scalar_functions():
    env = {}
    assert evaluate(qe.QFunc("UPPER", [qe.QLiteral("ab")]), env) == "AB"
    assert evaluate(qe.QFunc("LOWER", [qe.QLiteral("AB")]), env) == "ab"
    assert evaluate(qe.QFunc("LENGTH", [qe.QLiteral("abc")]), env) == 3
    assert evaluate(qe.QFunc("ABS", [qe.QLiteral(-4)]), env) == 4
    assert evaluate(qe.QFunc("MOD", [qe.QLiteral(7), qe.QLiteral(3)]), env) == 1
    assert (
        evaluate(qe.QFunc("COALESCE", [qe.QLiteral(None), qe.QLiteral(5)]), env) == 5
    )
    assert (
        evaluate(qe.QFunc("SUBSTR", [qe.QLiteral("hello"), qe.QLiteral(2), qe.QLiteral(3)]), env)
        == "ell"
    )


def test_scalar_functions_null_propagation():
    env = {}
    assert evaluate(qe.QFunc("UPPER", [qe.QLiteral(None)]), env) is None
    assert evaluate(qe.QFunc("ABS", [qe.QLiteral(None)]), env) is None


def test_unknown_function_raises():
    with pytest.raises(ExecutionError):
        evaluate(qe.QFunc("NOPE", [qe.QLiteral(1)]), {})


def test_custom_scalar_function_registration():
    from repro.engine.expressions import scalar_function

    @scalar_function("DOUBLE_IT")
    def double_it(value):
        return None if value is None else value * 2

    assert evaluate(qe.QFunc("DOUBLE_IT", [qe.QLiteral(21)]), {}) == 42


def test_aggregate_outside_groupby_raises():
    with pytest.raises(ExecutionError):
        evaluate(qe.QAggregate(func="SUM", arg=qe.QLiteral(1)), {})


# -- compiled expressions ------------------------------------------------------


def test_compile_expr_matches_evaluate():
    from repro.engine.expressions import compile_expr

    quantifier, env = make_env((3, None))
    cases = [
        qe.QLiteral(7),
        quantifier.ref("a"),
        qe.QBinary("+", quantifier.ref("a"), qe.QLiteral(4)),
        qe.QBinary("=", quantifier.ref("a"), qe.QLiteral(3)),
        qe.QBinary("AND", qe.QLiteral(True), qe.QIsNull(operand=quantifier.ref("b"))),
        qe.QBinary("OR", qe.QLiteral(False), qe.QLiteral(None)),
        qe.QUnary("NOT", qe.QLiteral(None)),
        qe.QUnary("-", quantifier.ref("a")),
        qe.QIsNull(operand=quantifier.ref("b"), negated=True),
        qe.QLike(operand=qe.QLiteral("abc"), pattern=qe.QLiteral("a%")),
        qe.QFunc("ABS", [qe.QUnary("-", quantifier.ref("a"))]),
        qe.QCase(
            branches=[(qe.QBinary("=", quantifier.ref("a"), qe.QLiteral(3)), qe.QLiteral("hit"))],
            default=qe.QLiteral("miss"),
        ),
    ]
    for expr in cases:
        assert compile_expr(expr)(env) == evaluate(expr, env), str(expr)


def test_compile_predicate_true_only():
    from repro.engine.expressions import compile_predicate

    quantifier, env = make_env((3, None))
    unknown = qe.QBinary("=", quantifier.ref("b"), qe.QLiteral(1))
    assert compile_predicate(unknown)(env) is False
    true = qe.QBinary("=", quantifier.ref("a"), qe.QLiteral(3))
    assert compile_predicate(true)(env) is True


def test_compile_expr_unbound_quantifier_raises():
    from repro.engine.expressions import compile_expr

    quantifier, _ = make_env((1, 2))
    fn = compile_expr(quantifier.ref("a"))
    with pytest.raises(ExecutionError):
        fn({})


def test_compile_expr_rejects_aggregates():
    from repro.engine.expressions import compile_expr

    with pytest.raises(ExecutionError):
        compile_expr(qe.QAggregate(func="SUM", arg=qe.QLiteral(1)))
