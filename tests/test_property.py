"""Property-based tests (hypothesis).

The central property is the paper's correctness contract: for *any* query
in the supported dialect, the EMST-transformed plan and the correlated
execution strategy return exactly the rows of the unoptimized query.
Random databases and random queries exercise the whole pipeline.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Connection, Database
from repro.engine.expressions import sql_and, sql_not, sql_or
from repro.sql import parse_statement, to_sql

from tests.helpers import canonical

# ---------------------------------------------------------------------------
# Three-valued logic laws
# ---------------------------------------------------------------------------

tristate = st.sampled_from([True, False, None])


@given(tristate, tristate)
def test_and_commutative(a, b):
    assert sql_and(a, b) is sql_and(b, a)


@given(tristate, tristate)
def test_or_commutative(a, b):
    assert sql_or(a, b) is sql_or(b, a)


@given(tristate, tristate, tristate)
def test_and_associative(a, b, c):
    assert sql_and(sql_and(a, b), c) is sql_and(a, sql_and(b, c))


@given(tristate, tristate)
def test_de_morgan(a, b):
    assert sql_not(sql_and(a, b)) is sql_or(sql_not(a), sql_not(b))
    assert sql_not(sql_or(a, b)) is sql_and(sql_not(a), sql_not(b))


@given(tristate)
def test_double_negation(a):
    assert sql_not(sql_not(a)) is a


# ---------------------------------------------------------------------------
# Aggregates against reference implementations
# ---------------------------------------------------------------------------

values = st.lists(st.one_of(st.integers(-50, 50), st.none()), max_size=30)


@given(values)
def test_sum_matches_reference(xs):
    from repro.engine.aggregates import make_accumulator

    acc = make_accumulator("SUM")
    for x in xs:
        acc.add(x)
    non_null = [x for x in xs if x is not None]
    assert acc.result() == (sum(non_null) if non_null else None)


@given(values)
def test_count_and_avg_match_reference(xs):
    from repro.engine.aggregates import make_accumulator

    count = make_accumulator("COUNT")
    avg = make_accumulator("AVG")
    for x in xs:
        count.add(x)
        avg.add(x)
    non_null = [x for x in xs if x is not None]
    assert count.result() == len(non_null)
    if non_null:
        assert abs(avg.result() - sum(non_null) / len(non_null)) < 1e-9
    else:
        assert avg.result() is None


@given(values)
def test_min_max_match_reference(xs):
    from repro.engine.aggregates import make_accumulator

    low = make_accumulator("MIN")
    high = make_accumulator("MAX")
    for x in xs:
        low.add(x)
        high.add(x)
    non_null = [x for x in xs if x is not None]
    assert low.result() == (min(non_null) if non_null else None)
    assert high.result() == (max(non_null) if non_null else None)


# ---------------------------------------------------------------------------
# LIKE against a reference implementation
# ---------------------------------------------------------------------------


@given(
    st.text(alphabet="ab%_", max_size=6),
    st.text(alphabet="ab", max_size=6),
)
def test_like_agrees_with_fnmatch_style_reference(pattern, value):
    import re

    from repro.engine.expressions import like_match

    regex = "^" + "".join(
        ".*" if ch == "%" else "." if ch == "_" else re.escape(ch) for ch in pattern
    ) + "$"
    expected = re.match(regex, value, re.DOTALL) is not None
    assert like_match(value, pattern) is expected


# ---------------------------------------------------------------------------
# Printer round-trip on generated queries
# ---------------------------------------------------------------------------

_columns_t = ["a", "b", "c"]
_columns_s = ["a", "d"]


@st.composite
def simple_queries(draw):
    """Generate SQL text for a random single-block query over t and s."""
    use_join = draw(st.booleans())
    where_parts = []
    ops = st.sampled_from(["=", "<>", "<", "<=", ">", ">="])
    for _ in range(draw(st.integers(0, 2))):
        column = draw(st.sampled_from(["t.a", "t.b"]))
        where_parts.append(
            "%s %s %d" % (column, draw(ops), draw(st.integers(-5, 5)))
        )
    if use_join:
        where_parts.append("t.a %s s.a" % draw(st.sampled_from(["=", "="])))
    group = draw(st.booleans())
    if group:
        select = "t.a, COUNT(*) AS n, SUM(t.b) AS total"
        tail = " GROUP BY t.a"
        if draw(st.booleans()):
            tail += " HAVING COUNT(*) >= %d" % draw(st.integers(0, 2))
    else:
        distinct = "DISTINCT " if draw(st.booleans()) else ""
        select = distinct + ("t.a, s.d" if use_join else "t.a, t.b")
        tail = ""
    from_clause = "t, s" if use_join else "t"
    where = (" WHERE " + " AND ".join(where_parts)) if where_parts else ""
    return "SELECT %s FROM %s%s%s" % (select, from_clause, where, tail)


@given(simple_queries())
@settings(max_examples=60, deadline=None)
def test_printer_round_trip_random_queries(sql):
    printed = to_sql(parse_statement(sql))
    assert to_sql(parse_statement(printed)) == printed


# ---------------------------------------------------------------------------
# Strategy equivalence on random data and random queries
# ---------------------------------------------------------------------------

rows_t = st.lists(
    st.tuples(
        st.integers(0, 5),
        st.one_of(st.integers(0, 5), st.none()),
        st.sampled_from(["x", "y", None]),
    ),
    max_size=12,
)
rows_s = st.lists(
    st.tuples(st.one_of(st.integers(0, 5), st.none()), st.integers(0, 9)),
    max_size=8,
)


def _database(t_rows, s_rows):
    db = Database()
    db.create_table("t", ["a", "b", "c"], rows=t_rows)
    db.create_table("s", ["a", "d"], rows=s_rows)
    return db


@given(rows_t, rows_s, simple_queries())
@settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_strategies_agree_on_random_queries(t_rows, s_rows, sql):
    db = _database(t_rows, s_rows)
    conn = Connection(db)
    reference = None
    for strategy in ("norewrite", "original", "correlated", "emst"):
        rows = canonical(conn.explain_execute(sql, strategy=strategy).rows)
        if reference is None:
            reference = rows
        else:
            assert rows == reference, "%s disagrees on %s" % (strategy, sql)


@given(rows_t, rows_s)
@settings(max_examples=25, deadline=None)
def test_strategies_agree_on_view_query(t_rows, s_rows):
    db = _database(t_rows, s_rows)
    db.catalog.add_view(
        parse_statement(
            "CREATE VIEW v (a, total) AS SELECT a, SUM(b) FROM t GROUP BY a"
        )
    )
    sql = "SELECT s.d, v.total FROM s, v WHERE v.a = s.a AND s.d > 2"
    conn = Connection(db)
    reference = None
    for strategy in ("original", "correlated", "emst"):
        rows = canonical(conn.explain_execute(sql, strategy=strategy).rows)
        if reference is None:
            reference = rows
        else:
            assert rows == reference


@given(rows_t, rows_s)
@settings(max_examples=25, deadline=None)
def test_strategies_agree_on_subquery_predicates(t_rows, s_rows):
    db = _database(t_rows, s_rows)
    conn = Connection(db)
    for sql in (
        "SELECT a FROM t WHERE a IN (SELECT a FROM s WHERE d > 3)",
        "SELECT a FROM t WHERE a NOT IN (SELECT a FROM s)",
        "SELECT a, b FROM t WHERE EXISTS (SELECT d FROM s WHERE s.a = t.a)",
        "SELECT a FROM t WHERE NOT EXISTS (SELECT d FROM s WHERE s.a = t.a AND s.d > t.a)",
    ):
        reference = None
        for strategy in ("original", "correlated", "emst"):
            rows = canonical(conn.explain_execute(sql, strategy=strategy).rows)
            if reference is None:
                reference = rows
            else:
                assert rows == reference, "%s disagrees on %s" % (strategy, sql)


# ---------------------------------------------------------------------------
# Key derivation soundness: a derived key is really unique in the output
# ---------------------------------------------------------------------------


@given(rows_s)
@settings(max_examples=30, deadline=None)
def test_derived_keys_are_sound(s_rows):
    # Deduplicate on 'a' to make it a genuine primary key.
    seen = set()
    unique_rows = []
    for row in s_rows:
        if row[0] is not None and row[0] not in seen:
            seen.add(row[0])
            unique_rows.append(row)
    db = Database()
    db.create_table("s", ["a", "d"], primary_key=["a"], rows=unique_rows)
    from repro.qgm import build_query_graph
    from repro.qgm.keys import box_keys
    from repro.engine import Evaluator

    graph = build_query_graph(
        parse_statement("SELECT a, d FROM s WHERE d >= 0"), db.catalog
    )
    keys = box_keys(graph.top_box)
    result = Evaluator(graph, db).run()
    for key in keys:
        ordinals = [
            i for i, name in enumerate(result.columns) if name.lower() in key
        ]
        projected = [tuple(row[i] for i in ordinals) for row in result.rows]
        assert len(projected) == len(set(projected)), (
            "derived key %s is violated" % sorted(key)
        )


# ---------------------------------------------------------------------------
# Set operations against multiset reference
# ---------------------------------------------------------------------------

small_lists = st.lists(st.integers(0, 3), max_size=8)


@given(small_lists, small_lists)
@settings(max_examples=40, deadline=None)
def test_except_all_matches_multiset_reference(left, right):
    from collections import Counter

    db = Database()
    db.create_table("l", ["a"], rows=[(x,) for x in left])
    db.create_table("r", ["a"], rows=[(x,) for x in right])
    rows = (
        Connection(db)
        .explain_execute("SELECT a FROM l EXCEPT ALL SELECT a FROM r")
        .rows
    )
    expected = Counter(left) - Counter(right)
    assert Counter(x for (x,) in rows) == expected


@given(small_lists, small_lists)
@settings(max_examples=40, deadline=None)
def test_intersect_all_matches_multiset_reference(left, right):
    from collections import Counter

    db = Database()
    db.create_table("l", ["a"], rows=[(x,) for x in left])
    db.create_table("r", ["a"], rows=[(x,) for x in right])
    rows = (
        Connection(db)
        .explain_execute("SELECT a FROM l INTERSECT ALL SELECT a FROM r")
        .rows
    )
    expected = Counter(left) & Counter(right)
    assert Counter(x for (x,) in rows) == expected
