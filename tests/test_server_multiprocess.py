"""The multi-process serving layer: differential correctness against the
in-process engine, shared-memory table sync, the cross-request result
cache (including the never-stale key invariant under random DML/read
interleavings), statement-cache warming, and worker-crash chaos.

The differential discipline mirrors ``tests/test_differential_executor``:
every workload query (decision support, empdept, recursive closure) runs
through a forked-worker server under both executors and both rewrite
strategies, and each answer must equal the same statement executed on an
in-process :class:`~repro.api.Connection` over the same database.
"""

import copy
import os
import signal
import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Connection, Database
from repro.errors import QueryCancelledError, WorkerCrashedError
from repro.server.core import QueryServer, ServerConfig
from repro.server.result_cache import ResultCache
from repro.server.workers import SharedTableStore, apply_sync, fork_available
from repro.sql import parse_statement
from repro.workloads.decision_support import build_decision_support_database
from repro.workloads.empdept import PAPER_VIEWS_SQL, build_empdept_database

from tests.helpers import canonical
from tests.test_differential_executor import CLOSURE_QUERIES
from tests.test_integration_suite import DS_QUERIES, EMP_QUERIES

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)

DS_VIEWS_SQL = """
CREATE VIEW custRev (custkey, rev, norders) AS
  SELECT o.custkey, SUM(o.totalprice), COUNT(*)
  FROM orders o GROUP BY o.custkey;
CREATE VIEW bigParts (partkey, pname, brand) AS
  SELECT partkey, pname, brand FROM part WHERE size > 25;
CREATE VIEW orderValue (orderkey, value) AS
  SELECT l.orderkey, SUM(l.extendedprice * (1 - l.discount))
  FROM lineitem l GROUP BY l.orderkey;
"""

PARAM_QUERY = (
    "SELECT d.deptname, s.avgsalary FROM department d, avgMgrSal s "
    "WHERE d.deptno = s.workdept AND d.deptname = ?"
)
SLOW_COUNT_QUERY = (
    "SELECT COUNT(*) FROM employee e1, employee e2, employee e3 "
    "WHERE e1.salary > 0 AND e2.salary > 0 AND e3.salary > 0"
)


def _mp_server(database, **overrides):
    config = ServerConfig(
        workers=overrides.pop("workers", 2),
        result_cache_capacity=overrides.pop("result_cache_capacity", 0),
        **overrides,
    )
    server = QueryServer(database, config)
    assert server.pool is not None, "worker pool failed to start"
    return server


@pytest.fixture(scope="module")
def ds_mp():
    database = build_decision_support_database(scale=0.4, seed=77)
    Connection(database).run_script(DS_VIEWS_SQL)
    server = _mp_server(database)
    yield server, Connection(database)
    server.shutdown()


@pytest.fixture(scope="module")
def emp_mp():
    database = build_empdept_database(
        n_departments=30, employees_per_department=6, seed=78
    )
    Connection(database).run_script(PAPER_VIEWS_SQL)
    server = _mp_server(database)
    yield server, Connection(database)
    server.shutdown()


@pytest.fixture(scope="module")
def closure_mp():
    edges = []
    for base in (0, 100, 200):
        edges.extend((base + i, base + i + 1) for i in range(25))
        edges.append((base + 25, base))
        edges.append((base + 5, base + 17))
    database = Database()
    database.create_table("edge", ["src", "dst"], rows=edges)
    server = _mp_server(database)
    yield server, Connection(database)
    server.shutdown()


def assert_differential(server, oracle, sql):
    """The MP server must agree with the in-process connection for every
    (strategy, executor) combination, with no silent strategy fallback,
    and every server answer must have come from a worker process."""
    query = parse_statement(sql)
    for strategy in ("original", "emst"):
        for executor in ("tuple", "batch"):
            response = server.handle_query(
                sql, strategy=strategy, executor=executor
            )
            assert response.get("worker_pid"), (
                "query did not run on a worker (%s/%s): %r"
                % (strategy, executor, sql)
            )
            assert response["executed_strategy"] == strategy, (
                "silent fallback from %s on %r" % (strategy, sql)
            )
            expected = oracle.execute_query(
                query, strategy=strategy, executor=executor
            )
            assert canonical(map(tuple, response["rows"])) == canonical(
                expected.rows
            ), "MP server disagrees under %s/%s on %r" % (
                strategy, executor, sql,
            )


@needs_fork
@pytest.mark.parametrize("index", range(len(DS_QUERIES)))
def test_decision_support_differential_mp(ds_mp, index):
    server, oracle = ds_mp
    assert_differential(server, oracle, DS_QUERIES[index])


@needs_fork
@pytest.mark.parametrize("index", range(len(EMP_QUERIES)))
def test_empdept_differential_mp(emp_mp, index):
    server, oracle = emp_mp
    assert_differential(server, oracle, EMP_QUERIES[index])


@needs_fork
@pytest.mark.parametrize("index", range(len(CLOSURE_QUERIES)))
def test_closure_differential_mp(closure_mp, index):
    server, oracle = closure_mp
    assert_differential(server, oracle, CLOSURE_QUERIES[index])


# -- shared-memory table sync ----------------------------------------------------


@needs_fork
def test_dml_is_visible_to_workers():
    """A script applied in the parent must be observable in worker
    executions via the shared-memory publish/sync protocol — including a
    table created after the workers forked."""
    database = build_empdept_database(
        n_departments=8, employees_per_department=4
    )
    Connection(database).run_script(PAPER_VIEWS_SQL)
    server = _mp_server(database)
    try:
        before = server.handle_query(PARAM_QUERY, params=["Planning"])
        assert before.get("worker_pid")
        server.handle_script(
            "UPDATE employee SET salary = salary + 5000 "
            "WHERE workdept = 'D0000'"
        )
        after = server.handle_query(PARAM_QUERY, params=["Planning"])
        assert after.get("worker_pid")
        assert after["rows"] != before["rows"], "worker served pre-DML data"
        oracle = Connection(server.database).execute(
            PARAM_QUERY.replace("?", "'Planning'")
        )
        assert canonical(map(tuple, after["rows"])) == canonical(oracle.rows)
        server.handle_script(
            "CREATE TABLE fresh_table (a, b); "
            "INSERT INTO fresh_table VALUES (1, 'x'), (2, 'y')"
        )
        created = server.handle_query(
            "SELECT f.a, f.b FROM fresh_table f"
        )
        assert created.get("worker_pid")
        assert canonical(map(tuple, created["rows"])) == canonical(
            [(1, "x"), (2, "y")]
        )
    finally:
        server.shutdown()


def test_shared_store_publish_and_apply_sync_without_fork():
    """The publish/sync protocol itself, no processes involved: a
    deep-copied database (standing in for a forked snapshot) catches up
    to the parent through the shared-memory segments alone."""
    parent = Database()
    parent.create_table("t", ["k", "v"], rows=[(1, "a"), (2, "b")])
    snapshot = copy.deepcopy(parent)
    store = SharedTableStore(parent)
    try:
        Connection(parent).run_script("INSERT INTO t VALUES (3, 'c')")
        store.publish()
        registry = store.registry()
        assert "t" in registry["tables"]
        state = {"catalog_generation": store.generation}
        apply_sync(snapshot, registry, state)
        assert snapshot.table("t").rows == parent.table("t").rows
        assert snapshot.table("t").version == parent.table("t").version
        # An unchanged second publish ships nothing new.
        published = store.published_tables
        store.publish()
        assert store.published_tables == published
    finally:
        store.close()


# -- the cross-request result cache ----------------------------------------------


@needs_fork
def test_result_cache_hit_skips_dispatch():
    """A warm result-cache hit is served by the parent without touching
    the pool: the dispatch counter must not move, the hit counter must."""
    database = build_empdept_database(
        n_departments=8, employees_per_department=4
    )
    Connection(database).run_script(PAPER_VIEWS_SQL)
    server = _mp_server(database, result_cache_capacity=32)
    try:
        first = server.handle_query(PARAM_QUERY, params=["Planning"])
        assert first.get("worker_pid")
        dispatches = server.pool.dispatches
        hits = server.result_cache.hits
        second = server.handle_query(PARAM_QUERY, params=["Planning"])
        assert second["cache"] == "result"
        assert second["rows"] == first["rows"]
        # A hit touched no worker; it must not report a (possibly dead)
        # producer pid.
        assert "worker_pid" not in second
        assert server.pool.dispatches == dispatches, (
            "result-cache hit still dispatched to a worker"
        )
        assert server.result_cache.hits == hits + 1
        # fresh=True must bypass the cache and re-execute on a worker.
        forced = server.handle_query(
            PARAM_QUERY, params=["Planning"], fresh=True
        )
        assert forced.get("worker_pid")
        assert server.pool.dispatches == dispatches + 1
        assert forced["rows"] == first["rows"]
    finally:
        server.shutdown()


def test_result_cache_key_separates_bindings_and_versions():
    key_a = ResultCache.make_key("f", "emst", "tuple", 1, ["x"], {"t": 1})
    assert key_a == ResultCache.make_key(
        "f", "emst", "tuple", 1, ["x"], {"t": 1}
    )
    assert key_a != ResultCache.make_key(
        "f", "emst", "tuple", 1, ["y"], {"t": 1}
    )
    assert key_a != ResultCache.make_key(
        "f", "emst", "tuple", 1, ["x"], {"t": 2}
    )
    assert key_a != ResultCache.make_key(
        "f", "emst", "tuple", 2, ["x"], {"t": 1}
    )
    assert key_a != ResultCache.make_key(
        "f", "phase1", "tuple", 1, ["x"], {"t": 1}
    )
    assert (
        ResultCache.make_key("f", "emst", "tuple", 1, [["un", "hashable"]],
                             {"t": 1})
        is None
    )


def test_result_cache_entries_are_isolated_from_annotation():
    cache = ResultCache(capacity=4)
    key = ResultCache.make_key("f", "emst", "tuple", 1, [], {})
    cache.store(key, {"columns": ["n"], "rows": [[1]], "row_count": 1,
                      "cache": "miss"})
    served = cache.lookup(key)
    served["rows"].append([999])
    served["cache"] = "mutated"
    again = cache.lookup(key)
    assert again["rows"] == [[1]]
    assert again["cache"] == "miss"


_interleaving = st.lists(
    st.one_of(
        st.tuples(st.just("write"), st.integers(min_value=1, max_value=5)),
        st.tuples(st.just("read"), st.just(0)),
    ),
    min_size=1,
    max_size=16,
)


@settings(
    deadline=None,
    max_examples=20,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(script=_interleaving)
def test_result_cache_never_serves_stale(script):
    """The key invariant, hammered: under any interleaving of DML scripts
    and cached reads, a read equals ground-truth re-execution (fresh) and
    the hit counter matches the model — a read hits exactly when no write
    intervened since the previous read."""
    database = Database()
    database.create_table("t", ["k", "v"], rows=[(0, 0)])
    server = QueryServer(
        database, ServerConfig(result_cache_capacity=32)
    )
    try:
        model_rows = [(0, 0)]
        next_key = 1
        predicted_hits = 0
        read_since_write = False
        for op, arg in script:
            if op == "write":
                values = []
                for _ in range(arg):
                    values.append("(%d, %d)" % (next_key, next_key * 10))
                    model_rows.append((next_key, next_key * 10))
                    next_key += 1
                server.handle_script(
                    "INSERT INTO t VALUES %s" % ", ".join(values)
                )
                read_since_write = False
            else:
                response = server.handle_query("SELECT t.k, t.v FROM t")
                if read_since_write:
                    predicted_hits += 1
                    assert response["cache"] == "result"
                read_since_write = True
                assert canonical(map(tuple, response["rows"])) == canonical(
                    model_rows
                ), "cached read diverged from the model"
                truth = server.handle_query(
                    "SELECT t.k, t.v FROM t", fresh=True
                )
                assert canonical(map(tuple, response["rows"])) == canonical(
                    map(tuple, truth["rows"])
                ), "cached read diverged from ground-truth re-execution"
        assert server.result_cache.hits == predicted_hits
    finally:
        server.shutdown()


# -- statement-cache warming and persistence -------------------------------------


def _empdept_db():
    database = build_empdept_database(
        n_departments=8, employees_per_department=4
    )
    Connection(database).run_script(PAPER_VIEWS_SQL)
    return database


def test_statement_cache_persists_across_restarts(tmp_path):
    path = str(tmp_path / "statements.json")
    first = QueryServer(
        _empdept_db(), ServerConfig(statement_cache_path=path)
    )
    try:
        first.handle_query(PARAM_QUERY, params=["Planning"])
        first.handle_query(
            "SELECT empname FROM employee WHERE workdept = 'D0001'"
        )
    finally:
        first.shutdown()  # saves the statement set
    assert os.path.exists(path)

    second = QueryServer(
        _empdept_db(), ServerConfig(statement_cache_path=path)
    )
    try:
        assert second.statements_warmed >= 2
        assert len(second.cache) >= 2
        warmed = second.handle_query(PARAM_QUERY, params=["Planning"])
        # The very first client execution hits the pre-warmed plan.
        assert warmed["cache"] == "hit"
    finally:
        second.shutdown()


def test_statement_cache_warming_survives_garbage(tmp_path):
    path = str(tmp_path / "statements.json")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("{not json")
    server = QueryServer(
        _empdept_db(), ServerConfig(statement_cache_path=path)
    )
    try:
        assert server.statements_warmed == 0
        ok = server.handle_query(PARAM_QUERY, params=["Planning"])
        assert ok["row_count"] == 1
    finally:
        server.shutdown()


# -- worker crashes ---------------------------------------------------------------


def _crash_server():
    database = build_empdept_database(
        n_departments=20, employees_per_department=5
    )
    Connection(database).run_script(PAPER_VIEWS_SQL)
    return database


def _run_query_in_thread(server, sql, **kwargs):
    outcome = {}

    def work():
        try:
            outcome["response"] = server.handle_query(sql, **kwargs)
        except BaseException as exc:  # noqa: BLE001 — inspected by the test
            outcome["error"] = exc

    thread = threading.Thread(target=work, daemon=True)
    thread.start()
    return thread, outcome


def _wait_busy(pool, timeout=15):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        busy = pool.busy_pids()
        if busy:
            return busy
        time.sleep(0.005)
    raise AssertionError("query never reached a worker")


@needs_fork
@pytest.mark.chaos
def test_sigkill_mid_query_is_retryable_and_respawns():
    server = _mp_server(
        _crash_server(), workers=1, result_cache_capacity=16,
        worker_crash_threshold=100,
    )
    try:
        entries_before = len(server.result_cache)
        thread, outcome = _run_query_in_thread(
            server, SLOW_COUNT_QUERY, deadline=60
        )
        victim = _wait_busy(server.pool)[0]
        os.kill(victim, signal.SIGKILL)
        thread.join(timeout=60)
        assert not thread.is_alive()
        error = outcome.get("error")
        assert isinstance(error, WorkerCrashedError), (
            "expected WorkerCrashedError, got %r"
            % (error or outcome.get("response"))
        )
        assert error.retryable is True
        assert error.pid == victim
        # No partially-built result-cache entry survived the crash.
        assert len(server.result_cache) == entries_before
        # The pool respawned: a retry succeeds on a *different* process.
        retried = server.handle_query(PARAM_QUERY, params=["Planning"])
        assert retried.get("worker_pid")
        assert retried["worker_pid"] != victim
        oracle = Connection(server.database).execute(
            PARAM_QUERY.replace("?", "'Planning'")
        )
        assert canonical(map(tuple, retried["rows"])) == canonical(
            oracle.rows
        )
        assert server.pool.respawns >= 1
    finally:
        server.shutdown()


@needs_fork
@pytest.mark.chaos
def test_sigkill_mid_fixpoint_is_retryable():
    database = _crash_server()
    edges = [(i, i + 1) for i in range(150)] + [(150, 0)]
    database.create_table("edge", ["src", "dst"], rows=edges)
    server = _mp_server(
        database, workers=1, worker_crash_threshold=100
    )
    fixpoint = (
        "WITH RECURSIVE path (src, dst) AS ("
        "  SELECT e.src, e.dst FROM edge e"
        "  UNION"
        "  SELECT p.src, e.dst FROM path p, edge e WHERE e.src = p.dst"
        ") SELECT COUNT(*) FROM path p"
    )
    try:
        thread, outcome = _run_query_in_thread(
            server, fixpoint, deadline=120
        )
        victim = _wait_busy(server.pool)[0]
        time.sleep(0.05)  # let a few delta rounds run
        os.kill(victim, signal.SIGKILL)
        thread.join(timeout=120)
        assert not thread.is_alive()
        error = outcome.get("error")
        if error is None:
            # The fixpoint finished before the kill landed: the reply
            # must then be correct.
            expected = Connection(server.database).execute(fixpoint)
            assert canonical(
                map(tuple, outcome["response"]["rows"])
            ) == canonical(expected.rows)
        else:
            assert isinstance(error, WorkerCrashedError)
            assert error.retryable is True
            # Retrying the same fixpoint on the respawned worker succeeds.
            retried = server.handle_query(fixpoint, deadline=120)
            expected = Connection(server.database).execute(fixpoint)
            assert canonical(map(tuple, retried["rows"])) == canonical(
                expected.rows
            )
    finally:
        server.shutdown()


@needs_fork
@pytest.mark.chaos
def test_crash_breaker_demotes_to_inprocess():
    server = _mp_server(
        _crash_server(), workers=1,
        worker_crash_threshold=1, worker_cooldown_seconds=1000,
    )
    try:
        thread, outcome = _run_query_in_thread(
            server, SLOW_COUNT_QUERY, deadline=60
        )
        victim = _wait_busy(server.pool)[0]
        os.kill(victim, signal.SIGKILL)
        thread.join(timeout=60)
        assert isinstance(outcome.get("error"), WorkerCrashedError)
        assert server.pool.breaker.state == "open"
        # Circuit open: the next query runs in-process (degraded), still
        # correctly.
        degraded = server.handle_query(PARAM_QUERY, params=["Planning"])
        assert degraded.get("worker_pid") is None
        oracle = Connection(server.database).execute(
            PARAM_QUERY.replace("?", "'Planning'")
        )
        assert canonical(map(tuple, degraded["rows"])) == canonical(
            oracle.rows
        )
        assert server.pool.degraded_dispatches >= 1
    finally:
        server.shutdown()


@needs_fork
def test_cancel_mid_dispatch_kills_worker_and_respawns():
    server = _mp_server(_crash_server(), workers=1)
    try:
        cancel = threading.Event()
        thread, outcome = _run_query_in_thread(
            server, SLOW_COUNT_QUERY, deadline=60, cancel_event=cancel
        )
        victim = _wait_busy(server.pool)[0]
        cancel.set()
        thread.join(timeout=60)
        assert not thread.is_alive()
        assert isinstance(outcome.get("error"), QueryCancelledError)
        # The abandoned worker was killed and replaced.
        assert server.pool.kills >= 1
        follow_up = server.handle_query(PARAM_QUERY, params=["Planning"])
        assert follow_up.get("worker_pid")
        assert follow_up["worker_pid"] != victim
    finally:
        server.shutdown()


@needs_fork
@pytest.mark.chaos
def test_worker_chaos_batteries():
    from repro.server.chaos import run_worker_chaos

    report = run_worker_chaos(
        seed=20260808, scale=0.15, crash_rounds=3, verbose=False
    )
    assert report["worker_crashes"] >= 1
    assert report["worker_respawns"] >= report["worker_crashes"]
    assert report["final_workers"]["workers"] == 2
