"""The chase-based equivalence subsystem: canonicalization, dependencies,
the chase, verdicts, FOREIGN KEY DDL surface, the generalized
redundant-join rule, and the translation-validation acceptance criteria
(unsound firings are refuted and quarantined; the shipped workloads
produce zero REFUTED verdicts)."""

from __future__ import annotations

import pytest

from repro import Connection, Database, ResiliencePolicy
from repro.analysis.equivalence import (
    REFUTED,
    UNKNOWN,
    VERIFIED,
    CannotCanonicalize,
    ChaseBudget,
    EquivalenceChecker,
    Reason,
    canonicalize_graph,
    chase,
    dependencies_from_catalog,
)
from repro.catalog import ColumnDef
from repro.engine import Evaluator
from repro.errors import CatalogError
from repro.qgm import BoxKind, build_query_graph, validate_graph
from repro.rewrite import RewriteEngine
from repro.rewrite.redundant_join import RedundantJoinRule
from repro.rewrite.rule import RewriteRule
from repro.sql import parse_script, parse_statement, to_sql
from repro.workloads.decision_support import build_decision_support_database
from repro.workloads.empdept import PAPER_VIEWS_SQL, build_empdept_database

from tests.helpers import canonical


@pytest.fixture
def empdept():
    db = build_empdept_database(
        n_departments=6, employees_per_department=4, seed=3
    )
    for view in parse_script(PAPER_VIEWS_SQL).views:
        db.catalog.add_view(view)
    return db


@pytest.fixture
def ds():
    return build_decision_support_database(scale=0.05, seed=5)


def build(sql, db):
    return build_query_graph(parse_statement(sql), db.catalog)


def verdict_between(db, left_sql, right_sql, budget=None):
    checker = EquivalenceChecker(db.catalog, budget=budget)
    return checker.check_graphs(build(left_sql, db), build(right_sql, db))


def rows_of(graph, db):
    return Evaluator(graph, db).run().rows


# -- canonicalization ---------------------------------------------------------


def test_select_canonicalizes_to_one_disjunct(empdept):
    graph = build(
        "SELECT e.empno, d.deptname FROM employee e, department d "
        "WHERE e.workdept = d.deptno AND e.salary > 50000",
        empdept,
    )
    query = canonicalize_graph(graph)
    assert len(query.disjuncts) == 1
    assert query.arity == 2
    tableau = query.disjuncts[0]
    assert {a.relation for a in tableau.atoms} == {"employee", "department"}
    # The range predicate is an interpreted comparison, not a builtin.
    assert not tableau.has_builtins()
    assert tableau.comparisons


def test_union_canonicalizes_per_input(empdept):
    graph = build(
        "SELECT d.deptno FROM department d WHERE d.deptname = 'Planning' "
        "UNION SELECT e.workdept FROM employee e",
        empdept,
    )
    query = canonicalize_graph(graph)
    assert len(query.disjuncts) == 2
    assert query.duplicate_free  # UNION deduplicates


def test_groupby_canonicalizes_to_a_derived_atom(empdept):
    graph = build(
        "SELECT e.workdept, AVG(e.salary) FROM employee e "
        "GROUP BY e.workdept",
        empdept,
    )
    query = canonicalize_graph(graph)
    assert len(query.disjuncts) == 1
    tableau = query.disjuncts[0]
    assert len(tableau.derived) == 1
    (spec,) = tableau.derived.values()
    assert spec.group_arity == 1
    kinds = [output[0] for output in spec.outputs]
    assert kinds == ["key", "agg"]
    assert {a.relation for a in spec.core.atoms} == {"employee"}


def test_limit_is_out_of_fragment(empdept):
    graph = build("SELECT e.empno FROM employee e", empdept)
    graph.limit = 5
    with pytest.raises(CannotCanonicalize):
        canonicalize_graph(graph)


def test_view_expansion_inlines_into_the_tableau(empdept):
    graph = build("SELECT m.empname FROM mgrSal m", empdept)
    query = canonicalize_graph(graph)
    assert {a.relation for a in query.disjuncts[0].atoms} == {
        "employee",
        "department",
    }


# -- dependencies -------------------------------------------------------------


def test_dependencies_from_empdept_catalog(empdept):
    deps = dependencies_from_catalog(empdept.catalog)
    # department: deptno (PK) and mgrno (UNIQUE, NOT NULL); employee: empno.
    assert {fd.determinant for fd in deps.fds["department"]} == {(0,), (2,)}
    assert len(deps.fds["employee"]) == 1
    # employee.workdept -> department.deptno is NOT NULL, so it proves.
    assert [ind.parent for ind in deps.inds["employee"]] == ["department"]
    assert not deps.repair_inds


def test_nullable_fk_is_repair_only():
    db = Database()
    db.create_table(
        "p", [ColumnDef("pid", "INT")], primary_key=["pid"]
    )
    db.create_table(
        "c",
        [ColumnDef("cid", "INT"), ColumnDef("pid", "INT")],  # pid nullable
        primary_key=["cid"],
        foreign_keys=[(["pid"], "p", None)],
    )
    deps = dependencies_from_catalog(db.catalog)
    assert "c" not in deps.inds
    assert [ind.parent for ind in deps.repair_inds["c"]] == ["p"]


# -- the chase ----------------------------------------------------------------


def test_chase_unifies_key_equated_self_join(empdept):
    graph = build(
        "SELECT d1.deptname FROM department d1, department d2 "
        "WHERE d1.deptno = d2.deptno",
        empdept,
    )
    tableau = canonicalize_graph(graph).disjuncts[0]
    assert len(tableau.atoms) == 2
    deps = dependencies_from_catalog(empdept.catalog)
    chased = chase(tableau, deps)
    assert len(chased.atoms) == 1  # the key FD merged the two copies
    assert chased.bag_exact  # merging keyed rows is bag-sound


def test_chase_adds_fk_parent_as_existential(empdept):
    # Head must not pin employee's key, or the anchoring analysis would
    # (correctly) demote the employee atom itself to existential.
    graph = build("SELECT e.empname FROM employee e", empdept)
    tableau = canonicalize_graph(graph).disjuncts[0]
    deps = dependencies_from_catalog(empdept.catalog)
    chased = chase(tableau, deps)
    by_relation = {a.relation: a for a in chased.atoms}
    assert not by_relation["employee"].existential
    assert by_relation["department"].existential


def test_chase_demotes_atom_whose_key_is_in_the_head(empdept):
    # One row per distinct empno: multiplicity is pinned by the head, so
    # the atom is safely existential for bag comparisons.
    graph = build("SELECT e.empno FROM employee e", empdept)
    tableau = canonicalize_graph(graph).disjuncts[0]
    deps = dependencies_from_catalog(empdept.catalog)
    chased = chase(tableau, deps)
    by_relation = {a.relation: a for a in chased.atoms}
    assert by_relation["employee"].existential


def test_chase_budget_marks_incomplete(ds):
    graph = build(
        "SELECT l.quantity FROM lineitem l, orders o "
        "WHERE l.orderkey = o.orderkey",
        ds,
    )
    tableau = canonicalize_graph(graph).disjuncts[0]
    deps = dependencies_from_catalog(ds.catalog)
    chased = chase(tableau, deps, ChaseBudget(max_steps=1))
    assert not chased.chase_complete


# -- verdicts -----------------------------------------------------------------


def test_identical_queries_are_bag_verified(empdept):
    sql = (
        "SELECT e.empno, e.salary FROM employee e, department d "
        "WHERE e.workdept = d.deptno AND e.salary > 40000"
    )
    verdict = verdict_between(empdept, sql, sql)
    assert verdict.status == VERIFIED
    assert verdict.bag


def test_contradictory_queries_are_provably_empty(empdept):
    sql = (
        "SELECT d.deptname FROM department d "
        "WHERE d.deptno = 'D0001' AND d.deptno = 'D0002'"
    )
    verdict = verdict_between(empdept, sql, sql)
    assert verdict.status == VERIFIED
    assert "empty" in verdict.reason


def test_fk_covered_parent_join_is_bag_verified(empdept):
    verdict = verdict_between(
        empdept,
        "SELECT e.empno, e.salary FROM employee e, department d "
        "WHERE e.workdept = d.deptno",
        "SELECT e.empno, e.salary FROM employee e",
    )
    assert verdict.status == VERIFIED
    assert verdict.bag


def test_fk_chain_join_is_bag_verified(ds):
    verdict = verdict_between(
        ds,
        "SELECT l.quantity FROM lineitem l, orders o, customer c "
        "WHERE l.orderkey = o.orderkey AND o.custkey = c.custkey",
        "SELECT l.quantity FROM lineitem l",
    )
    assert verdict.status == VERIFIED
    assert verdict.bag


def test_dropping_a_filter_is_refuted_with_counterexample(empdept):
    verdict = verdict_between(
        empdept,
        "SELECT e.empno FROM employee e WHERE e.salary = 100000",
        "SELECT e.empno FROM employee e",
    )
    assert verdict.status == REFUTED
    counterexample = verdict.counterexample
    assert counterexample["missing_from"] == "left"
    assert counterexample["tables"]["employee"]
    # The frozen database satisfies the declared FK: every employee's
    # workdept appears as a department deptno.
    departments = {row[0] for row in counterexample["tables"]["department"]}
    for row in counterexample["tables"]["employee"]:
        assert row[2] in departments


def test_projection_swap_is_refuted(empdept):
    verdict = verdict_between(
        empdept,
        "SELECT e.empno, e.salary FROM employee e",
        "SELECT e.salary, e.empno FROM employee e",
    )
    assert verdict.status == REFUTED


def test_non_key_self_join_drop_is_unknown(empdept):
    # Set-equivalent, but the self-join multiplies multiplicities, so
    # neither VERIFIED nor REFUTED is sound.
    verdict = verdict_between(
        empdept,
        "SELECT e1.workdept FROM employee e1, employee e2 "
        "WHERE e1.workdept = e2.workdept",
        "SELECT e.workdept FROM employee e",
    )
    assert verdict.status == UNKNOWN


def test_distinct_makes_self_join_drop_set_verified(empdept):
    verdict = verdict_between(
        empdept,
        "SELECT DISTINCT e1.workdept FROM employee e1, employee e2 "
        "WHERE e1.workdept = e2.workdept",
        "SELECT DISTINCT e.workdept FROM employee e",
    )
    assert verdict.status == VERIFIED
    assert not verdict.bag  # set equality of duplicate-free queries


def test_union_is_order_insensitive(empdept):
    verdict = verdict_between(
        empdept,
        "SELECT d.deptno FROM department d WHERE d.deptname = 'Planning' "
        "UNION SELECT e.workdept FROM employee e",
        "SELECT e.workdept FROM employee e "
        "UNION SELECT d.deptno FROM department d WHERE d.deptname = 'Planning'",
    )
    assert verdict.status == VERIFIED


def test_identical_aggregates_verify(empdept):
    verdict = verdict_between(
        empdept,
        "SELECT e.workdept, AVG(e.salary) FROM employee e GROUP BY e.workdept",
        "SELECT e.workdept, AVG(e.salary) FROM employee e GROUP BY e.workdept",
    )
    assert verdict.status == VERIFIED


def test_differing_aggregates_stay_unknown_not_refuted(empdept):
    verdict = verdict_between(
        empdept,
        "SELECT e.workdept, AVG(e.salary) FROM employee e GROUP BY e.workdept",
        "SELECT e.workdept, AVG(e.salary) FROM employee e "
        "WHERE e.job = 'clerk' GROUP BY e.workdept",
    )
    assert verdict.status == UNKNOWN
    assert verdict.reason_code == Reason.UNPROVEN_AGGREGATE


def test_exhausted_hom_budget_yields_unknown(empdept):
    sql = (
        "SELECT e1.empno FROM employee e1, employee e2, employee e3 "
        "WHERE e1.workdept = e2.workdept AND e2.workdept = e3.workdept"
    )
    verdict = verdict_between(
        empdept, sql, sql, budget=ChaseBudget(max_hom_nodes=1)
    )
    assert verdict.status == UNKNOWN
    assert "budget" in verdict.reason


def test_implied_equality_via_key_fd(empdept):
    graph = build(
        "SELECT e1.empno FROM employee e1, employee e2 "
        "WHERE e1.empno = e2.empno AND e1.empname = e2.empname",
        empdept,
    )
    box = graph.top_box
    checker = EquivalenceChecker(empdept.catalog)
    implied = [p for p in box.predicates if checker.implied_equality(box, p)]
    # empno = empno pins the row, so empname = empname is implied — and
    # vice versa is NOT (empname is no key).
    assert len(implied) == 1


def test_checker_counts_verdicts(empdept):
    checker = EquivalenceChecker(empdept.catalog)
    sql = "SELECT e.empno FROM employee e"
    checker.check_graphs(build(sql, empdept), build(sql, empdept))
    assert checker.counts[VERIFIED] == 1
    assert checker.seconds >= 0.0


# -- interpreted comparisons --------------------------------------------------


def test_implied_comparison_conjunct_is_verified(empdept):
    # salary > 100 entails salary > 50, so the extra conjunct is noise.
    verdict = verdict_between(
        empdept,
        "SELECT e.empno FROM employee e WHERE e.salary > 100",
        "SELECT e.empno FROM employee e "
        "WHERE e.salary > 100 AND e.salary > 50",
    )
    assert verdict.status == VERIFIED
    assert verdict.bag


def test_between_matches_its_desugared_bounds(empdept):
    verdict = verdict_between(
        empdept,
        "SELECT e.empno FROM employee e "
        "WHERE e.salary BETWEEN 40000 AND 60000",
        "SELECT e.empno FROM employee e "
        "WHERE e.salary >= 40000 AND e.salary <= 60000",
    )
    assert verdict.status == VERIFIED


def test_in_list_is_order_insensitive(empdept):
    verdict = verdict_between(
        empdept,
        "SELECT e.empno FROM employee e WHERE e.job IN ('clerk', 'mgr')",
        "SELECT e.empno FROM employee e WHERE e.job IN ('mgr', 'clerk')",
    )
    assert verdict.status == VERIFIED


def test_contradictory_ranges_verify_as_empty(empdept):
    verdict = verdict_between(
        empdept,
        "SELECT e.empno FROM employee e "
        "WHERE e.salary > 100 AND e.salary < 50",
        "SELECT e.empno FROM employee e WHERE e.salary < 0 AND e.salary > 0",
    )
    assert verdict.status == VERIFIED
    assert verdict.reason_code == Reason.VERIFIED_EMPTY


def test_strict_vs_inclusive_bound_is_unknown_not_refuted(empdept):
    # x > 100 ⊆ x >= 100 but not conversely; refutation must not fire
    # either (the frozen counterexample cannot honor interpreted facts).
    verdict = verdict_between(
        empdept,
        "SELECT e.empno FROM employee e WHERE e.salary > 100",
        "SELECT e.empno FROM employee e WHERE e.salary >= 100",
    )
    assert verdict.status == UNKNOWN
    assert verdict.reason_code == Reason.UNPROVEN_CONTAINMENT


# -- outer-join canonicalization ----------------------------------------------


def test_null_rejected_left_join_verifies_against_inner(empdept):
    # The WHERE filter rejects NULL-padded rows, so the LEFT JOIN is an
    # inner join and both graphs canonicalize to the same tableau.
    verdict = verdict_between(
        empdept,
        "SELECT e.empno, d.deptname FROM employee e "
        "LEFT JOIN department d ON d.deptno = e.workdept "
        "WHERE d.budget > 1000",
        "SELECT e.empno, d.deptname FROM employee e, department d "
        "WHERE d.deptno = e.workdept AND d.budget > 1000",
    )
    assert verdict.status == VERIFIED
    assert verdict.bag


def test_preserved_left_join_expands_into_two_disjuncts(empdept):
    graph = build(
        "SELECT e.empno, d.deptname FROM employee e "
        "LEFT JOIN department d ON d.deptno = e.workdept",
        empdept,
    )
    query = canonicalize_graph(graph)
    assert len(query.disjuncts) == 2
    # One disjunct joins both sides; the anti disjunct pads the right
    # side with NULL constants and carries the no-match marker builtin.
    joined = [t for t in query.disjuncts if len(t.atoms) == 2]
    padded = [t for t in query.disjuncts if len(t.atoms) == 1]
    assert len(joined) == 1 and len(padded) == 1
    assert any("NOMATCH" in b.skeleton for b in padded[0].builtins)


def test_identical_left_joins_verify_via_disjunct_matching(empdept):
    sql = (
        "SELECT e.empno, d.deptname FROM employee e "
        "LEFT JOIN department d ON d.deptno = e.workdept"
    )
    verdict = verdict_between(empdept, sql, sql)
    assert verdict.status == VERIFIED
    assert verdict.reason_code == Reason.VERIFIED_DISJUNCTS


def test_outer_join_expansion_past_budget_is_out_of_fragment(empdept):
    from repro.analysis.equivalence import canonicalize_box

    graph = build(
        "SELECT e.empno, d.deptname FROM employee e "
        "LEFT JOIN department d ON d.deptno = e.workdept",
        empdept,
    )
    with pytest.raises(CannotCanonicalize) as exc:
        canonicalize_box(graph.top_box, max_disjuncts=1)
    assert exc.value.code == Reason.FRAGMENT_OUTERJOIN


def test_null_rejected_left_join_agrees_with_inner_on_execution(empdept):
    # Not just symbolic: the verdict above matches the engine's rows.
    left = build(
        "SELECT e.empno, d.deptname FROM employee e "
        "LEFT JOIN department d ON d.deptno = e.workdept "
        "WHERE d.budget > 1000",
        empdept,
    )
    inner = build(
        "SELECT e.empno, d.deptname FROM employee e, department d "
        "WHERE d.deptno = e.workdept AND d.budget > 1000",
        empdept,
    )
    assert sorted(rows_of(left, empdept), key=repr) == sorted(
        rows_of(inner, empdept), key=repr
    )


# -- reason codes -------------------------------------------------------------


def test_all_reason_codes_are_unique_and_namespaced():
    from repro.analysis.equivalence import ALL_REASON_CODES

    assert len(set(ALL_REASON_CODES)) == len(ALL_REASON_CODES)
    prefixes = {code.split(":")[0] for code in ALL_REASON_CODES}
    assert prefixes == {"fragment", "budget", "unproven", "verified", "refuted"}


def test_arity_mismatch_is_refuted_with_code(empdept):
    verdict = verdict_between(
        empdept,
        "SELECT e.empno FROM employee e",
        "SELECT e.empno, e.salary FROM employee e",
    )
    assert verdict.status == REFUTED
    assert verdict.reason_code == Reason.REFUTED_ARITY


def test_identical_queries_report_bag_isomorphic_code(empdept):
    sql = "SELECT e.empno FROM employee e WHERE e.salary > 40000"
    verdict = verdict_between(empdept, sql, sql)
    assert verdict.reason_code == Reason.VERIFIED_ISO
    assert verdict.describe().endswith("[%s]" % Reason.VERIFIED_ISO)


def test_set_equality_and_multiplicity_codes(empdept):
    distinct_pair = (
        "SELECT DISTINCT e1.workdept FROM employee e1, employee e2 "
        "WHERE e1.workdept = e2.workdept",
        "SELECT DISTINCT e.workdept FROM employee e",
    )
    verdict = verdict_between(empdept, *distinct_pair)
    assert verdict.reason_code == Reason.VERIFIED_SET
    bag_pair = (distinct_pair[0].replace("DISTINCT ", ""),
                distinct_pair[1].replace("DISTINCT ", ""))
    verdict = verdict_between(empdept, *bag_pair)
    assert verdict.status == UNKNOWN
    assert verdict.reason_code == Reason.UNPROVEN_MULTIPLICITY


def test_hom_budget_reason_code(empdept):
    sql = (
        "SELECT e1.empno FROM employee e1, employee e2, employee e3 "
        "WHERE e1.workdept = e2.workdept AND e2.workdept = e3.workdept"
    )
    verdict = verdict_between(
        empdept, sql, sql, budget=ChaseBudget(max_hom_nodes=1)
    )
    assert verdict.reason_code == Reason.BUDGET_HOM


def test_fragment_codes_from_canonicalization(empdept):
    from repro.qgm.model import MagicRole

    def code_of(graph):
        with pytest.raises(CannotCanonicalize) as exc:
            canonicalize_graph(graph)
        return exc.value.code

    limited = build("SELECT e.empno FROM employee e", empdept)
    limited.limit = 5
    assert code_of(limited) == Reason.FRAGMENT_LIMIT

    assert code_of(build(
        "SELECT e.empno FROM employee e "
        "INTERSECT SELECT e2.empno FROM employee e2",
        empdept,
    )) == Reason.FRAGMENT_SETOP

    # EXISTS becomes an existential quantifier and stays in fragment;
    # NOT EXISTS (an ANTI quantifier) does not.
    canonicalize_graph(build(
        "SELECT e.empno FROM employee e WHERE EXISTS "
        "(SELECT d.deptno FROM department d WHERE d.deptno = e.workdept)",
        empdept,
    ))
    assert code_of(build(
        "SELECT e.empno FROM employee e WHERE NOT EXISTS "
        "(SELECT d.deptno FROM department d WHERE d.deptno = e.workdept)",
        empdept,
    )) == Reason.FRAGMENT_SUBQUERY

    magic = build("SELECT e.empno FROM employee e", empdept)
    magic.top_box.magic_role = MagicRole.MAGIC
    assert code_of(magic) == Reason.FRAGMENT_MAGIC


def test_allow_special_admits_magic_boxes(empdept):
    from repro.analysis.equivalence import canonicalize_box
    from repro.qgm.model import MagicRole

    graph = build("SELECT e.empno FROM employee e", empdept)
    graph.top_box.magic_role = MagicRole.MAGIC
    query = canonicalize_box(graph.top_box, allow_special=True)
    assert len(query.disjuncts) == 1


def test_union_width_past_budget_is_out_of_fragment(empdept):
    from repro.analysis.equivalence import canonicalize_box

    graph = build(
        "SELECT e.empno FROM employee e "
        "UNION SELECT d.mgrno FROM department d",
        empdept,
    )
    union = next(b for b in graph.boxes() if b.kind == BoxKind.UNION)
    with pytest.raises(CannotCanonicalize) as exc:
        canonicalize_box(union, max_disjuncts=1)
    assert exc.value.code == Reason.FRAGMENT_UNION


def test_checker_reports_fragment_code_in_verdict(empdept):
    checker = EquivalenceChecker(empdept.catalog)
    before = build("SELECT e.empno FROM employee e", empdept)
    after = build("SELECT e.empno FROM employee e", empdept)
    before.limit = 5
    after.limit = 5
    verdict = checker.check_graphs(before, after)
    assert verdict.status == UNKNOWN
    assert verdict.reason_code == Reason.FRAGMENT_LIMIT
    assert "before side" in verdict.detail


def test_scoped_validation_detects_unchanged_graphs(empdept):
    from repro.analysis.equivalence import scoped_verdict

    checker = EquivalenceChecker(empdept.catalog)
    sql = "SELECT e.empno FROM employee e WHERE e.salary > 40000"
    verdict = scoped_verdict(
        checker, build(sql, empdept), build(sql, empdept)
    )
    assert verdict is not None
    assert verdict.status == VERIFIED
    assert verdict.reason_code == Reason.VERIFIED_UNCHANGED
    assert verdict.bag


# -- FOREIGN KEY DDL surface --------------------------------------------------

FK_DDL = (
    "CREATE TABLE child (cid INT NOT NULL, pid INT NOT NULL, tag STR, "
    "PRIMARY KEY (cid), UNIQUE (tag), "
    "FOREIGN KEY (pid) REFERENCES parent (pid))"
)


def test_create_table_parses_foreign_key_and_unique():
    statement = parse_statement(FK_DDL)
    assert statement.primary_key == ["cid"]
    assert [list(key) for key in statement.unique_keys] == [["tag"]]
    (fk,) = statement.foreign_keys
    assert list(fk.columns) == ["pid"]
    assert fk.ref_table == "parent"
    assert list(fk.ref_columns) == ["pid"]


def test_create_table_foreign_key_round_trips_through_printer():
    rendered = to_sql(parse_statement(FK_DDL))
    assert "FOREIGN KEY (pid) REFERENCES parent (pid)" in rendered
    assert "UNIQUE (tag)" in rendered
    again = to_sql(parse_statement(rendered))
    assert again == rendered


def test_connection_ddl_declares_foreign_key():
    connection = Connection(Database())
    connection.run_script(
        "CREATE TABLE parent (pid INT NOT NULL, PRIMARY KEY (pid));" + FK_DDL
    )
    schema = connection.database.catalog.table("child")
    (fk,) = schema.foreign_keys
    assert fk.ref_table == "parent"
    deps = dependencies_from_catalog(connection.database.catalog)
    assert [ind.parent for ind in deps.inds["child"]] == ["parent"]


def test_catalog_rejects_fk_to_non_key_columns():
    db = Database()
    db.create_table("p", [ColumnDef("pid", "INT"), ColumnDef("x", "INT")])
    with pytest.raises(CatalogError):
        db.create_table(
            "c",
            [ColumnDef("cid", "INT"), ColumnDef("pid", "INT")],
            foreign_keys=[(["pid"], "p", ["x"])],
        )


def test_foreign_key_arity_mismatch_rejected():
    from repro.catalog import ForeignKey

    with pytest.raises(CatalogError):
        ForeignKey(("a", "b"), "p", ("x",))


# -- the generalized redundant-join rule --------------------------------------


def run_redundant_join(graph):
    engine = RewriteEngine([RedundantJoinRule()])
    context = engine.run_phase(graph, 1)
    validate_graph(graph)
    return context


def test_same_table_distinct_base_boxes_eliminated(empdept):
    # Satellite: the syntactic tier must match two *distinct* BASE boxes
    # over one stored table, not just one shared box object.
    import copy

    sql = (
        "SELECT d1.deptname FROM department d1, department d2 "
        "WHERE d1.deptno = d2.deptno AND d2.deptname = 'Planning'"
    )
    before = rows_of(build(sql, empdept), empdept)
    graph = build(sql, empdept)
    second = graph.top_box.foreach_quantifiers()[1]
    first = graph.top_box.foreach_quantifiers()[0]
    assert first.input_box is second.input_box  # builder shares base boxes
    second.input_box = copy.deepcopy(second.input_box)
    run_redundant_join(graph)
    assert len(graph.top_box.foreach_quantifiers()) == 1
    assert canonical(rows_of(graph, empdept)) == canonical(before)


def test_view_self_join_eliminated_by_chase(empdept):
    # Query-D shape: the same view referenced twice, joined on a key of
    # the underlying table. The builder shares one expansion box between
    # the two quantifiers; only the chase can prove the elimination sound
    # (a view box declares no key of its own).
    sql = (
        "SELECT m1.empname, m2.salary FROM mgrSal m1, mgrSal m2 "
        "WHERE m1.empno = m2.empno"
    )
    before = rows_of(build(sql, empdept), empdept)
    graph = build(sql, empdept)
    assert len(graph.top_box.foreach_quantifiers()) == 2
    context = run_redundant_join(graph)
    assert len(graph.top_box.foreach_quantifiers()) == 1
    assert context.firing_counts.get("redundant-join") == 1
    assert canonical(rows_of(graph, empdept)) == canonical(before)


def test_view_self_join_with_distinct_expansion_boxes(empdept):
    # The same shape with the sharing physically broken: two *distinct*
    # view-expansion SELECT boxes, matched through their base-table
    # footprint rather than object identity.
    import copy

    sql = (
        "SELECT m1.empname, m2.salary FROM mgrSal m1, mgrSal m2 "
        "WHERE m1.empno = m2.empno"
    )
    before = rows_of(build(sql, empdept), empdept)
    graph = build(sql, empdept)
    first, second = graph.top_box.foreach_quantifiers()
    assert first.input_box is second.input_box  # builder shares the box
    second.input_box = copy.deepcopy(second.input_box)
    run_redundant_join(graph)
    assert len(graph.top_box.foreach_quantifiers()) == 1
    assert canonical(rows_of(graph, empdept)) == canonical(before)


def test_fk_covered_parent_join_eliminated(ds):
    sql = (
        "SELECT l.quantity, l.extendedprice FROM lineitem l, orders o "
        "WHERE l.orderkey = o.orderkey"
    )
    before = rows_of(build(sql, ds), ds)
    assert before  # the join actually produces rows at this scale
    graph = build(sql, ds)
    run_redundant_join(graph)
    assert len(graph.top_box.foreach_quantifiers()) == 1
    assert {q.input_box.table_name for q in graph.top_box.quantifiers} == {
        "lineitem"
    }
    assert canonical(rows_of(graph, ds)) == canonical(before)


def test_parent_join_kept_when_parent_columns_are_used(ds):
    sql = (
        "SELECT l.quantity, o.totalprice FROM lineitem l, orders o "
        "WHERE l.orderkey = o.orderkey"
    )
    graph = build(sql, ds)
    run_redundant_join(graph)
    assert len(graph.top_box.foreach_quantifiers()) == 2


def test_non_key_self_join_still_kept(empdept):
    sql = (
        "SELECT e1.empno FROM employee e1, employee e2 "
        "WHERE e1.workdept = e2.workdept"
    )
    graph = build(sql, empdept)
    run_redundant_join(graph)
    assert len(graph.top_box.foreach_quantifiers()) == 2


# -- translation validation: acceptance ---------------------------------------


class DropPredicateRule(RewriteRule):
    """An intentionally unsound rule: silently deletes a predicate."""

    name = "drop-predicate"
    phases = frozenset({1})
    priority = 10

    def applies_to(self, box, context):
        return (
            box.kind == BoxKind.SELECT
            and not box.is_special
            and bool(box.predicates)
        )

    def apply(self, box, context):
        box.predicates = box.predicates[:-1]
        return True


def test_unsound_rule_is_refuted_and_quarantined(empdept):
    sql = "SELECT e.empno FROM employee e WHERE e.salary = 100000"
    before = rows_of(build(sql, empdept), empdept)
    graph = build(sql, empdept)
    policy = ResiliencePolicy(paranoid=True)
    policy.begin_query()
    engine = RewriteEngine([DropPredicateRule()])
    context = engine.run_phase(graph, 1, resilience=policy)
    # The firing was refuted, rolled back, and the rule quarantined.
    assert "drop-predicate" in policy.quarantine
    assert "QGM601" in context.soundness_violations["drop-predicate"]
    refuted = context.equivalence_verdicts["drop-predicate"]["REFUTED"]
    assert sum(refuted.values()) == 1
    assert set(refuted) == {Reason.REFUTED_COUNTEREXAMPLE}
    assert len(graph.top_box.predicates) == 1  # the rollback restored it
    assert canonical(rows_of(graph, empdept)) == canonical(before)


def test_sound_rules_never_refuted_under_paranoid(empdept):
    connection = Connection(empdept)
    policy = ResiliencePolicy(paranoid=True)
    outcome = connection.explain_execute(
        "SELECT m1.empname, m2.salary FROM mgrSal m1, mgrSal m2 "
        "WHERE m1.empno = m2.empno",
        strategy="emst",
        resilience=policy,
    )
    verdicts = outcome.stats.get("equivalence_verdicts", {})
    assert verdicts  # paranoid mode validated the firings
    for statuses in verdicts.values():
        assert not statuses.get(REFUTED)
    # Pre-existing structural diagnostics may quarantine other rules
    # (e.g. QGM401 adornment arity from projection pruning); translation
    # validation itself must not be the cause of any quarantine.
    violations = outcome.stats.get("soundness_violations", {})
    for codes in violations.values():
        assert "QGM601" not in codes


def test_workload_sweep_has_zero_refutations(tmp_path, capsys):
    # One sweep exercises the whole CLI surface: zero REFUTED firings,
    # the --min-verified coverage gate, and the --json breakdown.
    import json

    from repro.analysis.equivalence import ALL_REASON_CODES
    from repro.analysis.translation_validate import main

    out = tmp_path / "sweep.json"
    status = main(["--json", str(out), "--min-verified", "25"])
    assert status == 0, capsys.readouterr().out
    payload = json.loads(out.read_text())
    assert payload["totals"]["REFUTED"] == 0
    assert payload["totals"]["VERIFIED"] >= 25
    assert payload["queries"]
    valid = set(ALL_REASON_CODES) | {"unspecified"}
    for statuses in payload["rule_reason_histogram"].values():
        for codes in statuses.values():
            assert set(codes) <= valid
    # An unreachable floor trips the coverage gate.
    assert main(["--min-verified", "10000"]) == 1


def test_equivalence_opt_out_skips_validation(empdept):
    connection = Connection(empdept)
    policy = ResiliencePolicy(paranoid=True, equivalence=False)
    outcome = connection.explain_execute(
        "SELECT e.empname FROM employee e WHERE e.salary > 40000",
        strategy="emst",
        resilience=policy,
    )
    assert not outcome.stats.get("equivalence_verdicts")
