"""Model-based testing: random DML sequences against a plain-Python
reference model, and random join queries against itertools references."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Connection, Database

from tests.helpers import canonical


# ---------------------------------------------------------------------------
# DML model: the table is a list of rows; INSERT appends, DELETE filters,
# UPDATE maps. The engine must agree after every step.
# ---------------------------------------------------------------------------

_VALUES = st.integers(0, 9)

_operations = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), _VALUES, _VALUES),
        st.tuples(st.just("delete_eq"), _VALUES, _VALUES),
        st.tuples(st.just("delete_lt"), _VALUES, _VALUES),
        st.tuples(st.just("update_add"), _VALUES, _VALUES),
    ),
    max_size=14,
)


@given(_operations)
@settings(max_examples=40, deadline=None)
def test_dml_sequence_matches_reference_model(operations):
    conn = Connection(Database())
    conn.run_script("CREATE TABLE t (a, b)")
    model = []
    for op, x, y in operations:
        if op == "insert":
            conn.run_script("INSERT INTO t VALUES (%d, %d)" % (x, y))
            model.append((x, y))
        elif op == "delete_eq":
            conn.run_script("DELETE FROM t WHERE a = %d" % x)
            model = [row for row in model if row[0] != x]
        elif op == "delete_lt":
            conn.run_script("DELETE FROM t WHERE b < %d" % x)
            model = [row for row in model if not (row[1] < x)]
        elif op == "update_add":
            conn.run_script("UPDATE t SET b = b + %d WHERE a = %d" % (y, x))
            model = [
                (a, b + y) if a == x else (a, b) for (a, b) in model
            ]
        rows = conn.execute("SELECT a, b FROM t").rows
        assert canonical(rows) == canonical(model)


# ---------------------------------------------------------------------------
# Join semantics against itertools references
# ---------------------------------------------------------------------------

_rows_ab = st.lists(
    st.tuples(st.one_of(_VALUES, st.none()), _VALUES), max_size=10
)


@given(_rows_ab, _rows_ab)
@settings(max_examples=40, deadline=None)
def test_inner_join_matches_reference(left_rows, right_rows):
    db = Database()
    db.create_table("l", ["a", "b"], rows=left_rows)
    db.create_table("r", ["a", "b"], rows=right_rows)
    rows = Connection(db).execute(
        "SELECT l.b, r.b FROM l JOIN r ON r.a = l.a"
    ).rows
    expected = [
        (lb, rb)
        for (la, lb) in left_rows
        for (ra, rb) in right_rows
        if la is not None and la == ra
    ]
    assert canonical(rows) == canonical(expected)


@given(_rows_ab, _rows_ab)
@settings(max_examples=40, deadline=None)
def test_left_join_matches_reference(left_rows, right_rows):
    db = Database()
    db.create_table("l", ["a", "b"], rows=left_rows)
    db.create_table("r", ["a", "b"], rows=right_rows)
    rows = Connection(db).execute(
        "SELECT l.b, r.b FROM l LEFT JOIN r ON r.a = l.a"
    ).rows
    expected = []
    for la, lb in left_rows:
        matches = [
            (lb, rb)
            for (ra, rb) in right_rows
            if la is not None and la == ra
        ]
        expected.extend(matches or [(lb, None)])
    assert canonical(rows) == canonical(expected)


@given(_rows_ab)
@settings(max_examples=30, deadline=None)
def test_group_by_matches_reference(rows_in):
    db = Database()
    db.create_table("t", ["a", "b"], rows=rows_in)
    rows = Connection(db).execute(
        "SELECT a, COUNT(*), SUM(b) FROM t GROUP BY a"
    ).rows
    expected = {}
    for a, b in rows_in:
        count, total = expected.get(a, (0, 0))
        expected[a] = (count + 1, total + b)
    reference = [(a, c, s) for a, (c, s) in expected.items()]
    assert canonical(rows) == canonical(reference)


@given(_rows_ab, st.integers(0, 9))
@settings(max_examples=30, deadline=None)
def test_emst_join_agrees_with_reference(rows_in, key):
    db = Database()
    db.create_table("t", ["a", "b"], rows=rows_in)
    from repro.sql import parse_statement

    db.catalog.add_view(
        parse_statement("CREATE VIEW v (a, n) AS SELECT a, COUNT(*) FROM t GROUP BY a")
    )
    sql = "SELECT v.n FROM v WHERE v.a = %d" % key
    conn = Connection(db)
    for strategy in ("original", "emst"):
        rows = conn.explain_execute(sql, strategy=strategy).rows
        expected_count = sum(1 for (a, _) in rows_in if a == key)
        if expected_count:
            assert rows == [(expected_count,)]
        else:
            assert rows == []
