"""Plan optimizer tests: cardinality estimation, selectivities, DP join
ordering, whole-graph planning, and the §3.2 heuristic properties."""

import pytest

from repro import Database
from repro.sql import parse_statement
from repro.qgm import build_query_graph
from repro.optimizer import CardinalityEstimator, optimize_graph, optimize_select_box
from repro.optimizer.cardinality import RANGE_SELECTIVITY
from repro.optimizer.joinorder import DP_LIMIT


@pytest.fixture
def sized_db():
    """A database with deliberately skewed sizes for planning tests."""
    db = Database()
    db.create_table(
        "big",
        ["id", "fk", "val"],
        primary_key=["id"],
        rows=[(i, i % 20, i * 2) for i in range(1000)],
    )
    db.create_table(
        "small",
        ["id", "name"],
        primary_key=["id"],
        rows=[(i, "n%d" % i) for i in range(20)],
    )
    db.create_table(
        "tiny",
        ["id", "tag"],
        primary_key=["id"],
        rows=[(i, "t%d" % i) for i in range(3)],
    )
    return db


def build(sql, db):
    return build_query_graph(parse_statement(sql), db.catalog)


def test_base_cardinality_from_statistics(sized_db):
    graph = build("SELECT id FROM big", sized_db)
    estimator = CardinalityEstimator(sized_db.catalog)
    base = graph.top_box.quantifiers[0].input_box
    assert estimator.rows(base) == 1000.0


def test_equality_constant_selectivity(sized_db):
    graph = build("SELECT id FROM big WHERE id = 5", sized_db)
    estimator = CardinalityEstimator(sized_db.catalog)
    assert estimator.rows(graph.top_box) == pytest.approx(1.0, abs=0.5)


def test_range_selectivity_interpolates_from_min_max(sized_db):
    # big.val is uniform on [0, 1998]: "val > 100" keeps ~95% of rows.
    graph = build("SELECT id FROM big WHERE val > 100", sized_db)
    estimator = CardinalityEstimator(sized_db.catalog)
    assert estimator.rows(graph.top_box) == pytest.approx(950, rel=0.05)
    graph = build("SELECT id FROM big WHERE val < 100", sized_db)
    estimator = CardinalityEstimator(sized_db.catalog)
    assert estimator.rows(graph.top_box) == pytest.approx(50, rel=0.2)


def test_range_selectivity_default_without_range(sized_db):
    # A range predicate over a string column falls back to the System-R 1/3.
    graph = build("SELECT id FROM small WHERE name > 'n5'", sized_db)
    estimator = CardinalityEstimator(sized_db.catalog)
    assert estimator.rows(graph.top_box) == pytest.approx(
        20 * RANGE_SELECTIVITY, rel=0.01
    )


def test_equijoin_selectivity(sized_db):
    graph = build(
        "SELECT b.id FROM big b, small s WHERE b.fk = s.id", sized_db
    )
    estimator = CardinalityEstimator(sized_db.catalog)
    # 1000 * 20 / max(20, 20) = 1000
    assert estimator.rows(graph.top_box) == pytest.approx(1000.0, rel=0.05)


def test_groupby_cardinality_capped_by_distincts(sized_db):
    graph = build(
        "SELECT fk, COUNT(*) FROM big GROUP BY fk", sized_db
    )
    estimator = CardinalityEstimator(sized_db.catalog)
    groupby = graph.top_box.quantifiers[0].input_box
    assert estimator.rows(groupby) == pytest.approx(20.0, rel=0.05)


def test_union_cardinality_sums(sized_db):
    graph = build(
        "SELECT id FROM big UNION ALL SELECT id FROM small", sized_db
    )
    estimator = CardinalityEstimator(sized_db.catalog)
    assert estimator.rows(graph.top_box) == pytest.approx(1020.0, rel=0.01)


def test_column_estimate_caps_distinct_by_rows(sized_db):
    graph = build("SELECT id FROM big WHERE fk = 3", sized_db)
    estimator = CardinalityEstimator(sized_db.catalog)
    estimate = estimator.column(graph.top_box, "id")
    assert estimate.distinct <= estimator.rows(graph.top_box) + 1e-9


def test_column_cache_not_corrupted_by_capping(sized_db):
    """Regression: capping a derived column's distinct count must never
    mutate the underlying base-table statistics (cache aliasing)."""
    graph = build(
        "SELECT b.fk AS f FROM big b, tiny t WHERE t.id = b.id", sized_db
    )
    estimator = CardinalityEstimator(sized_db.catalog)
    estimator.rows(graph.top_box)
    estimator.column(graph.top_box, "f")
    base = graph.top_box.quantifier("b").input_box
    assert estimator.column(base, "fk").distinct == 20.0


def test_dp_order_starts_with_most_selective(sized_db):
    graph = build(
        "SELECT b.id FROM big b, small s, tiny t "
        "WHERE b.fk = s.id AND s.id = t.id",
        sized_db,
    )
    estimator = CardinalityEstimator(sized_db.catalog)
    order, cost, rows = optimize_select_box(graph.top_box, estimator)
    assert order[0] == "t"  # tiny first
    assert order.index("s") < order.index("b")


def test_dp_avoids_cross_products_when_possible(sized_db):
    graph = build(
        "SELECT b.id FROM big b, tiny t, small s "
        "WHERE b.fk = s.id AND b.id = t.id",
        sized_db,
    )
    estimator = CardinalityEstimator(sized_db.catalog)
    order, cost, _ = optimize_select_box(graph.top_box, estimator)
    # The chosen order must be connected: t then b (joined) then s.
    assert set(order) == {"b", "s", "t"}
    assert cost < 1000 * 20  # far below any cross-product plan


def test_greedy_used_beyond_dp_limit(sized_db):
    names = ", ".join("tiny t%d" % i for i in range(DP_LIMIT + 2))
    predicates = " AND ".join(
        "t%d.id = t%d.id" % (i, i + 1) for i in range(DP_LIMIT + 1)
    )
    graph = build(
        "SELECT t0.id FROM %s WHERE %s" % (names, predicates), sized_db
    )
    estimator = CardinalityEstimator(sized_db.catalog)
    order, _, _ = optimize_select_box(graph.top_box, estimator)
    assert len(order) == DP_LIMIT + 2


def test_magic_quantifiers_pinned_first(sized_db):
    graph = build(
        "SELECT b.id FROM big b, small s WHERE b.fk = s.id", sized_db
    )
    top = graph.top_box
    top.quantifiers[0].is_magic = True  # pretend 'b' is the magic table
    estimator = CardinalityEstimator(sized_db.catalog)
    order, _, _ = optimize_select_box(top, estimator)
    assert order[0] == "b"


def test_optimize_graph_covers_all_non_base_boxes(sized_db):
    sized_db.catalog.add_view(
        parse_statement(
            "CREATE VIEW v AS SELECT fk, COUNT(*) AS n FROM big GROUP BY fk"
        )
    )
    graph = build("SELECT s.name, v.n FROM small s, v WHERE v.fk = s.id", sized_db)
    plan = optimize_graph(graph, sized_db.catalog)
    from repro.qgm.model import BoxKind

    planned = set(plan.plans)
    for box in graph.boxes():
        if box.kind != BoxKind.BASE:
            assert box.box_id in planned
    assert plan.total_cost > 0


def test_correlated_box_multiplicity(sized_db):
    graph = build(
        "SELECT b.id FROM big b WHERE EXISTS "
        "(SELECT s.id FROM small s WHERE s.id = b.fk)",
        sized_db,
    )
    plan = optimize_graph(graph, sized_db.catalog)
    multiplicities = [p.multiplicity for p in plan.plans.values()]
    assert any(m > 1 for m in multiplicities)


def test_plan_describe_is_readable(sized_db):
    graph = build("SELECT id FROM big WHERE id = 1", sized_db)
    plan = optimize_graph(graph, sized_db.catalog)
    text = plan.describe()
    assert "total cost" in text
    assert "order=" in text


def test_join_orders_oracle_names(sized_db):
    graph = build(
        "SELECT b.id FROM big b, small s WHERE b.fk = s.id", sized_db
    )
    plan = optimize_graph(graph, sized_db.catalog)
    order = plan.join_orders[graph.top_box.box_id]
    assert set(order) == {"b", "s"}
