"""The multi-session query server: protocol, plan cache, admission,
breakers, deadlines/cancellation, and the socket stack end to end."""

import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Connection, Database
from repro.errors import (
    ExecutionError,
    QueryCancelledError,
    ResourceExhaustedError,
    ServerOverloadedError,
)
from repro.resilience import (
    CircuitBreaker,
    ResourceGovernor,
    RetryPolicy,
    StrategyBreakerBoard,
)
from repro.server import protocol
from repro.server.admission import AdmissionController
from repro.server.chaos import ServerHarness
from repro.server.client import ServerError
from repro.server.core import QueryServer, ServerConfig
from repro.server.plan_cache import (
    AdornmentPlanCache,
    CachedPlan,
    statement_adornment,
)
from repro.workloads.empdept import PAPER_VIEWS_SQL, build_empdept_database


# -- fixtures --------------------------------------------------------------------


@pytest.fixture
def empdept_server():
    database = build_empdept_database(
        n_departments=10, employees_per_department=5
    )
    Connection(database).run_script(PAPER_VIEWS_SQL)
    server = QueryServer(database, ServerConfig())
    yield server
    server.shutdown()


PARAM_QUERY = (
    "SELECT d.deptname, s.avgsalary FROM department d, avgMgrSal s "
    "WHERE d.deptno = s.workdept AND d.deptname = ?"
)


# -- protocol --------------------------------------------------------------------


def test_frame_roundtrip():
    frame = protocol.encode_frame({"op": "ping", "id": 7})
    length = protocol.decode_length(frame[:4])
    assert length == len(frame) - 4
    assert protocol.decode_payload(frame[4:]) == {"op": "ping", "id": 7}


def test_oversized_frame_rejected_without_reading_payload():
    import struct

    header = struct.pack(">I", protocol.MAX_FRAME_BYTES + 1)
    with pytest.raises(protocol.ProtocolError):
        protocol.decode_length(header)


def test_garbage_payload_rejected():
    with pytest.raises(protocol.ProtocolError):
        protocol.decode_payload(b"not json at all")
    with pytest.raises(protocol.ProtocolError):
        protocol.decode_payload(b"[1, 2, 3]")  # not an object


def test_error_serialization_carries_retry_metadata():
    exc = ServerOverloadedError(
        "shed", retry_after=0.25, queue_depth=4, active=8
    )
    wire = protocol.error_to_wire(exc)
    assert wire["type"] == "ServerOverloadedError"
    assert wire["retryable"] is True
    assert wire["retry_after"] == 0.25
    assert wire["context"]["queue_depth"] == 4


# -- plan cache ------------------------------------------------------------------


def _entry(fingerprint="f1", adornment="b", strategy="emst", version=0):
    return CachedPlan(
        fingerprint=fingerprint,
        adornment=adornment,
        strategy=strategy,
        catalog_version=version,
        graph=object(),
        plan=None,
        heuristic=None,
        param_count=1,
        table_versions={"t": 3},
    )


def test_cache_hit_and_miss_counting():
    cache = AdornmentPlanCache(capacity=4)
    assert cache.lookup("f1", "emst", 0) is None
    cache.store(_entry())
    hit = cache.lookup("f1", "emst", 0)
    assert hit is not None and hit.hits == 1
    stats = cache.stats()
    assert stats["hits"] == 1 and stats["misses"] == 1


def test_cache_invalidated_by_catalog_version():
    cache = AdornmentPlanCache(capacity=4)
    cache.store(_entry(version=0))
    assert cache.lookup("f1", "emst", 1) is None
    assert cache.stats()["invalidated"] == 1
    # The stale entry is purged, not resurrected by an old-version lookup.
    assert cache.lookup("f1", "emst", 0) is None


def test_cache_distinguishes_strategies():
    cache = AdornmentPlanCache(capacity=4)
    cache.store(_entry(strategy="emst"))
    cache.store(_entry(strategy="original"))
    assert cache.lookup("f1", "emst", 0).strategy == "emst"
    assert cache.lookup("f1", "original", 0).strategy == "original"


def test_cache_lru_eviction():
    cache = AdornmentPlanCache(capacity=2)
    cache.store(_entry(fingerprint="a"))
    cache.store(_entry(fingerprint="b"))
    cache.lookup("a", "emst", 0)  # refresh a
    cache.store(_entry(fingerprint="c"))  # evicts b
    assert cache.lookup("b", "emst", 0) is None
    assert cache.lookup("a", "emst", 0) is not None
    assert cache.stats()["evictions"] == 1


def test_plan_staleness_detection():
    entry = _entry()
    assert entry.staleness({"t": 3}) == []
    assert entry.staleness({"t": 5}) == ["t"]


def test_statement_adornment_letters():
    from repro.qgm import build_query_graph
    from repro.sql import parse_statement

    db = Database()
    db.create_table("t", ["a", "b", "c"], rows=[(1, 2, 3)])
    query = parse_statement(
        "SELECT c FROM t WHERE a = ? AND b > ?"
    )
    graph = build_query_graph(query, db.catalog)
    assert statement_adornment(graph) == "bc"


# -- admission -------------------------------------------------------------------


def test_admission_sheds_past_queue_with_retry_after():
    admission = AdmissionController(max_concurrent=1, max_queue=1)
    tickets = [admission.try_admit(), admission.try_admit()]
    with pytest.raises(ServerOverloadedError) as info:
        admission.try_admit()
    assert info.value.retry_after is not None
    assert info.value.context["retry_after"] == info.value.retry_after
    for ticket in tickets:
        admission.release(ticket)
    assert admission.try_admit() is not None
    stats = admission.stats()
    assert stats["shed"] == 1 and stats["admitted"] == 3


def test_admission_ewma_tracks_service_time():
    clock = [0.0]
    admission = AdmissionController(
        max_concurrent=1, max_queue=0,
        default_service_seconds=0.0, ewma_alpha=1.0,
        clock=lambda: clock[0],
    )
    ticket = admission.try_admit()
    clock[0] = 2.0
    admission.release(ticket)
    assert admission.stats()["ewma_service_seconds"] == 2.0


# -- circuit breakers ------------------------------------------------------------


def test_breaker_opens_after_threshold_and_recovers():
    clock = [0.0]
    breaker = CircuitBreaker(
        failure_threshold=2, cooldown_seconds=10, clock=lambda: clock[0]
    )
    assert breaker.allows()
    breaker.record_failure(ValueError("boom"))
    assert breaker.allows()
    breaker.record_failure(ValueError("boom"))
    assert breaker.state == CircuitBreaker.OPEN
    assert not breaker.allows()
    clock[0] = 11.0
    assert breaker.allows()  # half-open trial
    assert breaker.state == CircuitBreaker.HALF_OPEN
    breaker.record_success()
    assert breaker.state == CircuitBreaker.CLOSED


def test_breaker_half_open_failure_reopens():
    clock = [0.0]
    breaker = CircuitBreaker(
        failure_threshold=1, cooldown_seconds=5, clock=lambda: clock[0]
    )
    breaker.record_failure()
    clock[0] = 6.0
    assert breaker.allows()
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.OPEN
    assert breaker.times_opened == 2


def test_board_demotes_along_chain_and_never_blocks_original():
    clock = [0.0]
    board = StrategyBreakerBoard(
        failure_threshold=1, cooldown_seconds=100, clock=lambda: clock[0]
    )
    assert board.select("emst") == "emst"
    board.record_failure("emst", ValueError("bad rewrite"))
    assert board.select("emst") == "phase1"
    board.record_failure("phase1", ValueError("also bad"))
    assert board.select("emst") == "original"
    board.record_failure("original", ValueError("cannot block"))
    assert board.select("emst") == "original"
    # Strategies outside the chain pass through untouched.
    assert board.select("correlated") == "correlated"
    clock[0] = 101.0
    assert board.select("emst") == "emst"  # cooldown elapsed: trial


# -- retry policy ----------------------------------------------------------------


def test_retry_policy_classification_and_delay_floor():
    policy = RetryPolicy(max_attempts=3, base_delay=0.1, max_delay=1.0)
    assert policy.is_retryable({"retryable": True})
    assert not policy.is_retryable({"retryable": False})
    assert policy.is_retryable(ConnectionError())
    assert policy.is_retryable(ServerOverloadedError("shed"))
    assert not policy.is_retryable(ExecutionError("typo"))
    assert policy.should_retry(1, ConnectionError())
    assert not policy.should_retry(3, ConnectionError())
    assert policy.delay(1, retry_after=0.5) >= 0.5
    assert RetryPolicy.retry_after_from(
        {"context": {"retry_after": 0.7}}
    ) == 0.7


# -- governor satellites ---------------------------------------------------------


def test_governor_remaining_snapshot():
    governor = ResourceGovernor(
        deadline_seconds=100.0, max_materialized_rows=10
    )
    governor.materialized_rows = 4
    remaining = governor.remaining()
    assert remaining["max_materialized_rows"] == 6
    assert 0 < remaining["deadline_seconds"] <= 100.0
    assert remaining["max_correlated_invocations"] is None


def test_deadline_error_carries_retry_after():
    governor = ResourceGovernor(deadline_seconds=0.0)
    time.sleep(0.001)
    with pytest.raises(ResourceExhaustedError) as info:
        governor.check_deadline("test")
    assert info.value.retry_after == 0.0
    assert info.value.context["retry_after"] == 0.0


def test_cancel_token_trips_checkpoint():
    governor = ResourceGovernor()
    event = threading.Event()
    governor.attach_cancel_token(event, "client disconnected")
    governor.checkpoint("anywhere")  # not yet set: no-op
    event.set()
    with pytest.raises(QueryCancelledError) as info:
        governor.checkpoint("join processing")
    assert info.value.reason == "client disconnected"
    assert info.value.retryable is True
    # begin_query clears the token: the next query is unaffected.
    governor.begin_query()
    governor.checkpoint("next query")


# -- table/catalog versioning (satellite) ----------------------------------------


def test_ddl_and_dml_bump_versions_consistently():
    db = Database()
    v0 = db.schema_version()
    db.create_table("t", ["a", "b"], rows=[(1, 2)])
    assert db.schema_version() == v0 + 1
    conn = Connection(db)
    table = db.table("t")
    data0 = table.version
    conn.run_script("INSERT INTO t VALUES (3, 4), (5, 6)")
    assert table.version == data0 + 1  # one statement, one bump
    conn.run_script("UPDATE t SET b = 9 WHERE a = 3")
    assert table.version == data0 + 2
    conn.run_script("DELETE FROM t WHERE a = 5")
    assert table.version == data0 + 3
    schema_before = db.schema_version()
    conn.run_script("CREATE VIEW v (x) AS SELECT a FROM t")
    assert db.schema_version() == schema_before + 1
    db.catalog.drop_view("v")
    assert db.schema_version() == schema_before + 2
    assert db.table_versions(["t"]) == {"t": data0 + 3}


def test_scoped_views_do_not_bump_catalog_version():
    db = Database()
    db.create_table("t", ["a"], rows=[(1,)])
    conn = Connection(db)
    version = db.schema_version()
    conn.explain_execute(
        "CREATE VIEW inline_v (x) AS SELECT a FROM t; "
        "SELECT x FROM inline_v"
    )
    assert db.schema_version() == version
    assert not db.catalog.has_view("inline_v")


# -- server core (no sockets) ----------------------------------------------------


def test_query_caches_across_bindings(empdept_server):
    server = empdept_server
    first = server.handle_query(PARAM_QUERY, params=["Planning"])
    second = server.handle_query(PARAM_QUERY, params=["Dept0003"])
    assert first["cache"] == "miss" and second["cache"] == "hit"
    assert first["adornment"] == "b"
    assert second["row_count"] == 1
    # Literal spelling joins the same plan via auto-parameterization.
    third = server.handle_query(PARAM_QUERY.replace("?", "'Dept0004'"))
    assert third["cache"] == "hit"
    assert third["fingerprint"] == first["fingerprint"]


def test_cached_results_match_original_strategy_oracle(empdept_server):
    server = empdept_server
    oracle = Connection(server.database)
    for name in ("Planning", "Dept0002", "Dept0007", "NoSuchDept"):
        server.handle_query(PARAM_QUERY, params=[name])  # warm
        answer = server.handle_query(PARAM_QUERY, params=[name])
        expected = oracle.execute(
            PARAM_QUERY.replace("?", "'%s'" % name), strategy="original"
        )
        assert sorted(map(tuple, answer["rows"])) == sorted(expected.rows)


def test_ddl_invalidates_cached_plans(empdept_server):
    server = empdept_server
    server.handle_query(PARAM_QUERY, params=["Planning"])
    assert server.handle_query(PARAM_QUERY, params=["Planning"])["cache"] == "hit"
    server.handle_script("CREATE TABLE unrelated (x, y)")
    after = server.handle_query(PARAM_QUERY, params=["Planning"])
    assert after["cache"] == "miss"
    assert server.cache.stats()["invalidated"] >= 1


def test_dml_evicts_stale_plan_and_replans(empdept_server):
    """DML used to leave stale plans serving forever (``stale_tables``
    reported the problem, nothing acted on it). The cache now evicts a
    hit whose recorded table versions moved and re-prepares against
    current statistics — the response says so (``cache == "replan"``),
    the replanned entry is *not* stale, and subsequent executions hit
    the fresh plan."""
    server = empdept_server
    server.handle_query(PARAM_QUERY, params=["Planning"])
    server.handle_script(
        "INSERT INTO employee VALUES (99999, 'New', 'D0001', 70000, 'CLERK')"
    )
    result = server.handle_query(PARAM_QUERY, params=["Planning"])
    assert result["cache"] == "replan"  # stale plan evicted, re-prepared
    assert result["stale_tables"] == []  # the new plan has fresh versions
    assert server.cache.stats()["stale_replans"] >= 1
    again = server.handle_query(PARAM_QUERY, params=["Planning"])
    assert again["cache"] == "hit"  # replanned entry serves until next DML


def test_dml_on_unrelated_table_does_not_replan(empdept_server):
    """Plan staleness is tracked per base table the (rewritten) graph
    actually reads: DML against a table the plan never touches must not
    evict it."""
    server = empdept_server
    server.handle_script("CREATE TABLE bystander (x, y)")
    server.handle_query(PARAM_QUERY, params=["Planning"])
    assert (
        server.handle_query(PARAM_QUERY, params=["Planning"])["cache"]
        == "hit"
    )
    server.handle_script("INSERT INTO bystander VALUES (1, 2)")
    result = server.handle_query(PARAM_QUERY, params=["Planning"])
    assert result["cache"] == "hit"
    assert result["stale_tables"] == []


def test_prepare_execute_parameter_mismatch(empdept_server):
    handle, description = empdept_server.handle_prepare(PARAM_QUERY)
    assert description["param_count"] == 1
    with pytest.raises(ExecutionError):
        empdept_server.handle_execute(handle, params=[])


def test_breaker_demotes_failing_strategy(empdept_server):
    server = empdept_server
    server.breakers = StrategyBreakerBoard(
        failure_threshold=2, cooldown_seconds=1000
    )
    original_prepare = server.connection.prepare

    def sabotaged(query, strategy="emst", resilience=None):
        if strategy == "emst":
            raise RuntimeError("rewrite corrupted the graph")
        return original_prepare(query, strategy, resilience=resilience)

    server.connection.prepare = sabotaged
    # Requests succeed via in-request fallback while emst keeps failing...
    for _ in range(2):
        result = server.handle_query(PARAM_QUERY, params=["Planning"])
        assert result["executed_strategy"] == "phase1"
        assert result["requested_strategy"] == "emst"
    # ...and after the threshold the breaker skips emst outright.
    assert server.breakers.select("emst") == "phase1"
    snapshot = server.breakers.snapshot()
    assert snapshot["strategies"]["emst"]["state"] == "open"
    result = server.handle_query(PARAM_QUERY, params=["Dept0001"])
    assert result["executed_strategy"] == "phase1"


def test_server_clamps_deadline(empdept_server):
    empdept_server.config.max_deadline_seconds = 0.0
    with pytest.raises(ResourceExhaustedError) as info:
        empdept_server.handle_query(
            PARAM_QUERY, params=["Planning"], deadline=9999
        )
    assert info.value.limit == "deadline_seconds"


# -- deadlines/cancellation inside the recursive fixpoint (satellite) ------------


def _chain_database(length=60):
    db = Database()
    db.create_table(
        "edge", ["src", "dst"], rows=[(i, i + 1) for i in range(length)]
    )
    return db


CLOSURE = (
    "WITH RECURSIVE reach (n) AS ("
    "  SELECT dst FROM edge WHERE src = 0 "
    "  UNION "
    "  SELECT e.dst FROM reach r, edge e WHERE e.src = r.n) "
    "SELECT n FROM reach"
)


class _CancelAtRound(ResourceGovernor):
    """Deterministically sets its own cancel token when the fixpoint
    reaches ``trip_round``, recording every round observed after that."""

    def __init__(self, trip_round):
        super().__init__()
        self.trip_round = trip_round
        self.rounds_seen = []

    def check_fixpoint_rounds(self, rounds, component):
        self.rounds_seen.append(rounds)
        if rounds == self.trip_round:
            self.cancel("test trip")
        super().check_fixpoint_rounds(rounds, component)


def test_cancel_mid_fixpoint_aborts_within_one_round():
    db = _chain_database(60)
    governor = _CancelAtRound(trip_round=5)
    from repro.resilience import ResiliencePolicy

    policy = ResiliencePolicy(governor=governor)
    before_rows = list(db.table("edge").rows)
    before_version = db.schema_version()
    with pytest.raises(QueryCancelledError) as info:
        Connection(db).explain_execute(
            CLOSURE, strategy="norewrite", resilience=policy
        )
    # The abort happened in the round that tripped — not rounds later.
    assert max(governor.rounds_seen) == 5
    assert "fixpoint" in info.value.where
    assert info.value.retryable is True
    # No partial state: storage and catalog untouched, clean retry works.
    assert db.table("edge").rows == before_rows
    assert db.schema_version() == before_version
    clean = Connection(db).explain_execute(CLOSURE, strategy="norewrite")
    assert len(clean.rows) == 60


def test_deadline_mid_fixpoint_structured_error():
    db = _chain_database(4000)
    from repro.resilience import ResiliencePolicy

    policy = ResiliencePolicy(
        governor=ResourceGovernor(deadline_seconds=0.05)
    )
    with pytest.raises(ResourceExhaustedError) as info:
        Connection(db).explain_execute(
            CLOSURE, strategy="norewrite", resilience=policy
        )
    assert info.value.limit == "deadline_seconds"
    assert info.value.retry_after == 0.05
    assert "fixpoint" in info.value.context["where"]


class _TripAfter:
    """A cancel token that trips after N observations — models a client
    disconnect at an arbitrary cooperative checkpoint."""

    def __init__(self, after):
        self.after = after
        self.calls = 0

    def is_set(self):
        self.calls += 1
        return self.calls > self.after


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    trip_after=st.integers(min_value=1, max_value=200),
    src=st.integers(min_value=0, max_value=6),
)
def test_cancelled_then_retried_equals_clean(trip_after, src):
    db = _chain_database(12)
    sql = CLOSURE.replace("src = 0", "src = %d" % src)
    from repro.resilience import ResiliencePolicy

    governor = ResourceGovernor()
    governor.attach_cancel_token(_TripAfter(trip_after), "chaos")
    policy = ResiliencePolicy(governor=governor)
    conn = Connection(db)
    try:
        first = conn.explain_execute(
            sql, strategy="norewrite", resilience=policy
        ).rows
    except QueryCancelledError:
        first = None  # cancelled cleanly; nothing to compare yet
    retried = conn.explain_execute(sql, strategy="norewrite").rows
    oracle = conn.explain_execute(sql, strategy="original").rows
    assert sorted(retried) == sorted(oracle)
    if first is not None:
        assert sorted(first) == sorted(oracle)


# -- the socket stack ------------------------------------------------------------


def test_socket_stack_end_to_end():
    database = build_empdept_database(
        n_departments=8, employees_per_department=4
    )
    Connection(database).run_script(PAPER_VIEWS_SQL)
    config = ServerConfig(port=0, max_concurrent=2, max_queue=2)
    with ServerHarness(database, config) as harness:
        with harness.client() as client:
            assert client.ping()["pong"] is True
            first = client.query(PARAM_QUERY, params=["Planning"])
            assert first["row_count"] == 1 and first["cache"] == "miss"
            second = client.query(PARAM_QUERY, params=["Dept0002"])
            assert second["cache"] == "hit"
            prepared = client.prepare(
                "SELECT empname FROM employee WHERE workdept = ?"
            )
            result = client.execute(prepared["statement"], params=["D0001"])
            assert result["row_count"] == 4
            with pytest.raises(ServerError) as info:
                client.query("SELECT broken syntax FROM")
            assert info.value.retryable is False
            stats = client.stats()
            assert stats["cache"]["hits"] >= 1
            assert stats["admission"]["admitted"] >= 4


@pytest.mark.chaos
def test_session_chaos_batteries():
    from repro.server.chaos import run_session_chaos

    report = run_session_chaos(
        seed=20260808, scale=0.12, poison_rounds=8,
        storm_clients=6, storm_requests=3, verbose=False,
    )
    assert report["slow_client_ok"]
    assert report["disconnect_ok"]
    assert report["poisoning_checked"] >= 1
    assert report["storm_outcomes"]["ok"] >= 1
