"""Lexer unit tests."""

import pytest

from repro.errors import LexError
from repro.sql.lexer import tokenize
from repro.sql.tokens import TokenKind


def kinds(text):
    return [t.kind for t in tokenize(text)[:-1]]


def values(text):
    return [t.value for t in tokenize(text)[:-1]]


def test_empty_input_yields_only_eof():
    tokens = tokenize("")
    assert len(tokens) == 1
    assert tokens[0].kind == TokenKind.EOF


def test_keywords_are_case_insensitive_and_uppercased():
    assert values("select SELECT SeLeCt") == ["SELECT", "SELECT", "SELECT"]
    assert kinds("select") == [TokenKind.KEYWORD]


def test_identifiers_preserve_case():
    tokens = tokenize("avgMgrSal")
    assert tokens[0].kind == TokenKind.IDENT
    assert tokens[0].value == "avgMgrSal"


def test_identifier_with_digits_dollar_hash():
    assert values("a1 b$2 c#3") == ["a1", "b$2", "c#3"]


def test_integer_and_float_literals():
    tokens = tokenize("42 3.25 .5 1e3 2.5E-2")
    assert [t.value for t in tokens[:-1]] == ["42", "3.25", ".5", "1e3", "2.5E-2"]
    assert all(t.kind == TokenKind.NUMBER for t in tokens[:-1])


def test_malformed_exponent_rejected():
    with pytest.raises(LexError):
        tokenize("1e")


def test_string_literal_with_escaped_quote():
    tokens = tokenize("'it''s'")
    assert tokens[0].kind == TokenKind.STRING
    assert tokens[0].value == "it's"


def test_unterminated_string_raises():
    with pytest.raises(LexError):
        tokenize("'oops")


def test_quoted_identifier():
    tokens = tokenize('"Weird Name"')
    assert tokens[0].kind == TokenKind.IDENT
    assert tokens[0].value == "Weird Name"


def test_multi_char_operators_greedy():
    assert values("<> <= >= != ||") == ["<>", "<=", ">=", "!=", "||"]


def test_single_char_symbols():
    assert values("( ) + - * / % , . < > = ;") == list("()+-*/%,.<>=;")


def test_line_comment_skipped():
    assert values("a -- comment here\n b") == ["a", "b"]


def test_block_comment_skipped():
    assert values("a /* multi\nline */ b") == ["a", "b"]


def test_unterminated_block_comment_raises():
    with pytest.raises(LexError):
        tokenize("a /* never ends")


def test_line_and_column_tracking():
    tokens = tokenize("a\n  b")
    assert (tokens[0].line, tokens[0].column) == (1, 1)
    assert (tokens[1].line, tokens[1].column) == (2, 3)


def test_unexpected_character_raises_with_position():
    with pytest.raises(LexError) as info:
        tokenize("a @ b")
    assert info.value.line == 1
    assert info.value.column == 3


def test_number_adjacent_to_dot_field_access():
    # "t.5" is not valid SQL but "x.y" must lex as IDENT SYMBOL IDENT.
    assert kinds("x.y") == [TokenKind.IDENT, TokenKind.SYMBOL, TokenKind.IDENT]


def test_keyword_boundary_not_greedy():
    # 'selected' is an identifier, not SELECT + ed.
    tokens = tokenize("selected")
    assert tokens[0].kind == TokenKind.IDENT
