"""Unit tests for the magic building blocks: adornments, the AMQ/NMQ
registry, predicate classification, and magic-box constructors."""

import pytest

from repro.errors import MagicError
from repro.qgm import expr as qe
from repro.qgm.model import (
    Box,
    BoxKind,
    DistinctMode,
    MagicRole,
    OutputColumn,
    Quantifier,
    QuantifierType,
    QueryGraph,
)
from repro.magic.adornment import Adornment, all_free, build_adornment, is_all_free
from repro.magic.adorn import classify_quantifier, local_equality_parts, predicate_signature
from repro.magic.properties import (
    OperationProperties,
    is_amq,
    operation_properties,
    register_operation,
)
from repro.magic.magic_boxes import build_contribution, extend_magic


# -- adornments -----------------------------------------------------------------


def test_adornment_positions():
    adornment = Adornment("bcf")
    assert adornment.bound_positions == [0]
    assert adornment.conditioned_positions == [1]
    assert adornment.has_conditions
    assert not adornment.is_all_free


def test_all_free_constructor():
    assert all_free(3) == "fff"
    assert is_all_free(all_free(5))
    assert is_all_free(None)
    assert not is_all_free(Adornment("bf"))


def test_invalid_letter_rejected():
    with pytest.raises(MagicError):
        Adornment("bq")


def test_build_adornment_bound_wins_over_conditioned():
    box = Box(
        kind=BoxKind.SELECT,
        name="B",
        columns=[OutputColumn(name=n) for n in ("x", "y", "z")],
    )
    adornment = build_adornment(box, {"x"}, {"x", "z"})
    assert adornment == "bfc"


# -- registry --------------------------------------------------------------------


def test_builtin_properties():
    assert operation_properties(BoxKind.SELECT).amq
    for kind in (BoxKind.GROUPBY, BoxKind.UNION, BoxKind.EXCEPT, BoxKind.OUTERJOIN):
        assert not operation_properties(kind).amq
    assert not operation_properties(BoxKind.BASE).processed_by_emst


def test_register_custom_operation():
    register_operation(OperationProperties(kind="TEST_OP", amq=True))
    box = Box(kind="TEST_OP", name="X")
    assert is_amq(box)


def test_pass_down_handlers_installed():
    assert operation_properties(BoxKind.GROUPBY).pass_down is not None
    assert operation_properties(BoxKind.UNION).pass_down is not None
    assert operation_properties(BoxKind.OUTERJOIN).pass_down is not None


# -- classification -----------------------------------------------------------------


def setup_box():
    graph = QueryGraph()
    base_a = graph.new_box(
        BoxKind.BASE, "A", columns=[OutputColumn(name="x"), OutputColumn(name="y")]
    )
    base_b = graph.new_box(
        BoxKind.BASE, "B", columns=[OutputColumn(name="x"), OutputColumn(name="z")]
    )
    box = graph.new_box(BoxKind.SELECT, "Q")
    qa = Quantifier(name="a", qtype=QuantifierType.FOREACH, input_box=base_a)
    qb = Quantifier(name="b", qtype=QuantifierType.FOREACH, input_box=base_b)
    box.add_quantifier(qa)
    box.add_quantifier(qb)
    box.columns = [OutputColumn(name="x", expr=qa.ref("x"))]
    return graph, box, qa, qb


def test_classify_dependent_equality():
    graph, box, qa, qb = setup_box()
    box.predicates = [qe.QBinary(op="=", left=qb.ref("x"), right=qa.ref("x"))]
    info = classify_quantifier(box, qb, {qa})
    assert info.bound == [("x", box.predicates[0].right)]
    assert not info.conditions


def test_classify_dependent_condition():
    graph, box, qa, qb = setup_box()
    box.predicates = [qe.QBinary(op=">", left=qb.ref("z"), right=qa.ref("y"))]
    info = classify_quantifier(box, qb, {qa})
    assert not info.bound
    assert info.conditions == box.predicates
    assert info.condition_columns == ["z"]


def test_classify_local_predicates():
    graph, box, qa, qb = setup_box()
    eq = qe.QBinary(op="=", left=qb.ref("x"), right=qe.QLiteral(7))
    cond = qe.QBinary(op="<", left=qb.ref("z"), right=qe.QLiteral(5))
    box.predicates = [eq, cond]
    info = classify_quantifier(box, qb, set())
    assert info.local_bound_columns == ["x"]
    assert info.local_condition_columns == ["z"]
    assert set(map(id, info.local_predicates)) == {id(eq), id(cond)}


def test_classify_skips_predicates_on_later_quantifiers():
    graph, box, qa, qb = setup_box()
    box.predicates = [qe.QBinary(op="=", left=qa.ref("x"), right=qb.ref("x"))]
    # Classifying qa with NOTHING eligible: the predicate depends on qb.
    info = classify_quantifier(box, qa, set())
    assert info.is_trivial


def test_local_equality_parts():
    graph, box, qa, qb = setup_box()
    pred = qe.QBinary(op="=", left=qe.QLiteral(3), right=qb.ref("x"))
    column, constant = local_equality_parts(pred, qb)
    assert column == "x"
    assert constant.value == 3
    assert local_equality_parts(
        qe.QBinary(op="<", left=qb.ref("x"), right=qe.QLiteral(3)), qb
    ) is None


def test_predicate_signature_normalises_quantifier():
    graph, box, qa, qb = setup_box()
    pred = qe.QBinary(op="=", left=qb.ref("x"), right=qe.QLiteral("v"))
    signature = predicate_signature(pred, qb)
    assert "$q.x" in signature
    assert "'v'" in signature


# -- magic box constructors -------------------------------------------------------------


def test_build_contribution_clones_eligible():
    graph, box, qa, qb = setup_box()
    box.predicates = [qe.QBinary(op="=", left=qa.ref("x"), right=qe.QLiteral(1))]
    contribution = build_contribution(
        graph, box, [qa], [("mc_x", qa.ref("x"))]
    )
    assert contribution.magic_role == MagicRole.MAGIC
    assert contribution.distinct == DistinctMode.ENFORCE
    assert contribution.column_names == ["mc_x"]
    assert len(contribution.quantifiers) == 1
    # The clone carries the predicate local to the eligible prefix.
    assert len(contribution.predicates) == 1
    # And the cloned expressions reference the clone, not the original.
    for predicate in contribution.predicates:
        for ref in qe.column_refs(predicate):
            assert ref.quantifier in contribution.quantifiers


def test_build_contribution_with_no_eligible_is_constant_seed():
    graph, box, qa, qb = setup_box()
    contribution = build_contribution(graph, box, [], [("mc_x", qe.QLiteral(9))])
    assert contribution.quantifiers == []
    assert contribution.columns[0].expr.value == 9


def test_extend_magic_converts_to_union_in_place():
    graph, box, qa, qb = setup_box()
    magic = build_contribution(graph, box, [qa], [("mc_x", qa.ref("x"))])
    other = build_contribution(graph, box, [qa], [("mc_x", qa.ref("x"))])
    identity = id(magic)
    extend_magic(graph, magic, other)
    assert id(magic) == identity  # same object
    assert magic.kind == BoxKind.UNION
    assert len(magic.quantifiers) == 2
    assert magic.distinct == DistinctMode.ENFORCE
    third = build_contribution(graph, box, [qa], [("mc_x", qa.ref("x"))])
    extend_magic(graph, magic, third)
    assert len(magic.quantifiers) == 3


def test_extend_magic_self_is_noop():
    graph, box, qa, qb = setup_box()
    magic = build_contribution(graph, box, [qa], [("mc_x", qa.ref("x"))])
    extend_magic(graph, magic, magic)
    assert magic.kind == BoxKind.SELECT
