"""EMST tests: the paper's Example 4.1 structures, adornments, magic /
supplementary / condition-magic boxes, AMQ/NMQ handling, subquery
decorrelation and semantic preservation."""

import pytest

from repro import Connection, Database
from repro.sql import parse_statement
from repro.qgm import (
    BoxKind,
    DistinctMode,
    MagicRole,
    QuantifierType,
    build_query_graph,
    validate_graph,
)
from repro.optimizer.heuristic import optimize_with_heuristic
from repro.rewrite import RewriteEngine, default_rules
from repro.optimizer import optimize_graph

from tests.helpers import canonical, run_all_strategies

QUERY_D = (
    "SELECT d.deptname, s.workdept, s.avgsalary "
    "FROM department d, avgMgrSal s "
    "WHERE d.deptno = s.workdept AND d.deptname = 'Planning'"
)


def build(sql, db):
    return build_query_graph(parse_statement(sql), db.catalog)


def run_pipeline(sql, db):
    graph = build(sql, db)
    result = optimize_with_heuristic(graph, db.catalog)
    validate_graph(result.graph)
    return result


def phase2_graph(sql, db):
    """Stop after phase 2 (before cleanup), as Figure 4 lower-left."""
    graph = build(sql, db)
    engine = RewriteEngine(default_rules(include_emst=True))
    context = engine.run_phase(graph, 1)
    plan = optimize_graph(graph, db.catalog)
    engine.run_phase(graph, 2, join_orders=plan.join_orders, context=context)
    validate_graph(graph)
    return graph, context


# -- the paper's running example -------------------------------------------------


def test_query_d_phase2_creates_magic_and_supplementary(empdept_conn):
    graph, context = phase2_graph(QUERY_D, empdept_conn.database)
    roles = [b.magic_role for b in graph.boxes()]
    assert MagicRole.SUPPLEMENTARY in roles
    assert MagicRole.MAGIC in roles
    assert context.firing_counts.get("emst", 0) >= 3


def test_query_d_phase2_adornments(empdept_conn):
    graph, _ = phase2_graph(QUERY_D, empdept_conn.database)
    adornments = {
        box.name.split("^")[0]: box.adornment
        for box in graph.boxes()
        if box.adornment
    }
    # The groupby (avgMgrSal) is bound on workdept: ^bf; T1 (mgrSal merged)
    # is bound on its group-key column.
    groupbys = [b for b in graph.boxes() if b.kind == BoxKind.GROUPBY]
    assert any(b.adornment == "bf" for b in groupbys)


def test_query_d_distinct_pullup_fires_twice_in_phase2(empdept_conn):
    graph, context = phase2_graph(QUERY_D, empdept_conn.database)
    # The paper: "a distinct pullup rule is used twice in this phase".
    assert context.firing_counts.get("distinct-pullup") == 2


def test_query_d_phase3_merges_magic_boxes_away(empdept_conn):
    result = run_pipeline(QUERY_D, empdept_conn.database)
    boxes = result.graph.boxes()
    # After cleanup only the supplementary box remains special (SD3/SD4
    # are gone, merged into SD2' — Figure 5).
    magic_boxes = [b for b in boxes if b.magic_role == MagicRole.MAGIC]
    assert not magic_boxes
    supplementary = [b for b in boxes if b.magic_role == MagicRole.SUPPLEMENTARY]
    assert len(supplementary) == 1


def test_query_d_final_graph_shape_one_extra_box_one_extra_join(empdept_conn):
    """Figure 4: the final graph has exactly one extra box and one extra
    join (predicate) compared to the phase-1 graph."""
    db = empdept_conn.database
    phase1 = build(QUERY_D, db)
    engine = RewriteEngine(default_rules())
    engine.run_phase(phase1, 1)
    boxes1, quantifiers1, predicates1 = phase1.summary_counts()

    result = run_pipeline(QUERY_D, db)
    boxes3, quantifiers3, predicates3 = result.graph.summary_counts()
    assert boxes3 == boxes1 + 1
    assert predicates3 == predicates1 + 1
    # Two extra table references (the supplementary box used twice), but
    # only one extra *join*: the magic equi-join inside mgrSal.
    assert quantifiers3 == quantifiers1 + 2


def test_query_d_supplementary_shared_by_query_and_view(empdept_conn):
    result = run_pipeline(QUERY_D, empdept_conn.database)
    graph = result.graph
    supplementary = [
        b for b in graph.boxes() if b.magic_role == MagicRole.SUPPLEMENTARY
    ][0]
    consumers = [
        box
        for box in graph.boxes()
        for q in box.quantifiers
        if q.input_box is supplementary
    ]
    assert len(consumers) == 2  # the QUERY box and mgrSal's T1 (SD2')


def test_query_d_results_preserved(empdept_conn):
    run_all_strategies(empdept_conn, QUERY_D)


def test_emst_rule_fires_once_per_box(empdept_conn):
    graph, _ = phase2_graph(QUERY_D, empdept_conn.database)
    assert all(
        box.emst_done
        for box in graph.boxes()
        if box.kind != BoxKind.BASE and not box.is_special
    )


# -- magic boxes are DISTINCT until proven duplicate-free --------------------------


def test_magic_box_distinct_enforced_when_unprovable(numbers_db):
    # t.a is not unique, so the magic table over it must keep DISTINCT.
    numbers_db.catalog.add_view(
        parse_statement(
            "CREATE VIEW sv (a, total) AS SELECT a, SUM(d) FROM s GROUP BY a"
        )
    )
    graph = build(
        "SELECT t.c, v.total FROM t, sv v WHERE v.a = t.a AND t.b = 20",
        numbers_db,
    )
    engine = RewriteEngine(default_rules(include_emst=True))
    context = engine.run_phase(graph, 1)
    plan = optimize_graph(graph, numbers_db.catalog)
    engine.run_phase(graph, 2, join_orders=plan.join_orders, context=context)
    magic = [b for b in graph.boxes() if b.magic_role == MagicRole.MAGIC]
    assert magic
    # The root magic box (built over the non-unique t.a) must keep its
    # DISTINCT; boxes *derived* from an enforcing magic box may legally
    # relax theirs (their input is already duplicate-free).
    assert any(b.distinct == DistinctMode.ENFORCE for b in magic)
    from repro.qgm.keys import is_duplicate_free

    for box in magic:
        if box.distinct != DistinctMode.ENFORCE:
            assert is_duplicate_free(box, ignore_enforce=True)


# -- local predicates are pushed via the adorned copy ------------------------------


def test_local_constant_predicate_pushed_into_shared_view_copy(empdept_conn):
    db = empdept_conn.database
    sql = (
        "SELECT a.workdept, b.avgsalary FROM avgMgrSal a, avgMgrSal b "
        "WHERE a.workdept = 'D1' AND b.workdept = 'D2' "
        "AND a.avgsalary = b.avgsalary"
    )
    result = run_pipeline(sql, db)
    conn = Connection(db)
    run_all_strategies(conn, sql)


# -- conditions (c adornments, ground magic) -----------------------------------------


def test_condition_magic_uses_semi_join(empdept_db):
    empdept_db.catalog.add_view(
        parse_statement(
            "CREATE VIEW pay (empno, workdept, salary) AS "
            "SELECT empno, workdept, salary FROM employee"
        )
    )
    sql = (
        "SELECT d.deptno, p.empno FROM department d, pay p "
        "WHERE p.salary > d.mgrno * 10 AND d.deptname = 'Planning'"
    )
    graph = build(sql, empdept_db)
    engine = RewriteEngine(default_rules(include_emst=True))
    context = engine.run_phase(graph, 1)
    plan = optimize_graph(graph, empdept_db.catalog)
    engine.run_phase(graph, 2, join_orders=plan.join_orders, context=context)
    validate_graph(graph)
    condition_magic = [
        b for b in graph.boxes() if b.magic_role == MagicRole.CONDITION_MAGIC
    ]
    if condition_magic:  # view may have been merged in phase 1 instead
        consumers = [
            q
            for box in graph.boxes()
            for q in box.quantifiers
            if q.input_box in condition_magic
        ]
        assert all(q.qtype == QuantifierType.EXISTENTIAL for q in consumers)


def test_condition_magic_preserves_results(empdept_db):
    # Use a derived table that phase 1 cannot merge (DISTINCT on non-key),
    # forcing the condition to travel via a condition-magic-box.
    empdept_db.catalog.add_view(
        parse_statement(
            "CREATE VIEW dsal (workdept, salary) AS "
            "SELECT DISTINCT workdept, salary FROM employee"
        )
    )
    sql = (
        "SELECT d.deptno, p.salary FROM department d, dsal p "
        "WHERE p.salary > d.mgrno * 100 AND d.deptname = 'Planning'"
    )
    run_all_strategies(Connection(empdept_db), sql)


# -- duplicates through magic ----------------------------------------------------------


def test_duplicate_preservation_through_magic():
    """Magic restriction must not change multiplicities (the [MPR90]
    requirement): the view output is a bag."""
    db = Database()
    db.create_table("t", ["a", "b"], rows=[(1, 10), (1, 10), (2, 20)])
    db.create_table("k", ["a"], primary_key=["a"], rows=[(1,), (3,)])
    db.catalog.add_view(
        parse_statement("CREATE VIEW v AS SELECT a, b FROM t")
    )
    sql = "SELECT v.a, v.b FROM k, v WHERE v.a = k.a"
    rows = run_all_strategies(Connection(db), sql)
    assert rows == [(1, 10), (1, 10)]


def test_duplicate_bindings_do_not_duplicate_view_rows():
    """The magic table is DISTINCT: duplicate outer bindings must not
    multiply the restricted view's contribution to the semi side."""
    db = Database()
    db.create_table("outer1", ["a"], rows=[(1,), (1,)])  # duplicate bindings
    db.create_table("t", ["a", "b"], rows=[(1, 10), (2, 20)])
    db.catalog.add_view(
        parse_statement(
            "CREATE VIEW v (a, total) AS SELECT a, SUM(b) FROM t GROUP BY a"
        )
    )
    sql = "SELECT o.a, v.total FROM outer1 o, v WHERE v.a = o.a"
    rows = run_all_strategies(Connection(db), sql)
    assert rows == [(1, 10), (1, 10)]  # once per outer row, same total


# -- NMQ set operations -------------------------------------------------------------------


def test_magic_through_union(numbers_db):
    numbers_db.catalog.add_view(
        parse_statement(
            "CREATE VIEW u (x) AS "
            "SELECT a FROM (SELECT a, b FROM t) AS p "
            "UNION ALL SELECT a FROM (SELECT a, d FROM s) AS q"
        )
    )
    sql = "SELECT k.a, u.x FROM (SELECT a FROM s WHERE d = 100) AS k, u WHERE u.x = k.a"
    rows = run_all_strategies(Connection(numbers_db), sql)
    # a=1 appears in both branches of the UNION ALL view.
    assert rows == [(1, 1), (1, 1)]


def test_magic_through_except(numbers_db):
    numbers_db.catalog.add_view(
        parse_statement(
            "CREATE VIEW ex (x) AS "
            "SELECT a FROM (SELECT a, b FROM t) AS p "
            "EXCEPT SELECT a FROM (SELECT a, d FROM s) AS q"
        )
    )
    sql = "SELECT t2.a FROM (SELECT a FROM t WHERE b = 40) AS t2, ex WHERE ex.x = t2.a"
    rows = run_all_strategies(Connection(numbers_db), sql)
    assert rows == [(4,)]


# -- subquery decorrelation ------------------------------------------------------------------


def test_exists_subquery_decorrelated(empdept_db):
    sql = (
        "SELECT empname FROM employee e WHERE EXISTS "
        "(SELECT deptno FROM department d WHERE d.mgrno = e.empno)"
    )
    # On the tiny fixture the cost model may prefer the correlated plan
    # (the heuristic is free to reject EMST); use a larger database so
    # decorrelation clearly wins.
    from repro.workloads.empdept import build_empdept_database

    big = build_empdept_database(n_departments=50, employees_per_department=20)
    result = run_pipeline(sql.replace("empname", "empname"), big)
    assert result.used_emst
    # After EMST the subquery box must no longer be correlated.
    for box in result.graph.boxes():
        assert not box.correlated_quantifiers() or box is result.graph.top_box
    rows = run_all_strategies(Connection(empdept_db), sql)
    assert len(rows) == 3


def test_correlated_aggregate_in_subquery(empdept_db):
    sql = (
        "SELECT empname FROM employee e WHERE EXISTS ("
        "SELECT workdept FROM employee e2 WHERE e2.workdept = e.workdept "
        "GROUP BY workdept HAVING AVG(salary) > 150)"
    )
    run_all_strategies(Connection(empdept_db), sql)


def test_in_subquery_with_correlation(empdept_db):
    sql = (
        "SELECT empname FROM employee e WHERE e.workdept IN "
        "(SELECT d.deptno FROM department d WHERE d.mgrno < e.empno + 100)"
    )
    run_all_strategies(Connection(empdept_db), sql)


def test_not_in_is_never_magic_restricted(empdept_db):
    sql = (
        "SELECT empname FROM employee WHERE workdept NOT IN "
        "(SELECT deptno FROM department WHERE deptname = 'HR')"
    )
    result = run_pipeline(sql, empdept_db)
    anti = [
        q
        for box in result.graph.boxes()
        for q in box.quantifiers
        if q.qtype == QuantifierType.ANTI
    ]
    assert anti
    for quantifier in anti:
        assert not any(q.is_magic for q in quantifier.input_box.quantifiers)
    run_all_strategies(Connection(empdept_db), sql)


def test_not_exists_decorrelated(empdept_db):
    sql = (
        "SELECT empname FROM employee e WHERE NOT EXISTS "
        "(SELECT deptno FROM department d WHERE d.mgrno = e.empno)"
    )
    rows = run_all_strategies(Connection(empdept_db), sql)
    assert len(rows) == 4


# -- shared adorned copies (union magic) --------------------------------------------------------


def test_two_consumers_share_adorned_copy_with_union_magic(empdept_conn):
    db = empdept_conn.database
    sql = (
        "SELECT d1.deptname, s1.avgsalary "
        "FROM department d1, avgMgrSal s1, department d2, avgMgrSal s2 "
        "WHERE d1.deptno = s1.workdept AND d2.deptno = s2.workdept "
        "AND d1.deptname = 'Planning' AND d2.deptname = 'Ops' "
        "AND s1.avgsalary < s2.avgsalary"
    )
    rows = run_all_strategies(Connection(db), sql)
    assert rows  # Planning manager avg (100) < Ops manager avg (300)


# -- the heuristic guarantee ------------------------------------------------------------------------


def test_heuristic_cannot_degrade(empdept_conn):
    result = run_pipeline(QUERY_D, empdept_conn.database)
    assert result.plan.total_cost <= result.cost_without_emst


def test_heuristic_optimizer_invoked_exactly_twice(empdept_conn):
    result = run_pipeline(QUERY_D, empdept_conn.database)
    assert result.optimizer_invocations == 2


def test_heuristic_falls_back_when_emst_useless(empdept_db):
    # A query with no binding opportunities: EMST cannot improve it.
    sql = "SELECT empno FROM employee"
    graph = build(sql, empdept_db)
    result = optimize_with_heuristic(graph, empdept_db.catalog)
    assert result.cost_with_emst >= 0
    rows = Connection(empdept_db).execute(sql, strategy="emst").rows
    assert len(rows) == 7


def test_emst_only_active_in_phase_two(empdept_conn):
    result = run_pipeline(QUERY_D, empdept_conn.database)
    assert "emst" not in result.phase_firings.get(1, {})
    assert result.phase_firings.get(2, {}).get("emst", 0) > 0
    assert "emst" not in result.phase_firings.get(3, {})
