"""Property-based validation of the equivalence checker (hypothesis).

The checker's three verdicts each make a falsifiable claim; this module
checks those claims *empirically* against the evaluator:

* ``VERIFIED`` (bag)  — both queries return the same multiset of rows on
  every database satisfying the declared dependencies;
* ``VERIFIED`` (set)  — same distinct rows on every such database;
* ``REFUTED``         — the two queries actually disagree on the frozen
  counterexample database the verdict carries;
* ``UNKNOWN``         — no claim; nothing to check.

Databases are generated to satisfy exactly what the catalog declares:
primary keys are unique, NOT NULL columns hold no NULL, and every child
``pid`` references an existing parent row (the FOREIGN KEY).
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.equivalence import EquivalenceChecker
from repro.catalog.schema import ColumnDef
from repro.engine import Evaluator
from repro.engine.storage import Database
from repro.qgm import build_query_graph
from repro.sql import parse_statement

from tests.helpers import canonical


def _fresh_database():
    db = Database()
    db.create_table(
        "parent",
        [
            ColumnDef("pid", "INT", not_null=True),
            ColumnDef("pval", "INT"),
        ],
        primary_key=["pid"],
    )
    db.create_table(
        "child",
        [
            ColumnDef("cid", "INT", not_null=True),
            ColumnDef("pid", "INT", not_null=True),
            ColumnDef("val", "INT"),
        ],
        primary_key=["cid"],
        foreign_keys=[(["pid"], "parent", ["pid"])],
    )
    return db


@st.composite
def satisfying_databases(draw):
    """Rows honouring every declared dependency: unique keys, NOT NULL
    key/FK columns, and each child.pid present in parent."""
    db = _fresh_database()
    pids = draw(
        st.lists(st.integers(0, 20), min_size=1, max_size=6, unique=True)
    )
    parent_rows = [
        (pid, draw(st.one_of(st.none(), st.integers(0, 50)))) for pid in pids
    ]
    cids = draw(
        st.lists(st.integers(0, 30), min_size=0, max_size=8, unique=True)
    )
    child_rows = [
        (
            cid,
            draw(st.sampled_from(pids)),
            draw(st.one_of(st.none(), st.integers(0, 9))),
        )
        for cid in cids
    ]
    db.insert("parent", parent_rows)
    db.insert("child", child_rows)
    return db


_QUERIES = [
    # The FK-elimination pair: joining the parent on the full FK and
    # projecting child columns only is equivalent to not joining at all.
    "SELECT c.cid, c.val FROM child c, parent p WHERE c.pid = p.pid",
    "SELECT c.cid, c.val FROM child c",
    # Filters on either side of the join.
    "SELECT c.cid, c.val FROM child c WHERE c.val = 3",
    "SELECT c.cid, c.val FROM child c, parent p "
    "WHERE c.pid = p.pid AND c.val = 3",
    # Projections through the parent (the join is load-bearing here).
    "SELECT c.cid, p.pval FROM child c, parent p WHERE c.pid = p.pid",
    "SELECT c.cid, c.pid FROM child c, parent p WHERE c.pid = p.pid",
    # Key-equated self-join vs the plain scan.
    "SELECT c1.cid, c1.val FROM child c1, child c2 WHERE c1.cid = c2.cid",
    # Projection order variants and constants.
    "SELECT c.val, c.cid FROM child c",
    "SELECT c.cid, c.val FROM child c WHERE c.val = 4",
    "SELECT DISTINCT c.pid FROM child c",
    "SELECT DISTINCT c.pid FROM child c, parent p WHERE c.pid = p.pid",
    # Interpreted comparisons: implied conjuncts, strict-vs-inclusive
    # bounds, IN lists and provably-empty ranges.
    "SELECT c.cid, c.val FROM child c WHERE c.val > 3",
    "SELECT c.cid, c.val FROM child c WHERE c.val > 3 AND c.val > 1",
    "SELECT c.cid, c.val FROM child c WHERE c.val >= 3",
    "SELECT c.cid, c.val FROM child c WHERE c.val >= 4",
    "SELECT c.cid, c.val FROM child c WHERE c.val IN (2, 3)",
    "SELECT c.cid, c.val FROM child c WHERE c.val IN (3, 2)",
    "SELECT c.cid, c.val FROM child c WHERE c.val > 5 AND c.val < 2",
    "SELECT c.cid, c.val FROM child c WHERE c.val < 2 AND c.val > 5",
]


def _rows(sql, db):
    graph = build_query_graph(parse_statement(sql), db.catalog)
    return Evaluator(graph, db).run().rows


def _verdict(left, right):
    catalog = _fresh_database().catalog
    checker = EquivalenceChecker(catalog)
    return checker.check_graphs(
        build_query_graph(parse_statement(left), catalog),
        build_query_graph(parse_statement(right), catalog),
    )


def _load_counterexample(counterexample):
    """The frozen witness database, loaded into real storage."""
    db = _fresh_database()
    for relation, rows in counterexample["tables"].items():
        db.insert(relation, rows)
    return db


@given(
    left=st.sampled_from(_QUERIES),
    right=st.sampled_from(_QUERIES),
    databases=st.lists(satisfying_databases(), min_size=1, max_size=2),
)
@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_verdicts_agree_with_execution(left, right, databases):
    verdict = _verdict(left, right)

    if verdict.status == "VERIFIED":
        for db in databases:
            left_rows = _rows(left, db)
            right_rows = _rows(right, db)
            if verdict.bag:
                assert canonical(left_rows) == canonical(right_rows), (
                    "VERIFIED(bag) but multisets differ:\n%s\n%s" % (left, right)
                )
            else:
                assert set(left_rows) == set(right_rows), (
                    "VERIFIED(set) but sets differ:\n%s\n%s" % (left, right)
                )
    elif verdict.status == "REFUTED":
        if verdict.counterexample is None:
            # Trivial refutation: the row shapes themselves disagree.
            assert "arity" in verdict.reason
            return
        witness = _load_counterexample(verdict.counterexample)
        left_rows = _rows(left, witness)
        right_rows = _rows(right, witness)
        assert canonical(left_rows) != canonical(right_rows), (
            "REFUTED but both sides agree on the counterexample:\n%s\n%s"
            % (left, right)
        )
    # UNKNOWN claims nothing.


@given(databases=st.lists(satisfying_databases(), min_size=2, max_size=3))
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_interval_implication_verified_and_row_identical(databases):
    """An implied range conjunct is VERIFIED away, and really is noise."""
    strong = "SELECT c.cid, c.val FROM child c WHERE c.val > 3"
    padded = (
        "SELECT c.cid, c.val FROM child c WHERE c.val > 3 AND c.val > 1"
    )
    verdict = _verdict(strong, padded)
    assert verdict.status == "VERIFIED"
    for db in databases:
        assert canonical(_rows(strong, db)) == canonical(_rows(padded, db))


@given(databases=st.lists(satisfying_databases(), min_size=2, max_size=3))
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_contradictory_ranges_verified_empty_and_return_nothing(databases):
    left = "SELECT c.cid, c.val FROM child c WHERE c.val > 5 AND c.val < 2"
    right = "SELECT c.cid, c.val FROM child c WHERE c.val < 2 AND c.val > 5"
    verdict = _verdict(left, right)
    assert verdict.status == "VERIFIED"
    assert verdict.bag
    for db in databases:
        assert _rows(left, db) == [] and _rows(right, db) == []


@given(databases=st.lists(satisfying_databases(), min_size=2, max_size=3))
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_fk_join_elimination_verified_and_row_identical(databases):
    """The headline FK rewrite is VERIFIED and holds on random databases."""
    joined = "SELECT c.cid, c.val FROM child c, parent p WHERE c.pid = p.pid"
    plain = "SELECT c.cid, c.val FROM child c"
    verdict = _verdict(joined, plain)
    assert verdict.status == "VERIFIED"
    assert verdict.bag
    for db in databases:
        assert canonical(_rows(joined, db)) == canonical(_rows(plain, db))
