"""Rewrite rule tests: merge, predicate pushdown, projection pruning,
redundant-join elimination, distinct pullup — each checked structurally
*and* for semantic preservation (results unchanged)."""

import pytest

from repro import Connection, Database
from repro.sql import parse_statement
from repro.qgm import (
    BoxKind,
    DistinctMode,
    build_query_graph,
    validate_graph,
)
from repro.rewrite import RewriteEngine, default_rules
from repro.rewrite.distinct import DistinctPullupRule
from repro.rewrite.merge import MergeRule
from repro.rewrite.projection import ProjectionPruneRule
from repro.rewrite.pushdown import PredicatePushdownRule
from repro.rewrite.redundant_join import RedundantJoinRule

from tests.helpers import canonical


def build(sql, db):
    return build_query_graph(parse_statement(sql), db.catalog)


def rewrite_with(graph, rules, phase=1):
    engine = RewriteEngine(rules)
    context = engine.run_phase(graph, phase)
    validate_graph(graph)
    return context


def results_match(db, sql, rules):
    """Results are identical before and after applying ``rules``."""
    from repro.engine import Evaluator

    before = Evaluator(build(sql, db), db).run().rows
    graph = build(sql, db)
    rewrite_with(graph, rules)
    after = Evaluator(graph, db).run().rows
    assert canonical(before) == canonical(after)
    return graph


# -- merge ------------------------------------------------------------------------


def test_merge_folds_view_into_consumer(empdept_db):
    empdept_db.catalog.add_view(
        parse_statement(
            "CREATE VIEW highpaid AS SELECT empno, salary FROM employee "
            "WHERE salary > 150"
        )
    )
    graph = results_match(
        empdept_db, "SELECT empno FROM highpaid WHERE empno < 5", [MergeRule()]
    )
    # The view box is gone: the top box references the base table directly.
    assert graph.top_box.quantifiers[0].input_box.kind == BoxKind.BASE
    assert len(graph.top_box.predicates) == 2


def test_merge_fires_twice_on_query_d(empdept_conn):
    graph = build(
        "SELECT d.deptname, s.workdept, s.avgsalary FROM department d, avgMgrSal s "
        "WHERE d.deptno = s.workdept AND d.deptname = 'Planning'",
        empdept_conn.database,
    )
    context = rewrite_with(graph, [MergeRule()])
    # The paper's Example 3.1: AVGMGRSAL merges into QUERY and MGRSAL into T1.
    assert context.firing_counts.get("merge") == 2


def test_merge_skips_shared_views(empdept_conn):
    graph = build(
        "SELECT a.workdept FROM avgMgrSal a, avgMgrSal b WHERE a.workdept = b.workdept",
        empdept_conn.database,
    )
    boxes_before = len(graph.boxes())
    rewrite_with(graph, [MergeRule()])
    # The shared view's select boxes cannot merge upward (two consumers).
    shared = [b for b in graph.boxes() if b.kind == BoxKind.GROUPBY]
    assert len(shared) == 1
    assert len(graph.boxes()) <= boxes_before


def test_merge_respects_enforced_distinct(numbers_db):
    numbers_db.catalog.add_view(
        parse_statement("CREATE VIEW dv AS SELECT DISTINCT a FROM t")
    )
    graph = results_match(numbers_db, "SELECT a FROM dv", [MergeRule()])
    # 'a' is not a key of t, so DISTINCT is load-bearing: no merge.
    child = graph.top_box.quantifiers[0].input_box
    assert child.kind == BoxKind.SELECT
    assert child.distinct == DistinctMode.ENFORCE


def test_merge_allows_distinct_when_parent_enforces(numbers_db):
    numbers_db.catalog.add_view(
        parse_statement("CREATE VIEW dv AS SELECT DISTINCT a FROM t")
    )
    graph = results_match(numbers_db, "SELECT DISTINCT a FROM dv", [MergeRule()])
    assert graph.top_box.quantifiers[0].input_box.kind == BoxKind.BASE


def test_merge_carries_subquery_quantifiers(empdept_db):
    empdept_db.catalog.add_view(
        parse_statement(
            "CREATE VIEW managers AS SELECT empno, empname FROM employee e "
            "WHERE EXISTS (SELECT deptno FROM department d WHERE d.mgrno = e.empno)"
        )
    )
    graph = results_match(
        empdept_db, "SELECT empname FROM managers", [MergeRule()]
    )
    assert graph.top_box.subquery_quantifiers()


# -- predicate pushdown ------------------------------------------------------------


def test_pushdown_moves_local_predicate_into_view(empdept_db):
    empdept_db.catalog.add_view(
        parse_statement(
            "CREATE VIEW pay AS SELECT empno, workdept, salary FROM employee"
        )
    )
    graph = results_match(
        empdept_db,
        "SELECT empno FROM pay WHERE salary > 150",
        [PredicatePushdownRule()],
    )
    assert not graph.top_box.predicates
    child = graph.top_box.quantifiers[0].input_box
    assert len(child.predicates) == 1


def test_pushdown_through_groupby_on_key_only(empdept_db):
    empdept_db.catalog.add_view(
        parse_statement(
            "CREATE VIEW stats (dept, avgsal) AS "
            "SELECT workdept, AVG(salary) FROM employee GROUP BY workdept"
        )
    )
    graph = results_match(
        empdept_db,
        "SELECT dept FROM stats WHERE dept = 'D1'",
        [PredicatePushdownRule()],
    )
    assert not graph.top_box.predicates  # pushed below the groupby


def test_pushdown_blocked_on_aggregate_column(empdept_db):
    empdept_db.catalog.add_view(
        parse_statement(
            "CREATE VIEW stats (dept, avgsal) AS "
            "SELECT workdept, AVG(salary) FROM employee GROUP BY workdept"
        )
    )
    graph = results_match(
        empdept_db,
        "SELECT dept FROM stats WHERE avgsal > 100",
        [PredicatePushdownRule()],
    )
    # The predicate may move into the view's HAVING box but never below
    # the groupby: the T1 box under the groupby gains no predicate.
    groupby = [b for b in graph.boxes() if b.kind == BoxKind.GROUPBY][0]
    t1 = groupby.quantifiers[0].input_box
    assert not t1.predicates


def test_pushdown_into_union_branches(numbers_db):
    numbers_db.catalog.add_view(
        parse_statement(
            "CREATE VIEW u (x) AS SELECT a FROM t UNION ALL SELECT a FROM s"
        )
    )
    graph = results_match(
        numbers_db, "SELECT x FROM u WHERE x = 2", [PredicatePushdownRule()]
    )
    # Base-table branches block the push (nothing below to accept it):
    # the predicate stays put but results are unchanged either way.
    validate_graph(graph)


def test_pushdown_does_not_touch_join_predicates(empdept_conn):
    graph = build(
        "SELECT d.deptname FROM department d, avgMgrSal s WHERE d.deptno = s.workdept",
        empdept_conn.database,
    )
    before = len(graph.top_box.predicates)
    rewrite_with(graph, [PredicatePushdownRule()])
    assert len(graph.top_box.predicates) == before


def test_pushdown_skips_correlated_predicates(empdept_db):
    graph = build(
        "SELECT empname FROM employee e WHERE EXISTS "
        "(SELECT deptno FROM department d WHERE d.mgrno = e.empno)",
        empdept_db,
    )
    sub_box = graph.top_box.subquery_quantifiers()[0].input_box
    before = list(sub_box.predicates)
    rewrite_with(graph, [PredicatePushdownRule()])
    assert len(sub_box.predicates) == len(before)


# -- projection pruning --------------------------------------------------------------


def test_projection_prunes_unused_view_columns(empdept_db):
    empdept_db.catalog.add_view(
        parse_statement(
            "CREATE VIEW wide AS SELECT empno, empname, workdept, salary FROM employee"
        )
    )
    graph = results_match(
        empdept_db, "SELECT empno FROM wide", [ProjectionPruneRule()]
    )
    child = graph.top_box.quantifiers[0].input_box
    assert child.column_names == ["empno"]


def test_projection_keeps_columns_under_distinct(numbers_db):
    numbers_db.catalog.add_view(
        parse_statement("CREATE VIEW dv AS SELECT DISTINCT a, c FROM t")
    )
    graph = results_match(
        numbers_db, "SELECT a FROM dv", [ProjectionPruneRule()]
    )
    child = graph.top_box.quantifiers[0].input_box
    assert len(child.columns) == 2  # pruning under DISTINCT changes semantics


def test_projection_never_prunes_setop_children(numbers_db):
    numbers_db.catalog.add_view(
        parse_statement(
            "CREATE VIEW u (x) AS "
            "SELECT a FROM (SELECT a, b FROM t) AS p "
            "UNION ALL SELECT a FROM (SELECT a, d FROM s) AS q"
        )
    )
    results_match(numbers_db, "SELECT x FROM u", [ProjectionPruneRule()])


# -- redundant join elimination ---------------------------------------------------------


def test_redundant_self_join_on_key_eliminated(empdept_db):
    graph = results_match(
        empdept_db,
        "SELECT d1.deptname FROM department d1, department d2 "
        "WHERE d1.deptno = d2.deptno AND d2.deptname = 'Planning'",
        [RedundantJoinRule()],
    )
    assert len(graph.top_box.foreach_quantifiers()) == 1


def test_self_join_on_non_key_kept(empdept_db):
    graph = results_match(
        empdept_db,
        "SELECT e1.empno FROM employee e1, employee e2 "
        "WHERE e1.workdept = e2.workdept",
        [RedundantJoinRule()],
    )
    assert len(graph.top_box.foreach_quantifiers()) == 2


# -- distinct pullup -----------------------------------------------------------------------


def test_distinct_pullup_on_provably_unique(empdept_db):
    graph = build("SELECT DISTINCT deptno, deptname FROM department", empdept_db)
    context = rewrite_with(graph, [DistinctPullupRule()])
    assert context.firing_counts.get("distinct-pullup") == 1
    assert graph.top_box.distinct == DistinctMode.PERMIT


def test_distinct_pullup_keeps_needed_distinct(empdept_db):
    graph = build("SELECT DISTINCT workdept FROM employee", empdept_db)
    rewrite_with(graph, [DistinctPullupRule()])
    assert graph.top_box.distinct == DistinctMode.ENFORCE


# -- engine control --------------------------------------------------------------------------


def test_engine_reaches_fixpoint_with_all_rules(empdept_conn):
    graph = build(
        "SELECT d.deptname, s.avgsalary FROM department d, avgMgrSal s "
        "WHERE d.deptno = s.workdept AND d.deptname = 'Planning'",
        empdept_conn.database,
    )
    context = rewrite_with(graph, default_rules())
    assert context.firing_counts


def test_engine_records_firings_per_rule(empdept_conn):
    graph = build(
        "SELECT workdept FROM avgMgrSal", empdept_conn.database
    )
    context = rewrite_with(graph, default_rules())
    assert all(isinstance(v, int) and v > 0 for v in context.firing_counts.values())


def test_custom_rule_can_be_added(empdept_db):
    from repro.rewrite.rule import RewriteRule

    class Marker(RewriteRule):
        name = "marker"
        phases = frozenset({1})

        def apply(self, box, context):
            if "marked" in box.properties:
                return False
            box.properties["marked"] = True
            return True

    graph = build("SELECT empno FROM employee", empdept_db)
    engine = RewriteEngine([])
    engine.add_rule(Marker())
    context = engine.run_phase(graph, 1)
    assert context.firing_counts["marker"] == len(graph.boxes())
