"""Correlated-strategy evaluator tests: per-binding pushdown, derived-last
ordering, blow-up counters, memoisation ablation."""

import pytest

from repro import Connection, CorrelatedEvaluator, Database
from repro.sql import parse_statement
from repro.qgm import build_query_graph
from repro.optimizer import optimize_graph

from tests.helpers import canonical


def prepare(db, sql):
    graph = build_query_graph(parse_statement(sql), db.catalog)
    plan = optimize_graph(graph, db.catalog)
    return graph, plan


@pytest.fixture
def view_db():
    db = Database()
    db.create_table(
        "fact",
        ["k", "grp", "val"],
        rows=[(i, i % 5, i * 10) for i in range(50)],
    )
    db.create_table(
        "dim",
        ["grp", "label"],
        primary_key=["grp"],
        rows=[(i, "g%d" % i) for i in range(5)],
    )
    db.catalog.add_view(
        parse_statement(
            "CREATE VIEW sums (grp, total) AS "
            "SELECT grp, SUM(val) FROM fact GROUP BY grp"
        )
    )
    return db


def test_correlated_matches_bottom_up(view_db):
    sql = "SELECT d.label, v.total FROM dim d, sums v WHERE v.grp = d.grp"
    conn = Connection(view_db)
    bottom_up = conn.explain_execute(sql, strategy="original").rows
    correlated = conn.explain_execute(sql, strategy="correlated").rows
    assert canonical(bottom_up) == canonical(correlated)


def test_derived_tables_evaluated_per_outer_row(view_db):
    sql = "SELECT d.label, v.total FROM dim d, sums v WHERE v.grp = d.grp"
    graph, plan = prepare(view_db, sql)
    evaluator = CorrelatedEvaluator(graph, view_db, join_orders=plan.join_orders)
    evaluator.run()
    # One view evaluation per outer dim row (5), not one total.
    assert evaluator.stats.correlated_evaluations >= 5


def test_pushdown_reaches_base_index(view_db):
    sql = "SELECT v.total FROM dim d, sums v WHERE v.grp = d.grp AND d.label = 'g3'"
    graph, plan = prepare(view_db, sql)
    evaluator = CorrelatedEvaluator(graph, view_db, join_orders=plan.join_orders)
    result = evaluator.run()
    assert result.rows == [(sum(i * 10 for i in range(50) if i % 5 == 3),)]
    # The single binding evaluates the view once, over ~10 fact rows, not 50.
    assert evaluator.stats.rows_produced < 40


def test_aggregate_column_binding_forces_full_reevaluation(view_db):
    # Binding on the aggregate output cannot be pushed below the grouping:
    # every outer row pays a full view evaluation.
    sql = "SELECT d.label FROM dim d, sums v WHERE v.total = d.grp * 1000"
    graph, plan = prepare(view_db, sql)
    evaluator = CorrelatedEvaluator(graph, view_db, join_orders=plan.join_orders)
    evaluator.run()
    # 5 outer rows x 50 fact rows each.
    assert evaluator.stats.rows_produced >= 5 * 50


def test_memoization_ablation_reduces_work(view_db):
    db = view_db
    db.create_table(
        "outer_dup", ["grp"], rows=[(1,)] * 10  # ten identical bindings
    )
    sql = "SELECT o.grp, v.total FROM outer_dup o, sums v WHERE v.grp = o.grp"
    graph, plan = prepare(db, sql)
    plain = CorrelatedEvaluator(graph, db, join_orders=plan.join_orders)
    plain.run()
    graph2, plan2 = prepare(db, sql)
    memo = CorrelatedEvaluator(graph2, db, join_orders=plan2.join_orders, memoize=True)
    memo.run()
    assert memo.stats.rows_produced < plain.stats.rows_produced


def test_residual_filter_on_computed_column(view_db):
    view_db.catalog.add_view(
        parse_statement(
            "CREATE VIEW labeled (tag, total) AS "
            "SELECT grp || '!', SUM(val) FROM fact GROUP BY grp || '!'"
        )
    )
    sql = (
        "SELECT v.total FROM dim d, labeled v "
        "WHERE v.tag = d.grp || '!' AND d.label = 'g2'"
    )
    conn = Connection(view_db)
    bottom_up = conn.explain_execute(sql, strategy="original").rows
    correlated = conn.explain_execute(sql, strategy="correlated").rows
    assert canonical(bottom_up) == canonical(correlated)


def test_union_view_positional_filters(view_db):
    view_db.catalog.add_view(
        parse_statement(
            "CREATE VIEW both_ (g) AS "
            "SELECT grp FROM (SELECT grp, val FROM fact) AS a "
            "UNION ALL SELECT grp FROM (SELECT grp, label FROM dim) AS b"
        )
    )
    sql = "SELECT d.grp, b.g FROM dim d, both_ b WHERE b.g = d.grp AND d.grp = 2"
    conn = Connection(view_db)
    bottom_up = conn.explain_execute(sql, strategy="original").rows
    correlated = conn.explain_execute(sql, strategy="correlated").rows
    assert canonical(bottom_up) == canonical(correlated)
    assert len(bottom_up) == 11  # 10 fact rows + 1 dim row with grp=2


def test_scalar_subquery_correlated_strategy(view_db):
    sql = (
        "SELECT d.label FROM dim d WHERE d.grp * 1000 < "
        "(SELECT SUM(val) FROM fact f WHERE f.grp = d.grp)"
    )
    conn = Connection(view_db)
    bottom_up = conn.explain_execute(sql, strategy="original").rows
    correlated = conn.explain_execute(sql, strategy="correlated").rows
    assert canonical(bottom_up) == canonical(correlated)


def test_not_in_correlated_strategy(view_db):
    sql = "SELECT grp FROM dim WHERE grp NOT IN (SELECT grp FROM fact WHERE val > 400)"
    conn = Connection(view_db)
    bottom_up = conn.explain_execute(sql, strategy="original").rows
    correlated = conn.explain_execute(sql, strategy="correlated").rows
    assert canonical(bottom_up) == canonical(correlated)
