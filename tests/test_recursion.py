"""Recursive query evaluation: fixpoint semantics and stratification."""

import pytest

from repro import Connection, Database
from repro.errors import QgmError


@pytest.fixture
def graph_db():
    db = Database()
    db.create_table(
        "edge",
        ["src", "dst"],
        rows=[(1, 2), (2, 3), (3, 4), (5, 6)],
    )
    return db


@pytest.fixture
def cyclic_db():
    db = Database()
    db.create_table("edge", ["src", "dst"], rows=[(1, 2), (2, 3), (3, 1)])
    return db


def execute(db, sql, strategy="norewrite"):
    return Connection(db).explain_execute(sql, strategy=strategy).rows


TRANSITIVE_CLOSURE = (
    "WITH RECURSIVE reach (n) AS ("
    "  SELECT dst FROM edge WHERE src = 1 "
    "  UNION "
    "  SELECT e.dst FROM reach r, edge e WHERE e.src = r.n) "
    "SELECT n FROM reach ORDER BY n"
)


def test_transitive_closure(graph_db):
    assert execute(graph_db, TRANSITIVE_CLOSURE) == [(2,), (3,), (4,)]


def test_transitive_closure_terminates_on_cycle(cyclic_db):
    rows = execute(cyclic_db, TRANSITIVE_CLOSURE)
    assert rows == [(1,), (2,), (3,)]


def test_recursion_with_union_all_still_set_semantics_in_fixpoint(cyclic_db):
    # UNION ALL recursion on a cyclic graph only terminates with set
    # semantics inside the fixpoint; the engine enforces that.
    sql = TRANSITIVE_CLOSURE.replace("UNION ", "UNION ALL ")
    rows = execute(cyclic_db, sql)
    assert sorted(set(rows)) == [(1,), (2,), (3,)]


def test_two_hop_pairs(graph_db):
    sql = (
        "WITH RECURSIVE path (src, dst) AS ("
        "  SELECT src, dst FROM edge "
        "  UNION "
        "  SELECT p.src, e.dst FROM path p, edge e WHERE e.src = p.dst) "
        "SELECT src, dst FROM path ORDER BY src, dst"
    )
    rows = execute(graph_db, sql)
    assert (1, 4) in rows
    assert (5, 6) in rows
    assert len(rows) == 7  # 6 closure pairs of the 1-2-3-4 chain + (5,6)


def test_recursion_joining_base_table_after(graph_db):
    sql = (
        "WITH RECURSIVE reach (n) AS ("
        "  SELECT dst FROM edge WHERE src = 1 "
        "  UNION SELECT e.dst FROM reach r, edge e WHERE e.src = r.n) "
        "SELECT r.n, e.dst FROM reach r, edge e WHERE e.src = r.n"
    )
    rows = execute(graph_db, sql)
    assert sorted(rows) == [(2, 3), (3, 4)]


def test_negation_through_recursion_rejected():
    db = Database()
    db.create_table("edge", ["src", "dst"], rows=[(1, 2)])
    sql = (
        "WITH RECURSIVE bad (n) AS ("
        "  SELECT dst FROM edge "
        "  UNION "
        "  SELECT e.dst FROM edge e WHERE e.src NOT IN (SELECT n FROM bad)) "
        "SELECT n FROM bad"
    )
    with pytest.raises(QgmError):
        execute(db, sql)


def test_aggregation_through_recursion_rejected():
    db = Database()
    db.create_table("edge", ["src", "dst"], rows=[(1, 2)])
    sql = (
        "WITH RECURSIVE bad (n) AS ("
        "  SELECT dst FROM edge "
        "  UNION "
        "  SELECT COUNT(*) FROM bad GROUP BY n) "
        "SELECT n FROM bad"
    )
    with pytest.raises(QgmError):
        execute(db, sql)


def test_same_generation():
    db = Database()
    db.create_table(
        "par",
        ["child", "parent"],
        rows=[(3, 1), (4, 1), (5, 2), (6, 2), (1, 0), (2, 0)],
    )
    sql = (
        "WITH RECURSIVE sg (x, y) AS ("
        "  SELECT p1.child, p2.child FROM par p1, par p2 "
        "  WHERE p1.parent = p2.parent AND p1.child <> p2.child "
        "  UNION "
        "  SELECT p1.child, p2.child FROM par p1, sg s, par p2 "
        "  WHERE p1.parent = s.x AND s.y = p2.parent) "
        "SELECT x, y FROM sg WHERE x = 3 ORDER BY y"
    )
    rows = execute(db, sql)
    assert rows == [(3, 4), (3, 5), (3, 6)]


def test_stratified_aggregation_above_recursion_allowed(graph_db):
    sql = (
        "WITH RECURSIVE reach (n) AS ("
        "  SELECT dst FROM edge WHERE src = 1 "
        "  UNION SELECT e.dst FROM reach r, edge e WHERE e.src = r.n) "
        "SELECT COUNT(*) FROM reach"
    )
    assert execute(graph_db, sql) == [(3,)]


def test_correlated_strategy_rejects_recursion(graph_db):
    from repro.errors import NotSupportedError

    with pytest.raises(NotSupportedError):
        execute(graph_db, TRANSITIVE_CLOSURE, strategy="correlated")


def test_emst_on_recursive_query_matches_original(graph_db):
    original = execute(graph_db, TRANSITIVE_CLOSURE, strategy="original")
    emst = execute(graph_db, TRANSITIVE_CLOSURE, strategy="emst")
    assert sorted(original) == sorted(emst)
