"""QGM → SQL rendering (the Figure 5 presentation)."""

from repro.sql import parse_statement
from repro.qgm import build_query_graph
from repro.qgm.to_sql import box_to_sql, graph_to_sql


def build(sql, db):
    return build_query_graph(parse_statement(sql), db.catalog)


def test_simple_select_renders(empdept_db):
    graph = build("SELECT empno FROM employee WHERE salary > 10", empdept_db)
    text = box_to_sql(graph.top_box)
    assert text.startswith("SELECT")
    assert "FROM employee" in text
    assert "WHERE" in text


def test_groupby_renders_group_by_clause(empdept_db):
    graph = build(
        "SELECT workdept, AVG(salary) FROM employee GROUP BY workdept",
        empdept_db,
    )
    statements = graph_to_sql(graph)
    grouped = [s for s in statements if "GROUP BY" in s]
    assert len(grouped) == 1
    assert "AVG(" in grouped[0]


def test_distinct_renders(empdept_db):
    graph = build("SELECT DISTINCT workdept FROM employee", empdept_db)
    assert "SELECT DISTINCT" in box_to_sql(graph.top_box)


def test_setop_renders(empdept_db):
    graph = build(
        "SELECT empno FROM employee UNION ALL SELECT mgrno FROM department",
        empdept_db,
    )
    assert "UNION ALL" in box_to_sql(graph.top_box)
    graph = build(
        "SELECT empno FROM employee EXCEPT SELECT mgrno FROM department",
        empdept_db,
    )
    assert "EXCEPT" in box_to_sql(graph.top_box)


def test_exists_renders_as_exists(empdept_db):
    graph = build(
        "SELECT empname FROM employee e WHERE EXISTS "
        "(SELECT deptno FROM department d WHERE d.mgrno = e.empno)",
        empdept_db,
    )
    assert "EXISTS (SELECT * FROM" in box_to_sql(graph.top_box)


def test_graph_to_sql_producers_first(empdept_conn):
    graph = build(
        "SELECT d.deptname FROM department d, avgMgrSal s "
        "WHERE d.deptno = s.workdept",
        empdept_conn.database,
    )
    statements = graph_to_sql(graph)
    # The top query is last, views before it.
    assert statements[-1].startswith("(QUERY):")
    assert any("AS (" in s for s in statements[:-1])


def test_string_literal_escaped(empdept_db):
    graph = build(
        "SELECT empno FROM employee WHERE empname = 'o''brien'", empdept_db
    )
    assert "'o''brien'" in box_to_sql(graph.top_box)


def test_adornment_shown_in_statement_names(empdept_conn):
    from repro.optimizer.heuristic import optimize_with_heuristic
    from repro.sql import parse_statement as parse

    db = empdept_conn.database
    graph = build_query_graph(
        parse(
            "SELECT d.deptname, s.avgsalary FROM department d, avgMgrSal s "
            "WHERE d.deptno = s.workdept AND d.deptname = 'Planning'"
        ),
        db.catalog,
    )
    result = optimize_with_heuristic(graph, db.catalog)
    statements = graph_to_sql(result.graph)
    assert any("^bf" in s for s in statements)
