"""Clone machinery options: deep_derived, keep_linked_magic, selector
predicate carrying, and supplementary-box construction mechanics."""

from repro import Database
from repro.sql import parse_statement
from repro.qgm import BoxKind, build_query_graph, validate_graph
from repro.qgm.clone import clone_box


def view_graph():
    db = Database()
    db.create_table("t", ["a", "b"], rows=[(1, 2)])
    db.catalog.add_view(
        parse_statement(
            "CREATE VIEW v (a, n) AS SELECT a, COUNT(*) FROM t GROUP BY a"
        )
    )
    graph = build_query_graph(
        parse_statement("SELECT v1.n FROM v v1 WHERE v1.a = 1"), db.catalog
    )
    return db, graph


def test_shallow_clone_shares_derived_children():
    db, graph = view_graph()
    view_box = graph.top_box.quantifiers[0].input_box  # the HAVING box
    copy, _ = clone_box(graph, view_box)
    assert copy.quantifiers[0].input_box is view_box.quantifiers[0].input_box


def test_deep_derived_clone_copies_whole_chain():
    db, graph = view_graph()
    view_box = graph.top_box.quantifiers[0].input_box
    copy, _ = clone_box(graph, view_box, deep_derived=True)
    original_groupby = view_box.quantifiers[0].input_box
    copied_groupby = copy.quantifiers[0].input_box
    assert copied_groupby is not original_groupby
    assert copied_groupby.kind == BoxKind.GROUPBY
    # Base tables stay shared even in deep clones.
    original_t1 = original_groupby.quantifiers[0].input_box
    copied_t1 = copied_groupby.quantifiers[0].input_box
    assert copied_t1 is not original_t1
    assert (
        copied_t1.quantifiers[0].input_box
        is original_t1.quantifiers[0].input_box
    )


def test_clone_names_are_fresh_quantifiers():
    db, graph = view_graph()
    view_box = graph.top_box.quantifiers[0].input_box
    copy, quantifier_map = clone_box(graph, view_box, deep_derived=True)
    original_names = {q.name for q in view_box.quantifiers}
    copied_names = {q.name for q in copy.quantifiers}
    assert not (original_names & copied_names)
    assert all(old is not new for old, new in quantifier_map.items())


def test_clone_keeps_linked_magic_when_asked():
    db, graph = view_graph()
    view_box = graph.top_box.quantifiers[0].input_box
    marker = graph.new_box(BoxKind.SELECT, "MARKER")
    view_box.linked_magic.append(marker)
    with_links, _ = clone_box(graph, view_box, keep_linked_magic=True)
    without_links, _ = clone_box(graph, view_box)
    assert marker in with_links.linked_magic
    assert not without_links.linked_magic


def test_clone_carries_selector_predicates():
    from repro.qgm import expr as qe

    db = Database()
    db.create_table("t", ["g", "v"], rows=[(1, 5)])
    graph = build_query_graph(
        parse_statement(
            "SELECT g FROM t o WHERE v > (SELECT AVG(v) FROM t i WHERE i.g = o.g)"
        ),
        db.catalog,
    )
    from repro.optimizer.heuristic import optimize_with_heuristic
    import copy as _copy

    # Decorrelate (sets selector predicates), then deep-copy the graph as
    # the heuristic snapshot machinery does, and clone the top box: the
    # selectors must survive both.
    result = optimize_with_heuristic(graph, db.catalog)
    chosen = result.graph
    scalars = [
        q
        for box in chosen.boxes()
        for q in box.quantifiers
        if q.qtype == "S" and q.selector_predicates
    ]
    if scalars:  # EMST may be rejected on a 1-row table; only check if not
        top = chosen.top_box
        copy, quantifier_map = clone_box(chosen, top)
        copied_scalars = [
            q for q in copy.quantifiers if q.qtype == "S"
        ]
        assert copied_scalars
        assert copied_scalars[0].selector_predicates
        for predicate in copied_scalars[0].selector_predicates:
            for ref in qe.column_refs(predicate):
                assert ref.quantifier not in top.quantifiers


def test_supplementary_box_outputs_only_referenced_columns():
    from repro.magic.magic_boxes import build_supplementary_box
    from repro.rewrite.rule import RuleContext

    db = Database()
    db.create_table(
        "wide", ["a", "b", "c", "d"], rows=[(1, 2, 3, 4)]
    )
    db.create_table("s", ["a"], rows=[(1,)])
    graph = build_query_graph(
        parse_statement(
            "SELECT w.b FROM wide w, s WHERE w.a = s.a AND w.c = 3"
        ),
        db.catalog,
    )
    box = graph.top_box
    prefix = [box.quantifier("w")]
    context = RuleContext(graph, phase=2)
    over = build_supplementary_box(graph, box, prefix, context)
    supplementary = over.input_box
    validate_graph(graph)
    names = {c.name.lower() for c in supplementary.columns}
    # b (output), a (join pred) are referenced; c's predicate moved inside;
    # d is referenced nowhere and must not be exposed.
    assert "d" not in names
    assert {"a", "b"} <= names
    # The moved local predicate lives in the supplementary box now.
    assert any("c" in str(p) for p in supplementary.predicates)
