"""Workload generator and experiment-harness tests (small scales)."""

import pytest

from repro.workloads import (
    EXPERIMENTS,
    build_decision_support_database,
    build_empdept_database,
    format_table1,
    run_experiment,
)
from repro.workloads.experiments import PAPER_TABLE1, canonical_rows


def test_empdept_generator_is_deterministic():
    db1 = build_empdept_database(n_departments=10, employees_per_department=5, seed=3)
    db2 = build_empdept_database(n_departments=10, employees_per_department=5, seed=3)
    assert db1.table("employee").rows == db2.table("employee").rows
    assert db1.table("department").rows == db2.table("department").rows


def test_empdept_generator_shape():
    db = build_empdept_database(n_departments=10, employees_per_department=5)
    departments = db.table("department").rows
    employees = db.table("employee").rows
    assert len(departments) == 10
    assert len(employees) == 50
    assert sum(1 for d in departments if d[1] == "Planning") == 1
    # Every department's manager exists and works there.
    by_empno = {e[0]: e for e in employees}
    for deptno, _, mgrno, _, _ in departments:
        manager = by_empno[mgrno]
        assert manager[2] == deptno
        assert manager[4] == "MANAGER"


def test_empdept_statistics_registered():
    db = build_empdept_database(n_departments=5, employees_per_department=4)
    assert db.catalog.statistics("employee").row_count == 20


def test_decision_support_generator_shape():
    db = build_decision_support_database(scale=0.1)
    assert len(db.table("nation")) == 25
    orders = db.table("orders").rows
    customers = db.table("customer").rows
    assert all(0 <= o[1] < len(customers) for o in orders)
    lineitems = db.table("lineitem").rows
    assert len(lineitems) == 3 * len(orders)


def test_decision_support_deterministic():
    a = build_decision_support_database(scale=0.2, seed=9)
    b = build_decision_support_database(scale=0.2, seed=9)
    assert a.table("orders").rows == b.table("orders").rows


def test_experiment_registry_complete():
    assert sorted(EXPERIMENTS) == list("ABCDEFGH")
    for key, experiment in EXPERIMENTS.items():
        assert experiment.key == key
        assert experiment.shape_checks
        assert experiment.paper_row == PAPER_TABLE1[key]
        assert experiment.build.__doc__


@pytest.mark.parametrize("key", sorted(EXPERIMENTS))
def test_experiments_all_strategies_agree_at_tiny_scale(key):
    run = run_experiment(EXPERIMENTS[key], scale=0.05, repeats=1)
    assert run.rows_agree, "strategies disagree on experiment %s" % key
    assert set(run.normalized) == {"original", "correlated", "emst"}
    assert run.normalized["original"] == 100.0


def test_format_table1_renders():
    run = run_experiment(EXPERIMENTS["A"], scale=0.05, repeats=1)
    text = format_table1({"A": run})
    assert "Exp A" in text
    assert "Original" in text


def test_canonical_rows_rounds_floats():
    left = [(1, 0.1 + 0.2)]
    right = [(1, 0.3)]
    assert canonical_rows(left) == canonical_rows(right)


def test_canonical_rows_sorts_with_nulls():
    rows = [(None, 1), (2, None), (1, 1)]
    assert canonical_rows(rows)  # does not raise
