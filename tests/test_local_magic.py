"""The local magic rule: local predicates push into private copies of
*shared* views (the phase-1 EMST variant of §3.3)."""

from repro import Connection, Database
from repro.sql import parse_statement
from repro.qgm import build_query_graph, validate_graph
from repro.rewrite import RewriteEngine, default_rules
from repro.rewrite.local_magic import LocalMagicRule

from tests.helpers import canonical, run_all_strategies


def setup_db():
    db = Database()
    db.create_table(
        "t",
        ["a", "b"],
        rows=[(i, i * 10) for i in range(20)],
    )
    db.catalog.add_view(
        parse_statement("CREATE VIEW v (a, total) AS SELECT a, SUM(b) FROM t GROUP BY a")
    )
    return db


SHARED_SQL = (
    "SELECT x.total, y.total FROM v x, v y "
    "WHERE x.a = 1 AND y.a = 2 AND x.total < y.total"
)


def test_local_predicate_splits_shared_view():
    db = setup_db()
    graph = build_query_graph(parse_statement(SHARED_SQL), db.catalog)
    engine = RewriteEngine([LocalMagicRule()])
    context = engine.run_phase(graph, 1)
    validate_graph(graph)
    # The first consumer's restriction gets a private deep copy; the view
    # then has a single remaining consumer, which is plain pushdown's job.
    assert context.firing_counts.get("local-magic") == 1
    targets = [q.input_box for q in graph.top_box.foreach_quantifiers()]
    assert targets[0] is not targets[1]


def test_full_phase1_pushes_both_restrictions_below_grouping():
    db = setup_db()
    graph = build_query_graph(parse_statement(SHARED_SQL), db.catalog)
    engine = RewriteEngine(default_rules())
    engine.run_phase(graph, 1)
    validate_graph(graph)
    # No constant predicate survives at the top: both reached the copies.
    from repro.qgm import expr as qe

    for predicate in graph.top_box.predicates:
        assert not (
            isinstance(predicate, qe.QBinary)
            and predicate.op == "="
            and isinstance(predicate.right, qe.QLiteral)
        )


def test_identical_restrictions_share_one_copy():
    db = setup_db()
    sql = (
        "SELECT x.total, y.total, z.total FROM v x, v y, v z "
        "WHERE x.a = 3 AND y.a = 3 AND x.total = y.total AND z.total > 0"
    )
    graph = build_query_graph(parse_statement(sql), db.catalog)
    engine = RewriteEngine([LocalMagicRule()])
    context = engine.run_phase(graph, 1)
    validate_graph(graph)
    assert context.firing_counts.get("local-magic") == 2
    quantifiers = {q.name: q for q in graph.top_box.foreach_quantifiers()}
    assert quantifiers["x"].input_box is quantifiers["y"].input_box  # cache hit
    assert quantifiers["z"].input_box is not quantifiers["x"].input_box


def test_results_preserved_end_to_end():
    db = setup_db()
    rows = run_all_strategies(Connection(db), SHARED_SQL)
    assert rows == canonical([(10, 20)])


def test_single_use_children_left_to_plain_pushdown():
    db = setup_db()
    sql = "SELECT total FROM v WHERE a = 5"
    graph = build_query_graph(parse_statement(sql), db.catalog)
    engine = RewriteEngine([LocalMagicRule()])
    context = engine.run_phase(graph, 1)
    assert "local-magic" not in context.firing_counts


def test_base_tables_untouched():
    db = setup_db()
    sql = "SELECT t1.b, t2.b FROM t t1, t t2 WHERE t1.a = 1 AND t2.a = 2"
    graph = build_query_graph(parse_statement(sql), db.catalog)
    engine = RewriteEngine([LocalMagicRule()])
    context = engine.run_phase(graph, 1)
    assert "local-magic" not in context.firing_counts


def test_recursive_views_skipped():
    db = Database()
    db.create_table("edge", ["src", "dst"], rows=[(1, 2), (2, 3)])
    sql = (
        "WITH RECURSIVE r (n) AS ("
        "SELECT dst FROM edge UNION SELECT e.dst FROM r x, edge e WHERE e.src = x.n) "
        "SELECT a.n, b.n FROM r a, r b WHERE a.n = 2 AND b.n = 3"
    )
    graph = build_query_graph(parse_statement(sql), db.catalog)
    engine = RewriteEngine([LocalMagicRule()])
    context = engine.run_phase(graph, 1)
    validate_graph(graph)
    assert "local-magic" not in context.firing_counts
    rows = run_all_strategies(
        Connection(db), sql, strategies=("original", "emst")
    )
    assert rows == [(2, 3)]
