"""Public API tests: Connection, PreparedQuery, explain, scripts."""

import pytest

from repro import Connection, Database, ReproError
from repro.errors import CatalogError, NotSupportedError


def test_run_script_defines_views_and_returns_last_outcome(empdept_db):
    conn = Connection(empdept_db)
    outcome = conn.run_script(
        """
        CREATE VIEW v AS SELECT empno FROM employee WHERE salary > 150;
        SELECT empno FROM v ORDER BY empno;
        """
    )
    assert outcome.rows == [(2,), (3,), (4,), (6,)]
    assert empdept_db.catalog.has_view("v")


def test_run_script_views_only_returns_none(empdept_db):
    conn = Connection(empdept_db)
    assert conn.run_script("CREATE VIEW v2 AS SELECT empno FROM employee") is None


def test_execute_with_inline_views_does_not_pollute_catalog(empdept_db):
    conn = Connection(empdept_db)
    rows = conn.execute(
        "CREATE VIEW temp_v AS SELECT empno FROM employee; "
        "SELECT empno FROM temp_v WHERE empno = 1"
    ).rows
    assert rows == [(1,)]
    assert not empdept_db.catalog.has_view("temp_v")


def test_execute_rejects_multiple_queries(empdept_db):
    conn = Connection(empdept_db)
    with pytest.raises(ReproError):
        conn.execute("SELECT empno FROM employee; SELECT empno FROM employee")


def test_unknown_strategy_rejected(empdept_db):
    conn = Connection(empdept_db)
    with pytest.raises(ReproError):
        conn.execute("SELECT empno FROM employee", strategy="quantum")


def test_outcome_fields(empdept_conn):
    outcome = empdept_conn.explain_execute(
        "SELECT workdept FROM avgMgrSal", strategy="emst"
    )
    assert outcome.strategy == "emst"
    assert outcome.columns == ["workdept"]
    assert outcome.elapsed_seconds >= 0
    assert outcome.rewrite_seconds >= 0
    assert outcome.heuristic is not None
    assert outcome.plan is not None


def test_explain_output(empdept_conn):
    text = empdept_conn.explain(
        "SELECT d.deptname, s.avgsalary FROM department d, avgMgrSal s "
        "WHERE d.deptno = s.workdept AND d.deptname = 'Planning'",
        strategy="emst",
    )
    assert "strategy: emst" in text
    assert "emst used:" in text
    assert "total cost" in text
    assert "SELECT" in text


def test_prepared_query_reusable(empdept_conn):
    prepared = empdept_conn.prepare_statement(
        "SELECT workdept, avgsalary FROM avgMgrSal", strategy="emst"
    )
    first, stats1 = prepared.execute()
    second, stats2 = prepared.execute()
    assert sorted(first.rows) == sorted(second.rows)


def test_prepared_query_correlated_strategy(empdept_conn):
    prepared = empdept_conn.prepare_statement(
        "SELECT workdept FROM avgMgrSal", strategy="correlated"
    )
    result, _ = prepared.execute()
    assert len(result.rows) == 3


def test_result_helpers(empdept_db):
    conn = Connection(empdept_db)
    result = conn.execute("SELECT empno, empname FROM employee WHERE empno = 1")
    assert len(result) == 1
    assert result.as_dicts() == [{"empno": 1, "empname": "alice"}]
    assert "empno" in repr(result)


def test_database_create_view_helper(empdept_db):
    empdept_db.create_view("CREATE VIEW helper_v AS SELECT empno FROM employee")
    assert empdept_db.catalog.has_view("helper_v")
    with pytest.raises(CatalogError):
        empdept_db.create_view("SELECT empno FROM employee")


def test_database_analyze_updates_statistics(empdept_db):
    empdept_db.insert("employee", [(100, "zed", "D1", 999)])
    empdept_db.analyze("employee")
    stats = empdept_db.catalog.statistics("employee")
    assert stats.row_count == 8


def test_strategies_constant_exported():
    from repro import STRATEGIES

    assert "emst" in STRATEGIES and "correlated" in STRATEGIES


def test_version_exported():
    import repro

    assert repro.__version__
