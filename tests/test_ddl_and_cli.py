"""CREATE TABLE / INSERT statements and the command-line shell."""

import io

import pytest

from repro import Connection, Database
from repro.errors import NotSupportedError
from repro.sql import parse_statement, to_sql
from repro.sql import ast


# -- parsing ---------------------------------------------------------------------


def test_parse_create_table_with_types_and_keys():
    statement = parse_statement(
        "CREATE TABLE t (id INT PRIMARY KEY, name VARCHAR(20), v FLOAT UNIQUE)"
    )
    assert isinstance(statement, ast.CreateTable)
    assert [c.name for c in statement.columns] == ["id", "name", "v"]
    assert statement.primary_key == ["id"]
    assert ["v"] in statement.unique_keys


def test_parse_create_table_table_level_keys():
    statement = parse_statement(
        "CREATE TABLE t (a, b, c, PRIMARY KEY (a, b), UNIQUE (c))"
    )
    assert statement.primary_key == ["a", "b"]
    assert ["c"] in statement.unique_keys


def test_parse_insert_multiple_rows():
    statement = parse_statement(
        "INSERT INTO t VALUES (1, 'x', NULL), (2, 'y', 3.5)"
    )
    assert isinstance(statement, ast.InsertValues)
    assert len(statement.rows) == 2


def test_create_table_round_trip():
    text = "CREATE TABLE t (id INT PRIMARY KEY, name TEXT)"
    printed = to_sql(parse_statement(text))
    assert to_sql(parse_statement(printed)) == printed


def test_insert_round_trip():
    text = "INSERT INTO t VALUES (1, 'a'), (2, NULL)"
    printed = to_sql(parse_statement(text))
    assert to_sql(parse_statement(printed)) == printed


# -- execution through run_script ----------------------------------------------------


def test_ddl_dml_query_pipeline():
    conn = Connection(Database())
    outcome = conn.run_script(
        """
        CREATE TABLE emp (id INT PRIMARY KEY, dept TEXT, sal INT);
        INSERT INTO emp VALUES (1, 'a', 100), (2, 'a', 200), (3, 'b', 50);
        SELECT dept, SUM(sal) AS total FROM emp GROUP BY dept ORDER BY dept;
        """
    )
    assert outcome.rows == [("a", 300), ("b", 50)]


def test_insert_constant_expressions():
    conn = Connection(Database())
    outcome = conn.run_script(
        """
        CREATE TABLE t (a, b);
        INSERT INTO t VALUES (1 + 2, -4), (2 * 3, 10 / 2);
        SELECT a, b FROM t ORDER BY a;
        """
    )
    assert outcome.rows == [(3, -4), (6, 5)]


def test_insert_non_constant_rejected():
    conn = Connection(Database())
    conn.run_script("CREATE TABLE t (a)")
    with pytest.raises(NotSupportedError):
        conn.run_script("INSERT INTO t VALUES (a + 1)")


def test_insert_updates_statistics():
    conn = Connection(Database())
    conn.run_script("CREATE TABLE t (a); INSERT INTO t VALUES (1), (2), (3)")
    assert conn.database.catalog.statistics("t").row_count == 3


def test_primary_key_feeds_distinct_pullup():
    conn = Connection(Database())
    conn.run_script(
        "CREATE TABLE t (id INT PRIMARY KEY, v INT); "
        "INSERT INTO t VALUES (1, 10), (2, 10)"
    )
    outcome = conn.explain_execute("SELECT DISTINCT id, v FROM t")
    assert len(outcome.rows) == 2


# -- the shell ----------------------------------------------------------------------------


def make_shell():
    from repro.__main__ import Shell

    return Shell(Database())


def test_shell_runs_sql(capsys):
    shell = make_shell()
    out = io.StringIO()
    shell.run_sql(
        "CREATE TABLE t (a); INSERT INTO t VALUES (1), (2); "
        "SELECT a FROM t ORDER BY a;",
        out=out,
    )
    text = out.getvalue()
    assert "ok" in text
    assert "(2 rows)" in text


def test_shell_strategy_command():
    shell = make_shell()
    out = io.StringIO()
    assert shell.run_command("\\strategy correlated", out)
    assert shell.strategy == "correlated"
    shell.run_command("\\strategy bogus", out)
    assert shell.strategy == "correlated"
    assert "unknown strategy" in out.getvalue()


def test_shell_tables_command():
    shell = make_shell()
    shell.run_sql("CREATE TABLE t (a);", out=io.StringIO())
    out = io.StringIO()
    shell.run_command("\\tables", out)
    assert "table t(a)" in out.getvalue()


def test_shell_quit():
    shell = make_shell()
    assert shell.run_command("\\q", io.StringIO()) is False


def test_shell_repl_flow():
    from repro.__main__ import Shell

    stdin = io.StringIO(
        "CREATE TABLE t (a);\nINSERT INTO t VALUES (7);\n"
        "SELECT a FROM t;\n\\q\n"
    )
    out = io.StringIO()
    Shell(Database()).repl(stdin=stdin, out=out)
    assert "7" in out.getvalue()


def test_shell_repl_reports_errors():
    from repro.__main__ import Shell

    stdin = io.StringIO("SELECT nope FROM nowhere;\n\\q\n")
    out = io.StringIO()
    Shell(Database()).repl(stdin=stdin, out=out)
    assert "error:" in out.getvalue()


def test_format_result_nulls_and_truncation():
    from repro.__main__ import format_result
    from repro.engine.evaluator import Result

    result = Result(columns=["a", "b"], rows=[(1, None)] * 150)
    text = format_result(result, max_rows=5)
    assert "NULL" in text
    assert "150 rows" in text
    assert "5 shown" in text


def test_main_script_mode(tmp_path, capsys):
    from repro.__main__ import main

    script = tmp_path / "s.sql"
    script.write_text(
        "CREATE TABLE t (a); INSERT INTO t VALUES (1); SELECT a FROM t;"
    )
    assert main([str(script)]) == 0
    captured = capsys.readouterr()
    assert "(1 rows)" in captured.out


def test_main_script_mode_error(tmp_path, capsys):
    from repro.__main__ import main

    script = tmp_path / "bad.sql"
    script.write_text("SELECT x FROM nothing;")
    assert main([str(script)]) == 1


def test_demo_database_loads():
    from repro.__main__ import demo_database

    db = demo_database()
    assert db.catalog.has_view("avgMgrSal")
    conn = Connection(db)
    rows = conn.execute(
        "SELECT avgsalary FROM avgMgrSal WHERE workdept = 'D0000'"
    ).rows
    assert len(rows) == 1


# -- DELETE / UPDATE -----------------------------------------------------------


def test_delete_with_predicate():
    conn = Connection(Database())
    conn.run_script(
        "CREATE TABLE t (a, b); INSERT INTO t VALUES (1, 10), (2, 20), (3, 30); "
        "DELETE FROM t WHERE b >= 20"
    )
    assert conn.execute("SELECT a FROM t").rows == [(1,)]


def test_delete_without_predicate_empties_table():
    conn = Connection(Database())
    conn.run_script("CREATE TABLE t (a); INSERT INTO t VALUES (1), (2); DELETE FROM t")
    assert conn.execute("SELECT a FROM t").rows == []
    assert conn.database.catalog.statistics("t").row_count == 0


def test_update_with_expression():
    conn = Connection(Database())
    conn.run_script(
        "CREATE TABLE t (a, b); INSERT INTO t VALUES (1, 10), (2, 20); "
        "UPDATE t SET b = b + a WHERE a = 2"
    )
    assert sorted(conn.execute("SELECT a, b FROM t").rows) == [(1, 10), (2, 22)]


def test_update_multiple_assignments():
    conn = Connection(Database())
    conn.run_script(
        "CREATE TABLE t (a, b); INSERT INTO t VALUES (1, 10); "
        "UPDATE t SET a = 5, b = a * 100"
    )
    # The right-hand sides see the OLD row values.
    assert conn.execute("SELECT a, b FROM t").rows == [(5, 100)]


def test_delete_with_correlated_subquery():
    conn = Connection(Database())
    conn.run_script(
        "CREATE TABLE t (g, v); INSERT INTO t VALUES (1, 5), (1, 50), (2, 7); "
        "CREATE TABLE caps (g, cap); INSERT INTO caps VALUES (1, 10), (2, 10); "
        "DELETE FROM t WHERE v > (SELECT cap FROM caps WHERE caps.g = t.g)"
    )
    assert sorted(conn.execute("SELECT g, v FROM t").rows) == [(1, 5), (2, 7)]


def test_delete_with_exists_subquery():
    conn = Connection(Database())
    conn.run_script(
        "CREATE TABLE t (a); INSERT INTO t VALUES (1), (2), (3); "
        "CREATE TABLE bad (a); INSERT INTO bad VALUES (2); "
        "DELETE FROM t WHERE EXISTS (SELECT 1 FROM bad WHERE bad.a = t.a)"
    )
    assert sorted(conn.execute("SELECT a FROM t").rows) == [(1,), (3,)]


def test_update_refreshes_indexes_and_stats():
    conn = Connection(Database())
    conn.run_script(
        "CREATE TABLE t (a, b); INSERT INTO t VALUES (1, 10), (2, 20)"
    )
    table = conn.database.table("t")
    table.index_on("b")
    conn.run_script("UPDATE t SET b = 99")
    assert 99 in table.index_on("b")
    assert conn.database.catalog.statistics("t").column("b").distinct_count == 1


def test_delete_update_round_trip_through_printer():
    for text in (
        "DELETE FROM t WHERE a = 1",
        "DELETE FROM t",
        "UPDATE t SET a = 1, b = a + 2 WHERE b < 3",
    ):
        printed = to_sql(parse_statement(text))
        assert to_sql(parse_statement(printed)) == printed
