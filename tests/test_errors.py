"""Error-path coverage: every subsystem raises the documented exception
type with a useful message."""

import pytest

from repro import Connection, Database
from repro.errors import (
    BindError,
    CatalogError,
    ExecutionError,
    LexError,
    MagicError,
    NotSupportedError,
    ParseError,
    QgmError,
    ReproError,
    RewriteError,
    SqlError,
)


def test_exception_hierarchy():
    assert issubclass(LexError, SqlError)
    assert issubclass(ParseError, SqlError)
    assert issubclass(SqlError, ReproError)
    assert issubclass(MagicError, RewriteError)
    assert issubclass(RewriteError, ReproError)
    for exc in (CatalogError, BindError, QgmError, ExecutionError, NotSupportedError):
        assert issubclass(exc, ReproError)


def test_lex_error_carries_position():
    from repro.sql import tokenize

    with pytest.raises(LexError) as info:
        tokenize("select @")
    assert "line 1" in str(info.value)


def test_parse_error_carries_position():
    from repro.sql import parse_statement

    with pytest.raises(ParseError) as info:
        parse_statement("SELECT FROM t")
    assert "line" in str(info.value)


def test_bind_error_names_the_column(empdept_db):
    with pytest.raises(BindError) as info:
        Connection(empdept_db).execute("SELECT bogus FROM employee")
    assert "bogus" in str(info.value)


def test_catalog_error_names_the_table():
    db = Database()
    with pytest.raises(BindError) as info:
        Connection(db).execute("SELECT x FROM nothere")
    assert "nothere" in str(info.value)


def test_unsupported_subquery_position(empdept_db):
    with pytest.raises(NotSupportedError):
        Connection(empdept_db).execute(
            "SELECT empno FROM employee "
            "WHERE empno = 1 OR workdept IN (SELECT deptno FROM department)"
        )


def test_magic_error_on_unregistered_kind():
    from repro.magic.properties import operation_properties

    with pytest.raises(MagicError):
        operation_properties("NO_SUCH_KIND")


def test_adornment_validates_letters():
    from repro.magic.adornment import Adornment

    with pytest.raises(MagicError):
        Adornment("bfx")


def test_execution_error_on_scalar_cardinality(empdept_db):
    with pytest.raises(ExecutionError):
        Connection(empdept_db).execute(
            "SELECT empno FROM employee WHERE empno = (SELECT empno FROM employee)"
        )


def test_all_errors_catchable_as_repro_error(empdept_db):
    conn = Connection(empdept_db)
    for bad in (
        "SELECT",  # parse
        "SELECT x FROM employee",  # bind
        "SELECT empno FROM nowhere",  # catalog/bind
    ):
        with pytest.raises(ReproError):
            conn.execute(bad)
