"""Renderer details: DOT attributes, shared-box markers, magic colouring."""

from repro import Database
from repro.sql import parse_statement
from repro.qgm import build_query_graph, render_dot, render_text
from repro.optimizer.heuristic import optimize_with_heuristic
from repro.workloads.empdept import PAPER_QUERY_SQL, PAPER_VIEWS_SQL, build_empdept_database


def magic_graph():
    db = build_empdept_database(n_departments=50, employees_per_department=5)
    from repro.api import Connection

    Connection(db).run_script(PAPER_VIEWS_SQL)
    graph = build_query_graph(parse_statement(PAPER_QUERY_SQL), db.catalog)
    result = optimize_with_heuristic(graph, db.catalog)
    return result.graph


def test_render_text_marks_shared_boxes():
    db = Database()
    db.create_table("t", ["a"], rows=[])
    graph = build_query_graph(
        parse_statement("SELECT t1.a FROM t t1, t t2 WHERE t1.a = t2.a"),
        db.catalog,
    )
    text = render_text(graph)
    assert "(shared)" in text


def test_render_text_shows_adornments_and_roles():
    text = render_text(magic_graph())
    assert "SUPPLEMENTARY" in text
    assert "^bf" in text


def test_render_dot_node_and_edge_syntax():
    dot = render_dot(magic_graph())
    assert "rankdir=BT" in dot
    assert "cylinder" in dot  # base tables
    assert "lightyellow" in dot  # supplementary box fill
    assert "->" in dot


def test_render_dot_marks_magic_links_when_present():
    from repro.rewrite import RewriteEngine, default_rules
    from repro.optimizer import optimize_graph

    db = build_empdept_database(n_departments=20, employees_per_department=4)
    from repro.api import Connection

    Connection(db).run_script(PAPER_VIEWS_SQL)
    graph = build_query_graph(parse_statement(PAPER_QUERY_SQL), db.catalog)
    engine = RewriteEngine(default_rules(include_emst=True))
    context = engine.run_phase(graph, 1)
    plan = optimize_graph(graph, db.catalog)
    engine.run_phase(graph, 2, join_orders=plan.join_orders, context=context)
    dot = render_dot(graph)
    assert "magic-link" in dot
    assert "lightblue" in dot  # magic box fill
    text = render_text(graph)
    assert "linked-magic" in text
    assert "magic" in text


def test_render_distinct_marker():
    db = Database()
    db.create_table("t", ["a"], rows=[])
    graph = build_query_graph(
        parse_statement("SELECT DISTINCT a FROM t"), db.catalog
    )
    assert "DISTINCT" in render_text(graph)
