"""The interbox dataflow engine: fixpoint solving, the three analyses
(keys, nullability, bindings), the `qgm.keys` façade over the key
backend, the optimizer/magic consumers of the facts, and the end-to-end
acceptance on recursive magic workloads."""

import pytest

from repro import Connection, Database
from repro.analysis.dataflow import (
    solve_bindings,
    solve_box_keys,
    solve_keys,
    solve_nullability,
)
from repro.catalog import ColumnDef
from repro.engine import Evaluator
from repro.optimizer import CardinalityEstimator
from repro.optimizer.heuristic import optimize_with_heuristic
from repro.qgm import BoxKind, build_query_graph
from repro.qgm import expr as qe
from repro.qgm.keys import box_keys, is_duplicate_free
from repro.qgm.model import (
    Box,
    DistinctMode,
    MagicRole,
    OutputColumn,
)
from repro.sql import parse_script, parse_statement

from tests.helpers import canonical


@pytest.fixture
def db():
    database = Database()
    database.create_table(
        "emp",
        [
            ColumnDef("empno", "INT", not_null=True),
            ColumnDef("empname", "STR"),
            ColumnDef("workdept", "STR", not_null=True),
            ColumnDef("salary", "INT"),
        ],
        primary_key=["empno"],
        rows=[
            (1, "a", "D1", 100),
            (2, None, "D1", None),
            (3, "c", "D2", 300),
        ],
    )
    database.create_table(
        "dept",
        [
            ColumnDef("deptno", "STR", not_null=True),
            ColumnDef("deptname", "STR"),
        ],
        primary_key=["deptno"],
        rows=[("D1", "Planning"), ("D2", None)],
    )
    database.create_table(
        "edge",
        ["src", "dst"],
        rows=[(1, 2), (2, 3), (3, 4)],
    )
    return database


def build(sql, db):
    return build_query_graph(parse_statement(sql), db.catalog)


# ---------------------------------------------------------------------------
# Key analysis
# ---------------------------------------------------------------------------


def test_primary_key_survives_select(db):
    graph = build("SELECT e.empno, e.empname FROM emp e", db)
    assert frozenset({"empno"}) in box_keys(graph.top_box)


def test_zero_foreach_select_yields_at_most_one_row():
    seed = Box(
        kind=BoxKind.SELECT,
        name="SEED",
        columns=[OutputColumn(name="c", expr=qe.QLiteral(5))],
    )
    assert solve_box_keys(seed) == [frozenset()]
    assert is_duplicate_free(seed)


def test_intersect_inherits_keys_of_either_input(db):
    # Left branch (empname) carries no key; the right branch's primary key
    # still makes the intersection duplicate-free positionally.
    graph = build(
        "SELECT e.empname FROM emp e "
        "INTERSECT SELECT d.deptno FROM dept d",
        db,
    )
    intersect = next(
        b for b in graph.boxes() if b.kind == BoxKind.INTERSECT
    )
    own = intersect.columns[0].name.lower()
    assert frozenset({own}) in solve_box_keys(intersect)


def test_mutually_determined_quantifiers_claim_no_key():
    # s1 and s2 determine each other; at most one may be eliminated, so
    # the box must NOT inherit t's key (each t row appears once per s row).
    db = Database()
    db.create_table("s", ["a"], primary_key=["a"], rows=[(1,), (2,)])
    db.create_table("t", ["x"], primary_key=["x"], rows=[(7,)])
    graph = build(
        "SELECT t.x FROM s s1, s s2, t t WHERE s1.a = s2.a", db
    )
    keys = box_keys(graph.top_box)
    assert frozenset({"x"}) not in keys
    # And empirically: x really does repeat in the output.
    rows = Evaluator(graph, db).run().rows
    assert sorted(rows) == [(7,), (7,)]


def test_determined_quantifier_with_free_support_is_eliminated():
    db = Database()
    db.create_table("s", ["a"], primary_key=["a"], rows=[(1,), (2,)])
    db.create_table("t", ["x"], primary_key=["x"], rows=[(1,), (5,)])
    graph = build("SELECT t.x FROM s s, t t WHERE s.a = t.x", db)
    assert frozenset({"x"}) in box_keys(graph.top_box)


def test_keys_derive_through_recursive_cycle(db):
    # The historical derivation bailed out on any cyclic box; the fixpoint
    # still produces facts for every member of the recursive component.
    graph = build_query_graph(
        parse_script(
            "WITH RECURSIVE reach (n) AS ("
            "  SELECT dst FROM edge WHERE src = 1 "
            "  UNION "
            "  SELECT e.dst FROM reach r, edge e WHERE e.src = r.n) "
            "SELECT n FROM reach"
        ).queries[0],
        db.catalog,
    )
    facts = solve_keys(graph.top_box)
    boxes = graph.boxes()
    assert all(id(box) in facts for box in boxes)
    union = next(b for b in boxes if b.kind == BoxKind.UNION)
    # UNION (distinct) enforces: the full column set is a key, and the
    # single-column select above it inherits it.
    assert frozenset({"n"}) in box_keys(union)
    assert frozenset({"n"}) in box_keys(graph.top_box)
    assert is_duplicate_free(union)


def test_ignore_enforce_separates_structural_from_enforced(db):
    graph = build("SELECT DISTINCT e.empname FROM emp e", db)
    assert box_keys(graph.top_box)  # the enforcement is a key
    assert not box_keys(graph.top_box, ignore_enforce=True)
    graph = build("SELECT DISTINCT e.empno FROM emp e", db)
    assert box_keys(graph.top_box, ignore_enforce=True)  # PK: structural


# ---------------------------------------------------------------------------
# Nullability analysis
# ---------------------------------------------------------------------------


def top_nullfact(graph):
    return solve_nullability(graph.top_box)[id(graph.top_box)]


def test_declared_not_null_propagates(db):
    graph = build("SELECT e.empno, e.empname, e.workdept FROM emp e", db)
    fact = top_nullfact(graph)
    assert {"empno", "workdept"} <= set(fact.notnull)
    assert "empname" not in fact.notnull


def test_comparison_rejects_nulls(db):
    graph = build("SELECT e.salary FROM emp e WHERE e.salary > 50", db)
    assert "salary" in top_nullfact(graph).notnull
    # Under a mask (IS NULL) the reference does not reject NULLs.
    graph = build("SELECT e.salary FROM emp e WHERE e.salary IS NULL", db)
    assert "salary" not in top_nullfact(graph).notnull


def test_null_literal_is_allnull(db):
    graph = build("SELECT e.empno FROM emp e", db)
    graph.top_box.columns[0].expr = qe.QLiteral(None)
    fact = top_nullfact(graph)
    assert "empno" in fact.allnull


def test_outerjoin_masks_null_extended_side(db):
    graph = build(
        "SELECT d.deptno, e.workdept FROM dept d "
        "LEFT OUTER JOIN emp e ON e.workdept = d.deptno",
        db,
    )
    fact = top_nullfact(graph)
    assert "deptno" in fact.notnull  # preserved side keeps its proof
    assert "workdept" not in fact.notnull  # null-extended side loses it


def test_count_is_not_null_sum_needs_groups(db):
    graph = build(
        "SELECT e.workdept, COUNT(*), SUM(e.empno) FROM emp e "
        "GROUP BY e.workdept",
        db,
    )
    groupby = next(b for b in graph.boxes() if b.kind == BoxKind.GROUPBY)
    fact = solve_nullability(graph.top_box)[id(groupby)]
    names = [c.name.lower() for c in groupby.columns]
    assert names[0] in fact.notnull  # group key over NOT NULL column
    assert names[1] in fact.notnull  # COUNT never returns NULL
    assert names[2] in fact.notnull  # SUM over NOT NULL arg, grouped
    # Global aggregation: SUM may be NULL on an empty input.
    graph = build("SELECT SUM(e.empno) FROM emp e", db)
    groupby = next(b for b in graph.boxes() if b.kind == BoxKind.GROUPBY)
    fact = solve_nullability(graph.top_box)[id(groupby)]
    assert groupby.columns[0].name.lower() not in fact.notnull


def test_union_intersects_branch_proofs(db):
    graph = build(
        "SELECT e.empno FROM emp e UNION SELECT e2.salary FROM emp e2", db
    )
    union = next(b for b in graph.boxes() if b.kind == BoxKind.UNION)
    fact = solve_nullability(graph.top_box)[id(union)]
    # empno is NOT NULL but salary is nullable: the union column is not
    # provably NOT NULL.
    assert union.columns[0].name.lower() not in fact.notnull


# ---------------------------------------------------------------------------
# Binding analysis
# ---------------------------------------------------------------------------


def test_magic_box_columns_are_bound(db):
    graph = build("SELECT e.workdept FROM emp e", db)
    graph.top_box.magic_role = MagicRole.MAGIC
    fact = solve_bindings(graph.top_box)[id(graph.top_box)]
    assert fact == frozenset({"workdept"})


def test_equality_to_magic_column_grounds_output(db):
    graph = build(
        "SELECT e.empno, e.workdept, e.empname FROM emp e, dept d "
        "WHERE e.workdept = d.deptno",
        db,
    )
    top = graph.top_box
    dept_quantifier = next(
        q for q in top.quantifiers if q.input_box.name.lower() == "dept"
    )
    dept_quantifier.is_magic = True
    fact = solve_bindings(top)[id(top)]
    assert "workdept" in fact  # equated to a magic column
    assert "empno" not in fact
    assert "empname" not in fact


def test_constants_are_trivially_bound(db):
    graph = build("SELECT e.empno FROM emp e", db)
    graph.top_box.columns[0].expr = qe.QLiteral(42)
    fact = solve_bindings(graph.top_box)[id(graph.top_box)]
    assert "empno" in fact


def test_adornments_on_rewritten_workloads_all_justified():
    # The acceptance bar: every adornment adorn.py produced on the stock
    # workloads verifies clean under the binding audit.
    from repro.analysis.lint import lint_workloads

    results = lint_workloads(scale=0.02, rewritten=True)
    assert results
    for label, report in results:
        unjustified = report.by_code("QGM501")
        assert not unjustified, "%s: %s" % (
            label,
            [d.render() for d in unjustified],
        )


# ---------------------------------------------------------------------------
# Consumers: cardinality estimator
# ---------------------------------------------------------------------------


def test_estimator_pins_key_column_distinct_to_rows(db):
    graph = build("SELECT e.empno, e.empname FROM emp e", db)
    estimator = CardinalityEstimator(db.catalog)
    top = graph.top_box
    rows = estimator.rows(top)
    assert estimator.column(top, "empno").distinct == pytest.approx(rows)


def test_estimator_decides_is_null_over_not_null_column(db):
    estimator = CardinalityEstimator(db.catalog)
    graph = build("SELECT e.empno FROM emp e WHERE e.workdept IS NULL", db)
    predicate = graph.top_box.predicates[0]
    assert estimator.selectivity(predicate) == 0.0
    graph = build(
        "SELECT e.empno FROM emp e WHERE e.workdept IS NOT NULL", db
    )
    predicate = graph.top_box.predicates[0]
    assert estimator.selectivity(predicate) == 1.0
    # Nullable column: still the guess, not a decision.
    graph = build("SELECT e.empno FROM emp e WHERE e.empname IS NULL", db)
    assert estimator.selectivity(graph.top_box.predicates[0]) == 0.1


def test_estimator_skips_shrink_for_redundant_enforcement(db):
    estimator = CardinalityEstimator(db.catalog)
    keyed = build("SELECT DISTINCT e.empno FROM emp e", db)
    unkeyed = build("SELECT DISTINCT e.empname FROM emp e", db)
    assert estimator.rows(keyed.top_box) == pytest.approx(3.0)
    assert estimator.rows(unkeyed.top_box) == pytest.approx(3.0 * 0.9)


# ---------------------------------------------------------------------------
# Consumers: magic relaxation sweep
# ---------------------------------------------------------------------------


def test_relax_sweep_drops_provable_enforcement_only(db):
    from repro.magic.magic_boxes import relax_proven_duplicate_free

    graph = build("SELECT e.empno, e.empname FROM emp e", db)
    provable = graph.top_box
    provable.magic_role = MagicRole.MAGIC
    provable.distinct = DistinctMode.ENFORCE

    unprovable = build("SELECT e.empname FROM emp e", db)
    unprovable.top_box.magic_role = MagicRole.MAGIC
    unprovable.top_box.distinct = DistinctMode.ENFORCE
    regular = build("SELECT e.empname FROM emp e", db)
    regular.top_box.distinct = DistinctMode.ENFORCE

    relaxed = relax_proven_duplicate_free(graph)
    assert relaxed == [provable]
    assert provable.distinct == DistinctMode.PERMIT

    assert relax_proven_duplicate_free(unprovable) == []
    assert unprovable.top_box.distinct == DistinctMode.ENFORCE
    # Regular boxes are the distinct-pullup rule's business, not the
    # magic sweep's.
    assert relax_proven_duplicate_free(regular) == []
    assert regular.top_box.distinct == DistinctMode.ENFORCE


# ---------------------------------------------------------------------------
# Acceptance: recursive magic workloads shed proven-redundant DISTINCT
# ---------------------------------------------------------------------------


CLOSURE_BOUND = (
    "WITH RECURSIVE path (src, dst) AS ("
    "  SELECT src, dst FROM edge "
    "  UNION "
    "  SELECT p.src, e.dst FROM path p, edge e WHERE e.src = p.dst) "
    "SELECT dst FROM path WHERE src = 0 ORDER BY dst"
)


def _chain_db(n_chains=10, depth=5):
    rows = []
    for chain in range(n_chains):
        base = chain * (depth + 1)
        for hop in range(depth):
            rows.append((base + hop, base + hop + 1))
    database = Database()
    database.create_table("edge", ["src", "dst"], rows=rows)
    return database


def test_recursive_magic_sheds_proven_distinct_with_identical_rows():
    database = _chain_db()
    statement = parse_script(CLOSURE_BOUND).queries[0]

    baseline_graph = build_query_graph(statement, database.catalog)
    baseline_rows = Evaluator(baseline_graph, database).run().rows

    graph = build_query_graph(statement, database.catalog)
    result = optimize_with_heuristic(graph, database.catalog)
    assert result.used_emst

    permitted = [
        box
        for box in result.graph.boxes()
        if box.magic_role != MagicRole.REGULAR
        and box.distinct == DistinctMode.PERMIT
    ]
    # At least one magic-side box shed its DISTINCT thanks to the
    # duplicate-freeness proof (the historical prover bailed out here
    # because the magic boxes sit on a recursive cycle).
    assert permitted, [
        (b.name, b.magic_role, b.distinct) for b in result.graph.boxes()
    ]

    rows = Evaluator(
        result.graph, database, join_orders=result.join_orders
    ).run().rows
    assert canonical(rows) == canonical(baseline_rows)


def test_recursive_magic_agrees_through_connection():
    database = _chain_db()
    connection = Connection(database)
    reference = canonical(
        connection.explain_execute(CLOSURE_BOUND, strategy="original").rows
    )
    outcome = connection.explain_execute(CLOSURE_BOUND, strategy="emst")
    assert canonical(outcome.rows) == reference
