"""Storage-layer tests: tables, inserts, persistent indexes."""

import pytest

from repro.engine import Database, Table
from repro.catalog import ColumnDef, TableSchema
from repro.errors import CatalogError, ExecutionError


def make_table():
    schema = TableSchema(
        name="t", columns=[ColumnDef("a"), ColumnDef("b")], primary_key=("a",)
    )
    return Table(schema, rows=[(1, "x"), (2, "y"), (3, "x")])


def test_insert_checks_arity():
    table = make_table()
    with pytest.raises(ExecutionError):
        table.insert((1, 2, 3))


def test_single_column_index():
    table = make_table()
    index = table.index_on("b")
    assert sorted(index["x"]) == [(1, "x"), (3, "x")]
    assert index["y"] == [(2, "y")]


def test_composite_index_uses_tuple_keys():
    table = make_table()
    index = table.index_on(("a", "b"))
    assert index[(1, "x")] == [(1, "x")]
    assert (9, "z") not in index


def test_index_invalidated_on_insert():
    table = make_table()
    table.index_on("b")
    table.insert((4, "x"))
    assert len(table.index_on("b")["x"]) == 3


def test_index_includes_null_keys():
    table = make_table()
    table.insert((5, None))
    assert table.index_on("b")[None] == [(5, None)]


def test_database_create_table_with_rows_analyzes():
    db = Database()
    db.create_table("t", ["a"], rows=[(1,), (2,)])
    assert db.catalog.statistics("t").row_count == 2


def test_database_unknown_table():
    db = Database()
    with pytest.raises(CatalogError):
        db.table("missing")


def test_database_insert_and_len():
    db = Database()
    table = db.create_table("t", ["a"])
    db.insert("t", [(1,), (2,)])
    assert len(table) == 2


def test_analyze_all_tables():
    db = Database()
    db.create_table("t", ["a"], rows=[(1,)])
    db.create_table("s", ["b"], rows=[(1,), (2,)])
    db.insert("s", [(3,)])
    db.analyze()
    assert db.catalog.statistics("s").row_count == 3


def test_insert_many_bad_arity_mid_input_leaves_table_unmodified():
    table = make_table()
    before_rows = list(table.rows)
    before_version = table.version
    with pytest.raises(ExecutionError):
        table.insert_many([(4, "w"), (5, "v", "extra"), (6, "u")])
    assert table.rows == before_rows
    assert len(table) == len(before_rows)
    assert table.version == before_version
    # Column storage stayed consistent too.
    assert table.column_data("a") == [1, 2, 3]


def test_insert_many_single_bump_and_empty_noop():
    table = make_table()
    version = table.version
    table.insert_many([(4, "w"), (5, "v")])
    assert table.version == version + 1  # one statement, one bump
    table.insert_many([])
    assert table.version == version + 1  # empty insert is a no-op


def test_columnar_layout_round_trip():
    table = make_table()
    assert table.column_data("a") == [1, 2, 3]
    assert table.column_data(1) == ["x", "y", "x"]
    table.insert((4, None))
    assert table.column_data("b") == ["x", "y", "x", None]
    assert table.rows == [(1, "x"), (2, "y"), (3, "x"), (4, None)]
    # Replacing rows wholesale (the DELETE/UPDATE path) rebuilds columns.
    table.rows = [(7, "z")]
    assert table.column_data("a") == [7]
    table.rows = []
    assert table.column_data("a") == []
    assert table.rows == []


def test_rows_view_is_stable_snapshot_across_mutation():
    table = make_table()
    snapshot = table.rows
    table.insert((4, "w"))
    assert snapshot == [(1, "x"), (2, "y"), (3, "x")]
    assert table.rows == snapshot + [(4, "w")]


def test_table_versions_unknown_name_raises():
    db = Database()
    db.create_table("t", ["a"], rows=[(1,)])
    assert db.table_versions(["t"]) == {"t": 0}
    with pytest.raises(CatalogError):
        db.table_versions(["t", "missing"])


def test_initial_rows_leave_version_zero():
    table = make_table()
    assert table.version == 0
