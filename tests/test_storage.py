"""Storage-layer tests: tables, inserts, persistent indexes."""

import pytest

from repro.engine import Database, Table
from repro.catalog import ColumnDef, TableSchema
from repro.errors import CatalogError, ExecutionError


def make_table():
    schema = TableSchema(
        name="t", columns=[ColumnDef("a"), ColumnDef("b")], primary_key=("a",)
    )
    return Table(schema, rows=[(1, "x"), (2, "y"), (3, "x")])


def test_insert_checks_arity():
    table = make_table()
    with pytest.raises(ExecutionError):
        table.insert((1, 2, 3))


def test_single_column_index():
    table = make_table()
    index = table.index_on("b")
    assert sorted(index["x"]) == [(1, "x"), (3, "x")]
    assert index["y"] == [(2, "y")]


def test_composite_index_uses_tuple_keys():
    table = make_table()
    index = table.index_on(("a", "b"))
    assert index[(1, "x")] == [(1, "x")]
    assert (9, "z") not in index


def test_index_invalidated_on_insert():
    table = make_table()
    table.index_on("b")
    table.insert((4, "x"))
    assert len(table.index_on("b")["x"]) == 3


def test_index_includes_null_keys():
    table = make_table()
    table.insert((5, None))
    assert table.index_on("b")[None] == [(5, None)]


def test_database_create_table_with_rows_analyzes():
    db = Database()
    db.create_table("t", ["a"], rows=[(1,), (2,)])
    assert db.catalog.statistics("t").row_count == 2


def test_database_unknown_table():
    db = Database()
    with pytest.raises(CatalogError):
        db.table("missing")


def test_database_insert_and_len():
    db = Database()
    table = db.create_table("t", ["a"])
    db.insert("t", [(1,), (2,)])
    assert len(table) == 2


def test_analyze_all_tables():
    db = Database()
    db.create_table("t", ["a"], rows=[(1,)])
    db.create_table("s", ["b"], rows=[(1,), (2,)])
    db.insert("s", [(3,)])
    db.analyze()
    assert db.catalog.statistics("s").row_count == 3
