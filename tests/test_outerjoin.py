"""LEFT OUTER JOIN: parsing, QGM construction, execution semantics under
every strategy, and magic restriction of the preserved side."""

import pytest

from repro import Connection, Database
from repro.errors import NotSupportedError
from repro.sql import parse_statement, to_sql
from repro.qgm import BoxKind, MagicRole, build_query_graph, validate_graph
from repro.optimizer.heuristic import optimize_with_heuristic

from tests.helpers import canonical, run_all_strategies


@pytest.fixture
def oj_db():
    db = Database()
    db.create_table(
        "t", ["a", "b"], primary_key=["a"], rows=[(1, 10), (2, 20), (3, 30)]
    )
    db.create_table(
        "s", ["a", "d"], rows=[(1, 100), (1, 101), (4, 400), (None, 500)]
    )
    db.create_table(
        "u", ["a", "e"], primary_key=["a"], rows=[(1, "x"), (3, "z")]
    )
    return db


# -- parsing -------------------------------------------------------------------


def test_parse_left_join_variants():
    for text in (
        "SELECT t.a FROM t LEFT JOIN s ON s.a = t.a",
        "SELECT t.a FROM t LEFT OUTER JOIN s ON s.a = t.a",
    ):
        statement = parse_statement(text)
        join = statement.body.from_tables[0]
        assert join.kind == "LEFT"


def test_parse_inner_join():
    statement = parse_statement("SELECT t.a FROM t INNER JOIN s ON s.a = t.a")
    assert statement.body.from_tables[0].kind == "INNER"
    statement = parse_statement("SELECT t.a FROM t JOIN s ON s.a = t.a")
    assert statement.body.from_tables[0].kind == "INNER"


def test_parse_join_chain_left_associative():
    statement = parse_statement(
        "SELECT t.a FROM t LEFT JOIN s ON s.a = t.a LEFT JOIN u ON u.a = t.a"
    )
    outer = statement.body.from_tables[0]
    assert outer.kind == "LEFT"
    assert outer.left.kind == "LEFT"


def test_join_round_trips_through_printer():
    text = "SELECT t.a, s.d FROM t LEFT OUTER JOIN s ON s.a = t.a WHERE t.a > 1"
    printed = to_sql(parse_statement(text))
    assert "LEFT OUTER JOIN" in printed
    assert to_sql(parse_statement(printed)) == printed


# -- QGM construction ---------------------------------------------------------------


def test_left_join_builds_outerjoin_box(oj_db):
    graph = build_query_graph(
        parse_statement("SELECT t.a, s.d FROM t LEFT JOIN s ON s.a = t.a"),
        oj_db.catalog,
    )
    validate_graph(graph)
    oj = graph.top_box.quantifiers[0].input_box
    assert oj.kind == BoxKind.OUTERJOIN
    assert len(oj.quantifiers) == 2
    assert oj.predicates  # the ON condition


def test_inner_join_flattens_into_select_box(oj_db):
    graph = build_query_graph(
        parse_statement("SELECT t.a, s.d FROM t JOIN s ON s.a = t.a"),
        oj_db.catalog,
    )
    validate_graph(graph)
    assert len(graph.top_box.foreach_quantifiers()) == 2
    assert len(graph.top_box.predicates) == 1


def test_name_collision_across_join_sides_uniquified(oj_db):
    graph = build_query_graph(
        parse_statement("SELECT t.a, s.a FROM t LEFT JOIN s ON s.a = t.a"),
        oj_db.catalog,
    )
    oj = graph.top_box.quantifiers[0].input_box
    names = [c.name.lower() for c in oj.columns]
    assert len(names) == len(set(names))


def test_inner_join_as_left_operand_rejected(oj_db):
    with pytest.raises(NotSupportedError):
        build_query_graph(
            parse_statement(
                "SELECT t.a FROM t JOIN s ON s.a = t.a LEFT JOIN u ON u.a = t.a"
            ),
            oj_db.catalog,
        )


# -- execution semantics ----------------------------------------------------------------


def test_left_join_null_padding(oj_db):
    conn = Connection(oj_db)
    rows = run_all_strategies(
        conn, "SELECT t.a, s.d FROM t LEFT JOIN s ON s.a = t.a"
    )
    assert rows == canonical(
        [(1, 100), (1, 101), (2, None), (3, None)]
    )


def test_left_join_on_condition_does_not_filter_preserved(oj_db):
    conn = Connection(oj_db)
    rows = run_all_strategies(
        conn,
        "SELECT t.a, s.d FROM t LEFT JOIN s ON s.a = t.a AND s.d > 100",
    )
    assert rows == canonical([(1, 101), (2, None), (3, None)])


def test_where_after_left_join_filters_result(oj_db):
    conn = Connection(oj_db)
    rows = run_all_strategies(
        conn,
        "SELECT t.a FROM t LEFT JOIN s ON s.a = t.a WHERE s.d IS NULL",
    )
    assert rows == canonical([(2,), (3,)])


def test_left_join_chain(oj_db):
    conn = Connection(oj_db)
    rows = run_all_strategies(
        conn,
        "SELECT t.a, s.d, u.e FROM t LEFT JOIN s ON s.a = t.a "
        "LEFT JOIN u ON u.a = t.a",
    )
    assert rows == canonical(
        [(1, 100, "x"), (1, 101, "x"), (2, None, None), (3, None, "z")]
    )


def test_inner_join_matches_comma_syntax(oj_db):
    conn = Connection(oj_db)
    joined = run_all_strategies(
        conn, "SELECT t.a, s.d FROM t JOIN s ON s.a = t.a"
    )
    comma = run_all_strategies(
        conn, "SELECT t.a, s.d FROM t, s WHERE s.a = t.a"
    )
    assert joined == comma


def test_left_join_null_key_never_matches(oj_db):
    # s has a NULL key row; it must never match, and t rows never pair
    # with it through equality.
    conn = Connection(oj_db)
    rows = run_all_strategies(
        conn, "SELECT t.a, s.d FROM t LEFT JOIN s ON s.a = t.a"
    )
    assert (1, 500) not in rows


def test_left_join_with_aggregation_above(oj_db):
    conn = Connection(oj_db)
    rows = run_all_strategies(
        conn,
        "SELECT t.a, COUNT(s.d) AS n FROM t LEFT JOIN s ON s.a = t.a "
        "GROUP BY t.a",
    )
    assert rows == canonical([(1, 2), (2, 0), (3, 0)])


def test_left_join_derived_table(oj_db):
    conn = Connection(oj_db)
    rows = run_all_strategies(
        conn,
        "SELECT t.a, x.total FROM t LEFT JOIN "
        "(SELECT a, SUM(d) AS total FROM s GROUP BY a) AS x ON x.a = t.a",
    )
    assert rows == canonical([(1, 201), (2, None), (3, None)])


# -- magic through the outer join --------------------------------------------------------


def test_magic_restricts_preserved_side(oj_db):
    # The preserved side is a *derived* table, so the magic restriction has
    # somewhere to land (stored tables take no magic).
    oj_db.catalog.add_view(
        parse_statement(
            "CREATE VIEW tv (a, b, d) AS "
            "SELECT tt.a, tt.b, s.d FROM "
            "(SELECT a, b FROM t WHERE b >= 10) AS tt "
            "LEFT JOIN s ON s.a = tt.a"
        )
    )
    sql = "SELECT u.e, v.b, v.d FROM u, tv v WHERE v.a = u.a"
    conn = Connection(oj_db)
    rows = run_all_strategies(conn, sql)
    assert rows == canonical([("x", 10, 100), ("x", 10, 101), ("z", 30, None)])

    from repro.rewrite import RewriteEngine, default_rules
    from repro.optimizer import optimize_graph

    graph = build_query_graph(parse_statement(sql), oj_db.catalog)
    engine = RewriteEngine(default_rules(include_emst=True))
    context = engine.run_phase(graph, 1)
    plan = optimize_graph(graph, oj_db.catalog)
    engine.run_phase(graph, 2, join_orders=plan.join_orders, context=context)
    validate_graph(graph)
    oj_boxes = [b for b in graph.boxes() if b.kind == BoxKind.OUTERJOIN]
    assert oj_boxes
    left_child = oj_boxes[0].quantifiers[0].input_box
    # The preserved side got a magic quantifier; the NULL-padded side not.
    assert any(q.is_magic for q in left_child.quantifiers)
    right_child = oj_boxes[0].quantifiers[1].input_box
    assert right_child.kind == BoxKind.BASE


def test_outerjoin_never_restricts_null_padded_side(oj_db):
    oj_db.catalog.add_view(
        parse_statement(
            "CREATE VIEW tv (a, b, d) AS "
            "SELECT t.a, t.b, s.d FROM t LEFT JOIN s ON s.a = t.a"
        )
    )
    # The binding lands on d — a right-side column; EMST must not restrict.
    sql = "SELECT v.a FROM u, tv v WHERE v.d = u.a * 100"
    conn = Connection(oj_db)
    run_all_strategies(conn, sql)
