"""Bottom-up evaluator tests: SQL semantics end to end (bag semantics,
NULLs, subqueries, set operations, grouping, ordering)."""

import pytest

from repro import Connection, Database
from repro.errors import ExecutionError

from tests.helpers import run_all_strategies


def execute(db, sql, strategy="norewrite"):
    return Connection(db).explain_execute(sql, strategy=strategy).rows


def test_projection_and_filter(numbers_db):
    rows = execute(numbers_db, "SELECT a, c FROM t WHERE a = 2")
    assert rows == [(2, "y"), (2, "y")]  # duplicates preserved


def test_distinct_eliminates_duplicates(numbers_db):
    rows = execute(numbers_db, "SELECT DISTINCT a, c FROM t WHERE a = 2")
    assert rows == [(2, "y")]


def test_where_null_filtered(numbers_db):
    rows = execute(numbers_db, "SELECT a FROM t WHERE b > 15")
    # b NULL rows are filtered (UNKNOWN), b=10 filtered (FALSE)
    assert sorted(rows) == [(2,), (2,), (4,)]


def test_join_basic(numbers_db):
    rows = execute(
        numbers_db, "SELECT t.a, s.d FROM t, s WHERE t.a = s.a ORDER BY d"
    )
    assert rows == [(1, 100), (2, 200), (2, 200)]


def test_join_null_keys_never_match(numbers_db):
    rows = execute(numbers_db, "SELECT t.a FROM t, s WHERE t.b = s.a")
    assert rows == []


def test_cross_join_cardinality(numbers_db):
    rows = execute(numbers_db, "SELECT t.a, s.a FROM t, s")
    assert len(rows) == 5 * 4


def test_group_by_with_null_group(numbers_db):
    rows = execute(
        numbers_db, "SELECT b, COUNT(*) FROM t GROUP BY b ORDER BY 2 DESC"
    )
    assert (20, 2) in rows
    assert (None, 1) in rows  # NULL forms its own group


def test_group_by_aggregates(numbers_db):
    rows = execute(
        numbers_db,
        "SELECT a, SUM(b), MIN(c), COUNT(*) FROM t GROUP BY a ORDER BY a",
    )
    assert rows[0] == (1, 10, "x", 1)
    assert rows[1] == (2, 40, "y", 2)
    assert rows[2] == (3, None, "z", 1)


def test_having_filters_groups(numbers_db):
    rows = execute(
        numbers_db,
        "SELECT a FROM t GROUP BY a HAVING COUNT(*) > 1",
    )
    assert rows == [(2,)]


def test_scalar_aggregate_on_empty_table():
    db = Database()
    db.create_table("empty", ["x"], rows=[])
    rows = execute(db, "SELECT COUNT(*), SUM(x), AVG(x) FROM empty")
    assert rows == [(0, None, None)]


def test_group_by_on_empty_table_returns_no_rows():
    db = Database()
    db.create_table("empty", ["x"], rows=[])
    rows = execute(db, "SELECT x, COUNT(*) FROM empty GROUP BY x")
    assert rows == []


def test_in_subquery(numbers_db):
    rows = execute(
        numbers_db, "SELECT a FROM t WHERE a IN (SELECT a FROM s) ORDER BY a"
    )
    assert rows == [(1,), (2,), (2,)]


def test_not_in_with_null_in_subquery_is_empty(numbers_db):
    # s.a contains NULL, so NOT IN is never TRUE for any t row.
    rows = execute(numbers_db, "SELECT a FROM t WHERE a NOT IN (SELECT a FROM s)")
    assert rows == []


def test_not_in_without_nulls():
    db = Database()
    db.create_table("t", ["a"], rows=[(1,), (2,), (3,)])
    db.create_table("s", ["a"], rows=[(2,)])
    rows = execute(db, "SELECT a FROM t WHERE a NOT IN (SELECT a FROM s)")
    assert sorted(rows) == [(1,), (3,)]


def test_not_in_empty_subquery_keeps_all():
    db = Database()
    db.create_table("t", ["a"], rows=[(1,), (None,)])
    db.create_table("s", ["a"], rows=[])
    rows = execute(db, "SELECT a FROM t WHERE a NOT IN (SELECT a FROM s)")
    assert len(rows) == 2  # even the NULL row qualifies over an empty set


def test_exists_correlated(numbers_db):
    rows = execute(
        numbers_db,
        "SELECT a FROM t WHERE EXISTS (SELECT d FROM s WHERE s.a = t.a) ORDER BY a",
    )
    assert rows == [(1,), (2,), (2,)]


def test_not_exists_correlated(numbers_db):
    rows = execute(
        numbers_db,
        "SELECT DISTINCT a FROM t WHERE NOT EXISTS "
        "(SELECT d FROM s WHERE s.a = t.a) ORDER BY a",
    )
    assert rows == [(3,), (4,)]


def test_quantified_any(numbers_db):
    rows = execute(
        numbers_db,
        "SELECT DISTINCT a FROM t WHERE a >= ANY (SELECT a FROM s WHERE a = 5)",
    )
    assert rows == []  # only 5 in inner; no t.a >= 5


def test_quantified_all():
    db = Database()
    db.create_table("t", ["a"], rows=[(1,), (5,), (9,)])
    db.create_table("s", ["a"], rows=[(4,), (6,)])
    rows = execute(db, "SELECT a FROM t WHERE a > ALL (SELECT a FROM s)")
    assert rows == [(9,)]


def test_quantified_all_empty_inner_is_true():
    db = Database()
    db.create_table("t", ["a"], rows=[(1,)])
    db.create_table("s", ["a"], rows=[])
    rows = execute(db, "SELECT a FROM t WHERE a > ALL (SELECT a FROM s)")
    assert rows == [(1,)]


def test_scalar_subquery_empty_yields_null():
    db = Database()
    db.create_table("t", ["a"], rows=[(1,)])
    db.create_table("s", ["a"], rows=[])
    rows = execute(db, "SELECT a FROM t WHERE a > (SELECT MAX(a) FROM s WHERE a > 100)")
    assert rows == []  # NULL comparison is UNKNOWN


def test_scalar_subquery_multiple_rows_raises():
    db = Database()
    db.create_table("t", ["a"], rows=[(1,)])
    db.create_table("s", ["a"], rows=[(1,), (2,)])
    with pytest.raises(ExecutionError):
        execute(db, "SELECT a FROM t WHERE a = (SELECT a FROM s)")


def test_union_distinct_and_all(numbers_db):
    rows = execute(numbers_db, "SELECT a FROM t UNION SELECT a FROM s")
    assert sorted(rows, key=lambda r: (r[0] is None, r[0])) == [
        (1,),
        (2,),
        (3,),
        (4,),
        (5,),
        (None,),
    ]
    rows = execute(numbers_db, "SELECT a FROM t UNION ALL SELECT a FROM s")
    assert len(rows) == 9


def test_except_all_bag_semantics():
    db = Database()
    db.create_table("l", ["a"], rows=[(1,), (1,), (1,), (2,)])
    db.create_table("r", ["a"], rows=[(1,)])
    rows = execute(db, "SELECT a FROM l EXCEPT ALL SELECT a FROM r")
    assert sorted(rows) == [(1,), (1,), (2,)]
    rows = execute(db, "SELECT a FROM l EXCEPT SELECT a FROM r")
    assert sorted(rows) == [(2,)]


def test_intersect_all_bag_semantics():
    db = Database()
    db.create_table("l", ["a"], rows=[(1,), (1,), (2,)])
    db.create_table("r", ["a"], rows=[(1,), (1,), (1,), (3,)])
    rows = execute(db, "SELECT a FROM l INTERSECT ALL SELECT a FROM r")
    assert sorted(rows) == [(1,), (1,)]
    rows = execute(db, "SELECT a FROM l INTERSECT SELECT a FROM r")
    assert sorted(rows) == [(1,)]


def test_order_by_nulls_last(numbers_db):
    rows = execute(numbers_db, "SELECT b FROM t ORDER BY b")
    assert rows[-1] == (None,)
    rows = execute(numbers_db, "SELECT b FROM t ORDER BY b DESC")
    assert rows[-1] == (None,)
    assert rows[0] == (40,)


def test_limit(numbers_db):
    rows = execute(numbers_db, "SELECT a FROM t ORDER BY a LIMIT 2")
    assert rows == [(1,), (2,)]


def test_count_distinct_in_query(numbers_db):
    rows = execute(numbers_db, "SELECT COUNT(DISTINCT a) FROM t")
    assert rows == [(4,)]


def test_expressions_in_select_list(numbers_db):
    rows = execute(
        numbers_db, "SELECT a * 2 + 1 FROM t WHERE a = 1"
    )
    assert rows == [(3,)]


def test_case_in_query(numbers_db):
    rows = execute(
        numbers_db,
        "SELECT DISTINCT CASE WHEN a < 3 THEN 'small' ELSE 'big' END AS size "
        "FROM t ORDER BY size",
    )
    assert rows == [("big",), ("small",)]


def test_derived_table_execution(numbers_db):
    rows = execute(
        numbers_db,
        "SELECT x.total FROM (SELECT SUM(b) AS total FROM t) AS x",
    )
    assert rows == [(90,)]


def test_all_strategies_agree_on_mixed_query(numbers_db):
    conn = Connection(numbers_db)
    run_all_strategies(
        conn,
        "SELECT t.a, s.d FROM t, s WHERE t.a = s.a AND t.b IS NOT NULL",
    )


def test_evaluator_stats_populated(numbers_db):
    outcome = Connection(numbers_db).explain_execute("SELECT a FROM t")
    assert outcome.stats["box_evaluations"] >= 1
    assert outcome.stats["rows_produced"] >= 5
