"""Aggregate accumulator semantics."""

import pytest

from repro.engine.aggregates import make_accumulator
from repro.errors import ExecutionError


def feed(accumulator, values):
    for value in values:
        accumulator.add(value)
    return accumulator.result()


def test_count_star_counts_everything():
    assert feed(make_accumulator("COUNT", star=True), [1, None, 3]) == 3


def test_count_ignores_nulls():
    assert feed(make_accumulator("COUNT"), [1, None, 3]) == 2


def test_sum_ignores_nulls():
    assert feed(make_accumulator("SUM"), [1, None, 3]) == 4


def test_sum_of_empty_is_null():
    assert feed(make_accumulator("SUM"), []) is None


def test_sum_of_only_nulls_is_null():
    assert feed(make_accumulator("SUM"), [None, None]) is None


def test_avg_ignores_nulls():
    assert feed(make_accumulator("AVG"), [2, None, 4]) == 3


def test_avg_of_empty_is_null():
    assert feed(make_accumulator("AVG"), []) is None


def test_min_max():
    assert feed(make_accumulator("MIN"), [3, 1, None, 2]) == 1
    assert feed(make_accumulator("MAX"), [3, 1, None, 2]) == 3


def test_min_max_strings():
    assert feed(make_accumulator("MIN"), ["b", "a"]) == "a"


def test_count_distinct():
    assert feed(make_accumulator("COUNT", distinct=True), [1, 1, 2, None, 2]) == 2


def test_sum_distinct():
    assert feed(make_accumulator("SUM", distinct=True), [5, 5, 3]) == 8


def test_avg_distinct():
    assert feed(make_accumulator("AVG", distinct=True), [2, 2, 4]) == 3


def test_count_distinct_star_invalid():
    with pytest.raises(ExecutionError):
        make_accumulator("COUNT", star=True, distinct=True)


def test_unknown_aggregate_rejected():
    with pytest.raises(ExecutionError):
        make_accumulator("NO_SUCH_AGGREGATE")


def test_count_of_empty_is_zero():
    assert feed(make_accumulator("COUNT"), []) == 0
    assert feed(make_accumulator("COUNT", star=True), []) == 0


def test_variance_and_stddev():
    import math

    values = [2, 4, 4, 4, 5, 5, 7, 9]
    variance = feed(make_accumulator("VARIANCE"), values)
    stddev = feed(make_accumulator("STDDEV"), values)
    assert abs(variance - 4.0) < 1e-9
    assert abs(stddev - 2.0) < 1e-9
    assert feed(make_accumulator("STDDEV"), []) is None
    assert feed(make_accumulator("VARIANCE"), [None, None]) is None


def test_stddev_usable_in_sql():
    from repro import Connection, Database

    db = Database()
    db.create_table("t", ["g", "v"], rows=[(1, 2), (1, 4), (2, 10)])
    rows = Connection(db).execute(
        "SELECT g, STDDEV(v) FROM t GROUP BY g ORDER BY g"
    ).rows
    assert rows[0] == (1, 1.0)
    assert rows[1] == (2, 0.0)


def test_register_custom_aggregate():
    from repro import Connection, Database
    from repro.engine.aggregates import register_aggregate

    class Median:
        def __init__(self):
            self.values = []

        def add(self, value):
            if value is not None:
                self.values.append(value)

        def result(self):
            if not self.values:
                return None
            ordered = sorted(self.values)
            middle = len(ordered) // 2
            if len(ordered) % 2:
                return ordered[middle]
            return (ordered[middle - 1] + ordered[middle]) / 2

    register_aggregate("MEDIAN", Median)
    db = Database()
    db.create_table("t", ["v"], rows=[(1,), (9,), (5,)])
    rows = Connection(db).execute("SELECT MEDIAN(v) FROM t").rows
    assert rows == [(5,)]
