"""Shared fixtures: small databases and helpers used across the suite."""

from __future__ import annotations

import pytest

from repro import Connection, Database


from tests.helpers import assert_same_rows, canonical, run_all_strategies  # noqa: F401


@pytest.fixture
def empdept_db():
    """The paper's running-example schema with a handful of rows."""
    db = Database()
    db.create_table(
        "employee",
        ["empno", "empname", "workdept", "salary"],
        primary_key=["empno"],
        rows=[
            (1, "alice", "D1", 100),
            (2, "bob", "D1", 200),
            (3, "carol", "D2", 300),
            (4, "dave", "D2", 500),
            (5, "erin", "D3", 50),
            (6, "frank", "D3", 250),
            (7, "grace", "D1", 120),
        ],
    )
    db.create_table(
        "department",
        ["deptno", "deptname", "mgrno"],
        primary_key=["deptno"],
        rows=[
            ("D1", "Planning", 1),
            ("D2", "Ops", 3),
            ("D3", "HR", 5),
        ],
    )
    return db


@pytest.fixture
def empdept_conn(empdept_db):
    conn = Connection(empdept_db)
    conn.run_script(
        """
        CREATE VIEW mgrSal (empno, empname, workdept, salary) AS
          SELECT e.empno, e.empname, e.workdept, e.salary
          FROM employee e, department d
          WHERE e.empno = d.mgrno;
        CREATE VIEW avgMgrSal (workdept, avgsalary) AS
          SELECT workdept, AVG(salary) FROM mgrSal GROUP BY workdept;
        """
    )
    return conn


@pytest.fixture
def numbers_db():
    """A tiny generic database for expression/set-op tests, with NULLs and
    duplicates."""
    db = Database()
    db.create_table(
        "t",
        ["a", "b", "c"],
        rows=[
            (1, 10, "x"),
            (2, 20, "y"),
            (2, 20, "y"),
            (3, None, "z"),
            (4, 40, None),
        ],
    )
    db.create_table(
        "s",
        ["a", "d"],
        rows=[(1, 100), (2, 200), (5, 500), (None, 600)],
    )
    return db


