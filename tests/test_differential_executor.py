"""Differential suite: the tuple-at-a-time :class:`Evaluator` is the
oracle for the columnar :class:`BatchEvaluator`. Every workload query
(decision support, empdept, recursive closure) runs through both
executors and must produce identical row sets, and a hypothesis property
test drives random data through join / group-by / fixpoint shapes."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Connection, Database
from repro.sql import parse_statement
from repro.workloads.decision_support import build_decision_support_database
from repro.workloads.empdept import PAPER_VIEWS_SQL, build_empdept_database

from tests.helpers import canonical
from tests.test_integration_suite import DS_QUERIES, EMP_QUERIES


def run_both_executors(conn, sql, strategies=("original", "emst")):
    """Execute under both executors (per strategy); assert they agree."""
    query = parse_statement(sql)
    for strategy in strategies:
        tuple_outcome = conn.execute_query(
            query, strategy=strategy, executor="tuple"
        )
        batch_outcome = conn.execute_query(
            query, strategy=strategy, executor="batch"
        )
        assert canonical(batch_outcome.rows) == canonical(
            tuple_outcome.rows
        ), "batch executor disagrees under %s on %r" % (strategy, sql)


@pytest.fixture(scope="module")
def ds_conn():
    db = build_decision_support_database(scale=0.5, seed=77)
    conn = Connection(db)
    conn.run_script(
        """
        CREATE VIEW custRev (custkey, rev, norders) AS
          SELECT o.custkey, SUM(o.totalprice), COUNT(*)
          FROM orders o GROUP BY o.custkey;
        CREATE VIEW bigParts (partkey, pname, brand) AS
          SELECT partkey, pname, brand FROM part WHERE size > 25;
        CREATE VIEW orderValue (orderkey, value) AS
          SELECT l.orderkey, SUM(l.extendedprice * (1 - l.discount))
          FROM lineitem l GROUP BY l.orderkey;
        """
    )
    return conn


@pytest.fixture(scope="module")
def emp_conn():
    db = build_empdept_database(
        n_departments=40, employees_per_department=6, seed=78
    )
    conn = Connection(db)
    conn.run_script(PAPER_VIEWS_SQL)
    return conn


@pytest.mark.parametrize("index", range(len(DS_QUERIES)))
def test_decision_support_differential(ds_conn, index):
    run_both_executors(ds_conn, DS_QUERIES[index])


@pytest.mark.parametrize("index", range(len(EMP_QUERIES)))
def test_empdept_differential(emp_conn, index):
    run_both_executors(emp_conn, EMP_QUERIES[index])


# -- recursive closure ---------------------------------------------------------


@pytest.fixture(scope="module")
def closure_conn():
    # A few disjoint components plus back edges so the fixpoint takes
    # several delta rounds and revisits known facts.
    edges = []
    for base in (0, 100, 200):
        edges.extend((base + i, base + i + 1) for i in range(25))
        edges.append((base + 25, base))  # cycle back
        edges.append((base + 5, base + 17))  # shortcut
    db = Database()
    db.create_table("edge", ["src", "dst"], rows=edges)
    return Connection(db)


CLOSURE_QUERIES = [
    "WITH RECURSIVE reach (n) AS ("
    "  SELECT e.dst FROM edge e WHERE e.src = 0"
    "  UNION"
    "  SELECT e.dst FROM edge e, reach r WHERE e.src = r.n"
    ") SELECT r.n FROM reach r",
    "WITH RECURSIVE path (src, dst) AS ("
    "  SELECT e.src, e.dst FROM edge e"
    "  UNION"
    "  SELECT p.src, e.dst FROM path p, edge e WHERE e.src = p.dst"
    ") SELECT COUNT(*) FROM path p",
    "WITH RECURSIVE path (src, dst) AS ("
    "  SELECT e.src, e.dst FROM edge e"
    "  UNION"
    "  SELECT p.src, e.dst FROM path p, edge e WHERE e.src = p.dst"
    ") SELECT p.src, COUNT(*) FROM path p WHERE p.src < 10 GROUP BY p.src",
]


@pytest.mark.parametrize("index", range(len(CLOSURE_QUERIES)))
def test_recursive_closure_differential(closure_conn, index):
    run_both_executors(closure_conn, CLOSURE_QUERIES[index])


# -- property-based differential testing ---------------------------------------


value = st.one_of(st.none(), st.integers(min_value=-3, max_value=3))
r_rows = st.lists(st.tuples(value, value), max_size=12)
s_rows = st.lists(st.tuples(value, value), max_size=12)


@settings(
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(r=r_rows, s=s_rows)
def test_random_join_and_groupby_agree(r, s):
    db = Database()
    db.create_table("r", ["a", "b"], rows=r)
    db.create_table("s", ["b", "c"], rows=s)
    conn = Connection(db)
    run_both_executors(
        conn,
        "SELECT r.a, s.c FROM r, s WHERE r.b = s.b",
        strategies=("original",),
    )
    run_both_executors(
        conn,
        "SELECT r.a, COUNT(*), COUNT(s.c), SUM(s.c), MIN(s.c), MAX(s.c) "
        "FROM r, s WHERE r.b = s.b GROUP BY r.a",
        strategies=("original",),
    )
    run_both_executors(
        conn,
        "SELECT DISTINCT r.a FROM r WHERE r.b IN (SELECT s.b FROM s)",
        strategies=("original", "emst"),
    )


edge_rows = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=6),
        st.integers(min_value=0, max_value=6),
    ),
    max_size=14,
)


@settings(
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(edges=edge_rows)
def test_random_fixpoint_agrees(edges):
    db = Database()
    db.create_table("edge", ["src", "dst"], rows=edges)
    conn = Connection(db)
    run_both_executors(
        conn,
        "WITH RECURSIVE reach (n) AS ("
        "  SELECT e.dst FROM edge e WHERE e.src = 0"
        "  UNION"
        "  SELECT e.dst FROM edge e, reach r WHERE e.src = r.n"
        ") SELECT r.n FROM reach r",
        strategies=("original",),
    )
