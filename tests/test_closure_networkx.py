"""Recursive-query results verified against networkx as an independent
reference implementation (random graphs, property-based)."""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Connection, Database


edges_strategy = st.lists(
    st.tuples(st.integers(0, 12), st.integers(0, 12)),
    min_size=1,
    max_size=30,
)


def closure_sql(source):
    return (
        "WITH RECURSIVE reach (n) AS ("
        "  SELECT dst FROM edge WHERE src = %d "
        "  UNION "
        "  SELECT e.dst FROM reach r, edge e WHERE e.src = r.n) "
        "SELECT n FROM reach" % source
    )


def build_db(edges):
    db = Database()
    db.create_table("edge", ["src", "dst"], rows=edges)
    return db


@given(edges_strategy, st.integers(0, 12))
@settings(max_examples=40, deadline=None)
def test_reachability_matches_networkx(edges, source):
    db = build_db(edges)
    graph = nx.DiGraph()
    graph.add_nodes_from(range(13))
    graph.add_edges_from(edges)
    expected = set(nx.descendants(graph, source))
    # SQL semantics: a self-loop makes the source reachable from itself.
    if graph.has_edge(source, source) or any(
        source in nx.descendants(graph, succ) for succ in graph.successors(source)
    ):
        expected.add(source)
    rows = Connection(db).execute(closure_sql(source), strategy="original").rows
    assert {n for (n,) in rows} == expected


@given(edges_strategy, st.integers(0, 12))
@settings(max_examples=25, deadline=None)
def test_emst_closure_matches_networkx(edges, source):
    db = build_db(edges)
    graph = nx.DiGraph()
    graph.add_edges_from(edges)
    if graph.has_node(source):
        expected = set(nx.descendants(graph, source))
        if graph.has_edge(source, source) or any(
            source in nx.descendants(graph, succ)
            for succ in graph.successors(source)
        ):
            expected.add(source)
    else:
        expected = set()
    rows = Connection(db).execute(closure_sql(source), strategy="emst").rows
    assert {n for (n,) in rows} == expected


@given(edges_strategy)
@settings(max_examples=25, deadline=None)
def test_full_closure_matches_networkx(edges):
    db = build_db(edges)
    sql = (
        "WITH RECURSIVE path (src, dst) AS ("
        "  SELECT src, dst FROM edge "
        "  UNION "
        "  SELECT p.src, e.dst FROM path p, edge e WHERE e.src = p.dst) "
        "SELECT src, dst FROM path"
    )
    rows = set(Connection(db).execute(sql, strategy="original").rows)
    graph = nx.DiGraph()
    graph.add_edges_from(edges)
    expected = set()
    for node in graph.nodes:
        for descendant in nx.descendants(graph, node):
            expected.add((node, descendant))
        # self-reachability through a cycle
        if any(
            node in nx.descendants(graph, succ) or succ == node
            for succ in graph.successors(node)
        ):
            expected.add((node, node))
    assert rows == expected
