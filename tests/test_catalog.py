"""Catalog, schema and statistics tests."""

import pytest

from repro.catalog import Catalog, ColumnDef, TableSchema, compute_statistics
from repro.errors import CatalogError


def make_schema():
    return TableSchema(
        name="t",
        columns=[ColumnDef("a"), ColumnDef("b"), ColumnDef("c")],
        primary_key=("a",),
        unique_keys=[("b", "c")],
    )


def test_duplicate_column_rejected():
    with pytest.raises(CatalogError):
        TableSchema(name="t", columns=[ColumnDef("a"), ColumnDef("A")])


def test_key_column_must_exist():
    with pytest.raises(CatalogError):
        TableSchema(name="t", columns=[ColumnDef("a")], primary_key=("zzz",))


def test_column_ordinal_case_insensitive():
    schema = make_schema()
    assert schema.column_ordinal("A") == 0
    assert schema.column_ordinal("c") == 2
    with pytest.raises(CatalogError):
        schema.column_ordinal("missing")


def test_is_unique_on_superset_of_key():
    schema = make_schema()
    assert schema.is_unique_on(["a"])
    assert schema.is_unique_on(["a", "b"])
    assert schema.is_unique_on(["b", "c"])
    assert not schema.is_unique_on(["b"])


def test_catalog_add_and_resolve():
    catalog = Catalog()
    catalog.add_table(make_schema())
    kind, schema = catalog.resolve("T")
    assert kind == "table"
    assert schema.name == "t"


def test_catalog_duplicate_table_rejected():
    catalog = Catalog()
    catalog.add_table(make_schema())
    with pytest.raises(CatalogError):
        catalog.define_table("T", ["x"])


def test_catalog_unknown_name_raises():
    catalog = Catalog()
    with pytest.raises(CatalogError):
        catalog.table("nope")
    with pytest.raises(CatalogError):
        catalog.resolve("nope")


def test_view_registration_and_shadowing():
    from repro.sql import parse_statement

    catalog = Catalog()
    catalog.add_table(make_schema())
    view = parse_statement("CREATE VIEW v AS SELECT a FROM t")
    catalog.add_view(view)
    assert catalog.has_view("V")
    kind, _ = catalog.resolve("v")
    assert kind == "view"
    with pytest.raises(CatalogError):
        catalog.add_view(parse_statement("CREATE VIEW t AS SELECT a FROM t"))
    catalog.drop_view("v")
    assert not catalog.has_view("v")


def test_compute_statistics_counts_and_ranges():
    schema = TableSchema(name="t", columns=[ColumnDef("a"), ColumnDef("b")])
    rows = [(1, "x"), (2, "y"), (2, None), (5, "y")]
    stats = compute_statistics(schema, rows)
    assert stats.row_count == 4
    a = stats.column("a")
    assert a.distinct_count == 3
    assert (a.min_value, a.max_value) == (1, 5)
    b = stats.column("b")
    assert b.null_count == 1
    assert b.distinct_count == 2


def test_statistics_mixed_types_have_no_range():
    schema = TableSchema(name="t", columns=[ColumnDef("a")])
    stats = compute_statistics(schema, [(1,), ("x",)])
    assert stats.column("a").min_value is None


def test_statistics_unknown_column_defaults_to_distinct():
    schema = TableSchema(name="t", columns=[ColumnDef("a")])
    stats = compute_statistics(schema, [(1,), (2,)])
    fallback = stats.column("other")
    assert fallback.distinct_count == 2
