"""Catalog: table schemas, keys and optimizer statistics."""

from repro.catalog.schema import ColumnDef, ForeignKey, TableSchema
from repro.catalog.catalog import Catalog
from repro.catalog.statistics import ColumnStatistics, TableStatistics, compute_statistics

__all__ = [
    "ColumnDef",
    "ForeignKey",
    "TableSchema",
    "Catalog",
    "ColumnStatistics",
    "TableStatistics",
    "compute_statistics",
]
