"""The catalog maps table names to schemas, statistics and view definitions.

Views registered in the catalog are stored as SQL text plus parsed AST and
expanded by the QGM builder; base tables own a :class:`TableSchema` and a
:class:`TableStatistics`.
"""

from __future__ import annotations

import contextlib

from repro.catalog.schema import ColumnDef, TableSchema
from repro.catalog.statistics import TableStatistics
from repro.errors import CatalogError


class Catalog:
    """Name → schema/statistics/view registry (names are case-insensitive)."""

    def __init__(self):
        self._tables = {}
        self._statistics = {}
        self._views = {}
        #: Monotonic DDL version: bumped by every schema change (table or
        #: view added, view dropped). Plan caches key on it so DDL
        #: *invalidates* cached plans instead of corrupting them.
        self.version = 0

    def __deepcopy__(self, memo):
        # Query graphs hold a catalog reference; deep-copying a graph (the
        # heuristic snapshots the pre-EMST graph) must share the catalog,
        # not duplicate it.
        return self

    # -- base tables ---------------------------------------------------------

    def add_table(self, schema, statistics=None):
        """Register a base table schema (and optionally its statistics).

        Foreign keys whose target table is already in the catalog are
        validated eagerly (the referenced columns must exist and cover a
        declared key — SQL requires FK targets to be PRIMARY KEY or
        UNIQUE). Targets registered later are validated lazily by the
        dependency collector.
        """
        key = schema.name.lower()
        if key in self._tables or key in self._views:
            raise CatalogError("table or view %r already defined" % schema.name)
        for fk in getattr(schema, "foreign_keys", []):
            parent = self._tables.get(fk.ref_table.lower())
            if parent is None:
                continue
            for column in fk.ref_columns:
                if not parent.has_column(column):
                    raise CatalogError(
                        "%s on table %r: no column %r in table %r"
                        % (fk.describe(), schema.name, column, parent.name)
                    )
            if not parent.is_unique_on(fk.ref_columns):
                raise CatalogError(
                    "%s on table %r: referenced columns do not cover a "
                    "declared key of %r"
                    % (fk.describe(), schema.name, parent.name)
                )
        self._tables[key] = schema
        self._statistics[key] = statistics or TableStatistics()
        self.version += 1
        return schema

    def define_table(self, name, column_names, primary_key=None, unique_keys=None):
        """Convenience: register a table from bare column names."""
        schema = TableSchema(
            name=name,
            columns=[ColumnDef(name=c) for c in column_names],
            primary_key=tuple(primary_key) if primary_key else None,
            unique_keys=[tuple(k) for k in (unique_keys or [])],
        )
        return self.add_table(schema)

    def has_table(self, name):
        return name.lower() in self._tables

    def table(self, name):
        schema = self._tables.get(name.lower())
        if schema is None:
            raise CatalogError("unknown table %r" % name)
        return schema

    def tables(self):
        """All registered base-table schemas."""
        return list(self._tables.values())

    # -- statistics ----------------------------------------------------------

    def set_statistics(self, name, statistics):
        if name.lower() not in self._tables:
            raise CatalogError("unknown table %r" % name)
        self._statistics[name.lower()] = statistics

    def statistics(self, name):
        stats = self._statistics.get(name.lower())
        if stats is None:
            raise CatalogError("no statistics for table %r" % name)
        return stats

    # -- views ---------------------------------------------------------------

    def add_view(self, view):
        """Register a parsed ``CREATE VIEW`` statement."""
        key = view.name.lower()
        if key in self._tables or key in self._views:
            raise CatalogError("table or view %r already defined" % view.name)
        self._views[key] = view
        self.version += 1
        return view

    def drop_view(self, name):
        if self._views.pop(name.lower(), None) is not None:
            self.version += 1

    @contextlib.contextmanager
    def scoped_views(self, views):
        """Register ``views`` for the duration of the ``with`` block only.

        Statement-scoped inline views (a query script that carries its own
        CREATE VIEWs) are not durable DDL, so — unlike :meth:`add_view` /
        :meth:`drop_view` — this does **not** bump :attr:`version`: a plan
        cache keyed on the catalog version must not be invalidated by
        every statement that happens to ship helper views.
        """
        added = []
        try:
            for view in views:
                key = view.name.lower()
                if key in self._tables or key in self._views:
                    raise CatalogError(
                        "table or view %r already defined" % view.name
                    )
                self._views[key] = view
                added.append(key)
            yield
        finally:
            for key in added:
                self._views.pop(key, None)

    def has_view(self, name):
        return name.lower() in self._views

    def view(self, name):
        view = self._views.get(name.lower())
        if view is None:
            raise CatalogError("unknown view %r" % name)
        return view

    def views(self):
        return list(self._views.values())

    def resolve(self, name):
        """Return ("table", schema) or ("view", view) for ``name``."""
        key = name.lower()
        if key in self._tables:
            return ("table", self._tables[key])
        if key in self._views:
            return ("view", self._views[key])
        raise CatalogError("unknown table or view %r" % name)
