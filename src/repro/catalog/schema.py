"""Table schema objects stored in the catalog."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import CatalogError


@dataclass(frozen=True)
class ForeignKey:
    """A declared FOREIGN KEY: ``columns`` of the owning (child) table
    reference ``ref_columns`` of ``ref_table``.

    The engine does not *enforce* referential integrity on writes; the
    declaration feeds the dependency-driven reasoning in
    :mod:`repro.analysis.equivalence` (inclusion dependencies for the
    chase) and the FK-covered join elimination in
    :mod:`repro.rewrite.redundant_join`.
    """

    columns: Tuple[str, ...]
    ref_table: str
    ref_columns: Tuple[str, ...]

    def __post_init__(self):
        object.__setattr__(self, "columns", tuple(self.columns))
        object.__setattr__(self, "ref_columns", tuple(self.ref_columns))
        if len(self.columns) != len(self.ref_columns):
            raise CatalogError(
                "foreign key (%s) references %s (%s): column counts differ"
                % (
                    ", ".join(self.columns),
                    self.ref_table,
                    ", ".join(self.ref_columns),
                )
            )

    def describe(self):
        return "FOREIGN KEY (%s) REFERENCES %s (%s)" % (
            ", ".join(self.columns),
            self.ref_table,
            ", ".join(self.ref_columns),
        )


@dataclass
class ColumnDef:
    """One column of a stored table.

    ``type_name`` is advisory ("INT", "FLOAT", "STR"); the engine is
    dynamically typed and uses it only for documentation and random data
    generation. ``not_null`` records a declared NOT NULL constraint; the
    nullability dataflow analysis treats it as ground truth.
    """

    name: str
    type_name: str = "ANY"
    not_null: bool = False


@dataclass
class TableSchema:
    """Schema of a stored (base) table."""

    name: str
    columns: List[ColumnDef]
    primary_key: Optional[Tuple[str, ...]] = None
    unique_keys: List[Tuple[str, ...]] = field(default_factory=list)
    foreign_keys: List[ForeignKey] = field(default_factory=list)

    def __post_init__(self):
        seen = set()
        for column in self.columns:
            lowered = column.name.lower()
            if lowered in seen:
                raise CatalogError(
                    "duplicate column %r in table %r" % (column.name, self.name)
                )
            seen.add(lowered)
        if self.primary_key is not None:
            self.primary_key = tuple(self.primary_key)
            self._check_key(self.primary_key)
        self.unique_keys = [tuple(key) for key in self.unique_keys]
        for key in self.unique_keys:
            self._check_key(key)
        self.foreign_keys = [
            fk if isinstance(fk, ForeignKey) else ForeignKey(*fk)
            for fk in self.foreign_keys
        ]
        for fk in self.foreign_keys:
            self._check_key(fk.columns)

    def __deepcopy__(self, memo):
        # Schemas are immutable after creation; share them across graph
        # snapshots.
        return self

    def _check_key(self, key):
        names = {c.name.lower() for c in self.columns}
        for column in key:
            if column.lower() not in names:
                raise CatalogError(
                    "key column %r not in table %r" % (column, self.name)
                )

    @property
    def column_names(self):
        return [column.name for column in self.columns]

    def column_ordinal(self, name):
        """Return the 0-based position of ``name`` (case-insensitive)."""
        lowered = name.lower()
        for index, column in enumerate(self.columns):
            if column.name.lower() == lowered:
                return index
        raise CatalogError("no column %r in table %r" % (name, self.name))

    def has_column(self, name):
        lowered = name.lower()
        return any(column.name.lower() == lowered for column in self.columns)

    def not_null_columns(self):
        """Lower-cased names of columns that can never hold NULL: declared
        NOT NULL columns plus the primary-key columns."""
        out = {
            column.name.lower() for column in self.columns if column.not_null
        }
        if self.primary_key is not None:
            out.update(part.lower() for part in self.primary_key)
        return out

    def all_keys(self):
        """Yield every declared key (primary first)."""
        if self.primary_key is not None:
            yield self.primary_key
        for key in self.unique_keys:
            yield key

    def is_unique_on(self, columns):
        """True when ``columns`` (an iterable of names) covers a declared key.

        A superset of a unique key is itself duplicate-free, which is the
        inference the distinct-pullup rewrite rule relies on.
        """
        available = {name.lower() for name in columns}
        for key in self.all_keys():
            if all(part.lower() in available for part in key):
                return True
        return False
