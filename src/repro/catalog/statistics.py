"""Optimizer statistics, in the System-R style the paper's plan optimizer
[SAC+79] relies on: per-table cardinality and per-column distinct counts and
value ranges. Statistics are computed from the stored data by ``ANALYZE``
(:func:`compute_statistics`) or supplied synthetically by workload code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class ColumnStatistics:
    """Statistics for one column."""

    distinct_count: int = 1
    null_count: int = 0
    min_value: Optional[object] = None
    max_value: Optional[object] = None

    def selectivity_equals_constant(self):
        """Estimated fraction of rows matching ``col = constant``."""
        return 1.0 / max(self.distinct_count, 1)


@dataclass
class TableStatistics:
    """Statistics for one table."""

    row_count: int = 0
    columns: Dict[str, ColumnStatistics] = field(default_factory=dict)

    def column(self, name):
        """Statistics for ``name`` (case-insensitive), defaulting sensibly."""
        stats = self.columns.get(name.lower())
        if stats is not None:
            return stats
        # Unknown column: assume everything is distinct, the conservative
        # System-R default for key-like columns.
        return ColumnStatistics(distinct_count=max(self.row_count, 1))


def _comparable(values):
    """Filter to values that can be min/max'd together (single type class)."""
    non_null = [v for v in values if v is not None]
    if not non_null:
        return []
    numeric = [v for v in non_null if isinstance(v, (int, float)) and not isinstance(v, bool)]
    if len(numeric) == len(non_null):
        return numeric
    strings = [v for v in non_null if isinstance(v, str)]
    if len(strings) == len(non_null):
        return strings
    return []


def compute_statistics(schema, rows):
    """Compute :class:`TableStatistics` for ``rows`` laid out per ``schema``."""
    stats = TableStatistics(row_count=len(rows))
    for ordinal, column in enumerate(schema.columns):
        values = [row[ordinal] for row in rows]
        non_null = [v for v in values if v is not None]
        comparable = _comparable(values)
        stats.columns[column.name.lower()] = ColumnStatistics(
            distinct_count=max(len(set(non_null)), 1),
            null_count=len(values) - len(non_null),
            min_value=min(comparable) if comparable else None,
            max_value=max(comparable) if comparable else None,
        )
    return stats
