"""The AMQ/NMQ operation property registry (§4.2 and §5).

EMST does not hard-code box kinds. Each operation type declares whether a
box of that kind *accepts a magic quantifier* (AMQ: a new table reference
may be added with join semantics) or not (NMQ: the magic table can only be
*linked* and passed down to the children). A database customizer adding a
new operation registers its properties here — "a simple property to state"
— plus an optional pass-down handler; the EMST rule itself never changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import MagicError
from repro.qgm.model import BoxKind


@dataclass
class OperationProperties:
    """EMST-relevant properties of one box operation type.

    * ``amq`` — True when a magic quantifier can be inserted into the box
      (the inserted table joins the existing ones).
    * ``pass_down`` — for NMQ operations: a handler
      ``(processor, box) -> None`` that uses the box's linked magic tables
      to restrict the box's children. None means the magic restriction is
      simply dropped (always safe — magic only ever filters).
    * ``processed_by_emst`` — False for operations EMST must never touch
      (base tables).
    """

    kind: str
    amq: bool
    pass_down: Optional[Callable] = None
    processed_by_emst: bool = True


_REGISTRY = {}


def register_operation(properties):
    """Register (or replace) the EMST properties of a box kind."""
    _REGISTRY[properties.kind] = properties
    return properties


def operation_properties(kind):
    properties = _REGISTRY.get(kind)
    if properties is None:
        raise MagicError(
            "no EMST operation properties registered for box kind %r; "
            "customizers must call register_operation()" % kind
        )
    return properties


def has_operation(kind):
    return kind in _REGISTRY


def is_amq(box):
    """True when ``box`` accepts magic quantifiers (§4.2)."""
    return operation_properties(box.kind).amq


def _register_builtins():
    # A select-box is AMQ; union-, groupby-, intersect- and difference-
    # boxes are NMQ (the paper, end of §4.2). Their pass-down handlers are
    # installed by repro.magic.emst at import time to avoid a module cycle.
    register_operation(OperationProperties(kind=BoxKind.SELECT, amq=True))
    register_operation(OperationProperties(kind=BoxKind.GROUPBY, amq=False))
    register_operation(OperationProperties(kind=BoxKind.UNION, amq=False))
    register_operation(OperationProperties(kind=BoxKind.INTERSECT, amq=False))
    register_operation(OperationProperties(kind=BoxKind.EXCEPT, amq=False))
    register_operation(OperationProperties(kind=BoxKind.OUTERJOIN, amq=False))
    register_operation(
        OperationProperties(kind=BoxKind.BASE, amq=False, processed_by_emst=False)
    )


_register_builtins()
