"""Constructors for the three special box types EMST introduces (§4.1):
magic-boxes, condition-magic-boxes and supplementary-magic-boxes.

A magic box is built with ``SELECT DISTINCT`` (ENFORCE); the distinct-
pullup rule later relaxes it when duplicate-freeness is provable, which is
what allows phase 3 to merge the box away. When a second consumer
contributes bindings to the same adorned box, the magic box is *extended
into a union* in place (its object identity is preserved so every existing
reference keeps working) — this is also how magic over recursive queries
acquires its recursive magic rules.
"""

from __future__ import annotations

from repro.qgm import expr as qe
from repro.qgm.model import (
    Box,
    BoxKind,
    DistinctMode,
    MagicRole,
    OutputColumn,
    Quantifier,
    QuantifierType,
)
from repro.rewrite.common import substitute_everywhere


def relax_proven_duplicate_free(graph):
    """Relax DISTINCT enforcement on every special-role (magic,
    condition-magic, supplementary) box whose output the key fixpoint
    proves duplicate-free without the enforcement.

    The distinct-pullup rule does the same box-at-a-time during phase 2;
    this sweep runs once on the whole graph before phase 3, so that boxes
    the rule's traversal missed (notably members of recursive magic
    cycles, which the historical key derivation bailed out on) still shed
    their enforcement and become mergeable. Returns the relaxed boxes.
    """
    from repro.qgm.keys import is_duplicate_free

    relaxed = []
    for box in graph.boxes():
        if box.magic_role == MagicRole.REGULAR:
            continue
        if box.distinct != DistinctMode.ENFORCE:
            continue
        if is_duplicate_free(box, ignore_enforce=True):
            box.distinct = DistinctMode.PERMIT
            relaxed.append(box)
    return relaxed


def build_contribution(graph, box, eligible, output_specs, role=MagicRole.MAGIC):
    """Build one magic contribution: a select box over clones of the
    ``eligible`` quantifiers of ``box``, carrying the predicates of ``box``
    local to them, projecting ``output_specs`` (list of (name, expr) with
    exprs over the eligible quantifiers), with DISTINCT enforced."""
    contribution = graph.new_box(BoxKind.SELECT, graph.fresh_name("MG"))
    contribution.magic_role = role
    contribution.distinct = DistinctMode.ENFORCE
    quantifier_map = {}
    for quantifier in eligible:
        clone = Quantifier(
            name=graph.fresh_name(quantifier.name),
            qtype=QuantifierType.FOREACH,
            input_box=quantifier.input_box,
        )
        contribution.add_quantifier(clone)
        quantifier_map[quantifier] = clone
    eligible_set = set(eligible)
    for predicate in box.predicates:
        involved = {r.quantifier for r in qe.column_refs(predicate)}
        if involved and involved <= eligible_set:
            contribution.predicates.append(
                qe.remap_quantifier(predicate, quantifier_map)
            )
    contribution.columns = [
        OutputColumn(name=name, expr=qe.remap_quantifier(expr, quantifier_map))
        for name, expr in output_specs
    ]
    return contribution


def build_link_contribution(graph, magic_box, output_specs, role=MagicRole.MAGIC):
    """Build a contribution that derives a child's magic table from the
    parent's linked magic table (Example 4.14: m_mgrSal is a single
    quantifier over m_avgMgrSal). ``output_specs`` maps (name, magic column
    name of ``magic_box``)."""
    contribution = graph.new_box(BoxKind.SELECT, graph.fresh_name("MG"))
    contribution.magic_role = role
    contribution.distinct = DistinctMode.ENFORCE
    quantifier = Quantifier(
        name=graph.fresh_name("m"),
        qtype=QuantifierType.FOREACH,
        input_box=magic_box,
    )
    contribution.add_quantifier(quantifier)
    contribution.columns = [
        OutputColumn(name=name, expr=quantifier.ref(source))
        for name, source in output_specs
    ]
    return contribution


def extend_magic(graph, magic_box, contribution):
    """Add ``contribution`` as another source of ``magic_box`` bindings,
    converting the magic box into a union in place when necessary."""
    if magic_box is contribution:
        return magic_box
    if magic_box.kind != BoxKind.UNION:
        # Move the current content into a fresh branch box and turn the
        # magic box itself into a union, preserving its identity.
        branch = graph.new_box(BoxKind.SELECT, graph.fresh_name(magic_box.name + "_b"))
        branch.magic_role = magic_box.magic_role
        branch.distinct = DistinctMode.PRESERVE
        branch.columns = magic_box.columns
        branch.predicates = magic_box.predicates
        branch.quantifiers = magic_box.quantifiers
        for quantifier in branch.quantifiers:
            quantifier.parent_box = branch
        magic_box.kind = BoxKind.UNION
        magic_box.columns = [OutputColumn(name=c.name) for c in branch.columns]
        magic_box.predicates = []
        magic_box.quantifiers = []
        magic_box.distinct = DistinctMode.ENFORCE
        magic_box.add_quantifier(
            Quantifier(
                name=graph.fresh_name("u"),
                qtype=QuantifierType.FOREACH,
                input_box=branch,
            )
        )
    magic_box.add_quantifier(
        Quantifier(
            name=graph.fresh_name("u"),
            qtype=QuantifierType.FOREACH,
            input_box=contribution,
        )
    )
    return magic_box


def build_supplementary_box(graph, box, prefix, context):
    """Move the ``prefix`` quantifiers of ``box`` (and the predicates local
    to them) into a new supplementary-magic-box shared between ``box`` and
    the magic boxes derived from it (Algorithm 4.2 step 4a, Example 4.11).

    Returns the quantifier over the new box, inserted in ``box`` at the
    position of the first moved quantifier.
    """
    supplementary = graph.new_box(BoxKind.SELECT, graph.fresh_name("SM_" + box.name))
    supplementary.magic_role = MagicRole.SUPPLEMENTARY
    supplementary.distinct = DistinctMode.PRESERVE

    prefix_set = set(prefix)
    position = min(box.quantifiers.index(q) for q in prefix)
    for quantifier in prefix:
        box.remove_quantifier(quantifier)
        quantifier.parent_box = supplementary
        supplementary.quantifiers.append(quantifier)

    moved_predicates = []
    kept = []
    for predicate in box.predicates:
        involved = {r.quantifier for r in qe.column_refs(predicate)}
        if involved and involved <= prefix_set:
            moved_predicates.append(predicate)
        else:
            kept.append(predicate)
    box.predicates = kept
    supplementary.predicates = moved_predicates

    # The supplementary box outputs every column of the moved quantifiers
    # still referenced anywhere in the graph (including by ``box`` itself
    # and by correlated descendants).
    needed = []
    seen = set()
    for other in graph.boxes():
        if other is supplementary:
            continue
        for expression in other.all_expressions():
            for ref in qe.column_refs(expression):
                if ref.quantifier in prefix_set:
                    key = (id(ref.quantifier), ref.column.lower())
                    if key not in seen:
                        seen.add(key)
                        needed.append((ref.quantifier, ref.column))
    used_names = set()
    columns = []
    mapping_table = {}
    for quantifier, column in needed:
        name = column
        if name.lower() in used_names:
            name = "%s_%s" % (quantifier.name, column)
        used_names.add(name.lower())
        columns.append(OutputColumn(name=name, expr=quantifier.ref(column)))
        mapping_table[(quantifier, column.lower())] = name
    if not columns:
        # Nothing referenced (pure filter prefix): expose one column anyway.
        first = prefix[0]
        name = first.input_box.columns[0].name
        columns.append(OutputColumn(name=name, expr=first.ref(name)))
    supplementary.columns = columns

    over = Quantifier(
        name=graph.fresh_name("sm"),
        qtype=QuantifierType.FOREACH,
        input_box=supplementary,
    )
    over.parent_box = box
    box.quantifiers.insert(position, over)

    def mapping(ref):
        target = mapping_table.get((ref.quantifier, ref.column.lower()))
        if target is not None:
            return qe.QColRef(quantifier=over, column=target)
        return None

    # Redirect references from everywhere except the supplementary box
    # itself (whose expressions legitimately reference the moved
    # quantifiers).
    from repro.rewrite.common import substitute_in_box

    for other in graph.boxes():
        if other is supplementary:
            continue
        substitute_in_box(other, mapping)

    # Keep the join-order oracle coherent for ``box``.
    order = context.join_orders.get(box.box_id)
    if order:
        moved_names = {q.name for q in prefix}
        new_order = [over.name] + [n for n in order if n not in moved_names]
        context.join_orders[box.box_id] = new_order
    return over
