"""Predicate classification for adornment — Algorithm 4.1 (adorn-box).

For one quantifier ``q`` of the box being processed, classify the box's
predicates against the *eligible* quantifiers (those that may pass
information into ``q``: the ones preceding it in the join order, plus magic
quantifiers):

* **dependent equality** ``q.col = <expr over eligible>`` — binds ``col``
  (letter ``b``); the value set comes through the magic table,
* **dependent condition** — any other comparison connecting ``q`` to
  eligible quantifiers — conditions ``q``'s columns (letter ``c``); pushed
  via a condition-magic-box with semi-join semantics (the ground variant of
  [MFPR90b]: tuples stay ground),
* **local predicate** — references ``q`` only (constants otherwise) —
  pushed directly into the adorned copy (equality gives ``b``, others
  ``c``),
* anything touching non-eligible quantifiers or correlated references is
  left untouched in the box.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.qgm import expr as qe
from repro.qgm.model import BoxKind
from repro.magic.adornment import build_adornment


@dataclass
class QuantifierAdornment:
    """The classification result for one quantifier."""

    #: (child output column name lower, source expr over eligible) pairs
    #: from dependent equalities.
    bound: List[Tuple[str, qe.QExpr]] = field(default_factory=list)
    #: Dependent conditions: the original predicates (kept in the box) plus
    #: the child columns they condition.
    conditions: List[qe.QExpr] = field(default_factory=list)
    condition_columns: List[str] = field(default_factory=list)
    #: Local predicates (q + constants only) to push into the copy.
    local_predicates: List[qe.QExpr] = field(default_factory=list)
    local_bound_columns: List[str] = field(default_factory=list)
    local_condition_columns: List[str] = field(default_factory=list)

    @property
    def has_dependent(self):
        return bool(self.bound or self.conditions)

    @property
    def is_trivial(self):
        return not (self.bound or self.conditions or self.local_predicates)

    def adornment_for(self, child):
        bound = {name for name, _ in self.bound} | set(self.local_bound_columns)
        conditioned = set(self.condition_columns) | set(self.local_condition_columns)
        return build_adornment(child, bound, conditioned - bound)


def _columns_through(refs, quantifier):
    return [r.column.lower() for r in refs if r.quantifier is quantifier]


def _groupby_restrictable(child, columns):
    """A groupby box can only pass restrictions on group-key outputs."""
    for name in columns:
        column = child.column(name)
        if isinstance(column.expr, qe.QAggregate):
            return False
    return True


def classify_quantifier(box, quantifier, eligible):
    """Classify ``box``'s predicates with respect to ``quantifier``.

    ``eligible`` is the set of quantifiers allowed to pass information into
    ``quantifier``. Returns a :class:`QuantifierAdornment`.
    """
    child = quantifier.input_box
    local = set(box.quantifiers)
    result = QuantifierAdornment()

    for predicate in box.predicates:
        refs = qe.column_refs(predicate)
        involved = {r.quantifier for r in refs}
        if quantifier not in involved:
            continue
        others = involved - {quantifier}
        if any(q not in eligible and q in local for q in others):
            continue  # depends on a later quantifier: not usable
        if any(q not in local and q not in eligible for q in others):
            continue  # correlated reference: not usable for adornment
        q_columns = _columns_through(refs, quantifier)
        if child.kind == BoxKind.GROUPBY and not _groupby_restrictable(
            child, q_columns
        ):
            continue

        if not others:
            # Local predicate: q and constants only.
            bound_column = _local_equality_column(predicate, quantifier)
            if bound_column is not None:
                result.local_bound_columns.append(bound_column)
            else:
                result.local_condition_columns.extend(q_columns)
            result.local_predicates.append(predicate)
            continue

        # Dependent predicate.
        pair = _dependent_equality(predicate, quantifier)
        if pair is not None:
            result.bound.append(pair)
        else:
            result.conditions.append(predicate)
            result.condition_columns.extend(q_columns)

    # Deduplicate bound columns (keep the first source per column).
    seen = set()
    deduped = []
    for name, source in result.bound:
        if name not in seen:
            seen.add(name)
            deduped.append((name, source))
    result.bound = deduped
    return result


def local_equality_parts(predicate, quantifier):
    """``q.col = constant-expr`` (or flipped) → (column name, const expr)."""
    if not (isinstance(predicate, qe.QBinary) and predicate.op == "="):
        return None
    for side, other in (
        (predicate.left, predicate.right),
        (predicate.right, predicate.left),
    ):
        if (
            isinstance(side, qe.QColRef)
            and side.quantifier is quantifier
            and not qe.column_refs(other)
        ):
            return (side.column.lower(), other)
    return None


def _local_equality_column(predicate, quantifier):
    parts = local_equality_parts(predicate, quantifier)
    return parts[0] if parts else None


def _dependent_equality(predicate, quantifier):
    """``q.col = <expr over eligible>`` → (column name, source expr)."""
    if not (isinstance(predicate, qe.QBinary) and predicate.op == "="):
        return None
    for side, other in (
        (predicate.left, predicate.right),
        (predicate.right, predicate.left),
    ):
        if not (isinstance(side, qe.QColRef) and side.quantifier is quantifier):
            continue
        other_refs = qe.column_refs(other)
        if not other_refs:
            continue  # local constant equality, handled elsewhere
        if any(r.quantifier is quantifier for r in other_refs):
            continue
        return (side.column.lower(), other)
    return None


def predicate_signature(predicate, quantifier):
    """A canonical string for a local predicate pushed into an adorned copy,
    with the quantifier name normalised — part of the adorned-copy cache key
    so that copies pushed with different constants are kept distinct."""

    def render(node):
        if isinstance(node, qe.QColRef):
            name = "$q" if node.quantifier is quantifier else node.quantifier.name
            return "%s.%s" % (name, node.column.lower())
        if isinstance(node, qe.QLiteral):
            return repr(node.value)
        if isinstance(node, qe.QBinary):
            return "(%s %s %s)" % (render(node.left), node.op, render(node.right))
        if isinstance(node, qe.QUnary):
            return "%s(%s)" % (node.op, render(node.operand))
        if isinstance(node, qe.QIsNull):
            return "isnull(%s,%s)" % (render(node.operand), node.negated)
        if isinstance(node, qe.QLike):
            return "like(%s,%s,%s)" % (
                render(node.operand),
                render(node.pattern),
                node.negated,
            )
        if isinstance(node, qe.QFunc):
            return "%s(%s)" % (node.name, ",".join(render(a) for a in node.args))
        if isinstance(node, qe.QCase):
            parts = [
                "%s:%s" % (render(c), render(v)) for c, v in node.branches
            ]
            if node.default is not None:
                parts.append(render(node.default))
            return "case(%s)" % ";".join(parts)
        return str(node)

    return render(predicate)
