"""The EMST rewrite rule — Algorithm 4.2 (magic-process).

EMST processes one QGM box at a time, in any traversal order, combining
adornment and magic transformation in a single step (§6: "it creates magic
tables concurrently while adorning the original query"):

1. walk the box's foreach quantifiers in the join order chosen by the plan
   optimizer (magic quantifiers first),
2. classify the box's predicates per quantifier (adorn-box, Algorithm 4.1),
3. re-point the quantifier at an adorned copy of the child box (cached per
   (box, adornment) — or transformed in place when the child has a single
   use),
4. when profitable, factor the eligible prefix into a supplementary-
   magic-box shared by the box and the magic boxes derived from it,
5. build a magic-box (or condition-magic-box when ``c`` adornments are
   present) and attach it: inserted as a magic quantifier when the child is
   AMQ, linked when the child is NMQ (to be passed down to the child's
   children when EMST fires on the child),
6. decorrelate existential/anti subqueries by *lifting* their equality
   correlation predicates into output columns (adding group keys through
   groupby boxes, per the magic/aggregate rules of [MPR90]) and then
   restricting the subquery through a magic box like any other child.

Magic restriction uses a foreach quantifier plus equality predicates when
the adornment is pure ``b`` (safe for duplicates because magic tables are
DISTINCT and the join is on all of their columns), and an existential
(semi-join) quantifier when conditions are involved — this is how the
ground magic-sets variant [MFPR90b] keeps all tuples ground while pushing
non-equality predicates.
"""

from __future__ import annotations

from repro.errors import MagicError
from repro.qgm import expr as qe
from repro.qgm.clone import clone_box
from repro.qgm.model import BoxKind, MagicRole, Quantifier, QuantifierType
from repro.rewrite.common import in_own_subtree, total_uses
from repro.rewrite.rule import RewriteRule
from repro.magic.adorn import (
    QuantifierAdornment,
    classify_quantifier,
    predicate_signature,
)
from repro.magic.adornment import all_free, is_all_free
from repro.magic.magic_boxes import (
    build_contribution,
    build_link_contribution,
    build_supplementary_box,
    extend_magic,
)
from repro.magic.properties import (
    has_operation,
    is_amq,
    operation_properties,
)


class EmstRule(RewriteRule):
    """The extended magic-sets transformation as a query-rewrite rule.

    The constructor flags select the transformation variant, for the
    ablations the paper discusses:

    * ``use_supplementary`` — off reverts to plain magic sets [BMSU86]:
      the eligible prefix is *cloned* into each magic box instead of being
      factored into a shared supplementary table [BR91],
    * ``push_conditions`` — off reverts to equality-only magic (no ``c``
      adornments / ground condition magic [MFPR90b]),
    * ``decorrelate_subqueries`` — off leaves E/A/S subqueries correlated.
    """

    name = "emst"
    phases = frozenset({2})
    priority = 10

    def __init__(
        self,
        use_supplementary=True,
        push_conditions=True,
        decorrelate_subqueries=True,
        sip_reorder=True,
    ):
        self.use_supplementary = use_supplementary
        self.push_conditions = push_conditions
        self.decorrelate_subqueries = decorrelate_subqueries
        #: Refine the plan optimizer's join order by following equality
        #: connectivity from the magic quantifiers (see _ordered_foreach).
        self.sip_reorder = sip_reorder

    def applies_to(self, box, context):
        if box.emst_done or box.is_special:
            return False
        if not has_operation(box.kind):
            return False
        return operation_properties(box.kind).processed_by_emst

    def apply(self, box, context):
        # The cursor's sweep list is computed at sweep start; an earlier
        # firing may have re-pointed consumers at an adorned copy, leaving
        # this box unreachable. Processing a dead box would pollute the
        # shared adorned-copy/magic caches with unrestricted contributions.
        if not any(box is live for live in context.graph.boxes()):
            box.emst_done = True
            return False
        MagicProcessor(context, options=self).process(box)
        box.emst_done = True
        return True


class _DefaultOptions:
    use_supplementary = True
    push_conditions = True
    decorrelate_subqueries = True
    sip_reorder = True


class MagicProcessor:
    """Applies magic-process to one box."""

    def __init__(self, context, options=None):
        self.context = context
        self.graph = context.graph
        self.options = options or _DefaultOptions()

    # -- entry ---------------------------------------------------------------

    def process(self, box):
        if box.adornment is None:
            box.adornment = all_free(len(box.columns))
        properties = operation_properties(box.kind)
        if properties.amq:
            self._process_amq(box)
        elif properties.pass_down is not None:
            properties.pass_down(self, box)
        # An NMQ operation without a pass-down handler simply drops the
        # restriction — always safe, magic only ever filters.

    # -- AMQ (select) boxes ----------------------------------------------------

    def _ordered_foreach(self, box):
        """The sip (sideways-information-passing) order for processing.

        Starts from the plan optimizer's join order, pins magic quantifiers
        first, and then greedily prefers quantifiers connected by an
        equality predicate to the already-eligible set — so a binding that
        arrived through the box's own magic table keeps flowing even when
        the pre-magic join order would have visited an unbound quantifier
        first (the pre-magic planner cannot know which quantifiers magic
        will make cheap).
        """
        foreach = box.foreach_quantifiers()
        magic = [q for q in foreach if q.is_magic]
        regular = [q for q in foreach if not q.is_magic]
        order = self.context.join_orders.get(box.box_id)
        if order:
            by_name = {q.name: q for q in regular}
            ordered = [by_name[n] for n in order if n in by_name]
            ordered += [q for q in regular if q not in set(ordered)]
            regular = ordered

        if not self.options.sip_reorder:
            return magic + regular

        local = set(box.quantifiers)
        connections = []  # (quantifier, quantifier) pairs joined by equality
        for predicate in box.predicates:
            if not (isinstance(predicate, qe.QBinary) and predicate.op == "="):
                continue
            involved = {
                r.quantifier
                for r in qe.column_refs(predicate)
                if r.quantifier in local
            }
            if len(involved) == 2:
                connections.append(tuple(involved))

        result = list(magic)
        remaining = list(regular)
        eligible = set(magic)
        while remaining:
            choice = None
            for candidate in remaining:
                if any(
                    (a is candidate and b in eligible)
                    or (b is candidate and a in eligible)
                    for a, b in connections
                ):
                    choice = candidate
                    break
            if choice is None:
                choice = remaining[0]
            remaining.remove(choice)
            eligible.add(choice)
            result.append(choice)
        return result

    def _process_amq(self, box):
        eligible = []
        for quantifier in self._ordered_foreach(box):
            if quantifier.is_magic:
                eligible.append(quantifier)
                continue
            eligible = self._process_child(box, quantifier, eligible)
            if quantifier in box.quantifiers:
                eligible.append(quantifier)
        for quantifier in list(box.subquery_quantifiers()):
            self._process_subquery(box, quantifier, eligible)

    def _process_child(self, box, quantifier, eligible):
        """Steps 1-4 of Algorithm 4.2 for one foreach quantifier.

        Returns the (possibly rewritten) eligible prefix: building a
        supplementary box replaces the prefix by a single quantifier.
        """
        child = quantifier.input_box
        if child.kind == BoxKind.BASE or child.is_special:
            # "No action is taken since all referenced tables are either
            # magic tables or stored tables."
            return eligible
        if not has_operation(child.kind):
            return eligible

        info = classify_quantifier(box, quantifier, set(eligible))
        if not is_amq(child) or not self.options.push_conditions:
            # Conditions cannot be carried through an NMQ link in the plain
            # bcf scheme (the paper notes complex NMQ operations need the
            # refined adornments of [Mum91]); keep only equality bindings.
            info.conditions = []
            info.condition_columns = []
        self._route_unpushable_locals_through_magic(box, quantifier, info)
        if info.is_trivial:
            return eligible

        # Step 4a: supplementary-magic-box construction, when desirable.
        if (
            info.has_dependent
            and self.options.use_supplementary
            and self._supplementary_desirable(box, eligible)
        ):
            over = build_supplementary_box(self.graph, box, eligible, self.context)
            eligible = [over]
            info = classify_quantifier(box, quantifier, set(eligible))
            if not is_amq(child) or not self.options.push_conditions:
                info.conditions = []
                info.condition_columns = []
            if info.is_trivial:
                return eligible

        adornment = info.adornment_for(child)
        if is_all_free(adornment):
            return eligible

        # Step 4b: the magic contribution for this call site.
        contribution = None
        bound_pairs = []
        condition_templates = []
        if info.has_dependent:
            contribution, bound_pairs, condition_templates = self._build_magic(
                box, info, eligible
            )

        # Step 3 + 4c: adorned copy (or in-place) with the magic attached.
        self._attach_restriction(
            box, quantifier, adornment, info, contribution, bound_pairs,
            condition_templates,
        )
        return eligible

    def _route_unpushable_locals_through_magic(self, box, quantifier, info):
        """A local constant equality that cannot be pushed into the child
        structurally (e.g. the child is a *recursive* union, where
        predicate pushdown would change the fixpoint) becomes a constant
        magic binding instead — the classic magic *seed*. The predicate
        stays in the box (harmless after restriction)."""
        from repro.magic.adorn import local_equality_parts
        from repro.rewrite.pushdown import can_push_into_child

        for predicate in list(info.local_predicates):
            parts = local_equality_parts(predicate, quantifier)
            if parts is None:
                continue
            if can_push_into_child(self.graph, predicate, quantifier):
                continue
            column, constant = parts
            info.local_predicates.remove(predicate)
            if all(existing != column for existing, _ in info.bound):
                info.bound.append((column, constant))

    def _supplementary_desirable(self, box, eligible):
        """The paper's desirability test (step 4a): not before the magic
        quantifier or the first non-magic quantifier, and not when the box
        would hold a single quantifier and no predicates."""
        non_magic = [q for q in eligible if not q.is_magic]
        if not non_magic:
            return False
        if any(q.input_box.magic_role == MagicRole.SUPPLEMENTARY for q in eligible):
            return False  # the prefix is already factored
        eligible_set = set(eligible)
        predicate_count = 0
        for predicate in box.predicates:
            involved = {r.quantifier for r in qe.column_refs(predicate)}
            if involved and involved <= eligible_set:
                predicate_count += 1
        return len(eligible) > 1 or predicate_count > 0

    # -- magic construction -----------------------------------------------------

    def _build_magic(self, box, info, eligible):
        """Build the magic (or condition-magic) contribution box.

        Returns (contribution, bound_pairs, condition_templates) where
        ``bound_pairs`` is [(child column, magic column)] sorted by child
        column for deterministic positional alignment across consumers, and
        ``condition_templates`` is [(predicate, grounding map: id(ref) →
        magic column name)] for dependent conditions.
        """
        output_specs = []
        bound_pairs = []
        for child_column, source in sorted(info.bound, key=lambda pair: pair[0]):
            magic_column = "mc_%s" % child_column
            output_specs.append((magic_column, source))
            bound_pairs.append((child_column, magic_column))

        condition_templates = []
        eligible_set = set(eligible)
        ground_index = 0
        for predicate in info.conditions:
            grounding = {}
            for ref in qe.column_refs(predicate):
                if ref.quantifier in eligible_set:
                    magic_column = "gc_%d" % ground_index
                    ground_index += 1
                    output_specs.append((magic_column, ref))
                    grounding[id(ref)] = magic_column
            condition_templates.append((predicate, grounding))

        role = MagicRole.CONDITION_MAGIC if info.conditions else MagicRole.MAGIC
        contribution = build_contribution(
            self.graph, box, eligible, output_specs, role=role
        )
        return contribution, bound_pairs, condition_templates

    # -- attaching a restriction to a child -----------------------------------------

    def _attach_restriction(
        self,
        box,
        quantifier,
        adornment,
        info,
        contribution,
        bound_pairs,
        condition_templates,
    ):
        """Make the child adorned and restricted: re-point ``quantifier`` at
        an adorned copy (cache-aware) or transform the child in place, push
        the local predicates, and attach the magic contribution."""
        child = quantifier.input_box
        graph = self.graph

        local_signature = tuple(
            sorted(predicate_signature(p, quantifier) for p in info.local_predicates)
        )
        condition_signature = tuple(
            sorted(predicate_signature(p, quantifier) for p in info.conditions)
        )
        # Key the cache on the *origin* box: an adorned copy of a recursive
        # box asking for its own adornment must resolve to itself, closing
        # the cycle (this is what makes recursive magic terminate).
        origin = child.properties.get("adorned_origin", child.box_id)
        cache_key = (origin, str(adornment), local_signature, condition_signature)

        cached = graph.adorned_copies.get(cache_key)
        if cached is not None:
            quantifier.input_box = cached
            self._remove_pushed_locals(box, info, quantifier, cached)
            if contribution is not None:
                existing = self._magic_box_of(cached)
                if existing is None:
                    raise MagicError(
                        "cached adorned copy %r lost its magic box" % cached.name
                    )
                extend_magic(graph, existing, contribution)
            return

        single_use = (
            total_uses(graph, child) == 1
            and not in_own_subtree(child)
            and child.adornment is None
        )
        if single_use:
            target = child
        else:
            target, quantifier_map = clone_box(
                graph, child, name="%s^%s" % (child.name, adornment)
            )
            self._inherit_join_orders(quantifier_map)
            quantifier.input_box = target
            target.properties["adorned_origin"] = origin
            graph.adorned_copies[cache_key] = target
        target.adornment = adornment

        # Push the local predicates into the adorned child.
        self._push_locals(box, info, quantifier, target)

        if contribution is None:
            return

        if is_amq(target):
            self._insert_magic_quantifier(
                target, contribution, bound_pairs, condition_templates, quantifier
            )
        else:
            contribution.properties["bound_columns"] = [
                child_column for child_column, _ in bound_pairs
            ]
            if target.linked_magic:
                extend_magic(graph, target.linked_magic[0], contribution)
            else:
                target.linked_magic.append(contribution)

    def _insert_magic_quantifier(
        self, target, contribution, bound_pairs, condition_templates, consumer_q
    ):
        """Insert a magic quantifier into an AMQ child copy: foreach for
        pure-b adornments, existential (ground semi-join) when conditions
        are present."""
        qtype = (
            QuantifierType.EXISTENTIAL if condition_templates else QuantifierType.FOREACH
        )
        magic_quantifier = Quantifier(
            name=self.graph.fresh_name("m_%s" % target.name.split("^")[0].lower()),
            qtype=qtype,
            input_box=contribution,
            is_magic=True,
        )
        magic_quantifier.parent_box = target
        target.quantifiers.insert(0, magic_quantifier)

        for child_column, magic_column in bound_pairs:
            inner = target.column(child_column).expr
            target.predicates.append(
                qe.QBinary(
                    op="=",
                    left=magic_quantifier.ref(magic_column),
                    right=inner,
                )
            )
        for predicate, grounding in condition_templates:
            target.predicates.append(
                self._ground_condition(
                    predicate, grounding, consumer_q, target, magic_quantifier
                )
            )
        order = self.context.join_orders.get(target.box_id)
        if order is not None:
            self.context.join_orders[target.box_id] = [magic_quantifier.name] + order

    def _ground_condition(self, predicate, grounding, consumer_q, target, magic_q):
        """Rewrite a dependent condition into the child copy: references
        through the consumer quantifier map to the child's defining
        expressions, references to eligible quantifiers map to the magic
        box's grounding columns."""

        def mapping(ref):
            magic_column = grounding.get(id(ref))
            if magic_column is not None:
                return magic_q.ref(magic_column)
            if ref.quantifier is consumer_q:
                return target.column(ref.column).expr
            return None

        return qe.substitute_refs(predicate, mapping)

    def _push_locals(self, box, info, quantifier, target):
        """Push the classified local predicates into the adorned child and
        drop them from the box (they are fully applied below)."""
        from repro.rewrite.pushdown import push_predicate_into_child

        for predicate in info.local_predicates:
            if predicate not in box.predicates:
                continue
            if push_predicate_into_child(self.graph, predicate, quantifier):
                box.predicates.remove(predicate)

    def _remove_pushed_locals(self, box, info, quantifier, target):
        """On a cache hit the local predicates are already inside the copy;
        just drop them from the box."""
        for predicate in info.local_predicates:
            if predicate in box.predicates:
                box.predicates.remove(predicate)

    def _magic_box_of(self, target):
        if is_amq(target):
            for quantifier in target.quantifiers:
                if quantifier.is_magic:
                    return quantifier.input_box
            return None
        if target.linked_magic:
            return target.linked_magic[0]
        return None

    def _inherit_join_orders(self, quantifier_map):
        """Adorned copies inherit the join orders chosen for the boxes they
        were cloned from (mapped onto the cloned quantifier names)."""
        by_box = {}
        for old, new in quantifier_map.items():
            if old.parent_box is None or new.parent_box is None:
                continue
            by_box.setdefault(id(old.parent_box), (old.parent_box, new.parent_box, {}))
            by_box[id(old.parent_box)][2][old.name] = new.name
        for old_box, new_box, name_map in by_box.values():
            order = self.context.join_orders.get(old_box.box_id)
            if order:
                self.context.join_orders[new_box.box_id] = [
                    name_map.get(name, name) for name in order
                ]

    # -- subquery decorrelation --------------------------------------------------------

    def _process_subquery(self, box, quantifier, eligible):
        """Magic decorrelation of E/A/S subqueries: lift equality
        correlation predicates into output columns of the subquery, then
        restrict the subquery through a magic box like any other child.

        A decorrelated SCALAR subquery computes one row *per binding* (for
        an aggregate: grouped by the lifted correlation columns, the
        [MPR90] construction); its lifted equalities become *selector*
        predicates on the quantifier, preserving the empty-means-NULL
        semantics per outer row.
        """
        if not self.options.decorrelate_subqueries:
            return
        if quantifier.qtype == QuantifierType.ANTI and quantifier.null_aware:
            return  # NOT IN must observe inner NULLs; magic would drop them
        child = quantifier.input_box
        if child.kind == BoxKind.BASE or child.is_special:
            return
        if not has_operation(child.kind):
            return
        if total_uses(self.graph, child) != 1 or in_own_subtree(child):
            return

        lifted = self._lift_correlations(box, quantifier, set(eligible))

        if quantifier.qtype == QuantifierType.SCALAR:
            if not lifted:
                return
            quantifier.decorrelated = True
            info = QuantifierAdornment()
            seen = set()
            for column, _op, outer in lifted:
                if column not in seen:
                    seen.add(column)
                    info.bound.append((column, outer))
        else:
            info = classify_quantifier(box, quantifier, set(eligible))
            if not is_amq(child):
                info.conditions = []
                info.condition_columns = []
            if info.is_trivial or not info.has_dependent:
                return
        adornment = info.adornment_for(child)
        if is_all_free(adornment):
            return
        contribution, bound_pairs, condition_templates = self._build_magic(
            box, info, eligible
        )
        self._attach_restriction(
            box, quantifier, adornment, info, contribution, bound_pairs,
            condition_templates,
        )

    def _lift_correlations(self, box, quantifier, eligible):
        """Find correlation predicates in the subquery's subtree that
        reference ``box``'s eligible quantifiers, lift their inner side to
        the subquery's output (adding group keys through groupby boxes) and
        re-attach them in ``box``: as ordinary predicates for E/A
        quantifiers, as *selector* predicates for SCALAR ones.

        Returns the list of lifted (output column, op, outer expr) triples.
        """
        child = quantifier.input_box
        scalar = quantifier.qtype == QuantifierType.SCALAR
        lifted = []
        for inner_box, path in self._correlation_paths(child):
            for predicate in list(inner_box.predicates):
                split = self._split_correlation(predicate, inner_box, box, eligible)
                if split is None:
                    continue
                inner_expr, op, outer_expr = split
                if op != "=" and any(
                    step.kind == BoxKind.GROUPBY for step, _ in path
                ):
                    continue  # non-equality cannot cross a groupby
                if scalar and op != "=":
                    continue  # selector semantics requires equality
                column = self._lift_expression(inner_expr, inner_box, path)
                if column is None:
                    continue
                inner_box.predicates.remove(predicate)
                new_predicate = qe.QBinary(
                    op=op, left=quantifier.ref(column), right=outer_expr
                )
                if scalar:
                    quantifier.selector_predicates.append(new_predicate)
                else:
                    box.predicates.append(new_predicate)
                lifted.append((column, op, outer_expr))
        return lifted

    def _correlation_paths(self, child):
        """Yield (descendant box, path) pairs where path is the chain of
        (box, quantifier) hops from ``child`` down to the descendant —
        following only single-use foreach hops through liftable box kinds."""
        yield (child, [])
        stack = [(child, [])]
        seen = {id(child)}
        while stack:
            box, path = stack.pop()
            if box.kind not in (BoxKind.SELECT, BoxKind.GROUPBY):
                continue
            for quantifier in box.foreach_quantifiers():
                inner = quantifier.input_box
                if id(inner) in seen:
                    continue
                if inner.kind not in (BoxKind.SELECT, BoxKind.GROUPBY):
                    continue
                if total_uses(self.graph, inner) != 1:
                    continue
                seen.add(id(inner))
                extended = path + [(box, quantifier)]
                yield (inner, extended)
                stack.append((inner, extended))

    def _split_correlation(self, predicate, inner_box, outer_box, eligible):
        """Decompose a correlation predicate into (inner expr, op, outer
        expr); None when the shape is not liftable."""
        if not (isinstance(predicate, qe.QBinary) and qe.is_comparison(predicate)):
            return None
        outer_quantifiers = set(outer_box.quantifiers)
        inner_quantifiers = set(inner_box.quantifiers)
        for side, other, op in (
            (predicate.left, predicate.right, predicate.op),
            (predicate.right, predicate.left, _flip(predicate.op)),
        ):
            side_refs = qe.column_refs(side)
            other_refs = qe.column_refs(other)
            if not side_refs or not other_refs:
                continue
            if not all(r.quantifier in inner_quantifiers for r in side_refs):
                continue
            if not all(
                r.quantifier in outer_quantifiers and r.quantifier in eligible
                for r in other_refs
            ):
                continue
            return (side, op, other)
        return None

    def _lift_expression(self, inner_expr, inner_box, path):
        """Add ``inner_expr`` as an output column of ``inner_box`` and
        thread it up through ``path`` to the subquery's top box. Returns the
        top-level output column name."""
        from repro.qgm.model import OutputColumn

        name = self._fresh_column(inner_box)
        inner_box.columns.append(OutputColumn(name=name, expr=inner_expr))
        if inner_box.kind == BoxKind.GROUPBY:
            inner_box.group_keys.append(inner_expr)
        current_name = name
        for step_box, step_quantifier in reversed(path):
            lifted = qe.QColRef(quantifier=step_quantifier, column=current_name)
            current_name = self._fresh_column(step_box)
            step_box.columns.append(OutputColumn(name=current_name, expr=lifted))
            if step_box.kind == BoxKind.GROUPBY:
                step_box.group_keys.append(lifted)
        return current_name

    def _fresh_column(self, box):
        index = 0
        while True:
            name = "corr%d" % index
            if not box.has_column(name):
                return name
            index += 1


# -- NMQ pass-down handlers -------------------------------------------------------


def pass_down_groupby(processor, box):
    """Use the magic table linked to a groupby box to restrict its input
    (Example 4.3/4.6: the implied predicate pushes into the child)."""
    if not box.linked_magic:
        return
    magic = box.linked_magic[0]
    bound_columns = magic.properties.get("bound_columns", [])
    if not bound_columns:
        return
    inner = box.quantifiers[0]
    if inner.input_box.kind == BoxKind.BASE or inner.input_box.is_special:
        return  # stored tables take no magic (plan optimization handles them)
    specs = []
    bound_pairs = []
    for position, box_column in enumerate(bound_columns):
        defining = box.column(box_column).expr
        if isinstance(defining, qe.QAggregate):
            continue  # cannot restrict through an aggregate
        if not isinstance(defining, qe.QColRef) or defining.quantifier is not inner:
            continue
        child_column = defining.column.lower()
        magic_column = magic.columns[position].name
        specs.append(("mc_%s" % child_column, magic_column))
        bound_pairs.append((child_column, "mc_%s" % child_column))
    if not specs:
        return
    bound_pairs.sort(key=lambda pair: pair[0])
    specs.sort(key=lambda pair: pair[0])
    contribution = build_link_contribution(processor.graph, magic, specs)
    info = _LinkInfo(bound_pairs)
    adornment = info.adornment_for(inner.input_box)
    processor._attach_restriction(
        box, inner, adornment, info, contribution, bound_pairs, []
    )


def pass_down_setop(processor, box):
    """Push the linked magic table of a set-operation box into each of its
    inputs (for EXCEPT both the outer and the inner table: §4.3)."""
    if not box.linked_magic:
        return
    magic = box.linked_magic[0]
    bound_columns = magic.properties.get("bound_columns", [])
    if not bound_columns:
        return
    positions = [box.column_ordinal(name) for name in bound_columns]
    for branch in list(box.quantifiers):
        child = branch.input_box
        if child.kind == BoxKind.BASE or child.is_special:
            continue
        specs = []
        bound_pairs = []
        for bound_position, position in enumerate(positions):
            child_column = child.columns[position].name.lower()
            magic_column = magic.columns[bound_position].name
            specs.append(("mc_%s" % child_column, magic_column))
            bound_pairs.append((child_column, "mc_%s" % child_column))
        bound_pairs.sort(key=lambda pair: pair[0])
        specs.sort(key=lambda pair: pair[0])
        contribution = build_link_contribution(processor.graph, magic, specs)
        info = _LinkInfo(bound_pairs)
        adornment = info.adornment_for(child)
        processor._attach_restriction(
            box, branch, adornment, info, contribution, bound_pairs, []
        )


def pass_down_outerjoin(processor, box):
    """Push the linked magic table of an outer-join box into its *preserved*
    (left) side only.

    Restricting the preserved side is always sound: a left row outside the
    magic set produces no output row the consumer cares about. Restricting
    the NULL-padded side would turn matched rows into NULL-padded ones —
    exactly the subtlety the paper flags for complex NMQ operations — so
    the right side is left untouched.
    """
    if not box.linked_magic:
        return
    magic = box.linked_magic[0]
    bound_columns = magic.properties.get("bound_columns", [])
    if not bound_columns:
        return
    left = box.quantifiers[0]
    if left.input_box.kind == BoxKind.BASE or left.input_box.is_special:
        return  # stored tables take no magic (plan optimization handles them)
    specs = []
    bound_pairs = []
    for position, box_column in enumerate(bound_columns):
        defining = box.column(box_column).expr
        if not isinstance(defining, qe.QColRef) or defining.quantifier is not left:
            continue  # a right-side (NULL-padded) column: cannot restrict
        child_column = defining.column.lower()
        magic_column = magic.columns[position].name
        specs.append(("mc_%s" % child_column, magic_column))
        bound_pairs.append((child_column, "mc_%s" % child_column))
    if not specs:
        return
    bound_pairs.sort(key=lambda pair: pair[0])
    specs.sort(key=lambda pair: pair[0])
    contribution = build_link_contribution(processor.graph, magic, specs)
    info = _LinkInfo(bound_pairs)
    adornment = info.adornment_for(left.input_box)
    processor._attach_restriction(
        box, left, adornment, info, contribution, bound_pairs, []
    )


class _LinkInfo:
    """Minimal stand-in for QuantifierAdornment used by pass-down handlers."""

    def __init__(self, bound_pairs):
        self.bound = [(column, None) for column, _ in bound_pairs]
        self.conditions = []
        self.condition_columns = []
        self.local_predicates = []
        self.local_bound_columns = []
        self.local_condition_columns = []

    @property
    def has_dependent(self):
        return bool(self.bound)

    @property
    def is_trivial(self):
        return not self.bound

    def adornment_for(self, child):
        from repro.magic.adornment import build_adornment

        bound = {name for name, _ in self.bound}
        return build_adornment(child, bound, set())


def _flip(op):
    return {"=": "=", "<>": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]


def _install_pass_down_handlers():
    from repro.magic.properties import operation_properties

    operation_properties(BoxKind.GROUPBY).pass_down = pass_down_groupby
    operation_properties(BoxKind.UNION).pass_down = pass_down_setop
    operation_properties(BoxKind.INTERSECT).pass_down = pass_down_setop
    operation_properties(BoxKind.EXCEPT).pass_down = pass_down_setop
    operation_properties(BoxKind.OUTERJOIN).pass_down = pass_down_outerjoin


_install_pass_down_handlers()
