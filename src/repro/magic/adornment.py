"""bcf adornments (§2, "Magic-sets transformation").

An adornment annotates one *use* of a table (box): one letter per output
column — ``b`` (bound by an equality predicate), ``c`` (conditioned: bound
by a predicate other than equality), ``f`` (free). The paper writes them as
superscripts: ``avgMgrSal^bf``, ``mgrSal^ffbf``.
"""

from __future__ import annotations

from repro.errors import MagicError

BOUND = "b"
CONDITIONED = "c"
FREE = "f"

_VALID = frozenset({BOUND, CONDITIONED, FREE})


class Adornment(str):
    """An adornment string; validates its letters."""

    def __new__(cls, text):
        value = super().__new__(cls, text)
        for letter in value:
            if letter not in _VALID:
                raise MagicError("invalid adornment letter %r in %r" % (letter, text))
        return value

    @property
    def bound_positions(self):
        return [i for i, letter in enumerate(self) if letter == BOUND]

    @property
    def conditioned_positions(self):
        return [i for i, letter in enumerate(self) if letter == CONDITIONED]

    @property
    def has_conditions(self):
        return CONDITIONED in self

    @property
    def is_all_free(self):
        return set(self) <= {FREE}


def all_free(column_count):
    """The ``ff...f`` adornment of the given width."""
    return Adornment(FREE * column_count)


def is_all_free(adornment):
    return adornment is None or set(adornment) <= {FREE}


def build_adornment(box, bound_columns, conditioned_columns):
    """Build an adornment for ``box`` given bound / conditioned output
    column names (lower-cased). Bound wins over conditioned when both."""
    letters = []
    for column in box.columns:
        name = column.name.lower()
        if name in bound_columns:
            letters.append(BOUND)
        elif name in conditioned_columns:
            letters.append(CONDITIONED)
        else:
            letters.append(FREE)
    return Adornment("".join(letters))
