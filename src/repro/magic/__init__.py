"""EMST — the Extended Magic-Sets Transformation (§4 of the paper).

Implemented as a rewrite rule (:class:`~repro.magic.emst.EmstRule`) that
processes one QGM box at a time, combining adornment and transformation in
a single step. Supporting pieces:

* :mod:`repro.magic.adornment` — bcf adornment strings,
* :mod:`repro.magic.properties` — the AMQ/NMQ operation registry (§4.2),
* :mod:`repro.magic.adorn` — predicate classification per quantifier
  (Algorithm 4.1, adorn-box),
* :mod:`repro.magic.magic_boxes` — constructors for magic-,
  condition-magic- and supplementary-magic-boxes (§4.1),
* :mod:`repro.magic.emst` — Algorithm 4.2 (magic-process) and the rule.
"""

from repro.magic.adornment import Adornment, all_free, is_all_free
from repro.magic.properties import (
    OperationProperties,
    operation_properties,
    register_operation,
    is_amq,
)
from repro.magic.emst import EmstRule

__all__ = [
    "Adornment",
    "all_free",
    "is_all_free",
    "OperationProperties",
    "operation_properties",
    "register_operation",
    "is_amq",
    "EmstRule",
]
