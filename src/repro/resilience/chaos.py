"""Chaos runner: the workload suite under randomized-but-seeded faults.

Every query of the battery is executed twice — once clean under the
``original`` strategy (the trusted reference: no rewrite, no faults) and
once under ``emst`` with a :class:`~repro.resilience.FaultPlan` injecting
failures into the rewrite rules plus a paranoid
:class:`~repro.resilience.ResiliencePolicy` — and the rows must match
exactly. A divergence means the rollback/quarantine/fallback machinery
let a faulty rewrite change query *results*, which is the one thing the
resilience layer exists to prevent.

Usage::

    python -m repro.resilience.chaos [--seed N] [--trials T] [--scale S]

Exit status 0 when every trial of every query is equivalent. The pytest
entry point is ``tests/test_resilience.py`` (marker ``chaos``); CI runs
it as a second invocation after the tier-1 suite::

    python -m pytest -q -m chaos
"""

from __future__ import annotations

import argparse
import sys


#: Rule names eligible for fault injection (the standard set + EMST).
RULE_NAMES = (
    "distinct-pullup",
    "predicate-pushdown",
    "local-magic",
    "redundant-join",
    "merge",
    "projection-prune",
    "emst",
)


def _battery(scale=0.5, seed=77):
    """(connection, [sql, ...]) pairs: the integration-suite query shapes
    over the empdept and decision-support generators."""
    from repro.api import Connection
    from repro.workloads.decision_support import build_decision_support_database
    from repro.workloads.empdept import PAPER_VIEWS_SQL, build_empdept_database

    emp = Connection(
        build_empdept_database(
            n_departments=30, employees_per_department=6, seed=seed
        )
    )
    emp.run_script(PAPER_VIEWS_SQL)
    emp_queries = [
        "SELECT d.deptname, s.workdept, s.avgsalary FROM department d, avgMgrSal s "
        "WHERE d.deptno = s.workdept AND d.deptname = 'Planning'",
        "SELECT e.empname FROM employee e WHERE e.workdept IN "
        "(SELECT workdept FROM avgMgrSal WHERE avgsalary > 120000)",
        "SELECT a.workdept, b.workdept FROM avgMgrSal a, avgMgrSal b "
        "WHERE a.avgsalary = b.avgsalary AND a.workdept < b.workdept",
        "SELECT d.deptname FROM department d WHERE d.deptno IN "
        "(SELECT e.workdept FROM employee e WHERE e.salary > "
        " (SELECT AVG(e2.salary) FROM employee e2 WHERE e2.workdept = e.workdept))",
    ]

    ds = Connection(build_decision_support_database(scale=scale, seed=seed))
    ds.run_script(
        """
        CREATE VIEW custRev (custkey, rev, norders) AS
          SELECT o.custkey, SUM(o.totalprice), COUNT(*)
          FROM orders o GROUP BY o.custkey;
        CREATE VIEW orderValue (orderkey, value) AS
          SELECT l.orderkey, SUM(l.extendedprice * (1 - l.discount))
          FROM lineitem l GROUP BY l.orderkey;
        """
    )
    ds_queries = [
        "SELECT c.cname, v.rev FROM customer c, custRev v "
        "WHERE v.custkey = c.custkey AND c.mktsegment = 'MACHINERY'",
        "SELECT v.custkey, v.rev FROM custRev v WHERE v.custkey IN "
        "(SELECT c.custkey FROM customer c WHERE c.nationkey = 3)",
        "SELECT c.cname FROM customer c WHERE EXISTS "
        "(SELECT o.orderkey FROM orders o WHERE o.custkey = c.custkey "
        " AND o.totalprice > 250000)",
        "SELECT o.orderkey FROM orders o WHERE o.totalprice > "
        "(SELECT AVG(o2.totalprice) FROM orders o2 WHERE o2.custkey = o.custkey) * 1.5",
    ]
    return [(emp, emp_queries), (ds, ds_queries)]


def run_chaos(seed=0, trials=3, scale=0.5, faults_per_trial=2, verbose=True):
    """Run the battery under ``trials`` randomized fault plans derived from
    ``seed``. Returns a list of failure descriptions (empty = all good)."""
    from repro.resilience.fallback import ResiliencePolicy
    from repro.resilience.faults import FaultPlan

    def canonical(rows):
        return sorted(tuple(row) for row in rows)

    failures = []
    checked = 0
    for connection, queries in _battery(scale=scale, seed=77):
        for query_index, sql in enumerate(queries):
            clean = canonical(
                connection.explain_execute(sql, strategy="original").rows
            )
            for trial in range(trials):
                plan = FaultPlan.randomized(
                    seed + 1000 * trial + query_index,
                    RULE_NAMES,
                    faults=faults_per_trial,
                )
                policy = ResiliencePolicy(fault_plan=plan, paranoid=True)
                try:
                    outcome = connection.explain_execute(
                        sql, strategy="emst", resilience=policy
                    )
                except Exception as exc:  # a raise here is itself a failure
                    failures.append(
                        "trial %d of %r raised %s: %s"
                        % (trial, sql, type(exc).__name__, exc)
                    )
                    continue
                checked += 1
                if canonical(outcome.rows) != clean:
                    failures.append(
                        "trial %d of %r diverged under faults %r "
                        "(fallback=%s, quarantined=%s)"
                        % (
                            trial,
                            sql,
                            plan.injected,
                            outcome.fallback_strategy,
                            outcome.quarantined_rules,
                        )
                    )
                elif verbose and plan.injected:
                    print(
                        "ok: %d fault(s) absorbed, fallback=%s, quarantined=%s"
                        % (
                            len(plan.injected),
                            outcome.fallback_strategy,
                            outcome.quarantined_rules,
                        )
                    )
    if verbose:
        print(
            "chaos: %d fault trials checked, %d divergence(s)"
            % (checked, len(failures))
        )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.resilience.chaos", description=__doc__
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--trials", type=int, default=3)
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument("--faults", type=int, default=2)
    args = parser.parse_args(argv)
    failures = run_chaos(
        seed=args.seed,
        trials=args.trials,
        scale=args.scale,
        faults_per_trial=args.faults,
    )
    for failure in failures:
        print("FAIL:", failure, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
