"""Resilience layer: per-query resource budgets, rewrite rollback with
rule quarantine, strategy fallback, and deterministic fault injection.

The paper's engineering claim is that magic sets can live inside a
*production* system: a rewrite rule that throws, a transformation that
corrupts the graph, or a transformed query that recurses forever must
degrade the query — never take down query processing. This package makes
the pipeline fail soft:

* :class:`ResourceGovernor` — cooperative per-query budgets (wall-clock
  deadline, rewrite sweeps, fixpoint rounds, materialized rows, correlated
  invocations) raising :class:`~repro.errors.ResourceExhaustedError`,
* :class:`ResiliencePolicy` — rule-level rollback + quarantine plus the
  declared strategy fallback chain ``emst -> phase1 -> original``,
* :class:`FaultPlan` — a seedable fault-injection harness that wraps
  rewrite rules and evaluator hooks so the failure paths are exercised by
  real tests (``python -m repro.resilience.chaos``).
"""

from repro.resilience.governor import ResourceGovernor
from repro.resilience.fallback import (
    FallbackReport,
    QuarantineRegistry,
    ResiliencePolicy,
)
from repro.resilience.faults import FaultPlan, InjectedFault
from repro.resilience.breaker import (
    DEFAULT_STRATEGY_CHAIN,
    CircuitBreaker,
    GuardedCircuitBreaker,
    StrategyBreakerBoard,
)
from repro.resilience.retry import RetryPolicy

__all__ = [
    "ResourceGovernor",
    "ResiliencePolicy",
    "QuarantineRegistry",
    "FallbackReport",
    "FaultPlan",
    "InjectedFault",
    "CircuitBreaker",
    "GuardedCircuitBreaker",
    "StrategyBreakerBoard",
    "DEFAULT_STRATEGY_CHAIN",
    "RetryPolicy",
]
