"""Per-rewrite-strategy circuit breakers.

The per-request fallback chain (``emst -> phase1 -> original``) absorbs a
*single* failing strategy, but it pays the failure cost on every request:
a rewrite bug that reliably kills ``emst`` makes every query attempt the
broken pipeline, fail, roll back and re-prepare under ``phase1``. A
:class:`CircuitBreaker` adds memory across requests: after
``failure_threshold`` consecutive failures a strategy's circuit *opens*
and the serving layer starts requests further down the chain directly for
``cooldown_seconds``; after the cooldown one trial request is let through
(*half-open*) — success closes the circuit, failure re-opens it.

The breaker is deliberately time-source-injectable (``clock``) so tests
exercise the state machine without sleeping.
"""

from __future__ import annotations

import threading
import time

#: Demotion order mirrors the resilience fallback chain.
DEFAULT_STRATEGY_CHAIN = ("emst", "phase1", "original")


class CircuitBreaker:
    """A classic closed → open → half-open breaker for one strategy."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, failure_threshold=3, cooldown_seconds=30.0, clock=None):
        self.failure_threshold = failure_threshold
        self.cooldown_seconds = cooldown_seconds
        self.clock = clock or time.monotonic
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.opened_at = None
        #: Lifetime counters for observability.
        self.total_failures = 0
        self.total_successes = 0
        self.times_opened = 0
        self.last_error = None

    def allows(self):
        """May a request start under this strategy right now? Transitions
        OPEN → HALF_OPEN when the cooldown has elapsed (the caller's
        request becomes the trial)."""
        if self.state == self.CLOSED:
            return True
        if self.state == self.OPEN:
            if self.clock() - self.opened_at >= self.cooldown_seconds:
                self.state = self.HALF_OPEN
                return True
            return False
        # HALF_OPEN: one trial is already implied by the transition above;
        # further requests stay demoted until the trial reports back.
        return False

    def record_success(self):
        self.total_successes += 1
        self.consecutive_failures = 0
        self.state = self.CLOSED
        self.opened_at = None

    def record_failure(self, error=None):
        self.total_failures += 1
        self.consecutive_failures += 1
        self.last_error = None if error is None else (
            "%s: %s" % (type(error).__name__, error)
        )
        if (
            self.state == self.HALF_OPEN
            or self.consecutive_failures >= self.failure_threshold
        ):
            self.state = self.OPEN
            self.opened_at = self.clock()
            self.times_opened += 1

    def snapshot(self):
        remaining = None
        if self.state == self.OPEN and self.opened_at is not None:
            remaining = max(
                self.cooldown_seconds - (self.clock() - self.opened_at), 0.0
            )
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "total_failures": self.total_failures,
            "total_successes": self.total_successes,
            "times_opened": self.times_opened,
            "cooldown_remaining": remaining,
            "last_error": self.last_error,
        }


class GuardedCircuitBreaker:
    """A :class:`CircuitBreaker` behind its own lock, for standalone use
    outside the :class:`StrategyBreakerBoard` (which supplies its own
    locking). The server's worker pool uses one as its *crash breaker*:
    worker deaths recorded from many dispatch threads open the circuit,
    demoting query execution to the in-process path until the cooldown
    lets a trial dispatch through."""

    def __init__(self, failure_threshold=3, cooldown_seconds=30.0, clock=None):
        self._lock = threading.Lock()
        self._breaker = CircuitBreaker(
            failure_threshold=failure_threshold,
            cooldown_seconds=cooldown_seconds,
            clock=clock,
        )

    def allows(self):
        with self._lock:
            return self._breaker.allows()

    def record_success(self):
        with self._lock:
            self._breaker.record_success()

    def record_failure(self, error=None):
        with self._lock:
            self._breaker.record_failure(error)

    @property
    def state(self):
        with self._lock:
            return self._breaker.state

    def snapshot(self):
        with self._lock:
            return self._breaker.snapshot()


class StrategyBreakerBoard:
    """One breaker per rewrite strategy plus the demotion policy.

    :meth:`select` returns the first strategy at or below ``requested``
    whose circuit admits traffic; the chain's last entry (``original`` —
    no rewrite at all) is never blocked, so a query can always run.
    Thread-safe: the serving layer calls it from executor threads.
    """

    def __init__(self, chain=DEFAULT_STRATEGY_CHAIN, failure_threshold=3,
                 cooldown_seconds=30.0, clock=None):
        self.chain = tuple(chain)
        self._lock = threading.Lock()
        self.breakers = {
            strategy: CircuitBreaker(
                failure_threshold=failure_threshold,
                cooldown_seconds=cooldown_seconds,
                clock=clock,
            )
            for strategy in self.chain
        }
        self.demotions = 0

    def select(self, requested):
        """The strategy to *start* the request under. Strategies outside
        the chain (``correlated``, ``norewrite``) have no breaker and pass
        through unchanged."""
        if requested not in self.chain:
            return requested
        with self._lock:
            index = self.chain.index(requested)
            for strategy in self.chain[index:-1]:
                if self.breakers[strategy].allows():
                    if strategy != requested:
                        self.demotions += 1
                    return strategy
                self.demotions += 1
            return self.chain[-1]

    def record_success(self, strategy):
        breaker = self.breakers.get(strategy)
        if breaker is not None:
            with self._lock:
                breaker.record_success()

    def record_failure(self, strategy, error=None):
        breaker = self.breakers.get(strategy)
        if breaker is not None:
            with self._lock:
                breaker.record_failure(error)

    def snapshot(self):
        with self._lock:
            return {
                "demotions": self.demotions,
                "strategies": {
                    name: breaker.snapshot()
                    for name, breaker in self.breakers.items()
                },
            }
