"""Per-query resource budgets, checked cooperatively by the pipeline.

A :class:`ResourceGovernor` is handed to the rewrite engine, the fixpoint
machinery and the evaluators; each checks its own budget at natural
yield points (once per sweep, per round, per box materialisation) and
raises :class:`~repro.errors.ResourceExhaustedError` with structured
context when a limit trips. The historical hard-coded caps
(``_MAX_SWEEPS = 200`` in the rewrite engine, ``_MAX_ROUNDS = 100000`` in
the fixpoint loop) live on as the governor's defaults.

Counters for cumulative budgets (rows, correlated invocations, the
deadline clock) are per *query*: :meth:`begin_query` resets them, and
:class:`~repro.api.Connection` calls it before every query so one
governor instance can police a whole connection. Sweep and round budgets
are local to each ``run_phase``/``run_fixpoint`` call — two independent
recursive components each get the full round budget.
"""

from __future__ import annotations

import time

from repro.errors import QueryCancelledError, ResourceExhaustedError

#: Historical cap from ``rewrite/engine.py``.
DEFAULT_MAX_REWRITE_SWEEPS = 200
#: Historical cap from ``engine/recursion.py``.
DEFAULT_MAX_FIXPOINT_ROUNDS = 100000


class ResourceGovernor:
    """Cooperative per-query budget checks.

    ``None`` for any limit means "unlimited" — except the two historical
    caps, which default to their pre-governor values so a runaway rewrite
    or fixpoint is always stopped.
    """

    def __init__(
        self,
        deadline_seconds=None,
        max_rewrite_sweeps=DEFAULT_MAX_REWRITE_SWEEPS,
        max_fixpoint_rounds=DEFAULT_MAX_FIXPOINT_ROUNDS,
        max_materialized_rows=None,
        max_correlated_invocations=None,
    ):
        self.deadline_seconds = deadline_seconds
        self.max_rewrite_sweeps = max_rewrite_sweeps
        self.max_fixpoint_rounds = max_fixpoint_rounds
        self.max_materialized_rows = max_materialized_rows
        self.max_correlated_invocations = max_correlated_invocations
        self.begin_query()

    # -- lifecycle ---------------------------------------------------------------

    def begin_query(self):
        """Reset cumulative counters and restart the deadline clock.

        The cancel token is also cleared: cancellation is a per-query
        signal, and a governor reused across a connection must not let a
        stale token kill the next query.
        """
        self._started_at = time.perf_counter()
        self.materialized_rows = 0
        self.correlated_invocations = 0
        self._cancel_event = None
        self._cancel_reason = None

    def elapsed_seconds(self):
        return time.perf_counter() - self._started_at

    def remaining(self):
        """A machine-readable snapshot of the unspent budgets.

        Keys mirror the constructor arguments; a value of ``None`` means
        "unlimited". The admission layer uses this to decide whether a
        queued request still has enough budget to be worth dispatching,
        and it is surfaced verbatim in server ``stats`` responses.
        """
        deadline_remaining = None
        if self.deadline_seconds is not None:
            deadline_remaining = max(
                self.deadline_seconds - self.elapsed_seconds(), 0.0
            )
        rows_remaining = None
        if self.max_materialized_rows is not None:
            rows_remaining = max(
                self.max_materialized_rows - self.materialized_rows, 0
            )
        correlated_remaining = None
        if self.max_correlated_invocations is not None:
            correlated_remaining = max(
                self.max_correlated_invocations - self.correlated_invocations, 0
            )
        return {
            "deadline_seconds": deadline_remaining,
            "max_materialized_rows": rows_remaining,
            "max_correlated_invocations": correlated_remaining,
            # Sweep/round budgets are per run_phase/run_fixpoint call, not
            # cumulative; the full limit is always available to a new call.
            "max_rewrite_sweeps": self.max_rewrite_sweeps,
            "max_fixpoint_rounds": self.max_fixpoint_rounds,
        }

    # -- cancellation ------------------------------------------------------------

    def attach_cancel_token(self, event, reason="cancelled"):
        """Arm cooperative cancellation: ``event`` is any object with an
        ``is_set()`` method (``threading.Event`` in practice). Once set,
        the next checkpoint raises :class:`QueryCancelledError`."""
        self._cancel_event = event
        self._cancel_reason = reason

    def cancel(self, reason="cancelled"):
        """Cancel from the governor itself (no external event needed)."""

        class _Set:
            @staticmethod
            def is_set():
                return True

        self._cancel_event = _Set()
        self._cancel_reason = reason

    @property
    def cancelled(self):
        return self._cancel_event is not None and self._cancel_event.is_set()

    # -- raising -----------------------------------------------------------------

    def _exhausted(self, limit, value, where, progress, retry_after=None):
        raise ResourceExhaustedError(
            "%s exceeded %s=%s (%s)" % (where, limit, value, progress),
            limit=limit,
            where=where,
            progress=progress,
            retry_after=retry_after,
        )

    # -- checks ------------------------------------------------------------------

    def check_cancelled(self, where):
        if self.cancelled:
            raise QueryCancelledError(
                "query cancelled during %s (%s)" % (where, self._cancel_reason),
                where=where,
                reason=self._cancel_reason,
            )

    def checkpoint(self, where):
        """The cooperative yield point the engine loops call: observes the
        cancel token and the wall-clock deadline (both cheap)."""
        self.check_deadline(where)

    def check_deadline(self, where):
        """Cheap wall-clock check; called from every other check too."""
        self.check_cancelled(where)
        if self.deadline_seconds is None:
            return
        elapsed = self.elapsed_seconds()
        if elapsed > self.deadline_seconds:
            self._exhausted(
                "deadline_seconds",
                self.deadline_seconds,
                where,
                "%.3fs elapsed" % elapsed,
                # A fresh attempt gets a full budget; hint clients to wait
                # for roughly one budget before retrying a timed-out query.
                retry_after=self.deadline_seconds,
            )

    def check_rewrite_sweeps(self, sweeps, phase):
        where = "rewrite phase %s" % phase
        self.check_deadline(where)
        if self.max_rewrite_sweeps is not None and sweeps > self.max_rewrite_sweeps:
            self._exhausted(
                "max_rewrite_sweeps",
                self.max_rewrite_sweeps,
                where,
                "no fixpoint after %d sweeps" % (sweeps - 1),
            )

    def check_fixpoint_rounds(self, rounds, component):
        """``component`` is the list of box names in the recursive SCC; it
        is echoed into the error so the offending view is identifiable."""
        where = "fixpoint over recursive component [%s]" % ", ".join(component)
        self.check_deadline(where)
        if self.max_fixpoint_rounds is not None and rounds > self.max_fixpoint_rounds:
            self._exhausted(
                "max_fixpoint_rounds",
                self.max_fixpoint_rounds,
                where,
                "no convergence after %d rounds" % (rounds - 1),
            )

    def charge_rows(self, count, where):
        self.check_deadline(where)
        self.materialized_rows += count
        if (
            self.max_materialized_rows is not None
            and self.materialized_rows > self.max_materialized_rows
        ):
            self._exhausted(
                "max_materialized_rows",
                self.max_materialized_rows,
                where,
                "%d rows materialized" % self.materialized_rows,
            )

    def charge_correlated(self, where):
        self.check_deadline(where)
        self.correlated_invocations += 1
        if (
            self.max_correlated_invocations is not None
            and self.correlated_invocations > self.max_correlated_invocations
        ):
            self._exhausted(
                "max_correlated_invocations",
                self.max_correlated_invocations,
                where,
                "%d correlated invocations" % self.correlated_invocations,
            )
