"""Per-query resource budgets, checked cooperatively by the pipeline.

A :class:`ResourceGovernor` is handed to the rewrite engine, the fixpoint
machinery and the evaluators; each checks its own budget at natural
yield points (once per sweep, per round, per box materialisation) and
raises :class:`~repro.errors.ResourceExhaustedError` with structured
context when a limit trips. The historical hard-coded caps
(``_MAX_SWEEPS = 200`` in the rewrite engine, ``_MAX_ROUNDS = 100000`` in
the fixpoint loop) live on as the governor's defaults.

Counters for cumulative budgets (rows, correlated invocations, the
deadline clock) are per *query*: :meth:`begin_query` resets them, and
:class:`~repro.api.Connection` calls it before every query so one
governor instance can police a whole connection. Sweep and round budgets
are local to each ``run_phase``/``run_fixpoint`` call — two independent
recursive components each get the full round budget.
"""

from __future__ import annotations

import time

from repro.errors import ResourceExhaustedError

#: Historical cap from ``rewrite/engine.py``.
DEFAULT_MAX_REWRITE_SWEEPS = 200
#: Historical cap from ``engine/recursion.py``.
DEFAULT_MAX_FIXPOINT_ROUNDS = 100000


class ResourceGovernor:
    """Cooperative per-query budget checks.

    ``None`` for any limit means "unlimited" — except the two historical
    caps, which default to their pre-governor values so a runaway rewrite
    or fixpoint is always stopped.
    """

    def __init__(
        self,
        deadline_seconds=None,
        max_rewrite_sweeps=DEFAULT_MAX_REWRITE_SWEEPS,
        max_fixpoint_rounds=DEFAULT_MAX_FIXPOINT_ROUNDS,
        max_materialized_rows=None,
        max_correlated_invocations=None,
    ):
        self.deadline_seconds = deadline_seconds
        self.max_rewrite_sweeps = max_rewrite_sweeps
        self.max_fixpoint_rounds = max_fixpoint_rounds
        self.max_materialized_rows = max_materialized_rows
        self.max_correlated_invocations = max_correlated_invocations
        self.begin_query()

    # -- lifecycle ---------------------------------------------------------------

    def begin_query(self):
        """Reset cumulative counters and restart the deadline clock."""
        self._started_at = time.perf_counter()
        self.materialized_rows = 0
        self.correlated_invocations = 0

    def elapsed_seconds(self):
        return time.perf_counter() - self._started_at

    # -- raising -----------------------------------------------------------------

    def _exhausted(self, limit, value, where, progress):
        raise ResourceExhaustedError(
            "%s exceeded %s=%s (%s)" % (where, limit, value, progress),
            limit=limit,
            where=where,
            progress=progress,
        )

    # -- checks ------------------------------------------------------------------

    def check_deadline(self, where):
        """Cheap wall-clock check; called from every other check too."""
        if self.deadline_seconds is None:
            return
        elapsed = self.elapsed_seconds()
        if elapsed > self.deadline_seconds:
            self._exhausted(
                "deadline_seconds",
                self.deadline_seconds,
                where,
                "%.3fs elapsed" % elapsed,
            )

    def check_rewrite_sweeps(self, sweeps, phase):
        where = "rewrite phase %s" % phase
        self.check_deadline(where)
        if self.max_rewrite_sweeps is not None and sweeps > self.max_rewrite_sweeps:
            self._exhausted(
                "max_rewrite_sweeps",
                self.max_rewrite_sweeps,
                where,
                "no fixpoint after %d sweeps" % (sweeps - 1),
            )

    def check_fixpoint_rounds(self, rounds, component):
        """``component`` is the list of box names in the recursive SCC; it
        is echoed into the error so the offending view is identifiable."""
        where = "fixpoint over recursive component [%s]" % ", ".join(component)
        self.check_deadline(where)
        if self.max_fixpoint_rounds is not None and rounds > self.max_fixpoint_rounds:
            self._exhausted(
                "max_fixpoint_rounds",
                self.max_fixpoint_rounds,
                where,
                "no convergence after %d rounds" % (rounds - 1),
            )

    def charge_rows(self, count, where):
        self.check_deadline(where)
        self.materialized_rows += count
        if (
            self.max_materialized_rows is not None
            and self.materialized_rows > self.max_materialized_rows
        ):
            self._exhausted(
                "max_materialized_rows",
                self.max_materialized_rows,
                where,
                "%d rows materialized" % self.materialized_rows,
            )

    def charge_correlated(self, where):
        self.check_deadline(where)
        self.correlated_invocations += 1
        if (
            self.max_correlated_invocations is not None
            and self.correlated_invocations > self.max_correlated_invocations
        ):
            self._exhausted(
                "max_correlated_invocations",
                self.max_correlated_invocations,
                where,
                "%d correlated invocations" % self.correlated_invocations,
            )
