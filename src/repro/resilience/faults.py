"""Deterministic, seedable fault injection for the rewrite and execution
layers.

A :class:`FaultPlan` is a schedule of faults — exceptions, graph
corruption, artificial slowness — keyed by rule name and *firing index*
(the n-th time the rule's ``apply`` runs, counted across the plan's
lifetime), plus evaluator-level hooks keyed by box-evaluation index. The
plan wraps registered rewrite rules via :meth:`wrap_rules` and is polled
by the evaluators via :meth:`on_box_evaluation`, so the rollback,
quarantine and governor paths are exercised by real control flow rather
than monkey-patching.

Faults are injected through ordinary exceptions (:class:`InjectedFault`)
or real graph mutations, which is exactly what a buggy production rule
would do; nothing downstream knows the failure was synthetic.
"""

from __future__ import annotations

import random
import time

from repro.errors import ReproError
from repro.rewrite.rule import RewriteRule

EVERY_FIRING = None


class InjectedFault(ReproError):
    """The synthetic failure raised by a :class:`FaultPlan`."""


class _Fault:
    """One scheduled fault: ``kind`` is 'raise', 'corrupt' or 'slow'."""

    def __init__(self, kind, firings=EVERY_FIRING, seconds=0.0, message=""):
        self.kind = kind
        self.firings = None if firings is None else set(firings)
        self.seconds = seconds
        self.message = message

    def matches(self, firing_index):
        return self.firings is None or firing_index in self.firings


class FaultPlan:
    """A deterministic schedule of injected faults.

    Firing indices are 1-based and counted per rule name across the whole
    plan lifetime; call :meth:`reset_counters` (or use a fresh plan) to
    restart counting, e.g. between queries of a batch.
    """

    def __init__(self, seed=0):
        self.seed = seed
        self._rule_faults = {}
        self._eval_faults = []
        self._rule_firings = {}
        self._evaluations = 0
        #: (rule_name, firing_index, kind) triples actually injected.
        self.injected = []

    # -- scheduling --------------------------------------------------------------

    def fail_rule(self, name, on_firing=1, message=None):
        """Raise :class:`InjectedFault` when rule ``name`` fires for the
        ``on_firing``-th time (``EVERY_FIRING``/None = every firing)."""
        self._add_rule_fault(
            name,
            _Fault(
                "raise",
                self._firing_set(on_firing),
                message=message or "injected failure in rule %r" % name,
            ),
        )
        return self

    def corrupt_rule(self, name, on_firing=1):
        """After rule ``name`` fires, break a QGM invariant (detach a
        quantifier's parent link) so paranoid validation must catch it."""
        self._add_rule_fault(name, _Fault("corrupt", self._firing_set(on_firing)))
        return self

    def slow_rule(self, name, on_firing=1, seconds=0.05):
        """Sleep before rule ``name`` applies — trips deadline budgets."""
        self._add_rule_fault(
            name, _Fault("slow", self._firing_set(on_firing), seconds=seconds)
        )
        return self

    def fail_evaluation(self, on_evaluation=1, message=None):
        """Raise :class:`InjectedFault` on the n-th box evaluation."""
        self._eval_faults.append(
            _Fault(
                "raise",
                self._firing_set(on_evaluation),
                message=message or "injected failure during box evaluation",
            )
        )
        return self

    def slow_evaluation(self, on_evaluation=1, seconds=0.05):
        """Sleep on the n-th box evaluation — trips deadline budgets."""
        self._eval_faults.append(
            _Fault("slow", self._firing_set(on_evaluation), seconds=seconds)
        )
        return self

    @classmethod
    def randomized(cls, seed, rule_names, faults=2, kinds=("raise", "corrupt")):
        """A randomized-but-reproducible plan: ``faults`` faults spread over
        ``rule_names`` with firing indices in [1, 3], chosen by ``seed``."""
        rng = random.Random(seed)
        plan = cls(seed=seed)
        names = sorted(rule_names)
        for _ in range(faults):
            name = rng.choice(names)
            kind = rng.choice(list(kinds))
            firing = rng.randint(1, 3)
            if kind == "raise":
                plan.fail_rule(name, on_firing=firing)
            elif kind == "corrupt":
                plan.corrupt_rule(name, on_firing=firing)
            else:
                plan.slow_rule(name, on_firing=firing)
        return plan

    @staticmethod
    def _firing_set(on_firing):
        if on_firing is EVERY_FIRING:
            return EVERY_FIRING
        if isinstance(on_firing, int):
            return (on_firing,)
        return tuple(on_firing)

    def _add_rule_fault(self, name, fault):
        self._rule_faults.setdefault(name, []).append(fault)

    # -- wiring ------------------------------------------------------------------

    def wrap_rules(self, rules):
        """Wrap every rule in a fault-injecting proxy (idempotent: rules
        without scheduled faults still pass through the counter so firing
        indices are stable when faults are added later)."""
        return [FaultyRule(rule, self) for rule in rules]

    def reset_counters(self):
        self._rule_firings = {}
        self._evaluations = 0

    # -- injection points --------------------------------------------------------

    def before_apply(self, rule_name):
        firing = self._rule_firings.get(rule_name, 0) + 1
        self._rule_firings[rule_name] = firing
        for fault in self._rule_faults.get(rule_name, ()):
            if not fault.matches(firing):
                continue
            if fault.kind == "slow":
                self.injected.append((rule_name, firing, "slow"))
                time.sleep(fault.seconds)
            elif fault.kind == "raise":
                self.injected.append((rule_name, firing, "raise"))
                raise InjectedFault(
                    "%s (firing %d)" % (fault.message, firing),
                    context={"rule": rule_name, "firing": firing},
                )
        return firing

    def after_apply(self, rule_name, firing, graph):
        for fault in self._rule_faults.get(rule_name, ()):
            if fault.kind == "corrupt" and fault.matches(firing):
                self.injected.append((rule_name, firing, "corrupt"))
                _corrupt_graph(graph)

    def on_box_evaluation(self, box_name=""):
        """Called by the evaluators once per box evaluation."""
        if not self._eval_faults:
            return
        self._evaluations += 1
        for fault in self._eval_faults:
            if not fault.matches(self._evaluations):
                continue
            if fault.kind == "slow":
                self.injected.append(("<evaluator>", self._evaluations, "slow"))
                time.sleep(fault.seconds)
            else:
                self.injected.append(("<evaluator>", self._evaluations, "raise"))
                raise InjectedFault(
                    "%s (evaluation %d, box %r)"
                    % (fault.message, self._evaluations, box_name),
                    context={"evaluation": self._evaluations, "box": box_name},
                )


def _corrupt_graph(graph):
    """Break a structural invariant the way a buggy rule might: detach the
    parent link of the first quantifier found (``validate_graph`` reports
    it as a wrong parent link)."""
    for box in graph.boxes():
        if box.quantifiers:
            box.quantifiers[0].parent_box = None
            return


class FaultyRule(RewriteRule):
    """A transparent proxy that lets a :class:`FaultPlan` intercept one
    rule's firings. Name/phases/priority mirror the wrapped rule so the
    engine, quarantine and statistics treat it as the original."""

    def __init__(self, inner, plan):
        self.inner = inner
        self.plan = plan
        self.name = inner.name
        self.phases = inner.phases
        self.priority = inner.priority

    def applies_to(self, box, context):
        return self.inner.applies_to(box, context)

    def apply(self, box, context):
        firing = self.plan.before_apply(self.name)
        fired = self.inner.apply(box, context)
        self.plan.after_apply(self.name, firing, context.graph)
        return fired
