"""Client-side retry policy: jittered exponential backoff.

Retrying is only safe for errors the server *labels* retryable
(:class:`~repro.errors.ServerOverloadedError`,
:class:`~repro.errors.QueryCancelledError` from a client-initiated cancel,
transport drops) — a parse error will fail identically forever. The server
threads a machine-readable ``retry_after`` hint through error contexts;
the policy honours it as a floor for the next delay.

Jitter is *full jitter* (delay drawn uniformly from ``[0, backoff]``):
synchronized clients retrying after a shed event would otherwise re-arrive
in lockstep and shed again.
"""

from __future__ import annotations

import random


class RetryPolicy:
    """How many times to retry and how long to sleep between attempts."""

    def __init__(self, max_attempts=4, base_delay=0.05, max_delay=2.0,
                 multiplier=2.0, rng=None):
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.multiplier = multiplier
        self._rng = rng or random.Random()

    def is_retryable(self, error):
        """``error`` may be an exception instance or a decoded wire-error
        dict (``{"type": ..., "retryable": ..., ...}``)."""
        if isinstance(error, dict):
            return bool(error.get("retryable"))
        if isinstance(error, (ConnectionError, EOFError)):
            return True
        return bool(getattr(error, "retryable", False))

    def should_retry(self, attempt, error):
        """``attempt`` is 1-based: the attempt that just failed."""
        return attempt < self.max_attempts and self.is_retryable(error)

    def delay(self, attempt, retry_after=None):
        """Sleep before attempt ``attempt + 1``. ``retry_after`` (the
        server's hint, seconds) floors the result; jitter on top spreads
        the herd."""
        backoff = min(
            self.base_delay * (self.multiplier ** (attempt - 1)),
            self.max_delay,
        )
        jittered = self._rng.uniform(0.0, backoff)
        if retry_after:
            return min(retry_after + jittered, self.max_delay + retry_after)
        return jittered

    @staticmethod
    def retry_after_from(error):
        """Extract the server's ``retry_after`` hint from an exception or a
        decoded wire-error dict, if present."""
        if isinstance(error, dict):
            context = error.get("context") or {}
            return context.get("retry_after") or error.get("retry_after")
        value = getattr(error, "retry_after", None)
        if value is not None:
            return value
        context = getattr(error, "context", None) or {}
        return context.get("retry_after") if isinstance(context, dict) else None
