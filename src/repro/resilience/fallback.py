"""Rewrite rollback bookkeeping and the strategy fallback chain.

Two layers of degradation, both driven by a :class:`ResiliencePolicy`:

1. **Rule level** — the rewrite engine snapshots the graph before every
   rule firing; a rule that raises (or, in paranoid mode, corrupts the
   graph) is rolled back and *quarantined* in the policy's
   :class:`QuarantineRegistry` for the rest of the query, so one bad rule
   costs its own firings, not the query.
2. **Strategy level** — if a whole strategy still fails,
   :class:`~repro.api.Connection` walks the declared chain
   ``emst -> phase1 -> original`` and records what happened in a
   :class:`FallbackReport` on the outcome instead of raising.

:class:`~repro.errors.ResourceExhaustedError` never triggers fallback by
default: a blown budget under ``emst`` would blow under ``original`` too,
and silently retrying would double the damage. Set
``fallback_on_exhaustion=True`` to opt in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.resilience.governor import ResourceGovernor

#: The declared degradation chain of the tentpole: full EMST pipeline,
#: then the rewrite pipeline without EMST, then no rewrite at all.
DEFAULT_FALLBACK_CHAIN = ("emst", "phase1", "original")


class QuarantineRegistry:
    """Rules banned from firing for the remainder of the current query."""

    def __init__(self):
        self.reasons = {}

    def add(self, rule_name, reason, phase=None):
        if rule_name not in self.reasons:
            self.reasons[rule_name] = {"reason": reason, "phase": phase}

    def __contains__(self, rule_name):
        return rule_name in self.reasons

    def __bool__(self):
        return bool(self.reasons)

    def names(self):
        return sorted(self.reasons)

    def clear(self):
        self.reasons = {}


@dataclass
class FallbackReport:
    """What the resilience layer observed while producing one outcome."""

    requested: str
    executed: str
    #: (strategy, error repr) for every strategy that failed outright.
    attempts: List[Tuple[str, str]] = field(default_factory=list)
    #: rule name -> {"reason": ..., "phase": ...} for quarantined rules.
    quarantined: Dict[str, dict] = field(default_factory=dict)
    #: Execution engine requested / actually used ("tuple" or "batch"):
    #: a batch-executor error retries the same strategy on the tuple
    #: engine before the strategy chain degrades.
    requested_executor: str = "tuple"
    executed_executor: str = "tuple"

    @property
    def degraded(self):
        return (
            self.executed != self.requested
            or self.executed_executor != self.requested_executor
            or bool(self.quarantined)
        )

    @property
    def fallback_strategy(self):
        """The strategy whose semantics the query effectively ran under.

        Falling back is either explicit (a later chain entry executed) or
        implicit: quarantining the EMST rule mid-pipeline leaves exactly
        the phase-1 pipeline, so that degradation is reported as
        ``phase1`` even though the ``emst`` code path drove it.
        """
        if self.executed != self.requested:
            return self.executed
        if self.requested == "emst" and "emst" in self.quarantined:
            return "phase1"
        return self.executed

    def describe(self):
        parts = ["requested=%s executed=%s" % (self.requested, self.executed)]
        if self.fallback_strategy != self.requested:
            parts.append("degraded to %s" % self.fallback_strategy)
        if self.executed_executor != self.requested_executor:
            parts.append(
                "executor degraded %s -> %s"
                % (self.requested_executor, self.executed_executor)
            )
        for strategy, error in self.attempts:
            parts.append("%s failed: %s" % (strategy, error))
        for name, info in sorted(self.quarantined.items()):
            parts.append("quarantined %s (%s)" % (name, info["reason"]))
        return "; ".join(parts)


class ResiliencePolicy:
    """Bundles everything the pipeline needs to fail soft.

    Pass one to :class:`~repro.api.Connection` (connection-wide) or to a
    single ``execute_query`` call. ``paranoid=True`` re-analyzes the graph
    after every rule firing through the rewrite-soundness checker
    (:class:`~repro.analysis.soundness.SoundnessChecker`): new *error*
    diagnostics are attributed to the firing rule, rolled back and the
    rule quarantined. ``soundness=False`` drops back to the bare
    fail-fast ``validate_graph`` (no attribution, structural checks
    only). In paranoid mode, ``equivalence=True`` (the default) also
    submits each firing to chase-based translation validation
    (:class:`~repro.analysis.equivalence.EquivalenceChecker`): a firing
    the chase *refutes* — proves to change query meaning on a concrete
    counterexample database — is rolled back and the rule quarantined
    under code ``QGM601``. ``protect_rules=False`` disables the
    per-firing snapshot (faster, but a raising rule then fails the whole
    strategy and only the chain fallback applies).
    """

    def __init__(
        self,
        governor=None,
        paranoid=False,
        protect_rules=True,
        fallback_chain=DEFAULT_FALLBACK_CHAIN,
        fallback_on_exhaustion=False,
        fault_plan=None,
        soundness=True,
        equivalence=True,
    ):
        self.governor = governor if governor is not None else ResourceGovernor()
        self.paranoid = paranoid
        self.soundness = soundness
        self.equivalence = equivalence
        self.protect_rules = protect_rules
        self.fallback_chain = tuple(fallback_chain)
        self.fallback_on_exhaustion = fallback_on_exhaustion
        self.fault_plan = fault_plan
        self.quarantine = QuarantineRegistry()

    def begin_query(self):
        """Per-query reset: budgets restart, quarantine empties."""
        self.governor.begin_query()
        self.quarantine.clear()

    def chain_for(self, strategy):
        """The strategies to try, in order, starting at ``strategy``. A
        strategy outside the declared chain (e.g. ``correlated``) has no
        fallback: it runs alone."""
        if strategy not in self.fallback_chain:
            return (strategy,)
        index = self.fallback_chain.index(strategy)
        return self.fallback_chain[index:]

    def rules_for(self, rules):
        """Apply the fault plan's wrapping (test harness) to a rule list."""
        if self.fault_plan is None:
            return rules
        return self.fault_plan.wrap_rules(rules)
