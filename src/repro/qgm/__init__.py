"""QGM — the Query Graph Model of Starburst [PHH92], as described in §2 of
the paper: boxes, quantifiers, predicate edges, correlation, common
subexpressions and cycles for recursion.
"""

from repro.qgm.expr import (
    QExpr,
    QLiteral,
    QParam,
    QColRef,
    QUnary,
    QBinary,
    QFunc,
    QAggregate,
    QIsNull,
    QLike,
    QCase,
    column_refs,
    referenced_quantifiers,
    substitute_refs,
    map_expr,
    conjuncts,
)
from repro.qgm.model import (
    Box,
    BoxKind,
    DistinctMode,
    MagicRole,
    OutputColumn,
    Quantifier,
    QuantifierType,
    QueryGraph,
)
from repro.qgm.builder import build_query_graph
from repro.qgm.clone import clone_box, clone_graph, restore_graph
from repro.qgm.stratum import assign_strata, reduced_dependency_graph
from repro.qgm.render import render_text, render_dot, graph_summary
from repro.qgm.validate import validate_graph

__all__ = [
    "QExpr",
    "QLiteral",
    "QParam",
    "QColRef",
    "QUnary",
    "QBinary",
    "QFunc",
    "QAggregate",
    "QIsNull",
    "QLike",
    "QCase",
    "column_refs",
    "referenced_quantifiers",
    "substitute_refs",
    "map_expr",
    "conjuncts",
    "Box",
    "BoxKind",
    "DistinctMode",
    "MagicRole",
    "OutputColumn",
    "Quantifier",
    "QuantifierType",
    "QueryGraph",
    "build_query_graph",
    "clone_box",
    "clone_graph",
    "restore_graph",
    "assign_strata",
    "reduced_dependency_graph",
    "render_text",
    "render_dot",
    "graph_summary",
    "validate_graph",
]
