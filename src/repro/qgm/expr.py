"""Expressions inside QGM boxes.

QGM expressions differ from SQL AST expressions in one crucial way: column
references are *resolved* — a :class:`QColRef` points at a
:class:`~repro.qgm.model.Quantifier` object, not a name. A reference to a
quantifier that does not belong to the expression's own box is a
*correlation* (the paper's inter-box predicate edges).

Boolean predicates are stored as conjunct lists on boxes, so ``AND`` nodes
rarely appear; :func:`conjuncts` flattens them when they do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

if TYPE_CHECKING:
    # Imported for annotations only: model.py imports this module at
    # runtime, so the reverse import must stay type-checking-only.
    from repro.qgm.model import Quantifier


class QExpr:
    """Base class for QGM expressions."""

    def children(self) -> Tuple["QExpr", ...]:
        return ()


@dataclass
class QLiteral(QExpr):
    """A constant value (None is SQL NULL)."""

    value: object

    def __str__(self):
        if self.value is None:
            return "NULL"
        if isinstance(self.value, str):
            return "'%s'" % self.value
        return str(self.value)


class _ParamMarker:
    """The placeholder value a :class:`QParam` carries before binding.

    Markers compare (and hash) by parameter index, so two parameters are
    structurally equal only when they are the *same* parameter — a rewrite
    that dedupes predicates must never conflate ``?1`` with ``?2``. The
    cardinality estimator's numeric guards reject markers, so parameters
    fall back to default selectivities, exactly like an unknown constant.
    """

    __slots__ = ("index",)

    def __init__(self, index):
        self.index = index

    def __eq__(self, other):
        return isinstance(other, _ParamMarker) and other.index == self.index

    def __hash__(self):
        return hash(("?", self.index))

    def __repr__(self):
        return "?%d" % (self.index + 1)

    __str__ = __repr__


class QParam(QLiteral):
    """A prepared-statement parameter (``?`` in SQL text).

    Subclassing :class:`QLiteral` is deliberate: every rewrite, adornment
    and analysis path that treats a literal as a bindable constant (no
    column references) treats a parameter identically — which is the whole
    point of caching rewritten plans per binding pattern. The carried
    ``value`` is a :class:`_ParamMarker`; executing a graph that still
    contains a :class:`QParam` is an error (bind first with
    :func:`repro.qgm.params.bind_parameters`).
    """

    def __init__(self, index):
        super().__init__(value=_ParamMarker(index))
        self.index = index

    def __str__(self):
        return "?%d" % (self.index + 1)

    def __repr__(self):
        return "QParam(index=%d)" % self.index


@dataclass(eq=False)
class QColRef(QExpr):
    """A resolved reference to column ``column`` of ``quantifier``."""

    quantifier: "Quantifier"
    column: str

    def __str__(self):
        return "%s.%s" % (self.quantifier.name, self.column)


@dataclass
class QUnary(QExpr):
    """Unary ``-`` or ``NOT``."""

    op: str
    operand: QExpr

    def children(self):
        return (self.operand,)

    def __str__(self):
        return "%s(%s)" % (self.op, self.operand)


@dataclass
class QBinary(QExpr):
    """Binary operator (comparisons, arithmetic, AND/OR, ``||``)."""

    op: str
    left: QExpr
    right: QExpr

    def children(self):
        return (self.left, self.right)

    def __str__(self):
        return "(%s %s %s)" % (self.left, self.op, self.right)


@dataclass
class QFunc(QExpr):
    """Scalar function call (non-aggregate)."""

    name: str
    args: List[QExpr] = field(default_factory=list)

    def children(self):
        return tuple(self.args)

    def __str__(self):
        return "%s(%s)" % (self.name, ", ".join(str(a) for a in self.args))


@dataclass
class QAggregate(QExpr):
    """An aggregate over the input of a groupby box.

    Only valid as (part of) an output column of a GROUPBY box. ``arg`` is
    None for ``COUNT(*)``.
    """

    func: str
    arg: Optional[QExpr] = None
    distinct: bool = False

    def children(self):
        return (self.arg,) if self.arg is not None else ()

    def __str__(self):
        inner = "*" if self.arg is None else str(self.arg)
        if self.distinct:
            inner = "DISTINCT " + inner
        return "%s(%s)" % (self.func, inner)


@dataclass
class QIsNull(QExpr):
    """``expr IS [NOT] NULL``."""

    operand: QExpr
    negated: bool = False

    def children(self):
        return (self.operand,)

    def __str__(self):
        return "%s IS %sNULL" % (self.operand, "NOT " if self.negated else "")


@dataclass
class QLike(QExpr):
    """``expr [NOT] LIKE pattern``."""

    operand: QExpr
    pattern: QExpr
    negated: bool = False

    def children(self):
        return (self.operand, self.pattern)

    def __str__(self):
        return "%s %sLIKE %s" % (self.operand, "NOT " if self.negated else "", self.pattern)


@dataclass
class QCase(QExpr):
    """Searched CASE expression."""

    branches: List[Tuple[QExpr, QExpr]]
    default: Optional[QExpr] = None

    def children(self):
        out = []
        for cond, value in self.branches:
            out.append(cond)
            out.append(value)
        if self.default is not None:
            out.append(self.default)
        return tuple(out)

    def __str__(self):
        parts = ["CASE"]
        for cond, value in self.branches:
            parts.append("WHEN %s THEN %s" % (cond, value))
        if self.default is not None:
            parts.append("ELSE %s" % self.default)
        parts.append("END")
        return " ".join(parts)


# ---------------------------------------------------------------------------
# Walkers and rewriters
# ---------------------------------------------------------------------------


def walk(expr: QExpr) -> Iterator[QExpr]:
    """Yield ``expr`` and all sub-expressions depth-first."""
    yield expr
    for child in expr.children():
        for node in walk(child):
            yield node


def column_refs(expr: QExpr) -> List[QColRef]:
    """Return the list of :class:`QColRef` nodes inside ``expr``."""
    return [node for node in walk(expr) if isinstance(node, QColRef)]


def referenced_quantifiers(expr: QExpr) -> Set["Quantifier"]:
    """Return the set of quantifiers referenced by ``expr``."""
    return {ref.quantifier for ref in column_refs(expr)}


def map_expr(expr: QExpr, fn: Callable[[QExpr], QExpr]) -> QExpr:
    """Rebuild ``expr`` bottom-up, replacing each node by ``fn(node)``.

    ``fn`` receives a node whose children have already been mapped; if it
    returns the node unchanged the original object is reused where possible.
    """
    if isinstance(expr, QColRef) or isinstance(expr, QLiteral):
        return fn(expr)
    if isinstance(expr, QUnary):
        rebuilt = QUnary(op=expr.op, operand=map_expr(expr.operand, fn))
        return fn(rebuilt)
    if isinstance(expr, QBinary):
        rebuilt = QBinary(
            op=expr.op,
            left=map_expr(expr.left, fn),
            right=map_expr(expr.right, fn),
        )
        return fn(rebuilt)
    if isinstance(expr, QFunc):
        rebuilt = QFunc(name=expr.name, args=[map_expr(a, fn) for a in expr.args])
        return fn(rebuilt)
    if isinstance(expr, QAggregate):
        rebuilt = QAggregate(
            func=expr.func,
            arg=map_expr(expr.arg, fn) if expr.arg is not None else None,
            distinct=expr.distinct,
        )
        return fn(rebuilt)
    if isinstance(expr, QIsNull):
        rebuilt = QIsNull(operand=map_expr(expr.operand, fn), negated=expr.negated)
        return fn(rebuilt)
    if isinstance(expr, QLike):
        rebuilt = QLike(
            operand=map_expr(expr.operand, fn),
            pattern=map_expr(expr.pattern, fn),
            negated=expr.negated,
        )
        return fn(rebuilt)
    if isinstance(expr, QCase):
        rebuilt = QCase(
            branches=[(map_expr(c, fn), map_expr(v, fn)) for c, v in expr.branches],
            default=map_expr(expr.default, fn) if expr.default is not None else None,
        )
        return fn(rebuilt)
    raise TypeError("unknown QGM expression node %r" % type(expr).__name__)


def substitute_refs(
    expr: QExpr, mapping: Callable[[QColRef], Optional[QExpr]]
) -> QExpr:
    """Replace column references according to ``mapping``.

    ``mapping`` is a callable taking a :class:`QColRef` and returning either
    a replacement expression or None to keep the reference as is.
    """

    def visit(node):
        if isinstance(node, QColRef):
            replacement = mapping(node)
            if replacement is not None:
                return replacement
        return node

    return map_expr(expr, visit)


def remap_quantifier(
    expr: QExpr, old_to_new: Dict["Quantifier", "Quantifier"]
) -> QExpr:
    """Re-point column refs from old quantifiers to new ones (same columns).

    ``old_to_new`` maps quantifier → quantifier. Refs to quantifiers not in
    the mapping are left untouched (e.g. correlated refs).
    """

    def mapping(ref):
        new_q = old_to_new.get(ref.quantifier)
        if new_q is None:
            return None
        return QColRef(quantifier=new_q, column=ref.column)

    return substitute_refs(expr, mapping)


def conjuncts(expr: QExpr) -> List[QExpr]:
    """Flatten an expression into its top-level AND conjuncts."""
    if isinstance(expr, QBinary) and expr.op == "AND":
        return conjuncts(expr.left) + conjuncts(expr.right)
    return [expr]


def is_simple_equality(expr: QExpr) -> bool:
    """True when ``expr`` is ``a = b`` with both sides plain column refs."""
    return (
        isinstance(expr, QBinary)
        and expr.op == "="
        and isinstance(expr.left, QColRef)
        and isinstance(expr.right, QColRef)
    )


def equality_sides(expr: QExpr) -> Optional[Tuple[QColRef, QColRef]]:
    """For ``a = b`` equality over column refs, return (left_ref, right_ref)."""
    if not is_simple_equality(expr):
        return None
    return (expr.left, expr.right)


_COMPARISON_OPS = frozenset({"=", "<>", "<", "<=", ">", ">="})


def is_comparison(expr: QExpr) -> bool:
    """True when ``expr`` is a binary comparison node."""
    return isinstance(expr, QBinary) and expr.op in _COMPARISON_OPS


def expr_equal(left: QExpr, right: QExpr) -> bool:
    """Structural equality of two QGM expressions.

    Column references compare by quantifier *identity* plus column name.
    """
    if type(left) is not type(right):
        return False
    if isinstance(left, QLiteral):
        return left.value == right.value and type(left.value) is type(right.value)
    if isinstance(left, QColRef):
        return left.quantifier is right.quantifier and left.column == right.column
    if isinstance(left, QUnary):
        return left.op == right.op and expr_equal(left.operand, right.operand)
    if isinstance(left, QBinary):
        return (
            left.op == right.op
            and expr_equal(left.left, right.left)
            and expr_equal(left.right, right.right)
        )
    if isinstance(left, QFunc):
        return (
            left.name == right.name
            and len(left.args) == len(right.args)
            and all(expr_equal(a, b) for a, b in zip(left.args, right.args))
        )
    if isinstance(left, QAggregate):
        if left.func != right.func or left.distinct != right.distinct:
            return False
        if (left.arg is None) != (right.arg is None):
            return False
        return left.arg is None or expr_equal(left.arg, right.arg)
    if isinstance(left, QIsNull):
        return left.negated == right.negated and expr_equal(left.operand, right.operand)
    if isinstance(left, QLike):
        return (
            left.negated == right.negated
            and expr_equal(left.operand, right.operand)
            and expr_equal(left.pattern, right.pattern)
        )
    if isinstance(left, QCase):
        if len(left.branches) != len(right.branches):
            return False
        for (lc, lv), (rc, rv) in zip(left.branches, right.branches):
            if not expr_equal(lc, rc) or not expr_equal(lv, rv):
                return False
        if (left.default is None) != (right.default is None):
            return False
        return left.default is None or expr_equal(left.default, right.default)
    raise TypeError("unknown QGM expression node %r" % type(left).__name__)
