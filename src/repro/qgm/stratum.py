"""Stratum numbers (§2 of the paper).

Blobs (here: boxes) form a dependency graph: an edge from box U to box V
when V references U. Strongly connected components are collapsed (recursive
queries) and a topological sort of the reduced graph assigns stratum
numbers; base tables get stratum 0.
"""

from __future__ import annotations

from repro.errors import QgmError
from repro.qgm.model import BoxKind


def _tarjan_scc(nodes, successors):
    """Tarjan's strongly-connected-components, iterative.

    Returns a list of components (each a list of nodes) in reverse
    topological order (consumers before producers).
    """
    index_counter = [0]
    stack = []
    lowlink = {}
    index = {}
    on_stack = set()
    components = []

    for root in nodes:
        if id(root) in index:
            continue
        work = [(root, iter(successors(root)))]
        index[id(root)] = lowlink[id(root)] = index_counter[0]
        index_counter[0] += 1
        stack.append(root)
        on_stack.add(id(root))
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if id(succ) not in index:
                    index[id(succ)] = lowlink[id(succ)] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(succ)
                    on_stack.add(id(succ))
                    work.append((succ, iter(successors(succ))))
                    advanced = True
                    break
                if id(succ) in on_stack:
                    lowlink[id(node)] = min(lowlink[id(node)], index[id(succ)])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[id(parent)] = min(lowlink[id(parent)], lowlink[id(node)])
            if lowlink[id(node)] == index[id(node)]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(id(member))
                    component.append(member)
                    if member is node:
                        break
                components.append(component)
    return components


def reduced_dependency_graph(graph):
    """Collapse strongly connected components of the box dependency graph.

    Returns (components, component_of) where ``components`` is in
    topological order (producers before consumers) and ``component_of``
    maps ``id(box)`` to a component index.
    """
    boxes = graph.boxes()

    def successors(box):
        seen = set()
        for quantifier in box.quantifiers:
            if id(quantifier.input_box) not in seen:
                seen.add(id(quantifier.input_box))
                yield quantifier.input_box
        for magic in box.linked_magic:
            if id(magic) not in seen:
                seen.add(id(magic))
                yield magic

    components = _tarjan_scc(boxes, successors)
    # Tarjan emits components with producers first already (a component is
    # completed only after everything it depends on), so this order is the
    # evaluation order.
    component_of = {}
    for idx, component in enumerate(components):
        for box in component:
            component_of[id(box)] = idx
    return components, component_of


def assign_strata(graph):
    """Assign stratum numbers to every reachable box.

    Returns a dict ``id(box) -> stratum``. Base tables get 0; every other
    box gets 1 + max stratum of the boxes it references (boxes in one
    strongly connected component share a stratum).
    """
    components, component_of = reduced_dependency_graph(graph)
    strata = {}
    component_stratum = {}
    for idx, component in enumerate(components):
        depends = 0
        is_base_only = all(box.kind == BoxKind.BASE for box in component)
        for box in component:
            for child in list(box.referenced_boxes()) + list(box.linked_magic):
                child_component = component_of[id(child)]
                if child_component == idx:
                    continue
                if child_component not in component_stratum:
                    raise QgmError("dependency graph is not topologically ordered")
                depends = max(depends, component_stratum[child_component] + 1)
        stratum = 0 if is_base_only else max(depends, 1)
        component_stratum[idx] = stratum
        for box in component:
            strata[id(box)] = stratum
    return strata


def is_recursive(graph):
    """True when the graph contains a cycle (some SCC with >1 box or a
    self-loop)."""
    components, _ = reduced_dependency_graph(graph)
    for component in components:
        if len(component) > 1:
            return True
        box = component[0]
        for child in box.referenced_boxes():
            if child is box:
                return True
    return False
