"""Prepared-statement parameter discovery and binding over QGM graphs.

A graph built from SQL containing ``?`` markers carries
:class:`~repro.qgm.expr.QParam` nodes wherever a constant would sit. The
rewrite pipeline treats them exactly like literals (that is the point:
the rewritten, optimized graph is reusable for *any* values with the
same binding pattern), but the execution engine refuses to evaluate
them — callers must :func:`bind_parameters` first, which substitutes
plain :class:`~repro.qgm.expr.QLiteral` values in place.

Binding mutates the graph it is given; bind a *clone* when the unbound
graph must stay reusable (the server's plan cache does exactly that)::

    bound = bind_parameters(clone_graph(cached.graph), values)
"""

from __future__ import annotations

from repro.errors import ExecutionError
from repro.qgm import expr as qe


def parameter_indices(graph):
    """Sorted list of distinct parameter indices appearing in ``graph``."""
    indices = set()
    for box in graph.boxes():
        for expression in box.all_expressions():
            for node in qe.walk(expression):
                if isinstance(node, qe.QParam):
                    indices.add(node.index)
    return sorted(indices)


def parameter_count(graph):
    """Number of parameter slots the graph expects (max index + 1)."""
    indices = parameter_indices(graph)
    return indices[-1] + 1 if indices else 0


def bind_parameters(graph, values):
    """Replace every :class:`QParam` in ``graph`` with the corresponding
    literal from ``values`` (a sequence indexed by parameter position).

    Mutates and returns ``graph``. Raises :class:`ExecutionError` when a
    parameter index has no value (too few values is the common client
    bug; surplus values are tolerated so clients may over-provide).
    """
    values = list(values)

    def substitute(node):
        if isinstance(node, qe.QParam):
            if node.index >= len(values):
                raise ExecutionError(
                    "statement expects parameter ?%d but only %d value(s) "
                    "were bound" % (node.index + 1, len(values)),
                    context={"parameter": node.index, "bound": len(values)},
                )
            return qe.QLiteral(value=values[node.index])
        return node

    for box in graph.boxes():
        for column in box.columns:
            if column.expr is not None:
                column.expr = qe.map_expr(column.expr, substitute)
        box.predicates = [qe.map_expr(p, substitute) for p in box.predicates]
        box.group_keys = [qe.map_expr(k, substitute) for k in box.group_keys]
        for quantifier in box.quantifiers:
            if quantifier.selector_predicates:
                quantifier.selector_predicates = [
                    qe.map_expr(p, substitute)
                    for p in quantifier.selector_predicates
                ]
    return graph
