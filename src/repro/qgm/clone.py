"""Cloning machinery for QGM boxes.

The EMST rule needs *adorned copies* of boxes ("a copy with adornment alpha
may have been made earlier, or such a copy may be created at this step",
Algorithm 4.2 step 3). A copy shares children that do not correlate back
into the copied region and deep-clones children that do, so the copy is a
self-contained unit whose expressions never reference the original's
quantifiers.
"""

from __future__ import annotations

import copy as _copy

from repro.qgm import expr as qe
from repro.qgm.model import Box, Quantifier


def clone_graph(graph):
    """A self-contained deep copy of a whole :class:`QueryGraph`.

    The catalog is shared (it is read-only metadata and may be large);
    every box, quantifier and expression is copied, preserving ``box_id``
    values so plan artifacts keyed by box id (join orders) remain valid
    against the copy. Used by the resilience layer to snapshot the graph
    before a rule firing so a failed firing can be rolled back.
    """
    memo = {}
    if graph.catalog is not None:
        memo[id(graph.catalog)] = graph.catalog
    return _copy.deepcopy(graph, memo)


def restore_graph(graph, snapshot):
    """Restore ``graph`` *in place* to a snapshot taken by
    :func:`clone_graph`. In-place matters: callers up the stack (the
    rewrite context, the heuristic pipeline) hold references to the graph
    object itself."""
    graph.__dict__.clear()
    graph.__dict__.update(snapshot.__dict__)


def _subtree_boxes(box):
    """All boxes reachable from ``box`` through quantifiers (inclusive)."""
    seen = {}
    stack = [box]
    while stack:
        current = stack.pop()
        if id(current) in seen:
            continue
        seen[id(current)] = current
        for quantifier in current.quantifiers:
            stack.append(quantifier.input_box)
        for magic in current.linked_magic:
            stack.append(magic)
    return list(seen.values())


def _boxes_referencing(boxes, quantifier_owner_ids):
    """Of ``boxes``, those whose expressions reference a quantifier owned by
    a box in ``quantifier_owner_ids``."""
    out = []
    for box in boxes:
        for expression in box.all_expressions():
            refs = qe.column_refs(expression)
            if any(
                id(ref.quantifier.parent_box) in quantifier_owner_ids for ref in refs
            ):
                out.append(box)
                break
    return out


def clone_box(graph, box, name=None, keep_linked_magic=False, deep_derived=False):
    """Clone ``box`` and return the copy.

    Children are shared unless their subtree correlates back into the cloned
    region, in which case they are cloned too (recursively, to a fixpoint).
    Cloned boxes get fresh ids and names; expressions are remapped onto the
    cloned quantifiers. Correlated references to quantifiers *outside* the
    cloned region are preserved as-is.

    With ``deep_derived`` every non-base box of the subtree is cloned (base
    tables stay shared) — used when the copy will be *mutated* down its
    whole chain, e.g. by the local-magic rule pushing a restriction below
    a shared grouping.
    """
    # Fixpoint: which boxes must be cloned (vs shared)?
    to_clone = {id(box): box}
    if deep_derived:
        from repro.qgm.model import BoxKind

        for member in _subtree_boxes(box):
            if member.kind != BoxKind.BASE:
                to_clone[id(member)] = member
    # A recursive box must be cloned together with its whole strongly
    # connected component, otherwise the copy's recursive references would
    # leak back into the original cycle.
    own_subtree = {id(b): b for b in _subtree_boxes(box)}
    for candidate in own_subtree.values():
        if candidate is box:
            continue
        if id(box) in {id(b) for b in _subtree_boxes(candidate)}:
            to_clone[id(candidate)] = candidate
    while True:
        region_ids = set(to_clone)
        descendants = []
        for member in list(to_clone.values()):
            for quantifier in member.quantifiers:
                for child in _subtree_boxes(quantifier.input_box):
                    if id(child) not in region_ids:
                        descendants.append(child)
        # A descendant correlating into the cloned region must be cloned,
        # together with every box on the path from the region to it.
        correlating = _boxes_referencing(descendants, region_ids)
        if not correlating:
            break
        correlating_ids = {id(b) for b in correlating}
        added = False
        for member in correlating:
            if id(member) not in to_clone:
                to_clone[id(member)] = member
                added = True
        # Also pull in ancestors within the subtree chain: any box already
        # slated for cloning that references a to-clone box keeps working
        # via the quantifier re-pointing below, but a *shared* intermediate
        # box ranging over a cloned child would leak the clone into the
        # original graph, so intermediates must be cloned as well.
        changed = True
        while changed:
            changed = False
            for member in descendants:
                if id(member) in to_clone:
                    continue
                for quantifier in member.quantifiers:
                    if id(quantifier.input_box) in to_clone:
                        to_clone[id(member)] = member
                        added = True
                        changed = True
                        break
        if not added:
            break

    # Create empty clones and quantifier mapping.
    box_map = {}
    quantifier_map = {}
    for original_id, original in to_clone.items():
        copy = Box(kind=original.kind, name=original.name)
        graph.register_box(copy)
        copy.distinct = original.distinct
        copy.table_name = original.table_name
        copy.schema = original.schema
        copy.magic_role = original.magic_role
        copy.adornment = original.adornment
        copy.properties = dict(original.properties)
        box_map[original_id] = copy
    for original_id, original in to_clone.items():
        copy = box_map[original_id]
        for quantifier in original.quantifiers:
            target = box_map.get(id(quantifier.input_box), quantifier.input_box)
            new_quantifier = Quantifier(
                name=graph.fresh_name(quantifier.name),
                qtype=quantifier.qtype,
                input_box=target,
                is_magic=quantifier.is_magic,
                null_aware=quantifier.null_aware,
            )
            copy.add_quantifier(new_quantifier)
            quantifier_map[quantifier] = new_quantifier

    def remap(expression):
        return qe.remap_quantifier(expression, quantifier_map)

    from repro.qgm.model import OutputColumn

    for original_id, original in to_clone.items():
        copy = box_map[original_id]
        copy.columns = [
            OutputColumn(
                name=column.name,
                expr=remap(column.expr) if column.expr is not None else None,
            )
            for column in original.columns
        ]
        copy.predicates = [remap(p) for p in original.predicates]
        copy.group_keys = [remap(k) for k in original.group_keys]
        for quantifier, new_quantifier in quantifier_map.items():
            if quantifier.parent_box is original and quantifier.selector_predicates:
                new_quantifier.selector_predicates = [
                    remap(p) for p in quantifier.selector_predicates
                ]
                new_quantifier.decorrelated = quantifier.decorrelated
        if keep_linked_magic:
            copy.linked_magic = list(original.linked_magic)

    result = box_map[id(box)]
    if name is not None:
        result.name = name
    return result, quantifier_map
