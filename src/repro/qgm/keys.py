"""Derivation of unique keys for QGM boxes.

The distinct-pullup rewrite rule (and hence the phase-3 merging of magic
boxes, see Example 4.1 in the paper) depends on *proving duplicate
freeness*: the paper infers "that duplicate magic tuples will not be
generated" so that the DISTINCT in statements SD3/SD4 can be dropped and the
magic boxes merged.

A *key* of a box is a set of output column names whose values are unique in
the box's output; the empty key means "at most one row". Since the dataflow
subsystem landed, this module is a thin façade over the fixpoint key
analysis (:mod:`repro.analysis.dataflow.keyflow`), which derives keys

* through recursive cycles (the historical recursive derivation bailed out
  and returned none),
* for zero-quantifier constant selects (at most one row — this is what
  proves constant magic seed boxes duplicate-free),
* for INTERSECT from *either* input (not just the left), and
* for outer joins (left key ∪ right key).

See the keyflow module for the per-box transfer functions and the
soundness/termination argument for the fixpoint.
"""

from __future__ import annotations


def box_keys(box, ignore_enforce=False, _visiting=None):
    """Return the list of derivable keys for ``box``.

    Each key is a frozenset of lower-cased output column names. Set
    ``ignore_enforce`` to derive keys as if the box did *not* enforce
    DISTINCT (used to decide whether the enforcement is redundant).
    ``_visiting`` is accepted for backward compatibility and ignored — the
    fixpoint backend handles recursive graphs natively.
    """
    # Imported lazily: repro.analysis.dataflow imports the QGM model, and
    # repro.qgm.__init__ imports this module.
    from repro.analysis.dataflow.keyflow import solve_box_keys

    return solve_box_keys(box, ignore_enforce=ignore_enforce)


def _minimal(keys):
    """Drop keys that are supersets of other keys; deduplicate.

    Retained as a public-ish helper; the canonical implementation lives in
    :func:`repro.analysis.dataflow.keyflow.minimal_keys`.
    """
    from repro.analysis.dataflow.keyflow import minimal_keys

    return minimal_keys(keys)


def is_duplicate_free(box, ignore_enforce=False):
    """True when the box's output provably contains no duplicate rows."""
    return bool(box_keys(box, ignore_enforce=ignore_enforce))
