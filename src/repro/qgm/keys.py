"""Derivation of unique keys for QGM boxes.

The distinct-pullup rewrite rule (and hence the phase-3 merging of magic
boxes, see Example 4.1 in the paper) depends on *proving duplicate
freeness*: the paper infers "that duplicate magic tuples will not be
generated" so that the DISTINCT in statements SD3/SD4 can be dropped and the
magic boxes merged.

A *key* of a box is a set of output column names whose values are unique in
the box's output. Keys are derived bottom-up:

* BASE — the declared primary/unique keys.
* distinct=ENFORCE — the full output column set.
* GROUPBY — the group-key columns.
* SELECT — start from child keys; a quantifier whose full key is equated to
  columns of other quantifiers (or constants) contributes no multiplicity,
  so the union of the remaining quantifiers' keys is a key of the join
  (the classic key-preservation rule for foreign-key-style joins).
* EXCEPT/INTERSECT — keys of the left input carry over positionally.
"""

from __future__ import annotations

from repro.qgm import expr as qe
from repro.qgm.model import BoxKind, DistinctMode, QuantifierType


def box_keys(box, ignore_enforce=False, _visiting=None):
    """Return the list of derivable keys for ``box``.

    Each key is a frozenset of lower-cased output column names. Set
    ``ignore_enforce`` to derive keys as if the box did *not* enforce
    DISTINCT (used to decide whether the enforcement is redundant).
    Recursive graphs terminate via the ``_visiting`` guard (a box inside a
    cycle derives no keys).
    """
    if _visiting is None:
        _visiting = set()
    if id(box) in _visiting:
        return []
    _visiting = _visiting | {id(box)}

    keys = []
    if box.distinct == DistinctMode.ENFORCE and not ignore_enforce:
        keys.append(frozenset(name.lower() for name in box.column_names))

    if box.kind == BoxKind.BASE:
        available = {name.lower() for name in box.column_names}
        for declared in box.schema.all_keys():
            lowered = frozenset(part.lower() for part in declared)
            if lowered <= available:
                keys.append(lowered)
    elif box.kind == BoxKind.GROUPBY:
        key_columns = set()
        complete = True
        for column in box.columns:
            if isinstance(column.expr, qe.QAggregate):
                continue
            key_columns.add(column.name.lower())
        # The group keys functionally determine the whole row, so the set of
        # non-aggregate output columns is a key iff every group key is
        # exposed. Our builder always exposes all group keys.
        exposed = 0
        for group_key in box.group_keys:
            for column in box.columns:
                if column.expr is not None and qe.expr_equal(column.expr, group_key):
                    exposed += 1
                    break
        if exposed == len(box.group_keys):
            keys.append(frozenset(key_columns))
        else:
            complete = False
        del complete
    elif box.kind == BoxKind.SELECT:
        keys.extend(_select_box_keys(box, _visiting))
    elif box.kind in (BoxKind.EXCEPT, BoxKind.INTERSECT):
        left = box.quantifiers[0].input_box
        left_names = [c.name.lower() for c in left.columns]
        own_names = [c.name.lower() for c in box.columns]
        position = {name: idx for idx, name in enumerate(left_names)}
        for key in box_keys(left, _visiting=_visiting):
            try:
                mapped = frozenset(own_names[position[part]] for part in key)
            except KeyError:
                continue
            keys.append(mapped)

    return _minimal(keys)


def _select_box_keys(box, visiting):
    """Keys of a select box, via the determined-quantifier elimination."""
    foreach = box.foreach_quantifiers()
    if not foreach:
        return []

    child_keys = {}
    for quantifier in foreach:
        child_keys[quantifier] = box_keys(quantifier.input_box, _visiting=visiting)

    local = set(box.quantifiers)
    # Equalities available for determination: q.col = <expr over others or
    # constant>, collected per quantifier column.
    bound_columns = {quantifier: set() for quantifier in foreach}
    for predicate in box.predicates:
        if not (isinstance(predicate, qe.QBinary) and predicate.op == "="):
            continue
        for side, other in ((predicate.left, predicate.right), (predicate.right, predicate.left)):
            if not isinstance(side, qe.QColRef):
                continue
            quantifier = side.quantifier
            if quantifier not in bound_columns:
                continue
            other_refs = qe.column_refs(other)
            # The other side must not involve this same quantifier, and all
            # of its references must be local (or it is a constant).
            if any(ref.quantifier is quantifier for ref in other_refs):
                continue
            if any(ref.quantifier not in local for ref in other_refs):
                continue
            bound_columns[quantifier].add(side.column.lower())

    remaining = list(foreach)
    changed = True
    while changed and len(remaining) > 1:
        changed = False
        for quantifier in list(remaining):
            for key in child_keys[quantifier]:
                if key and key <= bound_columns[quantifier]:
                    remaining.remove(quantifier)
                    changed = True
                    break
            if changed:
                break

    # Union the remaining quantifiers' keys, mapped through the output.
    output_of = {}
    for column in box.columns:
        if isinstance(column.expr, qe.QColRef):
            output_of[(column.expr.quantifier, column.expr.column.lower())] = (
                column.name.lower()
            )

    def mapped_keys(quantifier):
        out = []
        for key in child_keys[quantifier]:
            try:
                out.append(
                    frozenset(output_of[(quantifier, part)] for part in key)
                )
            except KeyError:
                continue
        return out

    per_quantifier = []
    for quantifier in remaining:
        candidates = mapped_keys(quantifier)
        if not candidates:
            return []
        per_quantifier.append(candidates)

    # Combine one key choice per remaining quantifier (cartesian, bounded).
    combined = [frozenset()]
    for candidates in per_quantifier:
        combined = [base | choice for base in combined for choice in candidates][:16]
    return combined


def _minimal(keys):
    """Drop keys that are supersets of other keys; deduplicate."""
    unique = sorted(set(keys), key=len)
    out = []
    for key in unique:
        if not any(existing <= key and existing != key for existing in out):
            if key not in out:
                out.append(key)
    return out


def is_duplicate_free(box, ignore_enforce=False):
    """True when the box's output provably contains no duplicate rows."""
    return bool(box_keys(box, ignore_enforce=ignore_enforce))
