"""Core QGM objects: boxes, quantifiers and the query graph.

A :class:`Box` is a unit of evaluation (the paper's QGM box). A
:class:`Quantifier` is a table reference inside a box, ranging over another
box. The :class:`QueryGraph` owns the top box and bookkeeping shared across
the rewrite machinery (id allocation, the adorned-copy cache, base-box
sharing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import QgmError
from repro.qgm import expr as qe


class BoxKind:
    """Operation types of QGM boxes. New kinds may be registered by
    customizers (see :mod:`repro.magic.properties`)."""

    SELECT = "SELECT"
    GROUPBY = "GROUPBY"
    UNION = "UNION"
    INTERSECT = "INTERSECT"
    EXCEPT = "EXCEPT"
    #: Left outer join — the paper's example of a customizer-added complex
    #: NMQ operation. Quantifier 0 is the preserved (left) side; the box's
    #: predicates are the ON condition.
    OUTERJOIN = "OUTERJOIN"
    BASE = "BASE"


class DistinctMode:
    """Starburst's duplicate-handling property of a box.

    * ``ENFORCE`` — the box must eliminate duplicates from its output.
    * ``PRESERVE`` — the box must deliver exactly the duplicates implied by
      its operation (the default SQL bag semantics).
    * ``PERMIT`` — duplicates may be eliminated or kept freely; the
      consumer does not care. The distinct-pullup rule relaxes ENFORCE to
      PERMIT when duplicate-freeness is provable, which is what allows
      phase-3 merging of magic boxes.
    """

    ENFORCE = "ENFORCE"
    PRESERVE = "PRESERVE"
    PERMIT = "PERMIT"


class MagicRole:
    """Classification of boxes introduced by the EMST rule (§4.1)."""

    REGULAR = "REGULAR"
    MAGIC = "MAGIC"
    SUPPLEMENTARY = "SUPPLEMENTARY"
    CONDITION_MAGIC = "CONDITION_MAGIC"


class QuantifierType:
    """Quantifier flavours.

    * ``F`` — foreach (a plain FROM-clause reference, contributes columns).
    * ``E`` — existential (IN / EXISTS / = ANY subqueries; semi-join).
    * ``A`` — anti-existential (NOT IN / NOT EXISTS / op ALL; anti-join).
    * ``S`` — scalar subquery (at most one row; empty yields NULL).
    """

    FOREACH = "F"
    EXISTENTIAL = "E"
    ANTI = "A"
    SCALAR = "S"


@dataclass
class OutputColumn:
    """One output column of a box.

    ``expr`` is the defining expression for SELECT and GROUPBY boxes. BASE
    and set-operation boxes have positional columns with ``expr=None``.
    """

    name: str
    expr: Optional[qe.QExpr] = None


@dataclass(eq=False)
class Quantifier:
    """A table reference inside a box, ranging over ``input_box``."""

    name: str
    qtype: str
    input_box: "Box"
    parent_box: Optional["Box"] = None
    is_magic: bool = False
    null_aware: bool = False  # NOT IN semantics for ANTI quantifiers
    #: Set by EMST when a SCALAR subquery has been decorrelated: the
    #: subquery now holds one row *per binding* and the selector
    #: predicates pick the row for the current outer row (empty → NULL).
    decorrelated: bool = False
    #: Selector predicates of a decorrelated SCALAR quantifier (the lifted
    #: correlation equalities). Kept on the quantifier, not in the box's
    #: predicate list: their no-match semantics (bind NULLs, keep the row)
    #: differs from a filter's.
    selector_predicates: List[qe.QExpr] = field(default_factory=list)

    def ref(self, column):
        """Build a column reference to this quantifier."""
        return qe.QColRef(quantifier=self, column=column)

    def output_column_names(self):
        return self.input_box.column_names

    def __repr__(self):
        flags = "*" if self.is_magic else ""
        return "<Q %s%s:%s over %s>" % (self.name, flags, self.qtype, self.input_box.name)


@dataclass(eq=False)
class Box:
    """A QGM box."""

    kind: str
    name: str
    box_id: int = -1
    columns: List[OutputColumn] = field(default_factory=list)
    quantifiers: List[Quantifier] = field(default_factory=list)
    predicates: List[qe.QExpr] = field(default_factory=list)
    distinct: str = DistinctMode.PRESERVE
    # GROUPBY-only: the grouping keys, as expressions over the (single) input
    # quantifier. Output columns of a groupby box are either group keys or
    # QAggregate expressions.
    group_keys: List[qe.QExpr] = field(default_factory=list)
    # BASE-only
    table_name: Optional[str] = None
    schema: Optional[object] = None
    # EMST bookkeeping
    magic_role: str = MagicRole.REGULAR
    adornment: Optional[str] = None
    linked_magic: List["Box"] = field(default_factory=list)
    emst_done: bool = False
    # Free-form extension properties (used by custom operations)
    properties: Dict[str, object] = field(default_factory=dict)

    # -- structure helpers ---------------------------------------------------

    @property
    def column_names(self):
        return [column.name for column in self.columns]

    def column(self, name):
        lowered = name.lower()
        for column in self.columns:
            if column.name.lower() == lowered:
                return column
        raise QgmError("box %r has no column %r" % (self.name, name))

    def column_ordinal(self, name):
        lowered = name.lower()
        for index, column in enumerate(self.columns):
            if column.name.lower() == lowered:
                return index
        raise QgmError("box %r has no column %r" % (self.name, name))

    def has_column(self, name):
        lowered = name.lower()
        return any(column.name.lower() == lowered for column in self.columns)

    def add_quantifier(self, quantifier):
        quantifier.parent_box = self
        self.quantifiers.append(quantifier)
        return quantifier

    def remove_quantifier(self, quantifier):
        self.quantifiers = [q for q in self.quantifiers if q is not quantifier]

    def quantifier(self, name):
        for quantifier in self.quantifiers:
            if quantifier.name == name:
                return quantifier
        raise QgmError("box %r has no quantifier %r" % (self.name, name))

    def foreach_quantifiers(self):
        return [q for q in self.quantifiers if q.qtype == QuantifierType.FOREACH]

    def subquery_quantifiers(self):
        return [q for q in self.quantifiers if q.qtype != QuantifierType.FOREACH]

    @property
    def is_magic_box(self):
        return self.magic_role in (MagicRole.MAGIC, MagicRole.CONDITION_MAGIC)

    @property
    def is_special(self):
        """True for boxes introduced by EMST (magic/supplementary/cond-magic)."""
        return self.magic_role != MagicRole.REGULAR

    # -- expression iteration -------------------------------------------------

    def all_expressions(self):
        """Yield every expression held by this box (columns, predicates,
        group keys, and quantifier selector predicates)."""
        for column in self.columns:
            if column.expr is not None:
                yield column.expr
        for predicate in self.predicates:
            yield predicate
        for key in self.group_keys:
            yield key
        for quantifier in self.quantifiers:
            for predicate in quantifier.selector_predicates:
                yield predicate

    def referenced_boxes(self):
        """Boxes referenced by this box's quantifiers (with duplicates)."""
        return [q.input_box for q in self.quantifiers]

    def local_quantifier_set(self):
        return set(self.quantifiers)

    def correlated_quantifiers(self):
        """Quantifiers referenced by this box's expressions that do NOT
        belong to this box — i.e. correlation (inter-box predicate edges)."""
        local = self.local_quantifier_set()
        out = []
        seen = set()
        for expression in self.all_expressions():
            for quantifier in qe.referenced_quantifiers(expression):
                if quantifier not in local and id(quantifier) not in seen:
                    seen.add(id(quantifier))
                    out.append(quantifier)
        return out

    def __repr__(self):
        adornment = "^%s" % self.adornment if self.adornment else ""
        return "<Box %d %s %s%s>" % (self.box_id, self.kind, self.name, adornment)


class QueryGraph:
    """A whole query: the top box plus shared bookkeeping.

    ``order_by``/``limit`` apply to the top box's output (presentation
    only; they do not participate in rewriting).
    """

    def __init__(self, catalog=None):
        self.catalog = catalog
        self.top_box = None
        self.order_by = []  # list of (ordinal, ascending)
        self.limit = None
        self._next_box_id = 0
        self._base_boxes = {}
        # (original box id, adornment) -> adorned copy, the paper's
        # "a copy with adornment alpha may have been made earlier"
        self.adorned_copies = {}
        # name counters for generated boxes/quantifiers
        self._name_counters = {}

    # -- identity and naming ---------------------------------------------------

    def register_box(self, box):
        if box.box_id == -1:
            box.box_id = self._next_box_id
            self._next_box_id += 1
        return box

    def new_box(self, kind, name, **kwargs):
        box = Box(kind=kind, name=name, **kwargs)
        return self.register_box(box)

    def fresh_name(self, prefix):
        count = self._name_counters.get(prefix, 0)
        self._name_counters[prefix] = count + 1
        if count == 0:
            return prefix
        return "%s_%d" % (prefix, count)

    # -- base boxes --------------------------------------------------------------

    def base_box(self, schema):
        """The shared BASE box for a stored table (one per table)."""
        key = schema.name.lower()
        box = self._base_boxes.get(key)
        if box is None:
            box = self.new_box(
                BoxKind.BASE,
                schema.name.upper(),
                columns=[OutputColumn(name=c.name) for c in schema.columns],
                table_name=schema.name,
                schema=schema,
            )
            self._base_boxes[key] = box
        return box

    # -- traversal ----------------------------------------------------------------

    def boxes(self):
        """All boxes reachable from the top box, depth-first pre-order.

        Safe on cyclic graphs (recursive queries).
        """
        seen = set()
        order = []

        def visit(box):
            if id(box) in seen:
                return
            seen.add(id(box))
            order.append(box)
            for quantifier in box.quantifiers:
                visit(quantifier.input_box)
            for magic in box.linked_magic:
                visit(magic)

        if self.top_box is not None:
            visit(self.top_box)
        return order

    def base_table_names(self):
        """Lower-cased names of the stored tables this graph reads —
        i.e. the tables whose data versions a cached plan (and any cached
        result of this graph) actually depends on."""
        return sorted({
            box.table_name.lower()
            for box in self.boxes()
            if box.kind == BoxKind.BASE and box.table_name
        })

    def consumers(self):
        """Map box → list of quantifiers ranging over it (graph-wide)."""
        uses = {}
        for box in self.boxes():
            for quantifier in box.quantifiers:
                uses.setdefault(id(quantifier.input_box), []).append(quantifier)
        return uses

    def use_count(self, box):
        return len(self.consumers().get(id(box), []))

    def find_box(self, name):
        """Find a reachable box by name (exact match); None if absent."""
        for box in self.boxes():
            if box.name == name:
                return box
        return None

    def select_boxes(self):
        return [b for b in self.boxes() if b.kind == BoxKind.SELECT]

    def summary_counts(self):
        """(boxes, quantifiers, join-predicates) — used by the figure
        benchmarks to report graph complexity like the paper's Figure 1."""
        boxes = self.boxes()
        quantifier_count = sum(len(b.quantifiers) for b in boxes)
        predicate_count = sum(len(b.predicates) for b in boxes)
        return (len(boxes), quantifier_count, predicate_count)
