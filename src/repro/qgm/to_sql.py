"""Render a QGM graph back to SQL text, one statement per box.

Reproduces the presentation of the paper's Figure 5: each non-base box
becomes a view definition ``name AS (SELECT ...)`` and the top box becomes
the query statement. Magic and supplementary boxes render like any other
select box (to other rules — and to the reader — they are ordinary boxes).
"""

from __future__ import annotations

from repro.qgm import expr as qe
from repro.qgm.model import BoxKind, DistinctMode, QuantifierType


def _value(literal):
    if literal is None:
        return "NULL"
    if literal is True:
        return "TRUE"
    if literal is False:
        return "FALSE"
    if isinstance(literal, str):
        return "'%s'" % literal.replace("'", "''")
    return str(literal)


def expr_to_sql(expr):
    """Render a QGM expression with quantifier-qualified column names."""
    if isinstance(expr, qe.QLiteral):
        return _value(expr.value)
    if isinstance(expr, qe.QColRef):
        return "%s.%s" % (expr.quantifier.name, expr.column)
    if isinstance(expr, qe.QBinary):
        return "%s %s %s" % (
            _maybe_paren(expr.left),
            expr.op,
            _maybe_paren(expr.right),
        )
    if isinstance(expr, qe.QUnary):
        if expr.op == "NOT":
            return "NOT (%s)" % expr_to_sql(expr.operand)
        return "-%s" % _maybe_paren(expr.operand)
    if isinstance(expr, qe.QIsNull):
        return "%s IS %sNULL" % (
            _maybe_paren(expr.operand),
            "NOT " if expr.negated else "",
        )
    if isinstance(expr, qe.QLike):
        return "%s %sLIKE %s" % (
            _maybe_paren(expr.operand),
            "NOT " if expr.negated else "",
            expr_to_sql(expr.pattern),
        )
    if isinstance(expr, qe.QFunc):
        return "%s(%s)" % (expr.name, ", ".join(expr_to_sql(a) for a in expr.args))
    if isinstance(expr, qe.QAggregate):
        inner = "*" if expr.arg is None else expr_to_sql(expr.arg)
        if expr.distinct:
            inner = "DISTINCT " + inner
        return "%s(%s)" % (expr.func, inner)
    if isinstance(expr, qe.QCase):
        parts = ["CASE"]
        for cond, value in expr.branches:
            parts.append("WHEN %s THEN %s" % (expr_to_sql(cond), expr_to_sql(value)))
        if expr.default is not None:
            parts.append("ELSE %s" % expr_to_sql(expr.default))
        parts.append("END")
        return " ".join(parts)
    return str(expr)


def _maybe_paren(expr):
    if isinstance(expr, (qe.QLiteral, qe.QColRef, qe.QFunc, qe.QAggregate)):
        return expr_to_sql(expr)
    return "(%s)" % expr_to_sql(expr)


def box_to_sql(box):
    """Render one box as a SELECT (or set-operation) statement body."""
    if box.kind == BoxKind.BASE:
        return box.table_name
    if box.kind in (BoxKind.UNION, BoxKind.INTERSECT, BoxKind.EXCEPT):
        keyword = {
            BoxKind.UNION: "UNION",
            BoxKind.INTERSECT: "INTERSECT",
            BoxKind.EXCEPT: "EXCEPT",
        }[box.kind]
        if box.distinct != DistinctMode.ENFORCE:
            keyword += " ALL"
        parts = [
            "SELECT * FROM %s" % quantifier.input_box.name
            for quantifier in box.quantifiers
        ]
        return (" %s " % keyword).join(parts)
    if box.kind == BoxKind.OUTERJOIN:
        left, right = box.quantifiers
        select_list = ", ".join(
            "%s AS %s" % (expr_to_sql(c.expr), c.name) for c in box.columns
        )
        def _name(q):
            child = q.input_box
            return child.table_name if child.kind == BoxKind.BASE else child.name
        return "SELECT %s FROM %s %s LEFT OUTER JOIN %s %s ON %s" % (
            select_list,
            _name(left), left.name,
            _name(right), right.name,
            " AND ".join(expr_to_sql(p) for p in box.predicates) or "TRUE",
        )
    distinct = "DISTINCT " if box.distinct == DistinctMode.ENFORCE else ""
    select_list = ", ".join(
        "%s AS %s" % (expr_to_sql(column.expr), column.name)
        if column.expr is not None
        else column.name
        for column in box.columns
    )
    from_parts = []
    where_parts = [expr_to_sql(p) for p in box.predicates]
    for quantifier in box.quantifiers:
        child_name = (
            quantifier.input_box.table_name
            if quantifier.input_box.kind == BoxKind.BASE
            else quantifier.input_box.name
        )
        if quantifier.qtype == QuantifierType.FOREACH:
            from_parts.append("%s %s" % (child_name, quantifier.name))
        elif quantifier.qtype == QuantifierType.EXISTENTIAL:
            where_parts.append(
                "EXISTS (SELECT * FROM %s %s)" % (child_name, quantifier.name)
            )
        elif quantifier.qtype == QuantifierType.ANTI:
            where_parts.append(
                "NOT EXISTS (SELECT * FROM %s %s)" % (child_name, quantifier.name)
            )
        else:
            from_parts.append("SCALAR(%s) %s" % (child_name, quantifier.name))
    text = "SELECT %s%s FROM %s" % (distinct, select_list, ", ".join(from_parts) or "VALUES()")
    if where_parts:
        text += " WHERE %s" % " AND ".join(where_parts)
    if box.kind == BoxKind.GROUPBY:
        text = "SELECT %s%s FROM %s" % (
            distinct,
            select_list,
            ", ".join(from_parts),
        )
        if box.group_keys:
            text += " GROUP BY %s" % ", ".join(expr_to_sql(k) for k in box.group_keys)
        else:
            text += " GROUP BY ()"
    return text


def graph_to_sql(graph):
    """Render the whole graph as a list of statements (producers first),
    the way Figure 5 lists D0–D2 / SD0–SD5."""
    from repro.qgm.stratum import reduced_dependency_graph

    components, _ = reduced_dependency_graph(graph)
    statements = []
    for component in components:
        for box in component:
            if box.kind == BoxKind.BASE:
                continue
            adorned = "^%s" % box.adornment if box.adornment else ""
            if box is graph.top_box:
                statements.append("(QUERY): %s" % box_to_sql(box))
            else:
                statements.append(
                    "%s%s AS (%s)" % (box.name, adorned, box_to_sql(box))
                )
    return statements
