"""Structural invariant checks for QGM graphs.

``validate_graph`` raises :class:`~repro.errors.QgmError` on the first
violation. The rewrite tests call it after every rule application so a rule
that corrupts the graph fails loudly.
"""

from __future__ import annotations

from repro.errors import QgmError
from repro.qgm import expr as qe
from repro.qgm.model import BoxKind, DistinctMode, QuantifierType

_VALID_DISTINCT = {DistinctMode.ENFORCE, DistinctMode.PRESERVE, DistinctMode.PERMIT}


def validate_graph(graph):
    """Check structural invariants of every reachable box."""
    boxes = graph.boxes()
    box_ids = {id(box) for box in boxes}
    all_quantifiers = set()
    for box in boxes:
        for quantifier in box.quantifiers:
            all_quantifiers.add(quantifier)

    for box in boxes:
        _validate_box(box, box_ids, all_quantifiers)
    return True


def _validate_box(box, box_ids, all_quantifiers):
    if box.distinct not in _VALID_DISTINCT:
        raise QgmError("box %r has invalid distinct mode %r" % (box.name, box.distinct))

    for quantifier in box.quantifiers:
        if quantifier.parent_box is not box:
            raise QgmError(
                "quantifier %r of box %r has wrong parent link"
                % (quantifier.name, box.name)
            )
        if id(quantifier.input_box) not in box_ids:
            raise QgmError(
                "quantifier %r of box %r ranges over an unreachable box"
                % (quantifier.name, box.name)
            )
        if quantifier.qtype not in (
            QuantifierType.FOREACH,
            QuantifierType.EXISTENTIAL,
            QuantifierType.ANTI,
            QuantifierType.SCALAR,
        ):
            raise QgmError("invalid quantifier type %r" % quantifier.qtype)

    names = [q.name for q in box.quantifiers]
    if len(names) != len(set(names)):
        raise QgmError("box %r has duplicate quantifier names" % box.name)

    if box.kind == BoxKind.BASE:
        if box.quantifiers:
            raise QgmError("base box %r must not have quantifiers" % box.name)
        if box.schema is None:
            raise QgmError("base box %r lacks a schema" % box.name)
        return

    if box.kind == BoxKind.GROUPBY:
        foreach = box.foreach_quantifiers()
        if len(foreach) != 1 or len(box.quantifiers) != 1:
            raise QgmError(
                "groupby box %r must have exactly one foreach quantifier" % box.name
            )
        if box.predicates:
            raise QgmError("groupby box %r must not carry predicates" % box.name)
        for column in box.columns:
            if column.expr is None:
                raise QgmError(
                    "groupby box %r column %r lacks an expression"
                    % (box.name, column.name)
                )
            if not isinstance(column.expr, qe.QAggregate):
                if not _is_group_key(box, column.expr):
                    raise QgmError(
                        "groupby box %r column %r is neither a group key nor "
                        "an aggregate" % (box.name, column.name)
                    )
    elif box.kind in (BoxKind.UNION, BoxKind.INTERSECT, BoxKind.EXCEPT):
        if box.predicates:
            raise QgmError("set-op box %r must not carry predicates" % box.name)
        arity = len(box.columns)
        if box.kind in (BoxKind.INTERSECT, BoxKind.EXCEPT) and len(box.quantifiers) != 2:
            raise QgmError("%s box %r must have two inputs" % (box.kind, box.name))
        if box.kind == BoxKind.UNION and len(box.quantifiers) < 1:
            raise QgmError("union box %r must have at least one input" % box.name)
        for quantifier in box.quantifiers:
            if quantifier.qtype != QuantifierType.FOREACH:
                raise QgmError(
                    "set-op box %r may only have foreach quantifiers" % box.name
                )
            if len(quantifier.input_box.columns) != arity:
                raise QgmError(
                    "set-op box %r input %r has mismatched arity"
                    % (box.name, quantifier.name)
                )
        for column in box.columns:
            if column.expr is not None:
                raise QgmError(
                    "set-op box %r columns are positional (no expressions)" % box.name
                )
    elif box.kind == BoxKind.OUTERJOIN:
        if len(box.quantifiers) != 2:
            raise QgmError("outer-join box %r must have two inputs" % box.name)
        for quantifier in box.quantifiers:
            if quantifier.qtype != QuantifierType.FOREACH:
                raise QgmError(
                    "outer-join box %r may only have foreach quantifiers"
                    % box.name
                )
        for column in box.columns:
            if column.expr is None:
                raise QgmError(
                    "outer-join box %r column %r lacks an expression"
                    % (box.name, column.name)
                )
    elif box.kind == BoxKind.SELECT:
        for column in box.columns:
            if column.expr is None:
                raise QgmError(
                    "select box %r column %r lacks an expression"
                    % (box.name, column.name)
                )

    # Expression sanity: every referenced quantifier exists somewhere in the
    # graph, local references name existing columns, and aggregates only
    # appear in groupby output columns.
    local = box.local_quantifier_set()
    for expression in box.all_expressions():
        for node in qe.walk(expression):
            if isinstance(node, qe.QColRef):
                if node.quantifier not in all_quantifiers:
                    raise QgmError(
                        "box %r references a dangling quantifier %r"
                        % (box.name, node.quantifier.name)
                    )
                # Checked for *every* reference, local or correlated: a
                # correlated reference to a column its quantifier's input
                # box does not produce is just as broken (gap found while
                # wiring the resilience layer's paranoid mode).
                if not node.quantifier.input_box.has_column(node.column):
                    raise QgmError(
                        "box %r references missing column %s.%s"
                        % (box.name, node.quantifier.name, node.column)
                    )
            if isinstance(node, qe.QAggregate) and box.kind != BoxKind.GROUPBY:
                raise QgmError(
                    "aggregate found outside a groupby box (in %r)" % box.name
                )


def _is_group_key(box, expression):
    return any(qe.expr_equal(expression, key) for key in box.group_keys)
