"""Structural invariant checks for QGM graphs.

``validate_graph`` raises :class:`~repro.errors.QgmError` on the first
violation. The rewrite tests call it after every rule application so a rule
that corrupts the graph fails loudly.

The checks themselves live in :class:`repro.analysis.structural.
StructuralPass` (codes ``QGM1xx``); this module is the thin raise-on-first-
error wrapper kept for the resilience layer and every existing caller. Use
:func:`repro.analysis.analyze_graph` instead when you want *all* problems
reported at once.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import QgmError

if TYPE_CHECKING:
    from repro.qgm.model import QueryGraph


def validate_graph(graph: "QueryGraph") -> bool:
    """Check structural invariants of every reachable box.

    Raises :class:`QgmError` carrying the first error's message (the
    historical fail-fast contract); the diagnostic code is available in
    the error's ``context``.
    """
    from repro.analysis.framework import Analyzer
    from repro.analysis.structural import StructuralPass

    report = Analyzer([StructuralPass()]).analyze(graph)
    for diagnostic in report:
        raise QgmError(
            diagnostic.message,
            context={"code": diagnostic.code, "location": diagnostic.location},
        )
    return True
