"""SQL AST → QGM translation.

Faithful to §2 of the paper:

* each SELECT block becomes a select-box; a block with GROUP BY (or with
  aggregates in its select list / HAVING) becomes the *groupby triplet* —
  select-box (SFW) → groupby-box → select-box (HAVING),
* set operations become UNION/INTERSECT/EXCEPT boxes,
* a view referenced several times yields a *common subexpression* (one box,
  several quantifiers over it),
* subqueries become boxes ranged over by existential (E), anti (A) or
  scalar (S) quantifiers; correlation appears as column references to
  quantifiers of enclosing boxes,
* recursive views (WITH RECURSIVE) create cycles in the graph.
"""

from __future__ import annotations

from repro.errors import BindError, NotSupportedError, QgmError
from repro.sql import ast
from repro.qgm import expr as qe
from repro.qgm.model import (
    Box,
    BoxKind,
    DistinctMode,
    OutputColumn,
    Quantifier,
    QuantifierType,
    QueryGraph,
)

_SET_OP_KINDS = {
    "UNION": BoxKind.UNION,
    "INTERSECT": BoxKind.INTERSECT,
    "EXCEPT": BoxKind.EXCEPT,
}


class _Binding:
    """How one FROM-clause name resolves: a quantifier plus, when the name
    lives *inside* a join box (outer joins), a map from the original column
    names to the join box's output column names."""

    def __init__(self, quantifier, column_map=None):
        self.quantifier = quantifier
        self.column_map = column_map  # lower orig name -> box column name

    def has_column(self, column):
        if self.column_map is not None:
            return column.lower() in self.column_map
        return self.quantifier.input_box.has_column(column)

    def ref(self, column):
        if self.column_map is not None:
            return self.quantifier.ref(self.column_map[column.lower()])
        return self.quantifier.ref(
            self.quantifier.input_box.column(column).name
        )

    def visible_columns(self):
        """Column names this binding exposes, in declaration order."""
        if self.column_map is not None:
            return list(self.column_map.values_original())
        return self.quantifier.input_box.column_names


class _OrderedColumnMap(dict):
    """Keeps the original (pre-join) column names in order for ``*``."""

    def __init__(self):
        super().__init__()
        self._originals = []

    def put(self, original, mapped):
        self[original.lower()] = mapped
        self._originals.append(original)

    def values_original(self):
        return list(self._originals)


class _Scope:
    """One level of name resolution: the FROM bindings of a block."""

    def __init__(self):
        self.bindings = {}  # lower-cased binding name -> _Binding

    def add(self, name, binding):
        key = name.lower()
        if key in self.bindings:
            raise BindError("duplicate table name %r in FROM clause" % name)
        self.bindings[key] = binding

    def lookup_table(self, name):
        return self.bindings.get(name.lower())

    def lookup_column(self, column):
        """Find bindings that expose ``column``."""
        return [b for b in self.bindings.values() if b.has_column(column)]

    def quantifiers(self):
        return {binding.quantifier for binding in self.bindings.values()}


class GraphBuilder:
    """Builds a :class:`QueryGraph` from a parsed query."""

    def __init__(self, catalog):
        self.catalog = catalog
        self.graph = QueryGraph(catalog=catalog)
        self._view_boxes = {}  # lower-cased view name -> Box (common subexpr)
        self._view_stack = []  # names currently being expanded (cycles)

    # -- public entry ----------------------------------------------------------

    def build(self, query):
        """Translate ``query`` (an :class:`ast.Query`) into a QueryGraph."""
        for cte in query.ctes:
            self._declare_cte(cte)
        top = self._build_body(query.body, scopes=[])
        self.graph.top_box = top
        self._apply_order_by(query, top)
        if query.limit is not None:
            self.graph.limit = query.limit
        return self.graph

    # -- views -------------------------------------------------------------------

    def _declare_cte(self, cte):
        key = cte.name.lower()
        if key in self._view_boxes:
            raise BindError("duplicate view name %r" % cte.name)
        if cte.recursive and isinstance(cte.query.body, ast.SetOp):
            self._view_boxes[key] = self._build_recursive_view(cte)
        else:
            box = self._build_body(cte.query.body, scopes=[])
            self._rename_view_columns(box, cte)
            box.name = cte.name.upper()
            self._view_boxes[key] = box

    def _build_recursive_view(self, cte):
        """Build a recursive view: a UNION box whose branches may reference
        the view itself, creating a cycle in the graph."""
        setop = cte.query.body
        if setop.op != "UNION":
            raise NotSupportedError("recursive views must use UNION [ALL]")
        union = self.graph.new_box(BoxKind.UNION, cte.name.upper())
        union.distinct = DistinctMode.PRESERVE if setop.all else DistinctMode.ENFORCE
        self._view_boxes[cte.name.lower()] = union
        branches = _flatten_union(setop)
        # Build the first (base) branch before the recursive ones so the
        # placeholder union box has columns when the recursion refers back
        # to it. Datalog-style recursion always has a nonrecursive branch.
        first = self._build_body(branches[0], scopes=[])
        names = cte.columns or first.column_names
        if len(names) != len(first.columns):
            raise BindError(
                "view %r column list does not match query arity" % cte.name
            )
        union.columns = [OutputColumn(name=n) for n in names]
        union.add_quantifier(
            Quantifier(
                name=self.graph.fresh_name("u"),
                qtype=QuantifierType.FOREACH,
                input_box=first,
            )
        )
        for branch in branches[1:]:
            child = self._build_body(branch, scopes=[])
            if len(child.columns) != len(names):
                raise QgmError("UNION branches have differing arity")
            union.add_quantifier(
                Quantifier(
                    name=self.graph.fresh_name("u"),
                    qtype=QuantifierType.FOREACH,
                    input_box=child,
                )
            )
        return union

    def _rename_view_columns(self, box, view):
        if view.columns is None:
            return
        if len(view.columns) != len(box.columns):
            raise BindError(
                "view %r column list does not match query arity" % view.name
            )
        for column, name in zip(box.columns, view.columns):
            column.name = name

    def _view_box(self, name):
        """Return the (shared) box for view ``name``, building on demand."""
        key = name.lower()
        box = self._view_boxes.get(key)
        if box is not None:
            return box
        if not self.catalog.has_view(name):
            return None
        if key in self._view_stack:
            raise NotSupportedError(
                "catalog view %r is recursive; use WITH RECURSIVE" % name
            )
        view = self.catalog.view(name)
        self._view_stack.append(key)
        try:
            if view.recursive and isinstance(view.query.body, ast.SetOp):
                box = self._build_recursive_view(view)
            else:
                box = self._build_body(view.query.body, scopes=[])
                self._rename_view_columns(box, view)
                box.name = view.name.upper()
                self._view_boxes[key] = box
        finally:
            self._view_stack.pop()
        return box

    # -- bodies ---------------------------------------------------------------------

    def _build_body(self, body, scopes):
        if isinstance(body, ast.SelectCore):
            return self._build_select_core(body, scopes)
        if isinstance(body, ast.SetOp):
            return self._build_set_op(body, scopes)
        raise NotSupportedError("unsupported query body %r" % type(body).__name__)

    def _build_set_op(self, setop, scopes):
        left = self._build_body(setop.left, scopes)
        right = self._build_body(setop.right, scopes)
        if len(left.columns) != len(right.columns):
            raise BindError("%s operands have different arity" % setop.op)
        box = self.graph.new_box(
            _SET_OP_KINDS[setop.op], self.graph.fresh_name(setop.op)
        )
        box.distinct = DistinctMode.PRESERVE if setop.all else DistinctMode.ENFORCE
        for index, child in enumerate((left, right)):
            box.add_quantifier(
                Quantifier(
                    name=self.graph.fresh_name("s"),
                    qtype=QuantifierType.FOREACH,
                    input_box=child,
                )
            )
        box.columns = [OutputColumn(name=c.name) for c in left.columns]
        return box

    # -- select blocks -----------------------------------------------------------------

    def _build_select_core(self, core, scopes):
        box = self.graph.new_box(BoxKind.SELECT, self.graph.fresh_name("Q"))
        scope = _Scope()
        deferred_on = []
        for item in core.from_tables:
            self._add_from_item(item, box, scope, scopes, deferred_on)
        inner_scopes = scopes + [scope]
        for condition in deferred_on:
            box.predicates.extend(
                self._translate_conjuncts(condition, inner_scopes, box)
            )
        if core.where is not None:
            box.predicates.extend(
                self._translate_conjuncts(core.where, inner_scopes, box)
            )
        needs_grouping = bool(core.group_by) or self._has_aggregates(core)
        if needs_grouping:
            return self._build_group_triplet(core, box, inner_scopes)
        box.columns = self._build_select_list(core, inner_scopes, box)
        if core.having is not None:
            raise NotSupportedError("HAVING requires GROUP BY or aggregates")
        if core.distinct:
            box.distinct = DistinctMode.ENFORCE
        return box

    def _add_from_item(self, item, box, scope, scopes, deferred_on):
        """Process one FROM item into ``box``: plain references add a
        quantifier; INNER joins flatten (operands become quantifiers, the
        ON condition becomes WHERE conjuncts, translated after the whole
        FROM list so it may reference earlier items); LEFT joins build an
        OUTERJOIN box."""
        if isinstance(item, (ast.TableRef, ast.SubqueryRef)):
            quantifier = self._build_from_item(item, scopes)
            box.add_quantifier(quantifier)
            scope.add(item.binding_name, _Binding(quantifier))
            return
        if isinstance(item, ast.JoinRef):
            if item.kind == "INNER":
                self._add_from_item(item.left, box, scope, scopes, deferred_on)
                self._add_from_item(item.right, box, scope, scopes, deferred_on)
                deferred_on.append(item.condition)
                return
            oj_box, column_maps = self._build_outerjoin(item, scopes)
            quantifier = Quantifier(
                name=self.graph.fresh_name("oj"),
                qtype=QuantifierType.FOREACH,
                input_box=oj_box,
            )
            box.add_quantifier(quantifier)
            for alias, column_map in column_maps:
                scope.add(alias, _Binding(quantifier, column_map))
            return
        raise NotSupportedError("unsupported FROM item %r" % type(item).__name__)

    def _build_outerjoin(self, join, scopes):
        """Build an OUTERJOIN box for ``left LEFT JOIN right ON cond``.

        Returns (box, [(alias, column_map)]) where each column map
        translates an operand's column names to the box's output columns.
        """
        # The preserved (left) operand: a table reference or another LEFT
        # join (chains associate left). An INNER join on the left must be
        # parenthesised as a derived table instead.
        if isinstance(join.left, ast.JoinRef) and join.left.kind == "LEFT":
            left_box, left_maps = self._build_outerjoin(join.left, scopes)
        elif isinstance(join.left, (ast.TableRef, ast.SubqueryRef)):
            left_quantifier = self._build_from_item(join.left, scopes)
            left_box = left_quantifier.input_box
            left_maps = [(join.left.binding_name, None)]
        else:
            raise NotSupportedError(
                "the left operand of LEFT JOIN must be a table reference or "
                "another LEFT JOIN; parenthesise inner joins as derived tables"
            )
        if not isinstance(join.right, (ast.TableRef, ast.SubqueryRef)):
            raise NotSupportedError(
                "the right operand of LEFT JOIN must be a table reference"
            )
        right_quantifier_src = self._build_from_item(join.right, scopes)
        right_box = right_quantifier_src.input_box

        oj_box = self.graph.new_box(BoxKind.OUTERJOIN, self.graph.fresh_name("OJ"))
        oj_box.properties["preserved"] = "left"
        left_q = Quantifier(
            name=self.graph.fresh_name("l"),
            qtype=QuantifierType.FOREACH,
            input_box=left_box,
        )
        right_q = Quantifier(
            name=self.graph.fresh_name("r"),
            qtype=QuantifierType.FOREACH,
            input_box=right_box,
        )
        oj_box.add_quantifier(left_q)
        oj_box.add_quantifier(right_q)

        # Local bindings for the ON condition and the output columns.
        local_scope = _Scope()
        operand_bindings = []
        for alias, column_map in left_maps:
            if column_map is None:
                binding = _Binding(left_q)
            else:
                # Re-point the nested join's map through the new quantifier.
                nested = _OrderedColumnMap()
                for original in column_map.values_original():
                    nested.put(original, column_map[original.lower()])
                binding = _Binding(left_q, nested)
            local_scope.add(alias, binding)
            operand_bindings.append((alias, binding))
        right_binding = _Binding(right_q)
        local_scope.add(join.right.binding_name, right_binding)
        operand_bindings.append((join.right.binding_name, right_binding))

        condition = self._translate(
            join.condition, scopes + [local_scope], oj_box
        )
        oj_box.predicates.extend(qe.conjuncts(condition))

        # Output columns: everything both sides expose, names uniquified.
        used = set()
        column_maps = []
        for alias, binding in operand_bindings:
            out_map = _OrderedColumnMap()
            for original in (
                binding.column_map.values_original()
                if binding.column_map is not None
                else binding.quantifier.input_box.column_names
            ):
                name = self._unique_name(original, used)
                oj_box.columns.append(
                    OutputColumn(name=name, expr=binding.ref(original))
                )
                out_map.put(original, name)
            column_maps.append((alias, out_map))
        return oj_box, column_maps

    def _build_from_item(self, item, scopes):
        if isinstance(item, ast.SubqueryRef):
            child = self._build_body(item.query.body, scopes)
            return Quantifier(
                name=self.graph.fresh_name(item.alias),
                qtype=QuantifierType.FOREACH,
                input_box=child,
            )
        view_box = self._view_box(item.name)
        if view_box is not None:
            child = view_box
        elif self.catalog.has_table(item.name):
            child = self.graph.base_box(self.catalog.table(item.name))
        else:
            raise BindError("unknown table or view %r" % item.name)
        return Quantifier(
            name=self.graph.fresh_name(item.binding_name),
            qtype=QuantifierType.FOREACH,
            input_box=child,
        )

    @staticmethod
    def _has_aggregates(core):
        for item in core.items:
            if not isinstance(item.expr, ast.Star) and ast.contains_aggregate(item.expr):
                return True
        if core.having is not None and ast.contains_aggregate(core.having):
            return True
        return False

    def _build_select_list(self, core, scopes, box):
        columns = []
        used = set()
        for item in core.items:
            if isinstance(item.expr, ast.Star):
                for binding, name in self._expand_star(item.expr, scopes):
                    columns.append(
                        OutputColumn(
                            name=self._unique_name(name, used),
                            expr=binding.ref(name),
                        )
                    )
                continue
            expr = self._translate(item.expr, scopes, box)
            name = item.alias or _default_column_name(item.expr, len(columns))
            columns.append(OutputColumn(name=self._unique_name(name, used), expr=expr))
        return columns

    @staticmethod
    def _unique_name(name, used):
        candidate = name
        counter = 1
        while candidate.lower() in used:
            candidate = "%s_%d" % (name, counter)
            counter += 1
        used.add(candidate.lower())
        return candidate

    def _expand_star(self, star, scopes):
        scope = scopes[-1]
        if star.table is not None:
            binding = scope.lookup_table(star.table)
            if binding is None:
                raise BindError("unknown table %r in star expansion" % star.table)
            return [(binding, name) for name in binding.visible_columns()]
        out = []
        for binding in scope.bindings.values():
            for name in binding.visible_columns():
                out.append((binding, name))
        return out

    # -- groupby triplet -----------------------------------------------------------------

    def _build_group_triplet(self, core, sfw_box, scopes):
        """Decompose a grouped block into the paper's triplet of boxes."""
        group_keys = [self._translate(g, scopes, sfw_box) for g in core.group_by]
        aggregates = self._collect_aggregates(core, scopes, sfw_box)

        # T1: the SFW box outputs each group key and each aggregate argument.
        t1_columns = []
        key_names = []
        for index, key in enumerate(group_keys):
            name = "gk%d" % index
            key_names.append(name)
            t1_columns.append(OutputColumn(name=name, expr=key))
        agg_arg_names = []
        for index, (func, arg, distinct) in enumerate(aggregates):
            if arg is None:
                agg_arg_names.append(None)
                continue
            name = "a%d" % index
            agg_arg_names.append(name)
            t1_columns.append(OutputColumn(name=name, expr=arg))
        sfw_box.columns = t1_columns
        sfw_box.name = self.graph.fresh_name("T1")

        # T2: the groupby box.
        t1_quantifier = Quantifier(
            name=self.graph.fresh_name("g"),
            qtype=QuantifierType.FOREACH,
            input_box=sfw_box,
        )
        groupby = self.graph.new_box(BoxKind.GROUPBY, self.graph.fresh_name("T2"))
        groupby.add_quantifier(t1_quantifier)
        groupby.group_keys = [t1_quantifier.ref(name) for name in key_names]
        groupby_columns = []
        for name in key_names:
            groupby_columns.append(
                OutputColumn(name=name, expr=t1_quantifier.ref(name))
            )
        for index, (func, arg, distinct) in enumerate(aggregates):
            agg_expr = qe.QAggregate(
                func=func,
                arg=t1_quantifier.ref(agg_arg_names[index])
                if agg_arg_names[index] is not None
                else None,
                distinct=distinct,
            )
            groupby_columns.append(OutputColumn(name="agg%d" % index, expr=agg_expr))
        groupby.columns = groupby_columns

        # T3: the HAVING/projection box.
        t2_quantifier = Quantifier(
            name=self.graph.fresh_name("h"),
            qtype=QuantifierType.FOREACH,
            input_box=groupby,
        )
        having_box = self.graph.new_box(BoxKind.SELECT, self.graph.fresh_name("Q"))
        having_box.add_quantifier(t2_quantifier)

        mapper = _GroupOutputMapper(
            self, scopes, group_keys, key_names, aggregates, t2_quantifier
        )
        columns = []
        used = set()
        for item in core.items:
            if isinstance(item.expr, ast.Star):
                raise NotSupportedError("SELECT * is not allowed with GROUP BY")
            expr = mapper.translate(item.expr, having_box)
            name = item.alias or _default_column_name(item.expr, len(columns))
            columns.append(OutputColumn(name=self._unique_name(name, used), expr=expr))
        having_box.columns = columns
        if core.having is not None:
            predicate = mapper.translate(core.having, having_box)
            having_box.predicates.extend(qe.conjuncts(predicate))
        if core.distinct:
            having_box.distinct = DistinctMode.ENFORCE
        return having_box

    def _collect_aggregates(self, core, scopes, sfw_box):
        """Find every distinct aggregate call in the select list and HAVING.

        Returns [(func, translated-arg-or-None, distinct)], deduplicated.
        """
        calls = []

        def collect(expr):
            if isinstance(expr, ast.Star):
                return
            for node in ast.walk(expr):
                if ast.is_aggregate_call(node):
                    calls.append(node)

        for item in core.items:
            collect(item.expr)
        if core.having is not None:
            collect(core.having)

        aggregates = []
        self._aggregate_index = {}
        for call in calls:
            func = call.name.upper()
            if func == "COUNT" and call.args and isinstance(call.args[0], ast.Star):
                arg = None
            else:
                if len(call.args) != 1:
                    raise NotSupportedError(
                        "aggregate %s must take exactly one argument" % func
                    )
                arg = self._translate(call.args[0], scopes, sfw_box)
            key = _aggregate_key(call)
            if key in self._aggregate_index:
                continue
            self._aggregate_index[key] = len(aggregates)
            aggregates.append((func, arg, call.distinct))
        return aggregates

    # -- predicate and expression translation -------------------------------------------

    def _translate_conjuncts(self, expr, scopes, box):
        """Translate a WHERE/HAVING condition into a conjunct list, turning
        subquery predicates into E/A quantifiers on ``box``."""
        out = []
        for conjunct in _ast_conjuncts(expr):
            out.extend(self._translate_predicate(conjunct, scopes, box))
        return out

    def _translate_predicate(self, node, scopes, box):
        """Translate one top-level conjunct; may add quantifiers to ``box``."""
        if isinstance(node, ast.InSubquery):
            qtype = QuantifierType.ANTI if node.negated else QuantifierType.EXISTENTIAL
            quantifier = self._subquery_quantifier(node.query, scopes, box, qtype)
            quantifier.null_aware = node.negated
            sub_column = quantifier.input_box.columns[0].name
            if len(quantifier.input_box.columns) != 1:
                raise NotSupportedError("IN subquery must return one column")
            left = self._translate(node.expr, scopes, box)
            return [qe.QBinary(op="=", left=left, right=quantifier.ref(sub_column))]
        if isinstance(node, ast.Exists):
            qtype = QuantifierType.ANTI if node.negated else QuantifierType.EXISTENTIAL
            self._subquery_quantifier(node.query, scopes, box, qtype)
            return []
        if isinstance(node, ast.QuantifiedComparison):
            left = self._translate(node.left, scopes, box)
            if node.quantifier == "ANY":
                quantifier = self._subquery_quantifier(
                    node.query, scopes, box, QuantifierType.EXISTENTIAL
                )
                sub_column = quantifier.input_box.columns[0].name
                return [
                    qe.QBinary(op=node.op, left=left, right=quantifier.ref(sub_column))
                ]
            quantifier = self._subquery_quantifier(
                node.query, scopes, box, QuantifierType.ANTI
            )
            quantifier.null_aware = True
            sub_column = quantifier.input_box.columns[0].name
            comparison = qe.QBinary(
                op=node.op, left=left, right=quantifier.ref(sub_column)
            )
            return [qe.QUnary(op="NOT", operand=comparison)]
        return [self._translate(node, scopes, box)]

    def _subquery_quantifier(self, query, scopes, box, qtype):
        """Build a subquery box and attach a quantifier of ``qtype`` to
        ``box``. The subquery sees the enclosing scopes (correlation)."""
        if query.ctes:
            raise NotSupportedError("WITH inside subqueries is not supported")
        child = self._build_body(query.body, scopes)
        quantifier = Quantifier(
            name=self.graph.fresh_name("sq"),
            qtype=qtype,
            input_box=child,
        )
        box.add_quantifier(quantifier)
        return quantifier

    def _translate(self, expr, scopes, box):
        """Translate a scalar expression (no E/A quantifier creation;
        scalar subqueries become S quantifiers on ``box``)."""
        if isinstance(expr, ast.Parameter):
            return qe.QParam(index=expr.index)
        if isinstance(expr, ast.Literal):
            return qe.QLiteral(value=expr.value)
        if isinstance(expr, ast.ColumnRef):
            return self._resolve_column(expr, scopes)
        if isinstance(expr, ast.Star):
            raise BindError("* is not valid in this context")
        if isinstance(expr, ast.UnaryOp):
            return qe.QUnary(op=expr.op, operand=self._translate(expr.operand, scopes, box))
        if isinstance(expr, ast.BinaryOp):
            return qe.QBinary(
                op=expr.op,
                left=self._translate(expr.left, scopes, box),
                right=self._translate(expr.right, scopes, box),
            )
        if isinstance(expr, ast.Between):
            operand = self._translate(expr.expr, scopes, box)
            low = self._translate(expr.low, scopes, box)
            high = self._translate(expr.high, scopes, box)
            both = qe.QBinary(
                op="AND",
                left=qe.QBinary(op=">=", left=operand, right=low),
                right=qe.QBinary(op="<=", left=operand, right=high),
            )
            if expr.negated:
                return qe.QUnary(op="NOT", operand=both)
            return both
        if isinstance(expr, ast.InList):
            operand = self._translate(expr.expr, scopes, box)
            tests = [
                qe.QBinary(op="=", left=operand, right=self._translate(i, scopes, box))
                for i in expr.items
            ]
            combined = tests[0]
            for test in tests[1:]:
                combined = qe.QBinary(op="OR", left=combined, right=test)
            if expr.negated:
                return qe.QUnary(op="NOT", operand=combined)
            return combined
        if isinstance(expr, ast.IsNull):
            return qe.QIsNull(
                operand=self._translate(expr.expr, scopes, box), negated=expr.negated
            )
        if isinstance(expr, ast.Like):
            return qe.QLike(
                operand=self._translate(expr.expr, scopes, box),
                pattern=self._translate(expr.pattern, scopes, box),
                negated=expr.negated,
            )
        if isinstance(expr, ast.FuncCall):
            if ast.is_aggregate_call(expr):
                raise BindError(
                    "aggregate %s not allowed in this context" % expr.name
                )
            return qe.QFunc(
                name=expr.name,
                args=[self._translate(a, scopes, box) for a in expr.args],
            )
        if isinstance(expr, ast.CaseWhen):
            return qe.QCase(
                branches=[
                    (self._translate(c, scopes, box), self._translate(v, scopes, box))
                    for c, v in expr.branches
                ],
                default=self._translate(expr.default, scopes, box)
                if expr.default is not None
                else None,
            )
        if isinstance(expr, ast.ScalarSubquery):
            quantifier = self._subquery_quantifier(
                expr.query, scopes, box, QuantifierType.SCALAR
            )
            if len(quantifier.input_box.columns) != 1:
                raise NotSupportedError("scalar subquery must return one column")
            return quantifier.ref(quantifier.input_box.columns[0].name)
        if isinstance(expr, (ast.InSubquery, ast.Exists, ast.QuantifiedComparison)):
            raise NotSupportedError(
                "subquery predicates are only supported as top-level conjuncts"
            )
        raise NotSupportedError("unsupported expression %r" % type(expr).__name__)

    def _resolve_column(self, ref, scopes):
        """Resolve a column name against the scope stack (innermost first).

        A resolution against an outer scope is a correlation.
        """
        for scope in reversed(scopes):
            if ref.table is not None:
                binding = scope.lookup_table(ref.table)
                if binding is None:
                    continue
                if not binding.has_column(ref.column):
                    raise BindError(
                        "table %r has no column %r" % (ref.table, ref.column)
                    )
                return binding.ref(ref.column)
            matches = scope.lookup_column(ref.column)
            if len(matches) > 1:
                raise BindError("ambiguous column %r" % ref.column)
            if matches:
                return matches[0].ref(ref.column)
        raise BindError("cannot resolve column %s" % ref)

    # -- order by ---------------------------------------------------------------------------

    def _apply_order_by(self, query, top):
        for item in query.order_by:
            ordinal = self._order_key_ordinal(item.expr, top)
            self.graph.order_by.append((ordinal, item.ascending))

    def _order_key_ordinal(self, expr, top):
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            ordinal = expr.value - 1
            if not 0 <= ordinal < len(top.columns):
                raise BindError("ORDER BY position %d out of range" % expr.value)
            return ordinal
        if isinstance(expr, ast.ColumnRef) and expr.table is None:
            for index, column in enumerate(top.columns):
                if column.name.lower() == expr.column.lower():
                    return index
        raise NotSupportedError(
            "ORDER BY keys must be output column names or positions"
        )


class _GroupOutputMapper:
    """Maps HAVING/select-list expressions of a grouped block onto the
    output of the groupby box (group keys and aggregate columns)."""

    def __init__(self, builder, scopes, group_keys, key_names, aggregates, t2_quantifier):
        self.builder = builder
        self.scopes = scopes
        self.group_keys = group_keys
        self.key_names = key_names
        self.aggregates = aggregates
        self.t2 = t2_quantifier

    def translate(self, expr, box):
        if ast.is_aggregate_call(expr):
            index = self.builder._aggregate_index.get(_aggregate_key(expr))
            if index is None:
                raise BindError("aggregate %s not collected" % expr.name)
            return self.t2.ref("agg%d" % index)
        if isinstance(expr, ast.Parameter):
            return qe.QParam(index=expr.index)
        if isinstance(expr, (ast.Literal,)):
            return qe.QLiteral(value=expr.value)
        # A composite expression may match a group key structurally (e.g.
        # ``GROUP BY workdept || ''`` with the same expression selected).
        if not isinstance(expr, ast.ColumnRef) and not ast.contains_aggregate(expr):
            try:
                translated = self.builder._translate(expr, self.scopes, box)
            except (BindError, NotSupportedError):
                translated = None
            if translated is not None:
                for index, key in enumerate(self.group_keys):
                    if qe.expr_equal(key, translated):
                        return self.t2.ref(self.key_names[index])
        if isinstance(expr, ast.ColumnRef):
            translated = self.builder._resolve_column(expr, self.scopes)
            return self._match_group_key(translated, expr)
        if isinstance(expr, ast.UnaryOp):
            return qe.QUnary(op=expr.op, operand=self.translate(expr.operand, box))
        if isinstance(expr, ast.BinaryOp):
            return qe.QBinary(
                op=expr.op,
                left=self.translate(expr.left, box),
                right=self.translate(expr.right, box),
            )
        if isinstance(expr, ast.IsNull):
            return qe.QIsNull(operand=self.translate(expr.expr, box), negated=expr.negated)
        if isinstance(expr, ast.Like):
            return qe.QLike(
                operand=self.translate(expr.expr, box),
                pattern=self.translate(expr.pattern, box),
                negated=expr.negated,
            )
        if isinstance(expr, ast.Between):
            operand = self.translate(expr.expr, box)
            low = self.translate(expr.low, box)
            high = self.translate(expr.high, box)
            both = qe.QBinary(
                op="AND",
                left=qe.QBinary(op=">=", left=operand, right=low),
                right=qe.QBinary(op="<=", left=operand, right=high),
            )
            if expr.negated:
                return qe.QUnary(op="NOT", operand=both)
            return both
        if isinstance(expr, ast.FuncCall):
            return qe.QFunc(
                name=expr.name, args=[self.translate(a, box) for a in expr.args]
            )
        if isinstance(expr, ast.CaseWhen):
            return qe.QCase(
                branches=[
                    (self.translate(c, box), self.translate(v, box))
                    for c, v in expr.branches
                ],
                default=self.translate(expr.default, box)
                if expr.default is not None
                else None,
            )
        raise NotSupportedError(
            "expression %r not supported above GROUP BY" % type(expr).__name__
        )

    def _match_group_key(self, translated, original):
        for index, key in enumerate(self.group_keys):
            if qe.expr_equal(key, translated):
                return self.t2.ref(self.key_names[index])
        # A reference resolved to an *outer* scope is a correlation: it is
        # constant within the block, so it may appear above the GROUP BY.
        local = set()
        if self.scopes:
            local = self.scopes[-1].quantifiers()
        if isinstance(translated, qe.QColRef) and translated.quantifier not in local:
            return translated
        raise BindError(
            "column %s must appear in GROUP BY or inside an aggregate" % original
        )


def _ast_conjuncts(expr):
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        return _ast_conjuncts(expr.left) + _ast_conjuncts(expr.right)
    return [expr]


def _flatten_union(body):
    if isinstance(body, ast.SetOp) and body.op == "UNION":
        return _flatten_union(body.left) + _flatten_union(body.right)
    return [body]


def _default_column_name(expr, position):
    if isinstance(expr, ast.ColumnRef):
        return expr.column
    if isinstance(expr, ast.FuncCall) and len(expr.args) == 1 and isinstance(
        expr.args[0], ast.ColumnRef
    ):
        return "%s_%s" % (expr.name.lower(), expr.args[0].column)
    if isinstance(expr, ast.FuncCall):
        return expr.name.lower()
    return "col%d" % position


def _aggregate_key(call):
    """A hashable identity for an aggregate AST call (dedup in a block)."""
    from repro.sql.printer import expr_to_sql

    return (call.name.upper(), call.distinct, expr_to_sql(call))


def build_query_graph(query, catalog):
    """Build a :class:`QueryGraph` for ``query`` against ``catalog``."""
    return GraphBuilder(catalog).build(query)
