"""Renderers for QGM graphs: indented text and Graphviz DOT.

Used by the examples and by the figure benchmarks to print the box
inventories the paper shows in Figures 1 and 4.
"""

from __future__ import annotations

from repro.qgm.model import BoxKind, DistinctMode, MagicRole


def _box_label(box):
    parts = [box.kind]
    if box.magic_role != MagicRole.REGULAR:
        parts.append(box.magic_role)
    label = "%s %s" % ("/".join(parts), box.name)
    if box.adornment:
        label += "^" + box.adornment
    if box.distinct == DistinctMode.ENFORCE:
        label += " DISTINCT"
    return label


def render_text(graph):
    """Render the graph as indented text, one box per line plus details."""
    lines = []
    seen = set()

    def visit(box, depth):
        indent = "  " * depth
        if id(box) in seen:
            lines.append("%s-> %s (shared)" % (indent, _box_label(box)))
            return
        seen.add(id(box))
        lines.append("%s%s" % (indent, _box_label(box)))
        if box.kind == BoxKind.BASE:
            lines.append("%s  table: %s(%s)" % (indent, box.table_name, ", ".join(box.column_names)))
            return
        if box.columns:
            rendered = []
            for column in box.columns:
                if column.expr is None:
                    rendered.append(column.name)
                else:
                    rendered.append("%s=%s" % (column.name, column.expr))
            lines.append("%s  out: %s" % (indent, ", ".join(rendered)))
        if box.group_keys:
            lines.append(
                "%s  group by: %s" % (indent, ", ".join(str(k) for k in box.group_keys))
            )
        for predicate in box.predicates:
            lines.append("%s  pred: %s" % (indent, predicate))
        for quantifier in box.quantifiers:
            flags = quantifier.qtype
            if quantifier.is_magic:
                flags += ",magic"
            lines.append("%s  q %s(%s):" % (indent, quantifier.name, flags))
            visit(quantifier.input_box, depth + 2)
        for magic in box.linked_magic:
            lines.append("%s  linked-magic:" % indent)
            visit(magic, depth + 2)

    if graph.top_box is not None:
        visit(graph.top_box, 0)
    return "\n".join(lines)


def render_dot(graph):
    """Render the graph in Graphviz DOT (arcs from producer to consumer,
    matching the paper's figures)."""
    lines = ["digraph qgm {", "  rankdir=BT;", '  node [shape=box, fontname="Helvetica"];']
    boxes = graph.boxes()
    for box in boxes:
        shape = "box"
        style = ""
        if box.kind == BoxKind.BASE:
            shape = "cylinder"
        if box.magic_role in (MagicRole.MAGIC, MagicRole.CONDITION_MAGIC):
            style = ', style=filled, fillcolor="lightblue"'
        elif box.magic_role == MagicRole.SUPPLEMENTARY:
            style = ', style=filled, fillcolor="lightyellow"'
        lines.append(
            '  b%d [label="%s", shape=%s%s];' % (box.box_id, _box_label(box), shape, style)
        )
    for box in boxes:
        for quantifier in box.quantifiers:
            attrs = 'label="%s:%s"' % (quantifier.name, quantifier.qtype)
            if quantifier.is_magic:
                attrs += ", color=blue"
            lines.append(
                "  b%d -> b%d [%s];" % (quantifier.input_box.box_id, box.box_id, attrs)
            )
        for magic in box.linked_magic:
            lines.append(
                '  b%d -> b%d [style=dashed, label="magic-link"];'
                % (magic.box_id, box.box_id)
            )
    lines.append("}")
    return "\n".join(lines)


def graph_summary(graph):
    """One-line complexity summary: boxes / quantifiers / predicates.

    The figure benchmarks use this to reproduce the paper's
    "more boxes, more joins, yet faster" observation.
    """
    boxes, quantifiers, predicates = graph.summary_counts()
    kinds = {}
    for box in graph.boxes():
        kinds[box.kind] = kinds.get(box.kind, 0) + 1
    kind_text = ", ".join("%s=%d" % (k, v) for k, v in sorted(kinds.items()))
    return "boxes=%d (%s) quantifiers=%d predicates=%d" % (
        boxes,
        kind_text,
        quantifiers,
        predicates,
    )
