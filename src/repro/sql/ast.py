"""Abstract syntax tree for the SQL subset.

All nodes are plain dataclasses. Expression nodes share the :class:`Expr`
base and statement nodes the :class:`Statement` base. The tree is what the
parser produces and what the QGM builder consumes; it deliberately stays
close to the surface syntax (names are unresolved strings).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


class Node:
    """Common base for all AST nodes."""


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr(Node):
    """Base class for expression nodes."""

    def children(self):
        """Yield direct sub-expressions (used by generic walkers)."""
        return ()


@dataclass
class Literal(Expr):
    """A constant: int, float, str, bool or None (SQL NULL)."""

    value: object


@dataclass
class Parameter(Expr):
    """A positional prepared-statement parameter (``?``), 0-indexed in
    textual order. Bound to a value at execute time."""

    index: int

    def __str__(self):
        return "?"


@dataclass
class ColumnRef(Expr):
    """A possibly-qualified column reference ``[table.]column``."""

    column: str
    table: Optional[str] = None

    def __str__(self):
        if self.table:
            return "%s.%s" % (self.table, self.column)
        return self.column


@dataclass
class Star(Expr):
    """``*`` or ``table.*`` in a select list or COUNT(*)."""

    table: Optional[str] = None


@dataclass
class UnaryOp(Expr):
    """Unary operator: ``-expr`` or ``NOT expr``."""

    op: str
    operand: Expr

    def children(self):
        return (self.operand,)


@dataclass
class BinaryOp(Expr):
    """Binary operator node.

    ``op`` is one of: ``AND OR = <> < <= > >= + - * / % ||``.
    """

    op: str
    left: Expr
    right: Expr

    def children(self):
        return (self.left, self.right)


@dataclass
class Between(Expr):
    """``expr [NOT] BETWEEN low AND high``."""

    expr: Expr
    low: Expr
    high: Expr
    negated: bool = False

    def children(self):
        return (self.expr, self.low, self.high)


@dataclass
class InList(Expr):
    """``expr [NOT] IN (literal, ...)``."""

    expr: Expr
    items: List[Expr]
    negated: bool = False

    def children(self):
        return tuple([self.expr] + list(self.items))


@dataclass
class InSubquery(Expr):
    """``expr [NOT] IN (SELECT ...)``."""

    expr: Expr
    query: "Query"
    negated: bool = False

    def children(self):
        return (self.expr,)


@dataclass
class Exists(Expr):
    """``[NOT] EXISTS (SELECT ...)``."""

    query: "Query"
    negated: bool = False


@dataclass
class QuantifiedComparison(Expr):
    """``expr op ANY|ALL (SELECT ...)`` (``SOME`` is an alias for ``ANY``)."""

    left: Expr
    op: str
    quantifier: str  # "ANY" | "ALL"
    query: "Query"

    def children(self):
        return (self.left,)


@dataclass
class ScalarSubquery(Expr):
    """A subquery used as a scalar value."""

    query: "Query"


@dataclass
class IsNull(Expr):
    """``expr IS [NOT] NULL``."""

    expr: Expr
    negated: bool = False

    def children(self):
        return (self.expr,)


@dataclass
class Like(Expr):
    """``expr [NOT] LIKE pattern``."""

    expr: Expr
    pattern: Expr
    negated: bool = False

    def children(self):
        return (self.expr, self.pattern)


@dataclass
class FuncCall(Expr):
    """Function or aggregate call ``name([DISTINCT] args)``.

    ``COUNT(*)`` is represented with a single :class:`Star` argument.
    """

    name: str
    args: List[Expr] = field(default_factory=list)
    distinct: bool = False

    def children(self):
        return tuple(self.args)


@dataclass
class CaseWhen(Expr):
    """``CASE WHEN cond THEN value ... [ELSE value] END`` (searched form)."""

    branches: List[Tuple[Expr, Expr]]
    default: Optional[Expr] = None

    def children(self):
        out = []
        for cond, value in self.branches:
            out.append(cond)
            out.append(value)
        if self.default is not None:
            out.append(self.default)
        return tuple(out)


#: Aggregate function names recognised by the builder and the engine.
#: Extensible: :func:`repro.engine.aggregates.register_aggregate` adds to it.
AGGREGATE_FUNCTIONS = {"COUNT", "SUM", "AVG", "MIN", "MAX", "STDDEV", "VARIANCE"}


def is_aggregate_call(expr):
    """Return True when ``expr`` is a call to an aggregate function."""
    return isinstance(expr, FuncCall) and expr.name.upper() in AGGREGATE_FUNCTIONS


def contains_aggregate(expr):
    """Return True when ``expr`` or any sub-expression is an aggregate call."""
    if is_aggregate_call(expr):
        return True
    return any(contains_aggregate(child) for child in expr.children())


def walk(expr):
    """Yield ``expr`` and every sub-expression, depth first."""
    yield expr
    for child in expr.children():
        for node in walk(child):
            yield node


# ---------------------------------------------------------------------------
# Queries and statements
# ---------------------------------------------------------------------------


class Statement(Node):
    """Base class for statements."""


@dataclass
class SelectItem(Node):
    """One item of a select list: expression with optional alias."""

    expr: Expr
    alias: Optional[str] = None


@dataclass
class TableRef(Node):
    """A named table or view in a FROM clause, with optional alias."""

    name: str
    alias: Optional[str] = None

    @property
    def binding_name(self):
        """The name this reference is known by inside the block."""
        return self.alias or self.name


@dataclass
class SubqueryRef(Node):
    """A derived table ``(SELECT ...) AS alias`` in a FROM clause."""

    query: "Query"
    alias: str

    @property
    def binding_name(self):
        return self.alias


@dataclass
class JoinRef(Node):
    """``left [INNER|LEFT [OUTER]] JOIN right ON condition``.

    ``kind`` is "INNER" or "LEFT". Join chains associate left.
    """

    left: Node  # TableRef | SubqueryRef | JoinRef
    right: Node  # TableRef | SubqueryRef
    kind: str
    condition: Expr


@dataclass
class SelectCore(Node):
    """A single SELECT block (the paper's *block*)."""

    items: List[SelectItem]
    from_tables: List[Node]  # TableRef | SubqueryRef
    where: Optional[Expr] = None
    group_by: List[Expr] = field(default_factory=list)
    having: Optional[Expr] = None
    distinct: bool = False


@dataclass
class SetOp(Node):
    """``left UNION|INTERSECT|EXCEPT [ALL] right``."""

    op: str  # "UNION" | "INTERSECT" | "EXCEPT"
    all: bool
    left: Node  # SelectCore | SetOp
    right: Node


@dataclass
class OrderItem(Node):
    """One ORDER BY key."""

    expr: Expr
    ascending: bool = True


@dataclass
class Query(Statement):
    """A full query: body plus optional ORDER BY / LIMIT.

    ``ctes`` holds ``WITH [RECURSIVE]`` view definitions local to the query.
    """

    body: Node  # SelectCore | SetOp
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    ctes: List["CreateView"] = field(default_factory=list)
    recursive_ctes: bool = False


@dataclass
class CreateView(Statement):
    """``CREATE [RECURSIVE] VIEW name [(col, ...)] AS query``."""

    name: str
    query: Query
    columns: Optional[List[str]] = None
    recursive: bool = False


@dataclass
class TableColumn(Node):
    """One column in a CREATE TABLE: name, optional type, inline flags."""

    name: str
    type_name: str = "ANY"
    primary_key: bool = False
    unique: bool = False
    not_null: bool = False


@dataclass
class ForeignKeySpec(Node):
    """A table-level ``FOREIGN KEY (cols) REFERENCES table [(cols)]``.

    ``ref_columns`` is None when the referenced column list was omitted;
    it then resolves to the referenced table's primary key at CREATE time.
    """

    columns: List[str]
    ref_table: str
    ref_columns: Optional[List[str]] = None


@dataclass
class CreateTable(Statement):
    """``CREATE TABLE name (col [type] [PRIMARY KEY|UNIQUE], ...,
    [PRIMARY KEY (cols)] [, UNIQUE (cols)]* [, FOREIGN KEY (cols)
    REFERENCES t (cols)]*)``."""

    name: str
    columns: List[TableColumn]
    primary_key: Optional[List[str]] = None
    unique_keys: List[List[str]] = field(default_factory=list)
    foreign_keys: List[ForeignKeySpec] = field(default_factory=list)


@dataclass
class InsertValues(Statement):
    """``INSERT INTO name VALUES (e, ...), (e, ...)`` — constant rows."""

    table: str
    rows: List[List[Expr]]


@dataclass
class Delete(Statement):
    """``DELETE FROM name [WHERE condition]``."""

    table: str
    where: Optional[Expr] = None


@dataclass
class Update(Statement):
    """``UPDATE name SET col = expr [, ...] [WHERE condition]``."""

    table: str
    assignments: List[Tuple[str, Expr]] = field(default_factory=list)
    where: Optional[Expr] = None


@dataclass
class Script(Node):
    """A sequence of statements: zero or more view definitions and queries."""

    statements: List[Statement] = field(default_factory=list)

    @property
    def views(self):
        return [s for s in self.statements if isinstance(s, CreateView)]

    @property
    def queries(self):
        return [s for s in self.statements if isinstance(s, Query)]
