"""Hand-written lexer for the SQL subset.

The lexer is a straightforward single-pass scanner. It understands:

* identifiers (``[A-Za-z_][A-Za-z0-9_$#]*``) and double-quoted identifiers,
* keywords (case-insensitive, normalised to upper case),
* integer and decimal literals (with optional exponent),
* single-quoted string literals with ``''`` escaping,
* operators and punctuation, including ``<>``, ``<=``, ``>=``, ``!=``, ``||``,
* ``--`` line comments and ``/* ... */`` block comments.
"""

from __future__ import annotations

from repro.errors import LexError
from repro.sql.tokens import (
    KEYWORDS,
    MULTI_CHAR_SYMBOLS,
    SINGLE_CHAR_SYMBOLS,
    Token,
    TokenKind,
)

_IDENT_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_"
)
_IDENT_CONT = _IDENT_START | frozenset("0123456789$#")
_DIGITS = frozenset("0123456789")


class Lexer:
    """Tokenises SQL text into a list of :class:`Token`."""

    def __init__(self, text):
        self.text = text
        self.pos = 0
        self.line = 1
        self.column = 1

    def tokenize(self):
        """Return the full token list, ending with an EOF token."""
        tokens = []
        while True:
            self._skip_whitespace_and_comments()
            if self.pos >= len(self.text):
                tokens.append(Token(TokenKind.EOF, "", self.line, self.column))
                return tokens
            tokens.append(self._next_token())

    # -- internals ---------------------------------------------------------

    def _peek(self, offset=0):
        index = self.pos + offset
        if index < len(self.text):
            return self.text[index]
        return ""

    def _advance(self, count=1):
        for _ in range(count):
            if self.pos < len(self.text):
                if self.text[self.pos] == "\n":
                    self.line += 1
                    self.column = 1
                else:
                    self.column += 1
                self.pos += 1

    def _skip_whitespace_and_comments(self):
        while self.pos < len(self.text):
            char = self.text[self.pos]
            if char in " \t\r\n":
                self._advance()
            elif char == "-" and self._peek(1) == "-":
                while self.pos < len(self.text) and self.text[self.pos] != "\n":
                    self._advance()
            elif char == "/" and self._peek(1) == "*":
                start_line, start_col = self.line, self.column
                self._advance(2)
                while self.pos < len(self.text):
                    if self.text[self.pos] == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise LexError("unterminated block comment", start_line, start_col)
            else:
                return

    def _next_token(self):
        char = self.text[self.pos]
        if char in _IDENT_START:
            return self._lex_word()
        if char in _DIGITS:
            return self._lex_number()
        if char == ".":
            if self._peek(1) in _DIGITS:
                return self._lex_number()
            return self._lex_symbol()
        if char == "'":
            return self._lex_string()
        if char == '"':
            return self._lex_quoted_identifier()
        return self._lex_symbol()

    def _lex_word(self):
        line, column = self.line, self.column
        start = self.pos
        while self.pos < len(self.text) and self.text[self.pos] in _IDENT_CONT:
            self._advance()
        word = self.text[start : self.pos]
        upper = word.upper()
        if upper in KEYWORDS:
            return Token(TokenKind.KEYWORD, upper, line, column)
        return Token(TokenKind.IDENT, word, line, column)

    def _lex_number(self):
        line, column = self.line, self.column
        start = self.pos
        while self._peek() in _DIGITS:
            self._advance()
        if self._peek() == ".":
            self._advance()
            while self._peek() in _DIGITS:
                self._advance()
        if self._peek() in ("e", "E"):
            mark = self.pos
            self._advance()
            if self._peek() in ("+", "-"):
                self._advance()
            if self._peek() in _DIGITS:
                while self._peek() in _DIGITS:
                    self._advance()
            else:
                # Not an exponent after all (e.g. "1e" followed by a name):
                # rewind is unsafe with line tracking, so reject instead.
                raise LexError("malformed numeric exponent", line, column + (mark - start))
        return Token(TokenKind.NUMBER, self.text[start : self.pos], line, column)

    def _lex_string(self):
        line, column = self.line, self.column
        self._advance()  # opening quote
        parts = []
        while True:
            if self.pos >= len(self.text):
                raise LexError("unterminated string literal", line, column)
            char = self.text[self.pos]
            if char == "'":
                if self._peek(1) == "'":
                    parts.append("'")
                    self._advance(2)
                else:
                    self._advance()
                    return Token(TokenKind.STRING, "".join(parts), line, column)
            else:
                parts.append(char)
                self._advance()

    def _lex_quoted_identifier(self):
        line, column = self.line, self.column
        self._advance()  # opening quote
        parts = []
        while True:
            if self.pos >= len(self.text):
                raise LexError("unterminated quoted identifier", line, column)
            char = self.text[self.pos]
            if char == '"':
                if self._peek(1) == '"':
                    parts.append('"')
                    self._advance(2)
                else:
                    self._advance()
                    return Token(TokenKind.IDENT, "".join(parts), line, column)
            else:
                parts.append(char)
                self._advance()

    def _lex_symbol(self):
        line, column = self.line, self.column
        for symbol in MULTI_CHAR_SYMBOLS:
            if self.text.startswith(symbol, self.pos):
                self._advance(len(symbol))
                return Token(TokenKind.SYMBOL, symbol, line, column)
        char = self.text[self.pos]
        if char in SINGLE_CHAR_SYMBOLS:
            self._advance()
            return Token(TokenKind.SYMBOL, char, line, column)
        raise LexError("unexpected character %r" % char, line, column)


def tokenize(text):
    """Tokenise ``text`` and return the token list (including EOF)."""
    return Lexer(text).tokenize()
