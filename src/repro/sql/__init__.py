"""SQL front end: lexer, parser, AST and SQL pretty-printer.

The supported dialect is the SQL subset used throughout the paper:
``SELECT [DISTINCT] ... FROM ... [WHERE ...] [GROUP BY ...] [HAVING ...]``
blocks, set operations (``UNION/INTERSECT/EXCEPT [ALL]``), ``CREATE VIEW``
and ``WITH [RECURSIVE]`` view definitions, ``IN``/``EXISTS``/scalar
subqueries with correlation, ``DISTINCT`` aggregates, ``BETWEEN``, ``LIKE``
and ``IS [NOT] NULL``.
"""

from repro.sql import ast
from repro.sql.lexer import Lexer, tokenize
from repro.sql.parser import Parser, parse_script, parse_statement, parse_expression
from repro.sql.printer import to_sql

__all__ = [
    "ast",
    "Lexer",
    "tokenize",
    "Parser",
    "parse_script",
    "parse_statement",
    "parse_expression",
    "to_sql",
]
