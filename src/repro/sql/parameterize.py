"""Auto-parameterization: extract literal constants from a parsed query.

The serving layer caches rewritten plans keyed on the statement *shape*,
not its constants — magic sets bind parameters, and two queries differing
only in ``deptname = 'Planning'`` vs ``deptname = 'Shipping'`` must share
one cached plan. :func:`parameterize_query` walks a parsed
:class:`~repro.sql.ast.Query`, replaces every number and string literal
with a positional :class:`~repro.sql.ast.Parameter` (in textual order),
and returns the extracted values; :func:`fingerprint_query` renders the
parameterized AST back to canonical SQL and hashes it.

``NULL``, ``TRUE`` and ``FALSE`` are *not* extracted: their values are
semantically load-bearing for the rewrite pipeline (null-rejection
analysis, boolean simplification), so hiding them behind a parameter
could pin a plan that is only valid for one value.
"""

from __future__ import annotations

import dataclasses
import hashlib

from repro.sql import ast


def _extractable(literal):
    value = literal.value
    if value is None or isinstance(value, bool):
        return False
    return isinstance(value, (int, float, str))


def _walk_fields(node, replace):
    """Recursively visit dataclass fields, lists and tuples, replacing
    extractable :class:`ast.Literal` nodes via ``replace``. Traversal
    order matches the parser's textual order because dataclass fields are
    declared in source order."""

    def visit(value):
        if isinstance(value, ast.Literal):
            return replace(value) if _extractable(value) else value
        if isinstance(value, ast.Node):
            _walk_fields(value, replace)
            return value
        if isinstance(value, list):
            return [visit(item) for item in value]
        if isinstance(value, tuple):
            return tuple(visit(item) for item in value)
        return value

    for field in dataclasses.fields(node):
        setattr(node, field.name, visit(getattr(node, field.name)))


def parameterize_query(query):
    """Replace literals in ``query`` (mutated in place) with positional
    parameters; returns the list of extracted values.

    Existing ``?`` parameters are preserved and extraction continues after
    the highest pre-existing index, so a half-parameterized statement
    stays consistent (the returned values cover only the new slots and
    callers must prepend the explicit bindings)."""
    next_index = [0]
    for node in _nodes(query):
        if isinstance(node, ast.Parameter):
            next_index[0] = max(next_index[0], node.index + 1)
    values = []

    def replace(literal):
        parameter = ast.Parameter(index=next_index[0])
        next_index[0] += 1
        values.append(literal.value)
        return parameter

    _walk_fields(query, replace)
    return values


def _nodes(node):
    yield node
    for field in dataclasses.fields(node):
        value = getattr(node, field.name)
        items = value if isinstance(value, (list, tuple)) else [value]
        for item in items:
            if isinstance(item, tuple):
                for sub in item:
                    if isinstance(sub, ast.Node):
                        yield from _nodes(sub)
            elif isinstance(item, ast.Node):
                yield from _nodes(item)


def parameter_slots(query):
    """Number of parameter slots in a (parameterized) query AST: highest
    :class:`ast.Parameter` index + 1, zero when parameter-free."""
    highest = -1
    for node in _nodes(query):
        if isinstance(node, ast.Parameter):
            highest = max(highest, node.index)
    return highest + 1


def fingerprint_query(query):
    """A stable hex fingerprint of the (parameterized) query's canonical
    SQL rendering. Two textually different queries that parse to the same
    shape — whitespace, comments, literal spelling — share a fingerprint."""
    from repro.sql.printer import to_sql

    canonical = to_sql(query)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:24]
