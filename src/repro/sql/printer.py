"""SQL pretty-printer: AST back to SQL text.

``to_sql`` renders any AST node. The output re-parses to an equivalent tree
(modulo redundant parentheses), which the test suite checks by round-trip.
"""

from __future__ import annotations

from repro.sql import ast

_PRECEDENCE = {
    "OR": 1,
    "AND": 2,
    "=": 4,
    "<>": 4,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "||": 5,
    "*": 6,
    "/": 6,
    "%": 6,
}


def _format_literal(value):
    if value is None:
        return "NULL"
    if value is True:
        return "TRUE"
    if value is False:
        return "FALSE"
    if isinstance(value, str):
        return "'%s'" % value.replace("'", "''")
    return repr(value) if isinstance(value, float) else str(value)


def expr_to_sql(expr, parent_precedence=0):
    """Render an expression node to SQL text."""
    if isinstance(expr, ast.Parameter):
        return "?"
    if isinstance(expr, ast.Literal):
        return _format_literal(expr.value)
    if isinstance(expr, ast.ColumnRef):
        return str(expr)
    if isinstance(expr, ast.Star):
        return "%s.*" % expr.table if expr.table else "*"
    if isinstance(expr, ast.UnaryOp):
        if expr.op == "NOT":
            inner = expr_to_sql(expr.operand, 3)
            text = "NOT %s" % inner
            return "(%s)" % text if parent_precedence > 3 else text
        return "-%s" % expr_to_sql(expr.operand, 7)
    if isinstance(expr, ast.BinaryOp):
        precedence = _PRECEDENCE[expr.op]
        left = expr_to_sql(expr.left, precedence)
        right = expr_to_sql(expr.right, precedence + 1)
        text = "%s %s %s" % (left, expr.op, right)
        return "(%s)" % text if precedence < parent_precedence else text
    if isinstance(expr, ast.Between):
        text = "%s %sBETWEEN %s AND %s" % (
            expr_to_sql(expr.expr, 5),
            "NOT " if expr.negated else "",
            expr_to_sql(expr.low, 5),
            expr_to_sql(expr.high, 5),
        )
        return "(%s)" % text if parent_precedence > 3 else text
    if isinstance(expr, ast.InList):
        items = ", ".join(expr_to_sql(item) for item in expr.items)
        text = "%s %sIN (%s)" % (
            expr_to_sql(expr.expr, 5),
            "NOT " if expr.negated else "",
            items,
        )
        return "(%s)" % text if parent_precedence > 3 else text
    if isinstance(expr, ast.InSubquery):
        text = "%s %sIN (%s)" % (
            expr_to_sql(expr.expr, 5),
            "NOT " if expr.negated else "",
            query_to_sql(expr.query),
        )
        return "(%s)" % text if parent_precedence > 3 else text
    if isinstance(expr, ast.Exists):
        return "%sEXISTS (%s)" % ("NOT " if expr.negated else "", query_to_sql(expr.query))
    if isinstance(expr, ast.QuantifiedComparison):
        return "%s %s %s (%s)" % (
            expr_to_sql(expr.left, 5),
            expr.op,
            expr.quantifier,
            query_to_sql(expr.query),
        )
    if isinstance(expr, ast.ScalarSubquery):
        return "(%s)" % query_to_sql(expr.query)
    if isinstance(expr, ast.IsNull):
        text = "%s IS %sNULL" % (
            expr_to_sql(expr.expr, 5),
            "NOT " if expr.negated else "",
        )
        return "(%s)" % text if parent_precedence > 3 else text
    if isinstance(expr, ast.Like):
        text = "%s %sLIKE %s" % (
            expr_to_sql(expr.expr, 5),
            "NOT " if expr.negated else "",
            expr_to_sql(expr.pattern, 5),
        )
        return "(%s)" % text if parent_precedence > 3 else text
    if isinstance(expr, ast.FuncCall):
        args = ", ".join(expr_to_sql(arg) for arg in expr.args)
        distinct = "DISTINCT " if expr.distinct else ""
        return "%s(%s%s)" % (expr.name, distinct, args)
    if isinstance(expr, ast.CaseWhen):
        parts = ["CASE"]
        for cond, value in expr.branches:
            parts.append("WHEN %s THEN %s" % (expr_to_sql(cond), expr_to_sql(value)))
        if expr.default is not None:
            parts.append("ELSE %s" % expr_to_sql(expr.default))
        parts.append("END")
        return " ".join(parts)
    raise TypeError("cannot render expression node %r" % type(expr).__name__)


def _select_core_to_sql(core):
    parts = ["SELECT"]
    if core.distinct:
        parts.append("DISTINCT")
    items = []
    for item in core.items:
        text = expr_to_sql(item.expr)
        if item.alias:
            text += " AS %s" % item.alias
        items.append(text)
    parts.append(", ".join(items))
    parts.append("FROM")
    parts.append(", ".join(_from_item_to_sql(t) for t in core.from_tables))
    if core.where is not None:
        parts.append("WHERE %s" % expr_to_sql(core.where))
    if core.group_by:
        parts.append("GROUP BY %s" % ", ".join(expr_to_sql(e) for e in core.group_by))
    if core.having is not None:
        parts.append("HAVING %s" % expr_to_sql(core.having))
    return " ".join(parts)


def _from_item_to_sql(item):
    if isinstance(item, ast.TableRef):
        text = item.name
        if item.alias:
            text += " %s" % item.alias
        return text
    if isinstance(item, ast.SubqueryRef):
        return "(%s) AS %s" % (query_to_sql(item.query), item.alias)
    if isinstance(item, ast.JoinRef):
        keyword = "LEFT OUTER JOIN" if item.kind == "LEFT" else "JOIN"
        return "%s %s %s ON %s" % (
            _from_item_to_sql(item.left),
            keyword,
            _from_item_to_sql(item.right),
            expr_to_sql(item.condition),
        )
    raise TypeError("cannot render FROM item %r" % type(item).__name__)


def _body_to_sql(body):
    if isinstance(body, ast.SelectCore):
        return _select_core_to_sql(body)
    if isinstance(body, ast.SetOp):
        left = _body_to_sql(body.left)
        right = _body_to_sql(body.right)
        if isinstance(body.right, ast.SetOp):
            right = "(%s)" % right
        op = body.op + (" ALL" if body.all else "")
        return "%s %s %s" % (left, op, right)
    raise TypeError("cannot render query body %r" % type(body).__name__)


def query_to_sql(query):
    """Render a :class:`repro.sql.ast.Query` to SQL text."""
    parts = []
    if query.ctes:
        rendered = []
        for cte in query.ctes:
            cols = "(%s)" % ", ".join(cte.columns) if cte.columns else ""
            rendered.append("%s%s AS (%s)" % (cte.name, cols, query_to_sql(cte.query)))
        keyword = "WITH RECURSIVE" if query.recursive_ctes else "WITH"
        parts.append("%s %s" % (keyword, ", ".join(rendered)))
    parts.append(_body_to_sql(query.body))
    if query.order_by:
        keys = []
        for item in query.order_by:
            text = expr_to_sql(item.expr)
            if not item.ascending:
                text += " DESC"
            keys.append(text)
        parts.append("ORDER BY %s" % ", ".join(keys))
    if query.limit is not None:
        parts.append("LIMIT %d" % query.limit)
    return " ".join(parts)


def to_sql(node):
    """Render any AST node (statement, query, or expression) to SQL text."""
    if isinstance(node, ast.Script):
        return ";\n".join(to_sql(s) for s in node.statements) + ";"
    if isinstance(node, ast.CreateTable):
        parts = []
        for column in node.columns:
            text = column.name
            if column.type_name != "ANY":
                text += " %s" % column.type_name
            if column.primary_key:
                text += " PRIMARY KEY"
            if column.unique:
                text += " UNIQUE"
            if column.not_null:
                text += " NOT NULL"
            parts.append(text)
        inline_pk = [c.name for c in node.columns if c.primary_key]
        if node.primary_key and node.primary_key != inline_pk:
            parts.append("PRIMARY KEY (%s)" % ", ".join(node.primary_key))
        for key in node.unique_keys:
            if len(key) == 1 and any(c.name == key[0] and c.unique for c in node.columns):
                continue
            parts.append("UNIQUE (%s)" % ", ".join(key))
        for fk in node.foreign_keys:
            text = "FOREIGN KEY (%s) REFERENCES %s" % (
                ", ".join(fk.columns),
                fk.ref_table,
            )
            if fk.ref_columns is not None:
                text += " (%s)" % ", ".join(fk.ref_columns)
            parts.append(text)
        return "CREATE TABLE %s (%s)" % (node.name, ", ".join(parts))
    if isinstance(node, ast.InsertValues):
        rows = ", ".join(
            "(%s)" % ", ".join(expr_to_sql(v) for v in row) for row in node.rows
        )
        return "INSERT INTO %s VALUES %s" % (node.table, rows)
    if isinstance(node, ast.Delete):
        text = "DELETE FROM %s" % node.table
        if node.where is not None:
            text += " WHERE %s" % expr_to_sql(node.where)
        return text
    if isinstance(node, ast.Update):
        sets = ", ".join(
            "%s = %s" % (column, expr_to_sql(value))
            for column, value in node.assignments
        )
        text = "UPDATE %s SET %s" % (node.table, sets)
        if node.where is not None:
            text += " WHERE %s" % expr_to_sql(node.where)
        return text
    if isinstance(node, ast.CreateView):
        cols = " (%s)" % ", ".join(node.columns) if node.columns else ""
        keyword = "CREATE RECURSIVE VIEW" if node.recursive else "CREATE VIEW"
        return "%s %s%s AS %s" % (keyword, node.name, cols, query_to_sql(node.query))
    if isinstance(node, ast.Query):
        return query_to_sql(node)
    if isinstance(node, ast.Expr):
        return expr_to_sql(node)
    raise TypeError("cannot render node %r" % type(node).__name__)
