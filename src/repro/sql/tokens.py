"""Token kinds and the token record produced by the lexer."""

from __future__ import annotations

from dataclasses import dataclass


class TokenKind:
    """Enumeration of lexical token categories."""

    IDENT = "IDENT"
    KEYWORD = "KEYWORD"
    NUMBER = "NUMBER"
    STRING = "STRING"
    SYMBOL = "SYMBOL"
    EOF = "EOF"


#: Reserved words recognised by the lexer (upper-cased before comparison).
KEYWORDS = frozenset(
    {
        "SELECT",
        "DISTINCT",
        "ALL",
        "FROM",
        "WHERE",
        "GROUP",
        "BY",
        "HAVING",
        "ORDER",
        "ASC",
        "DESC",
        "LIMIT",
        "UNION",
        "INTERSECT",
        "EXCEPT",
        "AS",
        "AND",
        "OR",
        "NOT",
        "IN",
        "EXISTS",
        "BETWEEN",
        "LIKE",
        "IS",
        "NULL",
        "TRUE",
        "FALSE",
        "CREATE",
        "VIEW",
        "RECURSIVE",
        "WITH",
        "ANY",
        "SOME",
        "JOIN",
        "INNER",
        "LEFT",
        "OUTER",
        "ON",
        "CASE",
        "WHEN",
        "THEN",
        "ELSE",
        "END",
        "CAST",
        "TABLE",
        "INSERT",
        "INTO",
        "VALUES",
        "PRIMARY",
        "KEY",
        "UNIQUE",
        "FOREIGN",
        "REFERENCES",
        "DELETE",
        "UPDATE",
        "SET",
    }
)

#: Multi-character operators, longest first so the lexer can match greedily.
MULTI_CHAR_SYMBOLS = ("<>", "<=", ">=", "!=", "||")

SINGLE_CHAR_SYMBOLS = frozenset("()+-*/%,.<>=;?")


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``value`` holds the raw text for identifiers and symbols, the *decoded*
    value for strings (quotes stripped, doubled quotes collapsed) and the
    upper-cased spelling for keywords.
    """

    kind: str
    value: str
    line: int
    column: int

    def matches(self, kind, value=None):
        """Return True when this token has ``kind`` (and ``value`` if given)."""
        if self.kind != kind:
            return False
        return value is None or self.value == value

    def __str__(self):
        return "%s(%r)@%d:%d" % (self.kind, self.value, self.line, self.column)
