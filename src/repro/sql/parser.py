"""Recursive-descent parser for the SQL subset.

Produces the AST defined in :mod:`repro.sql.ast`. Expression parsing uses
conventional precedence::

    OR < AND < NOT < comparison/IN/BETWEEN/LIKE/IS < + - || < * / % < unary -

Set operations follow SQL precedence (INTERSECT binds tighter than
UNION/EXCEPT, which associate left).
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.sql import ast
from repro.sql.lexer import tokenize
from repro.sql.tokens import TokenKind

_COMPARISON_OPS = ("=", "<>", "!=", "<", "<=", ">", ">=")


class Parser:
    """Parses a token stream into AST nodes."""

    def __init__(self, text):
        self.tokens = tokenize(text)
        self.index = 0
        # Positional ``?`` parameters, numbered in textual order across the
        # whole script (prepared statements carry a single parameter list).
        self.parameter_count = 0

    # -- token helpers -------------------------------------------------------

    @property
    def current(self):
        return self.tokens[self.index]

    def _peek(self, offset=0):
        index = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self):
        token = self.tokens[self.index]
        if token.kind != TokenKind.EOF:
            self.index += 1
        return token

    def _check(self, kind, value=None):
        return self.current.matches(kind, value)

    def _check_keyword(self, *words):
        return self.current.kind == TokenKind.KEYWORD and self.current.value in words

    def _accept(self, kind, value=None):
        if self._check(kind, value):
            return self._advance()
        return None

    def _accept_keyword(self, *words):
        if self._check_keyword(*words):
            return self._advance()
        return None

    def _expect(self, kind, value=None):
        token = self._accept(kind, value)
        if token is None:
            raise ParseError(
                "expected %s but found %s"
                % (value or kind, self.current.value or self.current.kind),
                self.current.line,
                self.current.column,
            )
        return token

    def _expect_keyword(self, word):
        token = self._accept_keyword(word)
        if token is None:
            raise ParseError(
                "expected %s but found %s"
                % (word, self.current.value or self.current.kind),
                self.current.line,
                self.current.column,
            )
        return token

    def _expect_identifier(self):
        token = self._accept(TokenKind.IDENT)
        if token is None:
            raise ParseError(
                "expected identifier but found %s"
                % (self.current.value or self.current.kind),
                self.current.line,
                self.current.column,
            )
        return token.value

    # -- entry points --------------------------------------------------------

    def parse_script(self):
        """Parse a sequence of ';'-separated statements."""
        statements = []
        while not self._check(TokenKind.EOF):
            statements.append(self.parse_statement())
            while self._accept(TokenKind.SYMBOL, ";"):
                pass
        return ast.Script(statements=statements)

    def parse_statement(self):
        """Parse a single CREATE TABLE/VIEW, INSERT, or query statement."""
        if self._check_keyword("CREATE"):
            if self._peek(1).matches(TokenKind.KEYWORD, "TABLE"):
                return self._parse_create_table()
            return self._parse_create_view()
        if self._check_keyword("INSERT"):
            return self._parse_insert()
        if self._check_keyword("DELETE"):
            return self._parse_delete()
        if self._check_keyword("UPDATE"):
            return self._parse_update()
        return self.parse_query()

    def parse_expression(self):
        """Parse a standalone expression (used by tests and tools)."""
        expr = self._parse_expr()
        if not self._check(TokenKind.EOF):
            raise ParseError(
                "unexpected trailing input: %s" % self.current.value,
                self.current.line,
                self.current.column,
            )
        return expr

    # -- statements ----------------------------------------------------------

    def _parse_create_table(self):
        self._expect_keyword("CREATE")
        self._expect_keyword("TABLE")
        name = self._expect_identifier()
        self._expect(TokenKind.SYMBOL, "(")
        columns = []
        primary_key = None
        unique_keys = []
        foreign_keys = []
        while True:
            if self._check_keyword("PRIMARY"):
                self._advance()
                self._expect_keyword("KEY")
                key = self._parse_optional_column_list()
                if key is None:
                    raise ParseError(
                        "table-level PRIMARY KEY needs a column list",
                        self.current.line,
                        self.current.column,
                    )
                primary_key = key
            elif self._check_keyword("UNIQUE"):
                self._advance()
                key = self._parse_optional_column_list()
                if key is None:
                    raise ParseError(
                        "table-level UNIQUE needs a column list",
                        self.current.line,
                        self.current.column,
                    )
                unique_keys.append(key)
            elif self._check_keyword("FOREIGN"):
                self._advance()
                self._expect_keyword("KEY")
                key = self._parse_optional_column_list()
                if key is None:
                    raise ParseError(
                        "table-level FOREIGN KEY needs a column list",
                        self.current.line,
                        self.current.column,
                    )
                self._expect_keyword("REFERENCES")
                ref_table = self._expect_identifier()
                ref_columns = self._parse_optional_column_list()
                foreign_keys.append(
                    ast.ForeignKeySpec(
                        columns=key,
                        ref_table=ref_table,
                        ref_columns=ref_columns,
                    )
                )
            else:
                column_name = self._expect_identifier()
                type_name = "ANY"
                if self._check(TokenKind.IDENT):
                    type_name = self._advance().value.upper()
                    if self._accept(TokenKind.SYMBOL, "("):
                        self._expect(TokenKind.NUMBER)
                        self._expect(TokenKind.SYMBOL, ")")
                is_pk = False
                is_unique = False
                is_not_null = False
                while True:
                    if self._accept_keyword("PRIMARY"):
                        self._expect_keyword("KEY")
                        is_pk = True
                    elif self._accept_keyword("UNIQUE"):
                        is_unique = True
                    elif self._accept_keyword("NOT"):
                        self._expect_keyword("NULL")
                        is_not_null = True
                    else:
                        break
                columns.append(
                    ast.TableColumn(
                        name=column_name,
                        type_name=type_name,
                        primary_key=is_pk,
                        unique=is_unique,
                        not_null=is_not_null,
                    )
                )
            if not self._accept(TokenKind.SYMBOL, ","):
                break
        self._expect(TokenKind.SYMBOL, ")")
        inline_pk = [c.name for c in columns if c.primary_key]
        if inline_pk and primary_key is None:
            primary_key = inline_pk
        unique_keys.extend([[c.name] for c in columns if c.unique])
        return ast.CreateTable(
            name=name,
            columns=columns,
            primary_key=primary_key,
            unique_keys=unique_keys,
            foreign_keys=foreign_keys,
        )

    def _parse_insert(self):
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._expect_identifier()
        self._expect_keyword("VALUES")
        rows = [self._parse_value_row()]
        while self._accept(TokenKind.SYMBOL, ","):
            rows.append(self._parse_value_row())
        return ast.InsertValues(table=table, rows=rows)

    def _parse_delete(self):
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._expect_identifier()
        where = None
        if self._accept_keyword("WHERE"):
            where = self._parse_expr()
        return ast.Delete(table=table, where=where)

    def _parse_update(self):
        self._expect_keyword("UPDATE")
        table = self._expect_identifier()
        self._expect_keyword("SET")
        assignments = [self._parse_assignment()]
        while self._accept(TokenKind.SYMBOL, ","):
            assignments.append(self._parse_assignment())
        where = None
        if self._accept_keyword("WHERE"):
            where = self._parse_expr()
        return ast.Update(table=table, assignments=assignments, where=where)

    def _parse_assignment(self):
        column = self._expect_identifier()
        self._expect(TokenKind.SYMBOL, "=")
        return (column, self._parse_expr())

    def _parse_value_row(self):
        self._expect(TokenKind.SYMBOL, "(")
        values = [self._parse_expr()]
        while self._accept(TokenKind.SYMBOL, ","):
            values.append(self._parse_expr())
        self._expect(TokenKind.SYMBOL, ")")
        return values

    def _parse_create_view(self):
        self._expect_keyword("CREATE")
        recursive = self._accept_keyword("RECURSIVE") is not None
        self._expect_keyword("VIEW")
        name = self._expect_identifier()
        columns = self._parse_optional_column_list()
        self._expect_keyword("AS")
        if self._accept(TokenKind.SYMBOL, "("):
            query = self.parse_query()
            self._expect(TokenKind.SYMBOL, ")")
        else:
            query = self.parse_query()
        return ast.CreateView(name=name, query=query, columns=columns, recursive=recursive)

    def _parse_optional_column_list(self):
        if not self._accept(TokenKind.SYMBOL, "("):
            return None
        columns = [self._expect_identifier()]
        while self._accept(TokenKind.SYMBOL, ","):
            columns.append(self._expect_identifier())
        self._expect(TokenKind.SYMBOL, ")")
        return columns

    def parse_query(self):
        """Parse ``[WITH ...] set_expr [ORDER BY ...] [LIMIT n]``."""
        ctes = []
        recursive = False
        if self._accept_keyword("WITH"):
            recursive = self._accept_keyword("RECURSIVE") is not None
            ctes.append(self._parse_cte(recursive))
            while self._accept(TokenKind.SYMBOL, ","):
                ctes.append(self._parse_cte(recursive))
        body = self._parse_set_expr()
        order_by = self._parse_optional_order_by()
        limit = None
        if self._accept_keyword("LIMIT"):
            token = self._expect(TokenKind.NUMBER)
            limit = int(token.value)
        return ast.Query(
            body=body,
            order_by=order_by,
            limit=limit,
            ctes=ctes,
            recursive_ctes=recursive,
        )

    def _parse_cte(self, recursive):
        name = self._expect_identifier()
        columns = self._parse_optional_column_list()
        self._expect_keyword("AS")
        self._expect(TokenKind.SYMBOL, "(")
        query = self.parse_query()
        self._expect(TokenKind.SYMBOL, ")")
        return ast.CreateView(name=name, query=query, columns=columns, recursive=recursive)

    def _parse_optional_order_by(self):
        if not self._accept_keyword("ORDER"):
            return []
        self._expect_keyword("BY")
        items = [self._parse_order_item()]
        while self._accept(TokenKind.SYMBOL, ","):
            items.append(self._parse_order_item())
        return items

    def _parse_order_item(self):
        expr = self._parse_expr()
        ascending = True
        if self._accept_keyword("DESC"):
            ascending = False
        else:
            self._accept_keyword("ASC")
        return ast.OrderItem(expr=expr, ascending=ascending)

    # -- set expressions -----------------------------------------------------

    def _parse_set_expr(self):
        left = self._parse_intersect_expr()
        while self._check_keyword("UNION", "EXCEPT"):
            op = self._advance().value
            all_flag = self._accept_keyword("ALL") is not None
            if not all_flag:
                self._accept_keyword("DISTINCT")
            right = self._parse_intersect_expr()
            left = ast.SetOp(op=op, all=all_flag, left=left, right=right)
        return left

    def _parse_intersect_expr(self):
        left = self._parse_set_primary()
        while self._check_keyword("INTERSECT"):
            self._advance()
            all_flag = self._accept_keyword("ALL") is not None
            if not all_flag:
                self._accept_keyword("DISTINCT")
            right = self._parse_set_primary()
            left = ast.SetOp(op="INTERSECT", all=all_flag, left=left, right=right)
        return left

    def _parse_set_primary(self):
        if self._accept(TokenKind.SYMBOL, "("):
            body = self._parse_set_expr()
            self._expect(TokenKind.SYMBOL, ")")
            return body
        return self._parse_select_core()

    def _parse_select_core(self):
        self._expect_keyword("SELECT")
        distinct = False
        if self._accept_keyword("DISTINCT"):
            distinct = True
        else:
            self._accept_keyword("ALL")
        items = [self._parse_select_item()]
        while self._accept(TokenKind.SYMBOL, ","):
            items.append(self._parse_select_item())
        self._expect_keyword("FROM")
        from_tables = [self._parse_from_item()]
        while self._accept(TokenKind.SYMBOL, ","):
            from_tables.append(self._parse_from_item())
        where = None
        if self._accept_keyword("WHERE"):
            where = self._parse_expr()
        group_by = []
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self._parse_expr())
            while self._accept(TokenKind.SYMBOL, ","):
                group_by.append(self._parse_expr())
        having = None
        if self._accept_keyword("HAVING"):
            having = self._parse_expr()
        return ast.SelectCore(
            items=items,
            from_tables=from_tables,
            where=where,
            group_by=group_by,
            having=having,
            distinct=distinct,
        )

    def _parse_select_item(self):
        if self._check(TokenKind.SYMBOL, "*"):
            self._advance()
            return ast.SelectItem(expr=ast.Star())
        if (
            self._check(TokenKind.IDENT)
            and self._peek(1).matches(TokenKind.SYMBOL, ".")
            and self._peek(2).matches(TokenKind.SYMBOL, "*")
        ):
            table = self._advance().value
            self._advance()
            self._advance()
            return ast.SelectItem(expr=ast.Star(table=table))
        expr = self._parse_expr()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_identifier()
        elif self._check(TokenKind.IDENT):
            alias = self._advance().value
        return ast.SelectItem(expr=expr, alias=alias)

    def _parse_from_item(self):
        """One FROM item: a table reference optionally extended by a
        left-associative JOIN chain."""
        item = self._parse_table_primary()
        while self._check_keyword("JOIN", "INNER", "LEFT"):
            kind = "INNER"
            if self._accept_keyword("LEFT"):
                self._accept_keyword("OUTER")
                kind = "LEFT"
            else:
                self._accept_keyword("INNER")
            self._expect_keyword("JOIN")
            right = self._parse_table_primary()
            self._expect_keyword("ON")
            condition = self._parse_expr()
            item = ast.JoinRef(left=item, right=right, kind=kind, condition=condition)
        return item

    def _parse_table_primary(self):
        if self._check(TokenKind.SYMBOL, "("):
            self._advance()
            query = self.parse_query()
            self._expect(TokenKind.SYMBOL, ")")
            self._accept_keyword("AS")
            alias = self._expect_identifier()
            return ast.SubqueryRef(query=query, alias=alias)
        name = self._expect_identifier()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_identifier()
        elif self._check(TokenKind.IDENT):
            alias = self._advance().value
        return ast.TableRef(name=name, alias=alias)

    # -- expressions ---------------------------------------------------------

    def _parse_expr(self):
        return self._parse_or()

    def _parse_or(self):
        left = self._parse_and()
        while self._accept_keyword("OR"):
            right = self._parse_and()
            left = ast.BinaryOp(op="OR", left=left, right=right)
        return left

    def _parse_and(self):
        left = self._parse_not()
        while self._accept_keyword("AND"):
            right = self._parse_not()
            left = ast.BinaryOp(op="AND", left=left, right=right)
        return left

    def _parse_not(self):
        if self._accept_keyword("NOT"):
            operand = self._parse_not()
            return _negate(operand)
        return self._parse_predicate()

    def _parse_predicate(self):
        left = self._parse_additive()
        negated = self._accept_keyword("NOT") is not None
        if self._check(TokenKind.SYMBOL) and self.current.value in _COMPARISON_OPS:
            if negated:
                raise ParseError(
                    "NOT cannot directly precede a comparison operator",
                    self.current.line,
                    self.current.column,
                )
            op = self._advance().value
            if op == "!=":
                op = "<>"
            if self._check_keyword("ANY", "SOME", "ALL"):
                quant = self._advance().value
                if quant == "SOME":
                    quant = "ANY"
                self._expect(TokenKind.SYMBOL, "(")
                query = self.parse_query()
                self._expect(TokenKind.SYMBOL, ")")
                return ast.QuantifiedComparison(left=left, op=op, quantifier=quant, query=query)
            right = self._parse_additive()
            return ast.BinaryOp(op=op, left=left, right=right)
        if self._accept_keyword("BETWEEN"):
            low = self._parse_additive()
            self._expect_keyword("AND")
            high = self._parse_additive()
            return ast.Between(expr=left, low=low, high=high, negated=negated)
        if self._accept_keyword("IN"):
            self._expect(TokenKind.SYMBOL, "(")
            if self._check_keyword("SELECT", "WITH"):
                query = self.parse_query()
                self._expect(TokenKind.SYMBOL, ")")
                return ast.InSubquery(expr=left, query=query, negated=negated)
            items = [self._parse_expr()]
            while self._accept(TokenKind.SYMBOL, ","):
                items.append(self._parse_expr())
            self._expect(TokenKind.SYMBOL, ")")
            return ast.InList(expr=left, items=items, negated=negated)
        if self._accept_keyword("LIKE"):
            pattern = self._parse_additive()
            return ast.Like(expr=left, pattern=pattern, negated=negated)
        if self._accept_keyword("IS"):
            if negated:
                raise ParseError(
                    "NOT cannot directly precede IS",
                    self.current.line,
                    self.current.column,
                )
            is_negated = self._accept_keyword("NOT") is not None
            self._expect_keyword("NULL")
            return ast.IsNull(expr=left, negated=is_negated)
        if negated:
            raise ParseError(
                "expected BETWEEN, IN or LIKE after NOT",
                self.current.line,
                self.current.column,
            )
        return left

    def _parse_additive(self):
        left = self._parse_multiplicative()
        while self._check(TokenKind.SYMBOL) and self.current.value in ("+", "-", "||"):
            op = self._advance().value
            right = self._parse_multiplicative()
            left = ast.BinaryOp(op=op, left=left, right=right)
        return left

    def _parse_multiplicative(self):
        left = self._parse_unary()
        while self._check(TokenKind.SYMBOL) and self.current.value in ("*", "/", "%"):
            op = self._advance().value
            right = self._parse_unary()
            left = ast.BinaryOp(op=op, left=left, right=right)
        return left

    def _parse_unary(self):
        if self._accept(TokenKind.SYMBOL, "-"):
            return ast.UnaryOp(op="-", operand=self._parse_unary())
        if self._accept(TokenKind.SYMBOL, "+"):
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self):
        token = self.current
        if token.kind == TokenKind.NUMBER:
            self._advance()
            text = token.value
            if "." in text or "e" in text or "E" in text:
                return ast.Literal(value=float(text))
            return ast.Literal(value=int(text))
        if token.kind == TokenKind.STRING:
            self._advance()
            return ast.Literal(value=token.value)
        if self._accept_keyword("NULL"):
            return ast.Literal(value=None)
        if self._accept_keyword("TRUE"):
            return ast.Literal(value=True)
        if self._accept_keyword("FALSE"):
            return ast.Literal(value=False)
        if self._check(TokenKind.SYMBOL, "?"):
            self._advance()
            parameter = ast.Parameter(index=self.parameter_count)
            self.parameter_count += 1
            return parameter
        if self._check_keyword("EXISTS"):
            self._advance()
            self._expect(TokenKind.SYMBOL, "(")
            query = self.parse_query()
            self._expect(TokenKind.SYMBOL, ")")
            return ast.Exists(query=query)
        if self._check_keyword("CASE"):
            return self._parse_case()
        if self._check(TokenKind.SYMBOL, "("):
            self._advance()
            if self._check_keyword("SELECT", "WITH"):
                query = self.parse_query()
                self._expect(TokenKind.SYMBOL, ")")
                return ast.ScalarSubquery(query=query)
            expr = self._parse_expr()
            self._expect(TokenKind.SYMBOL, ")")
            return expr
        if token.kind == TokenKind.IDENT:
            return self._parse_identifier_expr()
        raise ParseError(
            "unexpected token %s" % (token.value or token.kind),
            token.line,
            token.column,
        )

    def _parse_case(self):
        self._expect_keyword("CASE")
        branches = []
        while self._accept_keyword("WHEN"):
            cond = self._parse_expr()
            self._expect_keyword("THEN")
            value = self._parse_expr()
            branches.append((cond, value))
        if not branches:
            raise ParseError(
                "CASE requires at least one WHEN branch",
                self.current.line,
                self.current.column,
            )
        default = None
        if self._accept_keyword("ELSE"):
            default = self._parse_expr()
        self._expect_keyword("END")
        return ast.CaseWhen(branches=branches, default=default)

    def _parse_identifier_expr(self):
        name = self._advance().value
        if self._check(TokenKind.SYMBOL, "("):
            self._advance()
            distinct = self._accept_keyword("DISTINCT") is not None
            args = []
            if self._check(TokenKind.SYMBOL, "*"):
                self._advance()
                args.append(ast.Star())
            elif not self._check(TokenKind.SYMBOL, ")"):
                args.append(self._parse_expr())
                while self._accept(TokenKind.SYMBOL, ","):
                    args.append(self._parse_expr())
            self._expect(TokenKind.SYMBOL, ")")
            return ast.FuncCall(name=name.upper(), args=args, distinct=distinct)
        if self._check(TokenKind.SYMBOL, "."):
            self._advance()
            column = self._expect_identifier()
            return ast.ColumnRef(column=column, table=name)
        return ast.ColumnRef(column=name)


def _negate(expr):
    """Push a NOT into negatable predicate nodes, else wrap in UnaryOp."""
    if isinstance(expr, ast.Exists):
        return ast.Exists(query=expr.query, negated=not expr.negated)
    if isinstance(expr, ast.InSubquery):
        return ast.InSubquery(expr=expr.expr, query=expr.query, negated=not expr.negated)
    if isinstance(expr, ast.InList):
        return ast.InList(expr=expr.expr, items=expr.items, negated=not expr.negated)
    if isinstance(expr, ast.Between):
        return ast.Between(
            expr=expr.expr, low=expr.low, high=expr.high, negated=not expr.negated
        )
    if isinstance(expr, ast.Like):
        return ast.Like(expr=expr.expr, pattern=expr.pattern, negated=not expr.negated)
    if isinstance(expr, ast.IsNull):
        return ast.IsNull(expr=expr.expr, negated=not expr.negated)
    if isinstance(expr, ast.UnaryOp) and expr.op == "NOT":
        return expr.operand
    return ast.UnaryOp(op="NOT", operand=expr)


def parse_script(text):
    """Parse a multi-statement SQL script."""
    return Parser(text).parse_script()


def parse_statement(text):
    """Parse a single SQL statement."""
    parser = Parser(text)
    statement = parser.parse_statement()
    parser._accept(TokenKind.SYMBOL, ";")
    if not parser._check(TokenKind.EOF):
        raise ParseError(
            "unexpected trailing input: %s" % parser.current.value,
            parser.current.line,
            parser.current.column,
        )
    return statement


def parse_expression(text):
    """Parse a standalone SQL expression."""
    return Parser(text).parse_expression()
