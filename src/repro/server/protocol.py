"""Wire protocol: 4-byte big-endian length-prefixed JSON frames.

Every frame is ``struct.pack(">I", len(payload)) + payload`` where
``payload`` is UTF-8 JSON. Requests are objects with an ``op`` plus
op-specific fields; responses either carry ``"ok": true`` and a result,
or ``"ok": false`` and an ``error`` object::

    {"op": "query",   "sql": "...", "strategy": "emst", "deadline": 2.0}
    {"op": "prepare", "sql": "SELECT ... WHERE x = ?"}
    {"op": "execute", "statement": 3, "params": [17]}
    {"op": "script",  "sql": "CREATE TABLE ...; INSERT ..."}
    {"op": "stats"} | {"op": "ping"} | {"op": "close"}

Error objects are structured for machine consumption — ``type``,
``message``, ``retryable`` and ``retry_after`` let the client decide
whether (and when) to retry without parsing prose::

    {"type": "ServerOverloadedError", "message": "...",
     "retryable": true, "retry_after": 0.12, "context": {...}}

The length prefix bounds the damage a slow or malicious client can do:
frames above :data:`MAX_FRAME_BYTES` are rejected before the payload is
read into memory.
"""

from __future__ import annotations

import json
import struct

from repro.errors import ReproError

#: Hard cap on a single frame; protects the server from one client
#: streaming an unbounded payload (and the client from a corrupted
#: length prefix that decodes as gigabytes).
MAX_FRAME_BYTES = 8 * 1024 * 1024

_HEADER = struct.Struct(">I")
HEADER_BYTES = _HEADER.size


class ProtocolError(ReproError):
    """Malformed frame: oversized, truncated, or not valid JSON."""


def encode_frame(message):
    """Serialize a dict into a length-prefixed frame (bytes)."""
    payload = json.dumps(message, separators=(",", ":"), default=str).encode(
        "utf-8"
    )
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            "frame of %d bytes exceeds the %d byte limit"
            % (len(payload), MAX_FRAME_BYTES)
        )
    return _HEADER.pack(len(payload)) + payload


def decode_length(header):
    """Validate and decode the 4-byte header; returns the payload size."""
    if len(header) != HEADER_BYTES:
        raise ProtocolError(
            "truncated frame header (%d of %d bytes)"
            % (len(header), HEADER_BYTES)
        )
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            "declared frame of %d bytes exceeds the %d byte limit"
            % (length, MAX_FRAME_BYTES)
        )
    return length


def decode_payload(payload):
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError("frame payload is not valid JSON: %s" % exc)
    if not isinstance(message, dict):
        raise ProtocolError(
            "frame payload must be a JSON object, got %s"
            % type(message).__name__
        )
    return message


async def read_frame(reader):
    """Read one frame from an asyncio stream reader; None at clean EOF."""
    import asyncio

    try:
        header = await reader.readexactly(HEADER_BYTES)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError(
            "connection dropped mid-header (%d bytes)" % len(exc.partial)
        )
    length = decode_length(header)
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            "connection dropped mid-frame (%d of %d bytes)"
            % (len(exc.partial), length)
        )
    return decode_payload(payload)


def error_to_wire(exc):
    """Serialize an exception into the structured wire-error object.

    An exception already carrying a ``wire`` dict (an error relayed from
    a worker process, or a client-side :class:`ServerError` re-raised by
    a proxy) passes through verbatim — the original type name and retry
    metadata must survive any number of hops.
    """
    wire = getattr(exc, "wire", None)
    if isinstance(wire, dict) and wire.get("type"):
        return dict(wire)
    context = getattr(exc, "context", None)
    wire = {
        "type": type(exc).__name__,
        "message": str(exc),
        "retryable": bool(getattr(exc, "retryable", False)),
    }
    retry_after = getattr(exc, "retry_after", None)
    if retry_after is None and isinstance(context, dict):
        retry_after = context.get("retry_after")
    if retry_after is not None:
        wire["retry_after"] = retry_after
    if isinstance(context, dict) and context:
        wire["context"] = {
            key: value
            for key, value in context.items()
            if isinstance(value, (str, int, float, bool, type(None), list))
        }
    return wire


def ok(request_id, **fields):
    response = {"ok": True}
    if request_id is not None:
        response["id"] = request_id
    response.update(fields)
    return response


def error(request_id, exc):
    response = {"ok": False, "error": error_to_wire(exc)}
    if request_id is not None:
        response["id"] = request_id
    return response
