"""Cross-request result cache.

A prepared plan makes repeated executions cheap; a *result* cache makes
them free — but only when it can prove the cached rows are the rows the
query would produce right now. The key carries that proof:

``(fingerprint, strategy, executor, catalog version, bindings,
table data versions)``

* **fingerprint** — the parameterized statement (constants collapsed),
  same as the plan cache,
* **strategy / executor** — kept separate for observability (the row
  sets are differentially tested equal, but a hit must report the engine
  that actually produced it),
* **catalog version** — DDL makes every older entry unreachable,
* **bindings** — the concrete parameter values (client-sent plus
  auto-extracted literals), the part the plan cache deliberately
  abstracts over,
* **table data versions** — ``{table -> Table.version}`` at execution
  time. Any DML bumps the mutated table's version, so an entry computed
  before the DML can never match a lookup after it. This is the
  :meth:`~repro.server.plan_cache.CachedPlan.staleness` plumbing turned
  from a report into a key: staleness is not *detected*, it is
  *unrepresentable*.

Lookups and stores both happen under the server's read lock, and DML
runs under the write lock, so the versions in a key cannot move between
lookup and serve — the hypothesis interleaving test in
``tests/test_server_multiprocess.py`` hammers exactly this invariant.

Entries are frozen (tuple-of-tuples rows) and materialized into fresh
response dicts on every serve, so one request annotating its response
cannot corrupt the cached copy.
"""

from __future__ import annotations

import threading
from collections import OrderedDict


class ResultCache:
    """A bounded LRU of frozen query results, thread-safe.

    ``capacity=0`` disables the cache entirely (every lookup misses,
    every store is a bypass); ``max_rows`` keeps monster results from
    evicting the whole working set.
    """

    def __init__(self, capacity=256, max_rows=10000):
        self.capacity = capacity
        self.max_rows = max_rows
        self._lock = threading.Lock()
        self._entries = OrderedDict()  # key -> frozen response template
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.bypassed = 0

    @staticmethod
    def make_key(fingerprint, strategy, executor, catalog_version, values,
                 table_versions):
        """Build (and hash-check) a cache key; None if any binding value
        is unhashable (such a request simply bypasses the cache)."""
        key = (
            fingerprint,
            strategy,
            executor,
            catalog_version,
            tuple(values),
            tuple(sorted(table_versions.items())),
        )
        try:
            hash(key)
        except TypeError:
            return None
        return key

    def lookup(self, key):
        """A fresh response dict for the key, or None. Counts a miss for
        None keys so bypasses are visible in the hit rate."""
        if key is None or not self.capacity:
            with self._lock:
                self.misses += 1
            return None
        with self._lock:
            frozen = self._entries.get(key)
            if frozen is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
        return self._materialize(frozen)

    def store(self, key, response):
        """Freeze and cache a successful response. Returns True if the
        entry was stored, False on bypass (disabled, oversized result,
        unhashable key)."""
        if key is None or not self.capacity:
            with self._lock:
                self.bypassed += 1
            return False
        rows = response.get("rows") or []
        if len(rows) > self.max_rows:
            with self._lock:
                self.bypassed += 1
            return False
        frozen = {
            "columns": tuple(response.get("columns") or ()),
            "rows": tuple(tuple(row) for row in rows),
            # worker_pid is dropped: it names the process that produced
            # the entry, which is meaningless (and possibly dead) by the
            # time a hit serves it.
            "extra": {
                name: value
                for name, value in response.items()
                if name not in ("columns", "rows", "row_count", "worker_pid")
                and isinstance(value, (str, int, float, bool, type(None)))
            },
        }
        with self._lock:
            self._entries[key] = frozen
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
        return True

    @staticmethod
    def _materialize(frozen):
        response = dict(frozen["extra"])
        response["columns"] = list(frozen["columns"])
        response["rows"] = [list(row) for row in frozen["rows"]]
        response["row_count"] = len(frozen["rows"])
        return response

    def clear(self):
        with self._lock:
            self._entries.clear()

    def __len__(self):
        with self._lock:
            return len(self._entries)

    def stats(self):
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": (self.hits / total) if total else 0.0,
                "evictions": self.evictions,
                "bypassed": self.bypassed,
            }
