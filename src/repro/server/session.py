"""Asyncio session layer: frame loop, dispatch, disconnect watching.

Each TCP connection is one *session*: a frame loop reading length-prefixed
JSON requests (:mod:`repro.server.protocol`) and dispatching them to the
:class:`~repro.server.core.QueryServer` on its executor pool. The event
loop itself never executes a query — it only parses frames, checks
admission, and shuttles results — so one slow query cannot stall other
sessions' protocol handling.

**Disconnect watching.** While a query runs on an executor thread, the
session watches its socket: a client that hangs up mid-query trips the
query's cancel token, and the next evaluator checkpoint aborts the work —
an abandoned query must not keep burning a pool slot. The watcher reads
one byte; if the client was actually pipelining its next request, the
byte is pushed back and prefixed to the next frame read.

Sessions own their prepared-statement registry (integer handles), so one
session cannot execute — or stomp on — another's statements; the *plans*
behind the handles still share the server-wide adornment-keyed cache.
"""

from __future__ import annotations

import asyncio
import threading

from repro.errors import ReproError
from repro.server import protocol


class FrameReader:
    """An asyncio reader with one-shot pushback for the disconnect probe."""

    def __init__(self, reader):
        self._reader = reader
        self._pushback = b""

    def push_back(self, data):
        self._pushback = data + self._pushback

    async def readexactly(self, count):
        if self._pushback:
            taken, self._pushback = (
                self._pushback[:count],
                self._pushback[count:],
            )
            if len(taken) == count:
                return taken
            try:
                rest = await self._reader.readexactly(count - len(taken))
            except asyncio.IncompleteReadError as exc:
                raise asyncio.IncompleteReadError(
                    taken + exc.partial, count
                ) from None
            return taken + rest
        return await self._reader.readexactly(count)

    async def read(self, count):
        if self._pushback:
            taken, self._pushback = (
                self._pushback[:count],
                self._pushback[count:],
            )
            return taken
        return await self._reader.read(count)


class Session:
    def __init__(self, server, reader, writer):
        self.server = server
        self.reader = FrameReader(reader)
        self.writer = writer
        self.statements = {}
        self._next_statement = 1

    async def run(self):
        try:
            while True:
                try:
                    request = await protocol.read_frame(self.reader)
                except protocol.ProtocolError as exc:
                    # Framing is broken; report and drop the connection —
                    # there is no way to find the next frame boundary.
                    await self._send(protocol.error(None, exc))
                    return
                if request is None:
                    return
                if not await self._dispatch(request):
                    return
        finally:
            self.writer.close()
            try:
                await self.writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _dispatch(self, request):
        """Handle one request; False ends the session."""
        op = request.get("op")
        request_id = request.get("id")
        try:
            if op == "ping":
                await self._send(protocol.ok(request_id, pong=True))
            elif op == "stats":
                await self._send(
                    protocol.ok(request_id, stats=self.server.handle_stats())
                )
            elif op == "close":
                await self._send(protocol.ok(request_id, closed=True))
                return False
            elif op == "query":
                await self._admitted(
                    request_id,
                    lambda cancel: self.server.handle_query(
                        request["sql"],
                        params=request.get("params"),
                        strategy=request.get("strategy"),
                        executor=request.get("executor"),
                        deadline=request.get("deadline"),
                        cancel_event=cancel,
                        fresh=bool(request.get("fresh")),
                    ),
                )
            elif op == "prepare":
                handle, description = self.server.handle_prepare(
                    request["sql"],
                    strategy=request.get("strategy"),
                    executor=request.get("executor"),
                )
                statement_id = self._next_statement
                self._next_statement += 1
                self.statements[statement_id] = handle
                await self._send(
                    protocol.ok(
                        request_id, statement=statement_id, **description
                    )
                )
            elif op == "execute":
                handle = self.statements.get(request.get("statement"))
                if handle is None:
                    raise ReproError(
                        "unknown statement %r (prepare it on this session "
                        "first)" % request.get("statement")
                    )
                await self._admitted(
                    request_id,
                    lambda cancel: self.server.handle_execute(
                        handle,
                        params=request.get("params"),
                        deadline=request.get("deadline"),
                        cancel_event=cancel,
                        fresh=bool(request.get("fresh")),
                    ),
                )
            elif op == "script":
                await self._admitted(
                    request_id,
                    lambda cancel: self.server.handle_script(request["sql"]),
                )
            else:
                raise ReproError("unknown op %r" % op)
        except Exception as exc:  # noqa: BLE001 — every error goes on the wire
            try:
                await self._send(protocol.error(request_id, exc))
            except (ConnectionError, OSError):
                return False
        return True

    async def _admitted(self, request_id, work):
        """Admission-gate ``work`` and run it on the executor pool with a
        disconnect watcher armed; replies with its result dict."""
        ticket = self.server.admission.try_admit()  # raises on shed
        cancel = threading.Event()
        loop = asyncio.get_running_loop()
        future = loop.run_in_executor(
            self.server.executor, lambda: work(cancel)
        )
        watcher = asyncio.ensure_future(self._watch_disconnect(cancel))
        try:
            response = await future
        finally:
            self.server.admission.release(ticket)
            # The watcher must be fully finished before the frame loop
            # reads again (two coroutines must never wait on one stream).
            # It may still win the race and grab a byte of a pipelined
            # request between the response and the cancel — push it back.
            watcher.cancel()
            try:
                pushback = await watcher
            except (asyncio.CancelledError, ConnectionError, OSError):
                pushback = b""
            if pushback:
                self.reader.push_back(pushback)
        await self._send(protocol.ok(request_id, **response))

    async def _watch_disconnect(self, cancel):
        """Probe the socket while a query runs. EOF → set the cancel token
        (the governor's next checkpoint aborts the query). A real byte
        means the client is pipelining: return it for pushback."""
        try:
            data = await self.reader.read(1)
        except (asyncio.CancelledError, ConnectionError, OSError):
            raise
        if not data:
            cancel.set()
            return b""
        return data

    async def _send(self, message):
        self.writer.write(protocol.encode_frame(message))
        await self.writer.drain()


async def serve(server, host=None, port=None):
    """Start the asyncio TCP server; returns the listening server object.

    ``await result.serve_forever()`` to block, or use it as a context
    manager in tests.
    """
    host = host if host is not None else server.config.host
    port = port if port is not None else server.config.port

    async def handler(reader, writer):
        try:
            await Session(server, reader, writer).run()
        except asyncio.CancelledError:
            # Event-loop teardown cancels sessions still waiting for a
            # frame (e.g. one whose peer's socket fd survives in a forked
            # worker, so EOF never arrives). A cancelled wait at shutdown
            # is a clean end, not an error to log.
            pass

    return await asyncio.start_server(handler, host=host, port=port)
