"""Multi-process query execution: fork workers, shared-memory tables.

The asyncio server of PR 4 executes every query on a thread pool inside
one GIL-bound process. This module adds the process model that lets
serving throughput scale with cores:

* **fork-per-worker, copy-on-write catalog** — each worker is forked
  from the parent with the whole database in memory; Python's fork gives
  every worker a consistent snapshot for free, and the (immutable during
  queries) column lists stay physically shared until someone writes.
* **shared-memory column blocks for post-fork DML** — forked snapshots
  go stale when the parent applies a script. After every script (under
  the server's write lock, so no dispatch is in flight) the parent
  *publishes*: for each table whose ``Table.version`` moved it pickles
  the column blocks into a :mod:`multiprocessing.shared_memory` segment,
  and it republishes the pickled catalog whenever the catalog bytes
  changed (DDL, or fresh ANALYZE statistics after DML). Every dispatch
  carries the current registry ``{table -> (version, segment)}``; a
  worker whose local version differs attaches the segment, loads the
  blocks via :meth:`~repro.engine.storage.Table.load_columns`, and is
  current again. One publish serves every worker — the blocks cross
  process boundaries once, not once per worker.
* **pipe dispatch protocol** — one duplex pipe per worker; the parent
  sends ``{"op": "query", sql, params, strategy, executor, deadline,
  registry}`` and the worker replies ``{"ok": True, "response": ...}``
  or ``{"ok": False, "error": <wire error>}``. Each worker runs its own
  :class:`~repro.server.core.QueryServer` (private plan cache — warmed
  by inheriting the parent's cache at fork — breakers, governor
  deadlines); the parent keeps admission, the read/write lock, and the
  cross-request result cache.
* **crash containment** — crash detection is sentinel-based (a forked
  sibling may inherit pipe fds, so EOF alone is not trustworthy): the
  dispatch loop waits on the worker's pipe *and* its process sentinel.
  A worker that dies mid-query (SIGKILL, OOM) surfaces as a retryable
  :class:`~repro.errors.WorkerCrashedError`, the pool forks a
  replacement from the parent's current state (no replay needed — the
  fresh snapshot *is* current), and a
  :class:`~repro.resilience.GuardedCircuitBreaker` demotes execution to
  the in-process path if workers keep dying. Nothing partial survives a
  crash: the result cache stores only complete replies, and the dead
  worker's plan cache died with it.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import queue
import signal
import threading
import time

from repro.errors import (
    QueryCancelledError,
    ResourceExhaustedError,
    WorkerCrashedError,
)
from repro.resilience.breaker import GuardedCircuitBreaker

try:  # pragma: no cover - platform probe
    import multiprocessing
    from multiprocessing import connection as mp_connection
    from multiprocessing import shared_memory

    _FORK_CONTEXT = (
        multiprocessing.get_context("fork")
        if "fork" in multiprocessing.get_all_start_methods()
        else None
    )
except (ImportError, ValueError):  # pragma: no cover
    _FORK_CONTEXT = None


def fork_available():
    """Whether this platform supports the fork-based worker pool."""
    return _FORK_CONTEXT is not None


#: Extra wall-clock granted past the query deadline before the parent
#: declares a worker wedged and SIGKILLs it: the worker enforces the
#: deadline cooperatively via its governor, so the hard kill only fires
#: when the worker stopped making checkpoints at all.
DEADLINE_GRACE_SECONDS = 5.0

_POLL_SECONDS = 0.05


# -- shared-memory publication ---------------------------------------------------


def _new_segment(payload):
    segment = shared_memory.SharedMemory(create=True, size=max(len(payload), 1))
    segment.buf[: len(payload)] = payload
    return segment


def _release_segment(segment):
    try:
        segment.close()
        segment.unlink()
    except (FileNotFoundError, OSError):  # already gone: fine
        pass


def _attach_payload(name, nbytes):
    """Attach a segment by name, copy its pickled payload out, detach.

    Attaching registers the segment with this process tree's resource
    tracker (CPython registers on attach, not just create); unregister
    immediately so a worker exit cannot unlink a segment the parent
    still serves (bpo-39959).
    """
    segment = shared_memory.SharedMemory(name=name)
    try:
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(
                getattr(segment, "_name", name), "shared_memory"
            )
        except Exception:  # pragma: no cover - tracker internals moved
            pass
        return pickle.loads(bytes(segment.buf[:nbytes]))
    finally:
        segment.close()


class SharedTableStore:
    """The parent-side publisher of columnar table pages.

    Tracks, per table, the last data version written to shared memory
    (seeded with the versions the workers inherited at fork, so nothing
    is published until something actually changes), plus one segment for
    the pickled catalog keyed by a monotonically increasing generation.
    ``publish()`` must run while no dispatch is in flight — the server
    calls it under the write lock — so replaced segments can be unlinked
    immediately without racing an attaching worker.
    """

    def __init__(self, database):
        self.database = database
        self._table_segments = {}  # name -> (version, segment, nbytes)
        self._published_versions = dict(database.table_versions())
        self._catalog_segment = None  # (segment, nbytes)
        self._catalog_digest = self._pickle_catalog()[1]
        self.generation = 0
        self.publishes = 0
        self.published_tables = 0

    def _pickle_catalog(self):
        payload = pickle.dumps(
            self.database.catalog, protocol=pickle.HIGHEST_PROTOCOL
        )
        return payload, hashlib.sha256(payload).digest()

    def publish(self):
        """Publish every table whose version moved and the catalog if its
        bytes changed (schema *or* statistics)."""
        self.publishes += 1
        for name, table in self.database.stored_tables().items():
            if self._published_versions.get(name) == table.version:
                continue
            payload = pickle.dumps(
                (table.version, table.column_blocks()),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            old = self._table_segments.pop(name, None)
            if old is not None:
                _release_segment(old[1])
            segment = _new_segment(payload)
            self._table_segments[name] = (table.version, segment, len(payload))
            self._published_versions[name] = table.version
            self.published_tables += 1
        payload, digest = self._pickle_catalog()
        if digest != self._catalog_digest:
            if self._catalog_segment is not None:
                _release_segment(self._catalog_segment[0])
            self._catalog_segment = (_new_segment(payload), len(payload))
            self._catalog_digest = digest
            self.generation += 1

    def registry(self):
        """The sync registry shipped with every dispatch."""
        tables = {
            name: {
                "version": version,
                "segment": segment.name,
                "nbytes": nbytes,
            }
            for name, (version, segment, nbytes) in self._table_segments.items()
        }
        catalog = {"generation": self.generation}
        if self._catalog_segment is not None:
            catalog["segment"] = self._catalog_segment[0].name
            catalog["nbytes"] = self._catalog_segment[1]
        return {"tables": tables, "catalog": catalog}

    def close(self):
        for _, segment, _ in self._table_segments.values():
            _release_segment(segment)
        self._table_segments.clear()
        if self._catalog_segment is not None:
            _release_segment(self._catalog_segment[0])
            self._catalog_segment = None


def apply_sync(database, registry, state):
    """Worker-side: bring the forked database up to the registry.

    ``state`` holds the worker's last-applied catalog generation.
    Catalog first (a post-fork CREATE TABLE's schema must exist before
    its column blocks are loaded), then any table whose version differs.
    """
    catalog = registry.get("catalog") or {}
    if (
        catalog.get("segment")
        and catalog.get("generation") != state.get("catalog_generation")
    ):
        database.catalog = _attach_payload(
            catalog["segment"], catalog["nbytes"]
        )
        state["catalog_generation"] = catalog["generation"]
    for name, info in (registry.get("tables") or {}).items():
        local = database.stored_tables().get(name)
        if local is not None and local.version == info["version"]:
            continue
        version, columns = _attach_payload(info["segment"], info["nbytes"])
        if local is None:
            local = database.register_table(database.catalog.table(name))
        local.load_columns(columns, version)


# -- the worker process ----------------------------------------------------------


def _worker_main(child_conn, close_fds, database, config, plan_cache,
                 catalog_generation):
    """Entry point of a forked worker.

    Builds a private :class:`QueryServer` over the inherited database
    (adopting the parent's plan cache — the fork made it a private,
    pre-warmed copy) and serves the pipe until shutdown. A query error
    is a *reply*, never a worker death.
    """
    from dataclasses import replace

    from repro.server import protocol
    from repro.server.core import QueryServer

    for conn in close_fds:
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    worker_config = replace(
        config,
        workers=0,  # a worker must never fork its own pool
        result_cache_capacity=0,  # results are cached parent-side only
        statement_cache_path=None,
    )
    server = QueryServer(database, worker_config)
    if plan_cache is not None:
        plan_cache._after_fork()
        server.cache = plan_cache
    state = {"catalog_generation": catalog_generation}
    while True:
        try:
            message = child_conn.recv()
        except (EOFError, OSError):
            break
        op = message.get("op")
        if op == "shutdown":
            break
        try:
            if op == "query":
                apply_sync(server.database, message.get("registry") or {},
                           state)
                response = server.handle_query(
                    message["sql"],
                    params=message.get("params"),
                    strategy=message.get("strategy"),
                    deadline=message.get("deadline"),
                    executor=message.get("executor"),
                )
                reply = {"ok": True, "response": response,
                         "pid": os.getpid()}
            elif op == "ping":
                reply = {"ok": True, "pong": True, "pid": os.getpid()}
            elif op == "stats":
                reply = {
                    "ok": True,
                    "pid": os.getpid(),
                    "cache": server.cache.stats(),
                    "counters": {
                        "queries_ok": server.queries_ok,
                        "queries_failed": server.queries_failed,
                    },
                }
            else:
                reply = {
                    "ok": False,
                    "error": {
                        "type": "ReproError",
                        "message": "unknown worker op %r" % op,
                        "retryable": False,
                    },
                }
        except BaseException as exc:  # noqa: BLE001 — every error is a reply
            reply = {"ok": False, "error": protocol.error_to_wire(exc)}
        try:
            child_conn.send(reply)
        except (BrokenPipeError, OSError):
            break


class RemoteQueryError(Exception):
    """An error raised inside a worker, relayed to the dispatching
    session with its original wire identity intact (type name,
    retryability, retry_after) — ``protocol.error_to_wire`` passes the
    ``wire`` attribute through untouched, so the client cannot tell
    whether the error happened in-process or in a worker."""

    def __init__(self, wire):
        super().__init__(
            "%s: %s" % (wire.get("type"), wire.get("message"))
        )
        self.wire = dict(wire)
        self.error_type = wire.get("type")
        self.retryable = bool(wire.get("retryable"))
        self.retry_after = wire.get("retry_after")
        self.context = wire.get("context") or {}


class _WorkerHandle:
    def __init__(self, process, conn):
        self.process = process
        self.conn = conn
        self.busy = False

    @property
    def pid(self):
        return self.process.pid


class WorkerPool:
    """N forked workers behind an idle queue, with crash respawn.

    One request is in flight per worker at a time; dispatch threads
    beyond the worker count queue on the checkout. All forking happens
    on parent threads that hold at most the server's *read* lock, so a
    fresh fork always captures a write-quiescent database.
    """

    def __init__(self, database, config, plan_cache=None):
        if _FORK_CONTEXT is None:  # pragma: no cover - non-fork platform
            raise WorkerCrashedError(
                "multi-process workers need the fork start method"
            )
        self.database = database
        self.config = config
        self.plan_cache = plan_cache
        self.store = SharedTableStore(database)
        self.breaker = GuardedCircuitBreaker(
            failure_threshold=config.worker_crash_threshold,
            cooldown_seconds=config.worker_cooldown_seconds,
        )
        self._idle = queue.Queue()
        self._handles = []
        self._lock = threading.Lock()
        self._closed = False
        self.dispatches = 0
        self.crashes = 0
        self.respawns = 0
        self.kills = 0
        self.degraded_dispatches = 0
        for _ in range(config.workers):
            self._idle.put(self._spawn())

    # -- lifecycle ---------------------------------------------------------------

    def _spawn(self):
        with self._lock:
            siblings = [handle.conn for handle in self._handles]
        parent_conn, child_conn = _FORK_CONTEXT.Pipe(duplex=True)
        process = _FORK_CONTEXT.Process(
            target=_worker_main,
            args=(
                child_conn,
                siblings + [parent_conn],
                self.database,
                self.config,
                self.plan_cache,
                self.store.generation,
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()
        handle = _WorkerHandle(process, parent_conn)
        with self._lock:
            self._handles.append(handle)
        return handle

    def _retire(self, handle):
        with self._lock:
            if handle in self._handles:
                self._handles.remove(handle)
        try:
            handle.conn.close()
        except OSError:  # pragma: no cover
            pass
        if handle.process.is_alive():  # pragma: no cover - defensive
            handle.process.terminate()
        handle.process.join(timeout=5)

    def _replace(self, handle):
        """Retire a dead/killed worker and (unless shutting down) fork a
        replacement from the parent's current state."""
        self._retire(handle)
        if self._closed:
            return
        self.respawns += 1
        self._idle.put(self._spawn())

    def shutdown(self):
        self._closed = True
        while True:
            try:
                self._idle.get_nowait()
            except queue.Empty:
                break
        with self._lock:
            handles = list(self._handles)
            self._handles = []
        for handle in handles:
            try:
                handle.conn.send({"op": "shutdown"})
            except (BrokenPipeError, OSError):
                pass
        for handle in handles:
            handle.process.join(timeout=2)
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(timeout=2)
            try:
                handle.conn.close()
            except OSError:  # pragma: no cover
                pass
        self.store.close()

    # -- serving -----------------------------------------------------------------

    def admit(self):
        """Whether the crash breaker currently routes queries to the
        pool (False demotes the request to the in-process path)."""
        if self._closed:
            return False
        allowed = self.breaker.allows()
        if not allowed:
            with self._lock:
                self.degraded_dispatches += 1
        return allowed

    def publish(self):
        """Re-publish shared-memory state; call after every script,
        under the server's write lock."""
        self.store.publish()

    def dispatch(self, message, deadline_seconds, cancel_event=None):
        """Send one query to a worker and await its reply.

        Raises :class:`WorkerCrashedError` (retryable) when the worker
        dies mid-query, :class:`QueryCancelledError` when the cancel
        token trips while waiting (the worker is killed — cooperative
        cancellation does not cross the pipe), and a deadline
        :class:`ResourceExhaustedError` when the worker overruns the
        deadline past the grace window.
        """
        hard_deadline = (
            time.monotonic() + deadline_seconds + DEADLINE_GRACE_SECONDS
        )
        handle = self._checkout(hard_deadline)
        handle.busy = True
        with self._lock:
            self.dispatches += 1
        message = dict(message)
        message["registry"] = self.store.registry()
        try:
            handle.conn.send(message)
        except (BrokenPipeError, OSError) as exc:
            self._crash(handle, "pipe broken on send: %s" % exc)
        while True:
            ready = mp_connection.wait(
                [handle.conn, handle.process.sentinel], timeout=_POLL_SECONDS
            )
            if handle.conn in ready:
                try:
                    reply = handle.conn.recv()
                except (EOFError, OSError) as exc:
                    self._crash(handle, "pipe closed mid-reply: %s" % exc)
                self.breaker.record_success()
                handle.busy = False
                self._idle.put(handle)
                return reply
            if ready:  # sentinel fired without a reply: the worker died
                self._crash(handle, "process exited mid-query")
            if cancel_event is not None and cancel_event.is_set():
                self._kill(handle, "cancel")
                raise QueryCancelledError(
                    "query cancelled while executing on worker",
                    where="worker pool",
                    reason="client disconnected",
                )
            if time.monotonic() >= hard_deadline:
                self._kill(handle, "deadline")
                raise ResourceExhaustedError(
                    "query exceeded its %.3fs deadline on a worker (killed "
                    "after %.1fs grace)"
                    % (deadline_seconds, DEADLINE_GRACE_SECONDS),
                    limit="deadline_seconds",
                    where="worker pool",
                )

    def _checkout(self, hard_deadline):
        while True:
            if self._closed:
                raise WorkerCrashedError("worker pool is shut down")
            timeout = hard_deadline - time.monotonic()
            if timeout <= 0:
                raise ResourceExhaustedError(
                    "deadline elapsed while waiting for a free worker",
                    limit="deadline_seconds",
                    where="worker pool checkout",
                )
            try:
                handle = self._idle.get(timeout=min(timeout, 0.25))
            except queue.Empty:
                continue
            if handle.process.is_alive():
                return handle
            # A worker died while idle (chaos kills don't wait for a
            # dispatch): replace it and keep looking.
            with self._lock:
                self.crashes += 1
            self._replace(handle)

    def _crash(self, handle, cause):
        pid = handle.pid
        with self._lock:
            self.crashes += 1
        self.breaker.record_failure(cause)
        self._replace(handle)
        raise WorkerCrashedError(
            "worker %s died mid-query (%s); a replacement was forked — "
            "the request is safe to retry" % (pid, cause),
            pid=pid,
            retry_after=0.05,
        )

    def _kill(self, handle, why):
        """SIGKILL a worker the parent has given up on (cancel or hard
        deadline) and fork a replacement. Not a crash: the breaker only
        counts failures the *workers* caused."""
        with self._lock:
            self.kills += 1
        if handle.process.is_alive():
            handle.process.kill()
            handle.process.join(timeout=5)
        self._replace(handle)

    # -- observability -----------------------------------------------------------

    def pids(self):
        with self._lock:
            return [handle.pid for handle in self._handles]

    def busy_pids(self):
        with self._lock:
            return [handle.pid for handle in self._handles if handle.busy]

    def stats(self):
        with self._lock:
            pids = [handle.pid for handle in self._handles]
            busy = sum(1 for handle in self._handles if handle.busy)
            counters = {
                "workers": len(pids),
                "busy": busy,
                "dispatches": self.dispatches,
                "crashes": self.crashes,
                "respawns": self.respawns,
                "kills": self.kills,
                "degraded_dispatches": self.degraded_dispatches,
            }
        counters["pids"] = pids
        counters["breaker"] = self.breaker.snapshot()
        counters["store"] = {
            "generation": self.store.generation,
            "publishes": self.store.publishes,
            "published_tables": self.store.published_tables,
        }
        return counters
