"""Clients for the query server: asyncio and blocking-socket variants.

Both speak the length-prefixed JSON protocol and share the same retry
behaviour: errors the server marks ``retryable`` (shed under load,
cancelled, transport drop) are retried with jittered exponential backoff
(:class:`~repro.resilience.retry.RetryPolicy`), honouring the server's
``retry_after`` hint as a floor. Non-retryable errors surface immediately
as :class:`ServerError`.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
import time

from repro.errors import ReproError
from repro.resilience.retry import RetryPolicy
from repro.server import protocol


class ServerError(ReproError):
    """A structured error returned by the server."""

    def __init__(self, wire):
        super().__init__(
            "%s: %s" % (wire.get("type"), wire.get("message")),
            context=wire.get("context"),
        )
        self.wire = wire
        self.error_type = wire.get("type")
        self.retryable = bool(wire.get("retryable"))
        self.retry_after = wire.get("retry_after")


def _raise_or_return(response):
    if response.get("ok"):
        return response
    raise ServerError(response.get("error") or {})


class SyncQueryClient:
    """Blocking client on a raw socket; the convenience surface for
    scripts, benchmarks and the chaos harness."""

    def __init__(self, host="127.0.0.1", port=7474, retry=None,
                 connect_timeout=5.0):
        self.host = host
        self.port = port
        self.retry = retry or RetryPolicy()
        self.connect_timeout = connect_timeout
        self._sock = None
        self._next_id = 1

    # -- transport ---------------------------------------------------------------

    def connect(self):
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout
            )
            self._sock.settimeout(None)
        return self

    def close(self):
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self):
        return self.connect()

    def __exit__(self, *exc_info):
        self.close()

    def _send_frame(self, message):
        self._sock.sendall(protocol.encode_frame(message))

    def _recv_exactly(self, count):
        chunks = []
        while count:
            chunk = self._sock.recv(count)
            if not chunk:
                raise ConnectionError("server closed the connection")
            chunks.append(chunk)
            count -= len(chunk)
        return b"".join(chunks)

    def _recv_frame(self):
        (length,) = struct.unpack(">I", self._recv_exactly(4))
        if length > protocol.MAX_FRAME_BYTES:
            raise protocol.ProtocolError(
                "declared frame of %d bytes exceeds the limit" % length
            )
        return json.loads(self._recv_exactly(length).decode("utf-8"))

    # -- request/retry core ------------------------------------------------------

    def request_once(self, message):
        """One round trip, no retry. Reconnects if needed."""
        self.connect()
        request = dict(message)
        request["id"] = self._next_id
        self._next_id += 1
        try:
            self._send_frame(request)
            response = self._recv_frame()
        except (ConnectionError, OSError, struct.error):
            self.close()
            raise
        return _raise_or_return(response)

    def request(self, message):
        """Round trip with the retry policy applied to retryable errors."""
        attempt = 0
        while True:
            attempt += 1
            try:
                return self.request_once(message)
            except Exception as exc:
                if not self.retry.should_retry(attempt, exc):
                    raise
                time.sleep(
                    self.retry.delay(
                        attempt, RetryPolicy.retry_after_from(exc)
                    )
                )

    # -- convenience ops ---------------------------------------------------------

    def query(self, sql, params=None, strategy=None, deadline=None,
              executor=None, fresh=False):
        message = {"op": "query", "sql": sql}
        if params is not None:
            message["params"] = list(params)
        if strategy is not None:
            message["strategy"] = strategy
        if deadline is not None:
            message["deadline"] = deadline
        if executor is not None:
            message["executor"] = executor
        if fresh:
            # Bypass the server's cross-request result cache: the reply
            # must come from a real execution (oracle/chaos comparisons).
            message["fresh"] = True
        return self.request(message)

    def prepare(self, sql, strategy=None, executor=None):
        message = {"op": "prepare", "sql": sql}
        if strategy is not None:
            message["strategy"] = strategy
        if executor is not None:
            message["executor"] = executor
        return self.request(message)

    def execute(self, statement, params=None, deadline=None, fresh=False):
        message = {"op": "execute", "statement": statement}
        if params is not None:
            message["params"] = list(params)
        if deadline is not None:
            message["deadline"] = deadline
        if fresh:
            message["fresh"] = True
        return self.request(message)

    def script(self, sql):
        return self.request({"op": "script", "sql": sql})

    def stats(self):
        return self.request({"op": "stats"})["stats"]

    def ping(self):
        return self.request({"op": "ping"})


class QueryClient:
    """Asyncio client mirroring :class:`SyncQueryClient`."""

    def __init__(self, host="127.0.0.1", port=7474, retry=None):
        self.host = host
        self.port = port
        self.retry = retry or RetryPolicy()
        self._reader = None
        self._writer = None
        self._next_id = 1

    async def connect(self):
        if self._writer is None:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )
        return self

    async def close(self):
        if self._writer is not None:
            writer, self._writer, self._reader = self._writer, None, None
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def __aenter__(self):
        return await self.connect()

    async def __aexit__(self, *exc_info):
        await self.close()

    async def request_once(self, message):
        await self.connect()
        request = dict(message)
        request["id"] = self._next_id
        self._next_id += 1
        try:
            self._writer.write(protocol.encode_frame(request))
            await self._writer.drain()
            response = await protocol.read_frame(self._reader)
        except (ConnectionError, OSError):
            await self.close()
            raise
        if response is None:
            await self.close()
            raise ConnectionError("server closed the connection")
        return _raise_or_return(response)

    async def request(self, message):
        attempt = 0
        while True:
            attempt += 1
            try:
                return await self.request_once(message)
            except Exception as exc:
                if not self.retry.should_retry(attempt, exc):
                    raise
                await asyncio.sleep(
                    self.retry.delay(
                        attempt, RetryPolicy.retry_after_from(exc)
                    )
                )

    async def query(self, sql, params=None, strategy=None, deadline=None,
                    executor=None, fresh=False):
        message = {"op": "query", "sql": sql}
        if params is not None:
            message["params"] = list(params)
        if strategy is not None:
            message["strategy"] = strategy
        if deadline is not None:
            message["deadline"] = deadline
        if executor is not None:
            message["executor"] = executor
        if fresh:
            message["fresh"] = True
        return await self.request(message)

    async def script(self, sql):
        return await self.request({"op": "script", "sql": sql})

    async def stats(self):
        return (await self.request({"op": "stats"}))["stats"]
