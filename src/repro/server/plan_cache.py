"""Adornment-keyed prepared-plan cache.

A parameterized statement is the paper's magic-sets use case in miniature:
the rewrite binds the parameter positions exactly like a magic set binds a
view's columns, so the rewritten + optimized graph is reusable for *any*
values with the same binding pattern. The cache keys each entry on

``(statement fingerprint, binding adornment, strategy, catalog version)``

* **fingerprint** — sha256 of the parameterized statement's canonical SQL
  (:func:`repro.sql.parameterize.fingerprint_query`): constants collapsed,
  whitespace and literal spelling irrelevant,
* **binding adornment** — one ``b``/``c``/``f`` letter per parameter slot
  (§2's vocabulary applied to the statement's bindings): ``b`` when the
  slot is used in an equality predicate, ``c`` in any other predicate,
  ``f`` when it only feeds output expressions,
* **strategy** — emst/phase1/original plans differ structurally,
* **catalog version** — any durable DDL makes every older entry
  unreachable; DDL *invalidates* plans, it can never corrupt them.

Entries also record the data versions of the tables they were optimized
against, so statistics staleness is detectable (a stale plan is still
correct — plans never embed rows — just possibly suboptimal).

Execution never runs the cached graph directly: callers clone it
(:func:`~repro.qgm.clone.clone_graph` preserves box ids, so the cached
join orders stay valid for the clone) and bind values into the clone.
The cached graph itself is immutable-by-convention and safe to share
across executor threads.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional

from repro.magic.adornment import BOUND, CONDITIONED, FREE
from repro.qgm import expr as qe


def statement_adornment(graph):
    """The binding adornment of a (possibly rewritten) graph: one letter
    per parameter slot, ``b`` if the slot appears in an equality conjunct
    anywhere in the graph, ``c`` if it appears in any other predicate,
    ``f`` otherwise. Bound wins over conditioned. Zero-parameter
    statements adorn as ``""``."""
    letters = {}

    def classify(predicate):
        bound = isinstance(predicate, qe.QBinary) and predicate.op == "="
        for node in qe.walk(predicate):
            if isinstance(node, qe.QParam):
                if bound:
                    letters[node.index] = BOUND
                else:
                    letters.setdefault(node.index, CONDITIONED)

    highest = -1
    for box in graph.boxes():
        for predicate in box.predicates:
            classify(predicate)
        for quantifier in box.quantifiers:
            for predicate in quantifier.selector_predicates or []:
                classify(predicate)
        for expression in box.all_expressions():
            for node in qe.walk(expression):
                if isinstance(node, qe.QParam):
                    highest = max(highest, node.index)
    return "".join(
        letters.get(index, FREE) for index in range(highest + 1)
    )


@dataclass
class CachedPlan:
    """One rewritten + optimized statement, ready to clone-bind-execute."""

    fingerprint: str
    adornment: str
    strategy: str
    catalog_version: int
    graph: object
    plan: Optional[object]
    heuristic: Optional[object]
    param_count: int
    #: ``{table name (lower) -> data version}`` at optimization time;
    #: compared against current versions to detect statistics staleness.
    table_versions: dict = field(default_factory=dict)
    hits: int = 0

    @property
    def key(self):
        return (
            self.fingerprint,
            self.adornment,
            self.strategy,
            self.catalog_version,
        )

    def staleness(self, current_versions):
        """Tables whose data version moved since this plan was optimized."""
        return sorted(
            name
            for name, version in self.table_versions.items()
            if current_versions.get(name, version) != version
        )


class AdornmentPlanCache:
    """A bounded LRU of :class:`CachedPlan`, thread-safe.

    Lookups present ``(fingerprint, strategy, catalog_version)`` — the
    adornment is a property of the fingerprint (same parameterized shape,
    same binding pattern), so a secondary index resolves the full
    adornment-bearing key. Entries stored under an older catalog version
    are purged on sight and counted as ``invalidated``.
    """

    def __init__(self, capacity=128):
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries = OrderedDict()  # full key -> CachedPlan
        self._by_lookup = {}  # (fingerprint, strategy) -> full key
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidated = 0
        self.stale_replans = 0

    def _after_fork(self):
        """Replace the lock after a fork: the parent may have held it at
        fork time, and a child that inherits a locked lock deadlocks on
        first use. Only the forking worker's private copy is touched."""
        self._lock = threading.Lock()

    def evict_stale(self, key):
        """Drop an entry whose statistics went stale so the caller can
        re-prepare against current table versions. Counted separately
        from capacity evictions (``stale_replans``)."""
        with self._lock:
            if key in self._entries:
                self._drop(key)
                self.stale_replans += 1
                return True
            return False

    def lookup(self, fingerprint, strategy, catalog_version):
        with self._lock:
            key = self._by_lookup.get((fingerprint, strategy))
            if key is None:
                self.misses += 1
                return None
            entry = self._entries.get(key)
            if entry is None:
                del self._by_lookup[(fingerprint, strategy)]
                self.misses += 1
                return None
            if entry.catalog_version != catalog_version:
                # DDL happened since this plan was prepared: the view it
                # was expanded against may be gone. Purge, never serve.
                self._drop(key)
                self.invalidated += 1
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            entry.hits += 1
            self.hits += 1
            return entry

    def store(self, entry):
        with self._lock:
            lookup = (entry.fingerprint, entry.strategy)
            previous = self._by_lookup.get(lookup)
            if previous is not None and previous in self._entries:
                self._drop(previous)
            self._entries[entry.key] = entry
            self._by_lookup[lookup] = entry.key
            while len(self._entries) > self.capacity:
                oldest, _ = self._entries.popitem(last=False)
                self._by_lookup.pop((oldest[0], oldest[2]), None)
                self.evictions += 1
        return entry

    def _drop(self, key):
        self._entries.pop(key, None)
        self._by_lookup.pop((key[0], key[2]), None)

    def clear(self):
        with self._lock:
            self._entries.clear()
            self._by_lookup.clear()

    def __len__(self):
        with self._lock:
            return len(self._entries)

    def stats(self):
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": (self.hits / total) if total else 0.0,
                "evictions": self.evictions,
                "invalidated": self.invalidated,
                "stale_replans": self.stale_replans,
            }
