"""Fault-tolerant multi-session query server.

The paper argues magic sets belong in a *production* relational system;
this package supplies the serving half of that claim: an asyncio TCP
server speaking a length-prefixed JSON protocol, with

* an adornment-keyed prepared-plan cache — rewritten + optimized QGM is
  reused across executions and sessions, keyed on ``(statement
  fingerprint, binding adornment, strategy, catalog version)`` so DDL
  *invalidates* plans instead of corrupting them
  (:mod:`repro.server.plan_cache`),
* per-query deadlines with cooperative cancellation threaded through the
  evaluator checkpoints (:class:`~repro.resilience.ResourceGovernor`),
* admission control and load shedding with machine-readable
  ``retry_after`` hints (:mod:`repro.server.admission`),
* per-rewrite-strategy circuit breakers demoting along
  ``emst -> phase1 -> original``
  (:class:`~repro.resilience.StrategyBreakerBoard`),
* a retrying client (:mod:`repro.server.client`) and a session-boundary
  chaos harness (``python -m repro.server.chaos``),
* a fork-based worker pool executing queries in separate processes over
  shared-memory column blocks, with crash respawn and a crash breaker
  (:mod:`repro.server.workers`, ``ServerConfig(workers=N)``),
* a cross-request result cache keyed on ``(fingerprint, strategy,
  executor, catalog version, bindings, table versions)`` so a cached
  result can never be stale (:mod:`repro.server.result_cache`).

Run ``python -m repro.server --workload`` for a demo server.
"""

from repro.server.admission import AdmissionController
from repro.server.client import QueryClient, SyncQueryClient
from repro.server.core import QueryServer, ServerConfig
from repro.server.plan_cache import AdornmentPlanCache, CachedPlan
from repro.server.result_cache import ResultCache
from repro.server.session import serve
from repro.server.workers import WorkerPool, fork_available

__all__ = [
    "AdmissionController",
    "AdornmentPlanCache",
    "CachedPlan",
    "QueryClient",
    "QueryServer",
    "ResultCache",
    "ServerConfig",
    "SyncQueryClient",
    "WorkerPool",
    "fork_available",
    "serve",
]
