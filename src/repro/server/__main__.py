"""``python -m repro.server`` — run the query server.

By default serves an empty database; ``--workload`` preloads the paper's
employee/department schema plus the Example 1.1 views so the server is
immediately queryable::

    python -m repro.server --workload --scale 0.2 &
    python - <<'EOF'
    from repro.server import SyncQueryClient
    with SyncQueryClient() as client:
        print(client.query(
            "SELECT d.deptname, s.avgsalary FROM department d, avgMgrSal s "
            "WHERE d.deptno = s.workdept AND d.deptname = ?",
            params=["Planning"],
        )["rows"])
    EOF
"""

from __future__ import annotations

import argparse
import asyncio

from repro.engine import Database
from repro.server.core import QueryServer, ServerConfig
from repro.server.session import serve


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Fault-tolerant multi-session query server.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7474)
    parser.add_argument(
        "--workload", action="store_true",
        help="preload the paper's employee/department workload and views",
    )
    parser.add_argument(
        "--scale", type=float, default=0.2,
        help="workload scale: 1.0 = the paper's 100 departments x 40 "
             "employees (default 0.2)",
    )
    parser.add_argument("--max-concurrent", type=int, default=8)
    parser.add_argument("--max-queue", type=int, default=16)
    parser.add_argument("--deadline", type=float, default=10.0,
                        help="default per-query deadline in seconds")
    parser.add_argument("--cache-capacity", type=int, default=128)
    parser.add_argument("--strategy", default="emst")
    parser.add_argument(
        "--workers", type=int, default=0,
        help="forked query-worker processes (0 = in-process execution)",
    )
    parser.add_argument(
        "--result-cache-capacity", type=int, default=0,
        help="cross-request result cache entries (0 = disabled)",
    )
    parser.add_argument(
        "--statement-cache", default=None, metavar="PATH",
        help="persist the prepared-statement set here on shutdown and "
             "warm the plan cache from it on boot",
    )
    return parser


def build_server(options):
    database = Database()
    if options.workload:
        from repro.api import Connection
        from repro.workloads.empdept import (
            PAPER_VIEWS_SQL,
            build_empdept_database,
        )

        build_empdept_database(
            n_departments=max(int(100 * options.scale), 3),
            employees_per_department=max(int(40 * options.scale), 2),
            database=database,
        )
        Connection(database).run_script(PAPER_VIEWS_SQL)
    config = ServerConfig(
        host=options.host,
        port=options.port,
        max_concurrent=options.max_concurrent,
        max_queue=options.max_queue,
        default_deadline_seconds=options.deadline,
        cache_capacity=options.cache_capacity,
        default_strategy=options.strategy,
        workers=options.workers,
        result_cache_capacity=options.result_cache_capacity,
        statement_cache_path=options.statement_cache,
    )
    return QueryServer(database, config)


async def _run(options):
    server = build_server(options)
    listener = await serve(server)
    addresses = ", ".join(
        "%s:%d" % sock.getsockname()[:2] for sock in listener.sockets
    )
    print("repro query server listening on %s" % addresses)
    try:
        async with listener:
            await listener.serve_forever()
    finally:
        server.shutdown()


def main(argv=None):
    options = build_parser().parse_args(argv)
    try:
        asyncio.run(_run(options))
    except KeyboardInterrupt:
        pass


if __name__ == "__main__":
    main()
