"""The engine-facing server core: caching, admission, deadlines, fallback.

:class:`QueryServer` is transport-agnostic — every ``handle_*`` method is
a plain synchronous function, called by the asyncio session layer on
executor threads (and directly by tests, which is how the concurrency
semantics stay testable without sockets).

Concurrency model:

* **queries share, DDL excludes** — a reader-writer lock gives every
  query a stable catalog for its whole prepare + execute span, while a
  script carrying CREATE/INSERT/DELETE/UPDATE waits for running queries
  and runs alone. Combined with the catalog version in the plan-cache
  key this yields snapshot-consistent reads: a query sees either the
  catalog before a DDL or after it, never a half-applied mix, and plans
  prepared before the DDL are unreachable after it.
* **cache misses serialize** — preparing may register statement-scoped
  inline views in the shared catalog; a single prepare lock makes that
  safe. Post-warmup the hot path (clone, bind, execute) never takes it.
* **deadlines and cancellation are cooperative** — each request gets a
  :class:`~repro.resilience.ResourceGovernor` with a clamped deadline and
  the session's cancel token; the evaluator checkpoints observe both.
"""

from __future__ import annotations

import contextlib
import hashlib
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Optional

from repro.api import Connection, EXECUTORS, STRATEGIES
from repro.engine import BatchEvaluator, CorrelatedEvaluator, Evaluator
from repro.errors import (
    ExecutionError,
    QueryCancelledError,
    ReproError,
    ResourceExhaustedError,
)
from repro.qgm import validate_graph
from repro.qgm.clone import clone_graph
from repro.qgm.params import bind_parameters, parameter_count
from repro.resilience.breaker import StrategyBreakerBoard
from repro.sql import parse_script, to_sql
from repro.sql.parameterize import (
    fingerprint_query,
    parameter_slots,
    parameterize_query,
)
from repro.server.admission import AdmissionController
from repro.server.plan_cache import (
    AdornmentPlanCache,
    CachedPlan,
    statement_adornment,
)


@dataclass
class ServerConfig:
    host: str = "127.0.0.1"
    port: int = 7474
    #: Queries executing at once; more wait in the bounded queue.
    max_concurrent: int = 8
    max_queue: int = 16
    #: Deadline applied when the client sends none; client requests are
    #: clamped to ``max_deadline_seconds`` so one session cannot opt out
    #: of the server's latency envelope.
    default_deadline_seconds: float = 10.0
    max_deadline_seconds: float = 60.0
    cache_capacity: int = 128
    default_strategy: str = "emst"
    #: Execution engine for requests that don't name one: "tuple" is the
    #: classic row-at-a-time evaluator, "batch" the columnar executor
    #: (which retries on the tuple engine if it fails).
    default_executor: str = "tuple"
    breaker_failure_threshold: int = 3
    breaker_cooldown_seconds: float = 5.0
    #: Per-query row budget (None = unlimited) forwarded to the governor.
    max_materialized_rows: Optional[int] = None


class ReadWriteLock:
    """Many readers or one writer; writers take priority (a waiting DDL
    blocks new queries, so it cannot starve behind a query stream)."""

    def __init__(self):
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    @contextlib.contextmanager
    def read(self):
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if not self._readers:
                    self._cond.notify_all()

    @contextlib.contextmanager
    def write(self):
        with self._cond:
            self._writers_waiting += 1
            while self._writer_active or self._readers:
                self._cond.wait()
            self._writers_waiting -= 1
            self._writer_active = True
        try:
            yield
        finally:
            with self._cond:
                self._writer_active = False
                self._cond.notify_all()


@dataclass
class PreparedHandle:
    """A server-side prepared statement: the parse/parameterize work done
    once; plans materialize in the shared cache on first execute (and
    rematerialize transparently after DDL bumps the catalog version)."""

    sql: str
    query: object
    views: list
    fingerprint: str
    strategy: str
    param_count: int
    #: Values auto-extracted from literals; explicit ``?`` bindings from
    #: the client are prepended at execute time.
    extracted_values: list = field(default_factory=list)
    executor: str = "tuple"


def _script_fingerprint(views, query):
    """Fingerprint of a parameterized query *plus* its inline views: two
    scripts whose SELECTs match but whose CREATE VIEWs differ must never
    share a cached plan."""
    if not views:
        return fingerprint_query(query)
    digest = hashlib.sha256()
    for view in views:
        digest.update(to_sql(view).encode("utf-8"))
        digest.update(b";")
    digest.update(to_sql(query).encode("utf-8"))
    return digest.hexdigest()[:24]


class QueryServer:
    """Shared-database, multi-session query service (transport-agnostic)."""

    def __init__(self, database, config=None, governor_factory=None):
        self.database = database
        self.config = config or ServerConfig()
        self.connection = Connection(database)
        self.cache = AdornmentPlanCache(capacity=self.config.cache_capacity)
        self.admission = AdmissionController(
            max_concurrent=self.config.max_concurrent,
            max_queue=self.config.max_queue,
        )
        self.breakers = StrategyBreakerBoard(
            failure_threshold=self.config.breaker_failure_threshold,
            cooldown_seconds=self.config.breaker_cooldown_seconds,
        )
        self.lock = ReadWriteLock()
        self._prepare_lock = threading.Lock()
        self._governor_factory = governor_factory
        self.executor = ThreadPoolExecutor(
            max_workers=self.config.max_concurrent,
            thread_name_prefix="repro-query",
        )
        self._stats_lock = threading.Lock()
        self.queries_ok = 0
        self.queries_failed = 0
        self.cancellations = 0
        self.deadline_trips = 0
        self.fallbacks = 0
        self.executor_fallbacks = 0

    # -- request entry points (called on executor threads) -----------------------

    def handle_query(self, sql, params=None, strategy=None, deadline=None,
                     cancel_event=None, executor=None):
        """One-shot: parse, cache-or-prepare, bind, execute."""
        script = parse_script(sql)
        from repro.sql.ast import CreateView, Query

        if any(
            not isinstance(s, (CreateView, Query)) for s in script.statements
        ):
            raise ReproError(
                "the query op accepts SELECTs (with optional inline views); "
                "send DDL/DML through the script op"
            )
        if len(script.queries) != 1:
            raise ReproError(
                "expected exactly one query, got %d" % len(script.queries)
            )
        handle = self._make_handle(sql, script, strategy, executor)
        return self.handle_execute(
            handle, params, deadline=deadline, cancel_event=cancel_event
        )

    def handle_prepare(self, sql, strategy=None, executor=None):
        """Parse + parameterize once; returns a :class:`PreparedHandle`
        plus its wire description. Plans land in the shared cache on first
        execute."""
        script = parse_script(sql)
        from repro.sql.ast import CreateView, Query

        if len(script.queries) != 1 or any(
            not isinstance(s, (CreateView, Query)) for s in script.statements
        ):
            raise ReproError(
                "prepare accepts exactly one SELECT (plus inline views)"
            )
        handle = self._make_handle(sql, script, strategy, executor)
        explicit = handle.param_count - len(handle.extracted_values)
        return handle, {
            "fingerprint": handle.fingerprint,
            "strategy": handle.strategy,
            "executor": handle.executor,
            "param_count": max(explicit, 0),
        }

    def handle_execute(self, handle, params=None, deadline=None,
                       cancel_event=None):
        """Execute a prepared handle with bound values."""
        values = list(params or []) + list(handle.extracted_values)
        governor = self._make_governor(deadline, cancel_event)
        started = time.perf_counter()
        chain = self._fallback_chain(self.breakers.select(handle.strategy))
        last_error = None
        with self.lock.read():
            for attempt, candidate in enumerate(chain):
                try:
                    response = self._run_once(
                        handle, candidate, values, governor
                    )
                except (ResourceExhaustedError, QueryCancelledError) as exc:
                    # Budget and cancellation trips are not the strategy's
                    # fault and would recur under any strategy: no fallback.
                    self._note_failure(exc)
                    raise
                except Exception as exc:
                    self.breakers.record_failure(candidate, exc)
                    last_error = exc
                    continue
                self.breakers.record_success(candidate)
                with self._stats_lock:
                    self.queries_ok += 1
                    if attempt:
                        self.fallbacks += attempt
                response["requested_strategy"] = handle.strategy
                response["executed_strategy"] = candidate
                response["elapsed_seconds"] = round(
                    time.perf_counter() - started, 6
                )
                return response
        self._note_failure(last_error)
        raise last_error

    def handle_script(self, sql):
        """DDL/DML script: runs alone (write lock). Cached plans made
        stale by it become unreachable via the catalog version bump."""
        with self.lock.write():
            before = self.database.schema_version()
            outcome = self.connection.run_script(sql)
            response = {
                "catalog_version": self.database.schema_version(),
                "ddl": self.database.schema_version() != before,
            }
            if outcome is not None:
                response["columns"] = list(outcome.columns)
                response["rows"] = [list(row) for row in outcome.rows]
            return response

    def handle_stats(self):
        with self._stats_lock:
            counters = {
                "queries_ok": self.queries_ok,
                "queries_failed": self.queries_failed,
                "cancellations": self.cancellations,
                "deadline_trips": self.deadline_trips,
                "fallbacks": self.fallbacks,
                "executor_fallbacks": self.executor_fallbacks,
            }
        return {
            "counters": counters,
            "cache": self.cache.stats(),
            "admission": self.admission.stats(),
            "breakers": self.breakers.snapshot(),
            "catalog_version": self.database.schema_version(),
            "table_versions": self.database.table_versions(),
        }

    def shutdown(self):
        self.executor.shutdown(wait=True)

    # -- internals ---------------------------------------------------------------

    def _make_handle(self, sql, script, strategy, executor=None):
        strategy = strategy or self.config.default_strategy
        if strategy not in STRATEGIES:
            raise ReproError(
                "unknown strategy %r (expected one of %s)"
                % (strategy, ", ".join(STRATEGIES))
            )
        executor = executor or self.config.default_executor
        if executor not in EXECUTORS:
            raise ReproError(
                "unknown executor %r (expected one of %s)"
                % (executor, ", ".join(EXECUTORS))
            )
        query = script.queries[0]
        extracted = parameterize_query(query)
        return PreparedHandle(
            sql=sql,
            query=query,
            views=list(script.views),
            fingerprint=_script_fingerprint(script.views, query),
            strategy=strategy,
            param_count=parameter_slots(query),
            extracted_values=extracted,
            executor=executor,
        )

    def _make_governor(self, deadline, cancel_event):
        clamped = min(
            deadline if deadline is not None
            else self.config.default_deadline_seconds,
            self.config.max_deadline_seconds,
        )
        if self._governor_factory is not None:
            governor = self._governor_factory()
            governor.deadline_seconds = clamped
        else:
            from repro.resilience import ResourceGovernor

            governor = ResourceGovernor(
                deadline_seconds=clamped,
                max_materialized_rows=self.config.max_materialized_rows,
            )
        governor.begin_query()
        if cancel_event is not None:
            governor.attach_cancel_token(cancel_event, "client disconnected")
        return governor

    def _fallback_chain(self, start):
        """The strategies to attempt, starting at the breaker's pick."""
        chain = list(self.breakers.chain)
        if start not in chain:
            return [start]
        return chain[chain.index(start):]

    def _entry_for(self, handle, strategy, governor):
        """Cache lookup, preparing (serialized) on a miss. Runs under the
        read lock: the catalog version read here stays valid for the whole
        execution."""
        catalog_version = self.database.schema_version()
        entry = self.cache.lookup(handle.fingerprint, strategy, catalog_version)
        if entry is not None:
            return entry, True
        with self._prepare_lock:
            # Another thread may have prepared it while we waited.
            entry = self.cache.lookup(
                handle.fingerprint, strategy, catalog_version
            )
            if entry is not None:
                return entry, True
            governor.checkpoint("prepare of %s" % handle.fingerprint)
            with self.database.catalog.scoped_views(handle.views):
                graph, plan, heuristic, _ = self.connection.prepare(
                    handle.query, strategy
                )
            validate_graph(graph)
            entry = CachedPlan(
                fingerprint=handle.fingerprint,
                adornment=statement_adornment(graph),
                strategy=strategy,
                catalog_version=catalog_version,
                graph=graph,
                plan=plan,
                heuristic=heuristic,
                param_count=parameter_count(graph),
                table_versions=self.database.table_versions(),
            )
            self.cache.store(entry)
            return entry, False

    def _run_once(self, handle, strategy, values, governor):
        entry, cache_hit = self._entry_for(handle, strategy, governor)
        if handle.param_count > len(values):
            raise ExecutionError(
                "statement expects %d parameter(s), got %d"
                % (
                    handle.param_count - len(handle.extracted_values),
                    len(values) - len(handle.extracted_values),
                )
            )
        if values and entry.param_count:
            graph = bind_parameters(clone_graph(entry.graph), values)
        else:
            graph = entry.graph
        join_orders = entry.plan.join_orders if entry.plan is not None else None
        executor = handle.executor
        if strategy == "correlated":
            evaluator = CorrelatedEvaluator(
                graph, self.database, join_orders=join_orders,
                governor=governor,
            )
            result = evaluator.run()
        else:
            evaluator_class = BatchEvaluator if executor == "batch" else Evaluator
            evaluator = evaluator_class(
                graph, self.database, join_orders=join_orders,
                memoize_correlated=(strategy == "emst"),
                governor=governor,
            )
            try:
                result = evaluator.run()
            except (ResourceExhaustedError, QueryCancelledError):
                # Budget/cancel trips would recur on the (slower) tuple
                # engine: propagate, don't retry.
                raise
            except Exception:
                if executor != "batch":
                    raise
                # Any batch-executor failure retries on the tuple oracle
                # before the strategy-level breaker chain gets involved.
                with self._stats_lock:
                    self.executor_fallbacks += 1
                executor = "tuple"
                evaluator = Evaluator(
                    graph, self.database, join_orders=join_orders,
                    memoize_correlated=(strategy == "emst"),
                    governor=governor,
                )
                result = evaluator.run()
        return {
            "columns": list(result.columns),
            "rows": [list(row) for row in result.rows],
            "row_count": len(result.rows),
            "cache": "hit" if cache_hit else "miss",
            "fingerprint": entry.fingerprint,
            "adornment": entry.adornment,
            "executor": executor,
            "stale_tables": entry.staleness(self.database.table_versions()),
        }

    def _note_failure(self, exc):
        with self._stats_lock:
            self.queries_failed += 1
            if isinstance(exc, QueryCancelledError):
                self.cancellations += 1
            elif isinstance(exc, ResourceExhaustedError) and getattr(
                exc, "limit", None
            ) == "deadline_seconds":
                self.deadline_trips += 1
