"""The engine-facing server core: caching, admission, deadlines, fallback.

:class:`QueryServer` is transport-agnostic — every ``handle_*`` method is
a plain synchronous function, called by the asyncio session layer on
executor threads (and directly by tests, which is how the concurrency
semantics stay testable without sockets).

Concurrency model:

* **queries share, DDL excludes** — a reader-writer lock gives every
  query a stable catalog for its whole prepare + execute span, while a
  script carrying CREATE/INSERT/DELETE/UPDATE waits for running queries
  and runs alone. Combined with the catalog version in the plan-cache
  key this yields snapshot-consistent reads: a query sees either the
  catalog before a DDL or after it, never a half-applied mix, and plans
  prepared before the DDL are unreachable after it.
* **cache misses serialize** — preparing may register statement-scoped
  inline views in the shared catalog; a single prepare lock makes that
  safe. Post-warmup the hot path (clone, bind, execute) never takes it.
* **deadlines and cancellation are cooperative** — each request gets a
  :class:`~repro.resilience.ResourceGovernor` with a clamped deadline and
  the session's cancel token; the evaluator checkpoints observe both.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Optional

from repro.api import Connection, EXECUTORS, STRATEGIES
from repro.engine import BatchEvaluator, CorrelatedEvaluator, Evaluator
from repro.errors import (
    ExecutionError,
    QueryCancelledError,
    ReproError,
    ResourceExhaustedError,
    WorkerCrashedError,
)
from repro.qgm import validate_graph
from repro.qgm.clone import clone_graph
from repro.qgm.params import bind_parameters, parameter_count
from repro.resilience.breaker import StrategyBreakerBoard
from repro.sql import parse_script, to_sql
from repro.sql.parameterize import (
    fingerprint_query,
    parameter_slots,
    parameterize_query,
)
from repro.server.admission import AdmissionController
from repro.server.plan_cache import (
    AdornmentPlanCache,
    CachedPlan,
    statement_adornment,
)
from repro.server.result_cache import ResultCache


@dataclass
class ServerConfig:
    host: str = "127.0.0.1"
    port: int = 7474
    #: Queries executing at once; more wait in the bounded queue.
    max_concurrent: int = 8
    max_queue: int = 16
    #: Deadline applied when the client sends none; client requests are
    #: clamped to ``max_deadline_seconds`` so one session cannot opt out
    #: of the server's latency envelope.
    default_deadline_seconds: float = 10.0
    max_deadline_seconds: float = 60.0
    cache_capacity: int = 128
    default_strategy: str = "emst"
    #: Execution engine for requests that don't name one: "tuple" is the
    #: classic row-at-a-time evaluator, "batch" the columnar executor
    #: (which retries on the tuple engine if it fails).
    default_executor: str = "tuple"
    breaker_failure_threshold: int = 3
    breaker_cooldown_seconds: float = 5.0
    #: Per-query row budget (None = unlimited) forwarded to the governor.
    max_materialized_rows: Optional[int] = None
    #: Forked worker processes executing queries (0 = everything runs
    #: in-process on the thread pool, the pre-multiprocess behaviour).
    workers: int = 0
    #: Consecutive worker crashes before the crash breaker opens and
    #: execution demotes to the in-process path for the cooldown.
    worker_crash_threshold: int = 3
    worker_cooldown_seconds: float = 5.0
    #: Cross-request result cache: entries keyed on ``(fingerprint,
    #: strategy, executor, catalog version, bindings, table versions)``.
    #: 0 disables it (default: correctness-first opt-in).
    result_cache_capacity: int = 0
    result_cache_max_rows: int = 10000
    #: Where the statement registry is persisted on shutdown and warmed
    #: from on boot (None = no persistence). Warming replays each
    #: recorded statement through prepare, so the plan cache is hot —
    #: and, when warming happens before the pool forks, inherited by
    #: every worker.
    statement_cache_path: Optional[str] = None


class ReadWriteLock:
    """Many readers or one writer; writers take priority (a waiting DDL
    blocks new queries, so it cannot starve behind a query stream)."""

    def __init__(self):
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    @contextlib.contextmanager
    def read(self):
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if not self._readers:
                    self._cond.notify_all()

    @contextlib.contextmanager
    def write(self):
        with self._cond:
            self._writers_waiting += 1
            while self._writer_active or self._readers:
                self._cond.wait()
            self._writers_waiting -= 1
            self._writer_active = True
        try:
            yield
        finally:
            with self._cond:
                self._writer_active = False
                self._cond.notify_all()


@dataclass
class PreparedHandle:
    """A server-side prepared statement: the parse/parameterize work done
    once; plans materialize in the shared cache on first execute (and
    rematerialize transparently after DDL bumps the catalog version)."""

    sql: str
    query: object
    views: list
    fingerprint: str
    strategy: str
    param_count: int
    #: Values auto-extracted from literals; explicit ``?`` bindings from
    #: the client are prepended at execute time.
    extracted_values: list = field(default_factory=list)
    executor: str = "tuple"


def _script_fingerprint(views, query):
    """Fingerprint of a parameterized query *plus* its inline views: two
    scripts whose SELECTs match but whose CREATE VIEWs differ must never
    share a cached plan."""
    if not views:
        return fingerprint_query(query)
    digest = hashlib.sha256()
    for view in views:
        digest.update(to_sql(view).encode("utf-8"))
        digest.update(b";")
    digest.update(to_sql(query).encode("utf-8"))
    return digest.hexdigest()[:24]


class QueryServer:
    """Shared-database, multi-session query service (transport-agnostic)."""

    def __init__(self, database, config=None, governor_factory=None):
        self.database = database
        self.config = config or ServerConfig()
        self.connection = Connection(database)
        self.cache = AdornmentPlanCache(capacity=self.config.cache_capacity)
        self.result_cache = ResultCache(
            capacity=self.config.result_cache_capacity,
            max_rows=self.config.result_cache_max_rows,
        )
        self.admission = AdmissionController(
            max_concurrent=self.config.max_concurrent,
            max_queue=self.config.max_queue,
            parallelism=max(self.config.workers, 1),
        )
        self.breakers = StrategyBreakerBoard(
            failure_threshold=self.config.breaker_failure_threshold,
            cooldown_seconds=self.config.breaker_cooldown_seconds,
        )
        self.lock = ReadWriteLock()
        self._prepare_lock = threading.Lock()
        self._governor_factory = governor_factory
        self.executor = ThreadPoolExecutor(
            max_workers=self.config.max_concurrent,
            thread_name_prefix="repro-query",
        )
        self._stats_lock = threading.Lock()
        self.queries_ok = 0
        self.queries_failed = 0
        self.cancellations = 0
        self.deadline_trips = 0
        self.fallbacks = 0
        self.executor_fallbacks = 0
        #: ``fingerprint -> {sql, strategy, executor}``: everything ever
        #: prepared on this server, the source of statement-cache
        #: persistence across restarts.
        self._registry_lock = threading.Lock()
        self._statement_registry = {}
        self.statements_warmed = 0
        # Warm BEFORE forking the pool: plans prepared here are part of
        # the copy-on-write image every worker inherits.
        if self.config.statement_cache_path:
            self.warm_statement_cache()
        self.pool = None
        if self.config.workers > 0:
            from repro.server.workers import WorkerPool, fork_available

            if fork_available():
                self.pool = WorkerPool(
                    database, self.config, plan_cache=self.cache
                )

    # -- request entry points (called on executor threads) -----------------------

    def handle_query(self, sql, params=None, strategy=None, deadline=None,
                     cancel_event=None, executor=None, fresh=False):
        """One-shot: parse, cache-or-prepare, bind, execute."""
        script = parse_script(sql)
        from repro.sql.ast import CreateView, Query

        if any(
            not isinstance(s, (CreateView, Query)) for s in script.statements
        ):
            raise ReproError(
                "the query op accepts SELECTs (with optional inline views); "
                "send DDL/DML through the script op"
            )
        if len(script.queries) != 1:
            raise ReproError(
                "expected exactly one query, got %d" % len(script.queries)
            )
        handle = self._make_handle(sql, script, strategy, executor)
        return self.handle_execute(
            handle, params, deadline=deadline, cancel_event=cancel_event,
            fresh=fresh,
        )

    def handle_prepare(self, sql, strategy=None, executor=None):
        """Parse + parameterize once; returns a :class:`PreparedHandle`
        plus its wire description. Plans land in the shared cache on first
        execute."""
        script = parse_script(sql)
        from repro.sql.ast import CreateView, Query

        if len(script.queries) != 1 or any(
            not isinstance(s, (CreateView, Query)) for s in script.statements
        ):
            raise ReproError(
                "prepare accepts exactly one SELECT (plus inline views)"
            )
        handle = self._make_handle(sql, script, strategy, executor)
        explicit = handle.param_count - len(handle.extracted_values)
        return handle, {
            "fingerprint": handle.fingerprint,
            "strategy": handle.strategy,
            "executor": handle.executor,
            "param_count": max(explicit, 0),
        }

    def handle_execute(self, handle, params=None, deadline=None,
                       cancel_event=None, fresh=False):
        """Execute a prepared handle with bound values.

        The whole span — result-cache lookup, dispatch/execution, store —
        runs under *one* read-lock acquisition (the lock is not
        reentrant), so the table versions in a result-cache key cannot
        move between lookup and serve: DML takes the write lock.
        ``fresh=True`` bypasses the result cache entirely (no lookup, no
        store) — the chaos oracle uses it to force real re-execution.
        """
        values = list(params or []) + list(handle.extracted_values)
        started = time.perf_counter()
        with self.lock.read():
            key = None
            if not fresh and self.result_cache.capacity:
                key = ResultCache.make_key(
                    handle.fingerprint,
                    handle.strategy,
                    handle.executor,
                    self.database.schema_version(),
                    values,
                    self.database.table_versions(),
                )
                cached = self.result_cache.lookup(key)
                if cached is not None:
                    cached["cache"] = "result"
                    cached["elapsed_seconds"] = round(
                        time.perf_counter() - started, 6
                    )
                    with self._stats_lock:
                        self.queries_ok += 1
                    return cached
            if self.pool is not None and self.pool.admit():
                response = self._execute_on_pool(
                    handle, params, deadline, cancel_event, started
                )
            else:
                response = self._execute_inprocess(
                    handle, values, deadline, cancel_event, started
                )
            if key is not None:
                # Only a *complete* success is ever cached — every error
                # path above raised past this line, so a crashed or
                # half-failed execution cannot leave a cache entry.
                self.result_cache.store(key, response)
            return response

    def _execute_on_pool(self, handle, params, deadline, cancel_event,
                         started):
        """Ship the statement to a pool worker and relay its reply."""
        clamped = min(
            deadline if deadline is not None
            else self.config.default_deadline_seconds,
            self.config.max_deadline_seconds,
        )
        message = {
            "op": "query",
            "sql": handle.sql,
            "params": list(params or []),
            "strategy": handle.strategy,
            "executor": handle.executor,
            "deadline": clamped,
        }
        try:
            reply = self.pool.dispatch(
                message, clamped, cancel_event=cancel_event
            )
        except (WorkerCrashedError, QueryCancelledError,
                ResourceExhaustedError) as exc:
            self._note_failure(exc)
            raise
        if not reply.get("ok"):
            from repro.server.workers import RemoteQueryError

            exc = RemoteQueryError(reply.get("error") or {})
            self._note_failure(exc)
            raise exc
        response = reply["response"]
        response["worker_pid"] = reply.get("pid")
        response["elapsed_seconds"] = round(time.perf_counter() - started, 6)
        with self._stats_lock:
            self.queries_ok += 1
        return response

    def _execute_inprocess(self, handle, values, deadline, cancel_event,
                           started):
        """The classic thread-pool path (also the degraded path when the
        worker-crash breaker is open)."""
        governor = self._make_governor(deadline, cancel_event)
        chain = self._fallback_chain(self.breakers.select(handle.strategy))
        last_error = None
        for attempt, candidate in enumerate(chain):
            try:
                response = self._run_once(handle, candidate, values, governor)
            except (ResourceExhaustedError, QueryCancelledError) as exc:
                # Budget and cancellation trips are not the strategy's
                # fault and would recur under any strategy: no fallback.
                self._note_failure(exc)
                raise
            except Exception as exc:
                self.breakers.record_failure(candidate, exc)
                last_error = exc
                continue
            self.breakers.record_success(candidate)
            with self._stats_lock:
                self.queries_ok += 1
                if attempt:
                    self.fallbacks += attempt
            response["requested_strategy"] = handle.strategy
            response["executed_strategy"] = candidate
            response["elapsed_seconds"] = round(
                time.perf_counter() - started, 6
            )
            return response
        self._note_failure(last_error)
        raise last_error

    def handle_script(self, sql):
        """DDL/DML script: runs alone (write lock). Cached plans made
        stale by it become unreachable via the catalog version bump."""
        with self.lock.write():
            before = self.database.schema_version()
            outcome = self.connection.run_script(sql)
            response = {
                "catalog_version": self.database.schema_version(),
                "ddl": self.database.schema_version() != before,
            }
            if outcome is not None:
                response["columns"] = list(outcome.columns)
                response["rows"] = [list(row) for row in outcome.rows]
            if self.pool is not None:
                # Publish changed tables (and the catalog, if its bytes
                # moved) while the write lock guarantees no dispatch is
                # mid-flight reading the old segments.
                self.pool.publish()
            return response

    def handle_stats(self):
        with self._stats_lock:
            counters = {
                "queries_ok": self.queries_ok,
                "queries_failed": self.queries_failed,
                "cancellations": self.cancellations,
                "deadline_trips": self.deadline_trips,
                "fallbacks": self.fallbacks,
                "executor_fallbacks": self.executor_fallbacks,
            }
        counters["statements_warmed"] = self.statements_warmed
        stats = {
            "counters": counters,
            "cache": self.cache.stats(),
            "result_cache": self.result_cache.stats(),
            "admission": self.admission.stats(),
            "breakers": self.breakers.snapshot(),
            "catalog_version": self.database.schema_version(),
            "table_versions": self.database.table_versions(),
        }
        if self.pool is not None:
            stats["workers"] = self.pool.stats()
        return stats

    def shutdown(self):
        if self.config.statement_cache_path:
            self.save_statement_cache()
        if self.pool is not None:
            self.pool.shutdown()
        self.executor.shutdown(wait=True)

    # -- statement-cache persistence ----------------------------------------------

    def save_statement_cache(self, path=None):
        """Serialize every statement ever prepared here (fingerprint
        registry) to JSON; the next boot warms from it. Returns the
        number of statements written."""
        path = path or self.config.statement_cache_path
        if not path:
            return 0
        with self._registry_lock:
            statements = list(self._statement_registry.values())
        payload = {"version": 1, "statements": statements}
        tmp = "%s.tmp.%d" % (path, os.getpid())
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=1)
        os.replace(tmp, path)
        return len(statements)

    def warm_statement_cache(self, path=None):
        """Replay a persisted statement set through prepare, landing each
        plan in the shared cache before any client arrives. A statement
        that no longer parses or plans (schema changed under it) is
        skipped, not fatal. Returns the number warmed."""
        path = path or self.config.statement_cache_path
        if not path or not os.path.exists(path):
            return 0
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
            statements = payload.get("statements") or []
        except (OSError, ValueError):
            return 0
        warmed = 0
        for spec in statements:
            try:
                sql = spec["sql"]
                script = parse_script(sql)
                handle = self._make_handle(
                    sql, script, spec.get("strategy"), spec.get("executor")
                )
                governor = self._make_governor(None, None)
                with self.lock.read():
                    self._entry_for(handle, handle.strategy, governor)
                warmed += 1
            except Exception:  # noqa: BLE001 — warming is best-effort
                continue
        self.statements_warmed = warmed
        return warmed

    # -- internals ---------------------------------------------------------------

    def _make_handle(self, sql, script, strategy, executor=None):
        strategy = strategy or self.config.default_strategy
        if strategy not in STRATEGIES:
            raise ReproError(
                "unknown strategy %r (expected one of %s)"
                % (strategy, ", ".join(STRATEGIES))
            )
        executor = executor or self.config.default_executor
        if executor not in EXECUTORS:
            raise ReproError(
                "unknown executor %r (expected one of %s)"
                % (executor, ", ".join(EXECUTORS))
            )
        query = script.queries[0]
        extracted = parameterize_query(query)
        handle = PreparedHandle(
            sql=sql,
            query=query,
            views=list(script.views),
            fingerprint=_script_fingerprint(script.views, query),
            strategy=strategy,
            param_count=parameter_slots(query),
            extracted_values=extracted,
            executor=executor,
        )
        with self._registry_lock:
            self._statement_registry[handle.fingerprint] = {
                "sql": sql,
                "strategy": strategy,
                "executor": executor,
            }
        return handle

    def _make_governor(self, deadline, cancel_event):
        clamped = min(
            deadline if deadline is not None
            else self.config.default_deadline_seconds,
            self.config.max_deadline_seconds,
        )
        if self._governor_factory is not None:
            governor = self._governor_factory()
            governor.deadline_seconds = clamped
        else:
            from repro.resilience import ResourceGovernor

            governor = ResourceGovernor(
                deadline_seconds=clamped,
                max_materialized_rows=self.config.max_materialized_rows,
            )
        governor.begin_query()
        if cancel_event is not None:
            governor.attach_cancel_token(cancel_event, "client disconnected")
        return governor

    def _fallback_chain(self, start):
        """The strategies to attempt, starting at the breaker's pick."""
        chain = list(self.breakers.chain)
        if start not in chain:
            return [start]
        return chain[chain.index(start):]

    def _entry_for(self, handle, strategy, governor):
        """Cache lookup, preparing (serialized) on a miss. Runs under the
        read lock: the catalog version read here stays valid for the whole
        execution.

        A hit whose recorded table versions no longer match the live
        tables is *evicted and re-prepared* — the stale plan was still
        correct (plans never embed rows), but it was optimized against
        dead statistics, and serving it forever would make ANALYZE
        pointless. The cache state returned alongside the entry is
        ``"hit"``, ``"miss"``, or ``"replan"``.
        """
        catalog_version = self.database.schema_version()
        entry = self.cache.lookup(handle.fingerprint, strategy, catalog_version)
        state = "miss"
        if entry is not None:
            if not entry.staleness(self.database.table_versions()):
                return entry, "hit"
            self.cache.evict_stale(entry.key)
            state = "replan"
        with self._prepare_lock:
            # Another thread may have prepared it while we waited.
            entry = self.cache.lookup(
                handle.fingerprint, strategy, catalog_version
            )
            if entry is not None:
                if not entry.staleness(self.database.table_versions()):
                    return entry, "hit"
                self.cache.evict_stale(entry.key)
                state = "replan"
            governor.checkpoint("prepare of %s" % handle.fingerprint)
            with self.database.catalog.scoped_views(handle.views):
                graph, plan, heuristic, _ = self.connection.prepare(
                    handle.query, strategy
                )
            validate_graph(graph)
            # Record versions for exactly the base tables the (rewritten)
            # graph reads: DML against an unrelated table must not make
            # this plan look stale.
            stored = self.database.stored_tables()
            names = [
                name for name in graph.base_table_names() if name in stored
            ]
            entry = CachedPlan(
                fingerprint=handle.fingerprint,
                adornment=statement_adornment(graph),
                strategy=strategy,
                catalog_version=catalog_version,
                graph=graph,
                plan=plan,
                heuristic=heuristic,
                param_count=parameter_count(graph),
                table_versions=self.database.table_versions(names),
            )
            self.cache.store(entry)
            return entry, state

    def _run_once(self, handle, strategy, values, governor):
        entry, cache_state = self._entry_for(handle, strategy, governor)
        if handle.param_count > len(values):
            raise ExecutionError(
                "statement expects %d parameter(s), got %d"
                % (
                    handle.param_count - len(handle.extracted_values),
                    len(values) - len(handle.extracted_values),
                )
            )
        if values and entry.param_count:
            graph = bind_parameters(clone_graph(entry.graph), values)
        else:
            graph = entry.graph
        join_orders = entry.plan.join_orders if entry.plan is not None else None
        executor = handle.executor
        if strategy == "correlated":
            evaluator = CorrelatedEvaluator(
                graph, self.database, join_orders=join_orders,
                governor=governor,
            )
            result = evaluator.run()
        else:
            evaluator_class = BatchEvaluator if executor == "batch" else Evaluator
            evaluator = evaluator_class(
                graph, self.database, join_orders=join_orders,
                memoize_correlated=(strategy == "emst"),
                governor=governor,
            )
            try:
                result = evaluator.run()
            except (ResourceExhaustedError, QueryCancelledError):
                # Budget/cancel trips would recur on the (slower) tuple
                # engine: propagate, don't retry.
                raise
            except Exception:
                if executor != "batch":
                    raise
                # Any batch-executor failure retries on the tuple oracle
                # before the strategy-level breaker chain gets involved.
                with self._stats_lock:
                    self.executor_fallbacks += 1
                executor = "tuple"
                evaluator = Evaluator(
                    graph, self.database, join_orders=join_orders,
                    memoize_correlated=(strategy == "emst"),
                    governor=governor,
                )
                result = evaluator.run()
        return {
            "columns": list(result.columns),
            "rows": [list(row) for row in result.rows],
            "row_count": len(result.rows),
            "cache": cache_state,
            "fingerprint": entry.fingerprint,
            "adornment": entry.adornment,
            "executor": executor,
            "stale_tables": entry.staleness(self.database.table_versions()),
        }

    def _note_failure(self, exc):
        # Errors relayed from a worker arrive as RemoteQueryError carrying
        # the original type name; classify those by name so the counters
        # agree regardless of where the query ran.
        error_type = getattr(exc, "error_type", type(exc).__name__)
        with self._stats_lock:
            self.queries_failed += 1
            if isinstance(exc, QueryCancelledError) or (
                error_type == "QueryCancelledError"
            ):
                self.cancellations += 1
            elif (
                isinstance(exc, ResourceExhaustedError)
                and getattr(exc, "limit", None) == "deadline_seconds"
            ) or (
                error_type == "ResourceExhaustedError"
                and (getattr(exc, "context", None) or {}).get("limit")
                == "deadline_seconds"
            ):
                self.deadline_trips += 1
