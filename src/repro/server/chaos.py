"""Session-boundary chaos: the serving layer under hostile clients.

The resilience chaos harness (:mod:`repro.resilience.chaos`) injects
faults *inside* the rewrite/execute pipeline; this one attacks the
*session boundary* — the failure modes only a server has:

* **slow client** — a frame dribbled in byte-sized chunks must stall only
  its own session, never the sessions sharing the server,
* **mid-query disconnect** — a client that hangs up while its query runs
  must trip the cancel token; the abandoned query must stop burning a
  pool slot, and the database must be unaffected,
* **cache poisoning attempt** — concurrent DDL/DML racing parameterized
  queries: every answer must match a fresh ``original``-strategy oracle
  *when no mutation interleaved the pair* (version counters decide), and
  otherwise be a clean structured error — never wrong rows,
* **deadline storm + overload** — a thundering herd with tiny deadlines
  against a tiny pool: every outcome must classify as success, deadline
  trip, cancellation, or shed-with-``retry_after``; retried requests must
  eventually succeed,
* **worker crashes** (``--battery workers``) — SIGKILL the worker process
  mid-query and mid-fixpoint: the client must see a clean *retryable*
  ``WorkerCrashedError`` (or a correct answer, if the reply won the
  race), the pool must respawn to full strength, a retried request must
  succeed, and no partially-built result-cache entry may survive the
  crash.

The invariant throughout is the same as the in-pipeline harness:
**correct answer or clean error — never a wrong answer**. Run as
``python -m repro.server.chaos --seed 1234``; the CI chaos job pins the
seed so failures reproduce.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import random
import signal
import socket
import struct
import threading
import time

from repro.api import Connection
from repro.engine import Database
from repro.server import protocol
from repro.server.client import ServerError, SyncQueryClient
from repro.server.core import QueryServer, ServerConfig
from repro.server.session import serve
from repro.workloads.empdept import PAPER_VIEWS_SQL, build_empdept_database

#: Error types a chaotic session is allowed to surface. Anything else —
#: and any wrong row set — is a harness failure.
CLEAN_ERRORS = frozenset({
    "ResourceExhaustedError",
    "ServerOverloadedError",
    "QueryCancelledError",
    "ExecutionError",
    "ProtocolError",
    "WorkerCrashedError",
})


class ServerHarness:
    """An in-process server on an ephemeral port, event loop on a daemon
    thread. Context manager; ``harness.client()`` makes connected sync
    clients. Reused by the test suite and the benchmark."""

    def __init__(self, database=None, config=None):
        self.database = database if database is not None else Database()
        self.config = config or ServerConfig(port=0)
        self.server = QueryServer(self.database, self.config)
        self.port = None
        self._loop = None
        self._thread = None
        self._stopped = None
        self._ready = threading.Event()

    def __enter__(self):
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._ready.wait(10):
            raise RuntimeError("server failed to start within 10s")
        return self

    def __exit__(self, *exc_info):
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._stopped.set)
        self._thread.join(timeout=10)
        self.server.shutdown()

    def _run(self):
        async def main():
            self._loop = asyncio.get_running_loop()
            self._stopped = asyncio.Event()
            listener = await serve(self.server, host="127.0.0.1", port=0)
            self.port = listener.sockets[0].getsockname()[1]
            self._ready.set()
            async with listener:
                await self._stopped.wait()

        asyncio.run(main())

    def client(self, **kwargs):
        return SyncQueryClient(port=self.port, **kwargs).connect()


def _build_database(scale):
    database = build_empdept_database(
        n_departments=max(int(100 * scale), 5),
        employees_per_department=max(int(40 * scale), 3),
    )
    Connection(database).run_script(PAPER_VIEWS_SQL)
    return database


PARAM_QUERY = (
    "SELECT d.deptname, s.avgsalary FROM department d, avgMgrSal s "
    "WHERE d.deptno = s.workdept AND d.deptname = ?"
)
SLOW_QUERY = (
    "SELECT e1.empno FROM employee e1, employee e2, employee e3 "
    "WHERE e1.salary > 0 AND e2.salary > 0 AND e3.salary > 0"
)


def _canon(rows):
    return sorted(tuple(row) for row in rows)


# -- individual batteries --------------------------------------------------------


def check_slow_client(harness, report):
    """A dribbled frame stalls only its own session."""
    payload = protocol.encode_frame({"op": "ping", "id": 1})
    slow = socket.create_connection(("127.0.0.1", harness.port), timeout=10)
    try:
        # Send all but the last 3 bytes, then hold the frame open.
        slow.sendall(payload[:-3])
        with harness.client() as fast:
            started = time.perf_counter()
            result = fast.query(PARAM_QUERY, params=["Planning"])
            elapsed = time.perf_counter() - started
        assert result["row_count"] == 1, "fast session got wrong rows"
        report["slow_client_bystander_seconds"] = round(elapsed, 4)
        # Now complete the dribble; the slow session must still be served.
        time.sleep(0.05)
        slow.sendall(payload[-3:])
        header = b""
        while len(header) < 4:
            chunk = slow.recv(4 - len(header))
            assert chunk, "server dropped the slow session"
            header += chunk
        (length,) = struct.unpack(">I", header)
        body = b""
        while len(body) < length:
            body += slow.recv(length - len(body))
        assert b'"pong"' in body, "slow session got a non-pong reply"
        report["slow_client_ok"] = True
    finally:
        slow.close()


def check_mid_query_disconnect(harness, report):
    """Disconnecting mid-query trips the cancel token and frees the slot."""
    before = harness.server.handle_stats()["counters"]["cancellations"]
    victim = socket.create_connection(("127.0.0.1", harness.port), timeout=10)
    victim.sendall(
        protocol.encode_frame(
            {"op": "query", "sql": SLOW_QUERY, "id": 1, "deadline": 30}
        )
    )
    time.sleep(0.2)  # let the query reach the executor
    victim.close()
    deadline = time.monotonic() + 15
    cancelled = 0
    while time.monotonic() < deadline:
        counters = harness.server.handle_stats()["counters"]
        cancelled = counters["cancellations"] - before
        if cancelled:
            break
        time.sleep(0.1)
    assert cancelled, "disconnect did not cancel the running query"
    # The database must be untouched and the server responsive.
    with harness.client() as client:
        result = client.query(PARAM_QUERY, params=["Planning"])
        assert result["row_count"] == 1, "post-disconnect query broken"
    report["disconnect_cancelled"] = cancelled
    report["disconnect_ok"] = True


def check_garbage_frame(harness, report):
    """A non-JSON frame gets a structured error, then the session ends."""
    sock = socket.create_connection(("127.0.0.1", harness.port), timeout=10)
    try:
        garbage = b"\x00\x00\x00\x05hello"
        sock.sendall(garbage)
        header = sock.recv(4)
        assert len(header) == 4, "no error frame for garbage payload"
        (length,) = struct.unpack(">I", header)
        body = b""
        while len(body) < length:
            body += sock.recv(length - len(body))
        assert b"ProtocolError" in body, "garbage not reported as ProtocolError"
        report["garbage_frame_ok"] = True
    finally:
        sock.close()


def check_cache_poisoning(harness, rng, rounds, report):
    """DDL/DML racing cached parameterized queries: answers must match a
    fresh original-strategy oracle whenever the version counters prove no
    mutation interleaved the pair."""
    deptnames = ["Planning"] + [
        "Dept%04d" % i
        for i in range(1, len(harness.database.table("department").rows))
    ]
    stop = threading.Event()
    mutator_errors = []

    def mutator():
        with harness.client() as client:
            count = 0
            while not stop.is_set():
                count += 1
                try:
                    if count % 5 == 0:
                        # Real DDL: bumps the catalog version, must purge
                        # every cached plan.
                        client.script(
                            "CREATE VIEW poison%d (n) AS "
                            "SELECT empname FROM employee" % count
                        )
                    else:
                        # DML: bumps table versions (stale-plan signal).
                        client.script(
                            "INSERT INTO employee VALUES "
                            "(%d, 'Chaos%d', 'D0001', %d, 'CLERK')"
                            % (900000 + count, count, 50000 + count)
                        )
                except (ServerError, ConnectionError) as exc:
                    mutator_errors.append(str(exc))
                time.sleep(0.01)

    thread = threading.Thread(target=mutator, daemon=True)
    thread.start()
    checked = skipped = errors = 0
    try:
        with harness.client() as client:
            for _ in range(rounds):
                name = rng.choice(deptnames)
                stats_before = client.stats()
                versions_before = (
                    stats_before["catalog_version"],
                    stats_before["table_versions"].get("employee"),
                )
                try:
                    answer = client.query(
                        PARAM_QUERY, params=[name], strategy="emst"
                    )
                    oracle = client.query(
                        PARAM_QUERY, params=[name], strategy="original"
                    )
                except ServerError as exc:
                    assert exc.error_type in CLEAN_ERRORS, (
                        "dirty error under poisoning: %s" % exc
                    )
                    errors += 1
                    continue
                stats_after = client.stats()
                versions_after = (
                    stats_after["catalog_version"],
                    stats_after["table_versions"].get("employee"),
                )
                if versions_before != versions_after:
                    # A mutation interleaved the pair: the two reads saw
                    # different database states, so equality is not owed.
                    skipped += 1
                    continue
                assert _canon(answer["rows"]) == _canon(oracle["rows"]), (
                    "WRONG ROWS for %r under concurrent DDL/DML" % name
                )
                checked += 1
    finally:
        stop.set()
        thread.join(timeout=10)
    assert checked, "poisoning battery never got a quiesced comparison"
    report["poisoning_checked"] = checked
    report["poisoning_skipped"] = skipped
    report["poisoning_clean_errors"] = errors
    report["poisoning_mutator_errors"] = len(mutator_errors)


def check_deadline_storm(harness, rng, clients, requests, report):
    """Tiny deadlines + overload: every outcome classifies cleanly and
    sheds carry usable retry hints; the row invariant still holds."""
    expected = None
    with harness.client() as probe:
        expected = _canon(
            probe.query(PARAM_QUERY, params=["Planning"])["rows"]
        )
    outcomes = {"ok": 0, "deadline": 0, "shed": 0, "other_clean": 0}
    wrong = []
    lock = threading.Lock()

    def worker(worker_seed, retrying):
        worker_rng = random.Random(worker_seed)
        # Half the herd retries (exercising backoff + retry_after), half
        # fails fast (so sheds actually surface as client-visible errors).
        from repro.resilience.retry import RetryPolicy

        policy = RetryPolicy() if retrying else RetryPolicy(max_attempts=1)
        try:
            client = harness.client(retry=policy)
        except OSError:
            return
        with client:
            for _ in range(requests):
                tight = worker_rng.random() < 0.5
                try:
                    if tight:
                        result = client.query(
                            SLOW_QUERY, deadline=0.02
                        )
                    else:
                        result = client.query(
                            PARAM_QUERY, params=["Planning"], deadline=5
                        )
                except ServerError as exc:
                    with lock:
                        if exc.error_type == "ServerOverloadedError":
                            outcomes["shed"] += 1
                            if exc.retry_after is None:
                                wrong.append("shed without retry_after")
                        elif exc.error_type in CLEAN_ERRORS:
                            outcomes["deadline"] += 1
                        else:
                            wrong.append("dirty error %s" % exc.error_type)
                    continue
                except (ConnectionError, OSError):
                    with lock:
                        outcomes["other_clean"] += 1
                    continue
                with lock:
                    outcomes["ok"] += 1
                    if not tight and _canon(result["rows"]) != expected:
                        wrong.append("wrong rows under storm")

    threads = [
        threading.Thread(
            target=worker, args=(rng.random(), index % 2 == 0), daemon=True
        )
        for index in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not wrong, "storm violations: %s" % wrong[:5]
    assert outcomes["ok"], "storm produced no successes"
    report["storm_outcomes"] = outcomes
    # Retrying shed requests must eventually succeed.
    with harness.client() as client:
        result = client.query(PARAM_QUERY, params=["Planning"])
        assert _canon(result["rows"]) == expected
    report["storm_retry_ok"] = True


SLOW_COUNT_QUERY = (
    "SELECT COUNT(*) FROM employee e1, employee e2, employee e3 "
    "WHERE e1.salary > 0 AND e2.salary > 0 AND e3.salary > 0"
)


def _fixpoint_victim(bound):
    """A transitive-closure victim whose literal ``bound`` lands in the
    result-cache bindings, so every round's key is distinct and cached
    results from earlier rounds cannot short-circuit the dispatch."""
    return (
        "WITH RECURSIVE path (src, dst) AS ("
        "  SELECT e.src, e.dst FROM edge e"
        "  UNION"
        "  SELECT p.src, e.dst FROM path p, edge e WHERE e.src = p.dst"
        ") SELECT COUNT(*) FROM path p WHERE p.src < %d" % bound
    )


def check_worker_crashes(harness, rng, rounds, report):
    """SIGKILL the worker executing a query (alternating a long scan and
    a long fixpoint): the client's outcome must be a retryable
    ``WorkerCrashedError`` or a correct reply, the pool must return to
    full strength, and the result cache must hold nothing from a crashed
    execution."""
    from repro.resilience.retry import RetryPolicy

    server = harness.server
    pool = server.pool
    assert pool is not None, "worker battery needs ServerConfig(workers>0)"
    workers = server.config.workers
    with harness.client() as client:
        client.script("CREATE TABLE edge (src, dst)")
        edges = ["(%d, %d)" % (i, i + 1) for i in range(120)]
        edges.append("(120, 0)")  # cycle: the fixpoint revisits facts
        client.script("INSERT INTO edge VALUES %s" % ", ".join(edges))
        expected = _canon(
            client.query(PARAM_QUERY, params=["Planning"], fresh=True)["rows"]
        )
    crashed = won_race = 0
    for round_index in range(rounds):
        mid_fixpoint = round_index % 2 == 1
        victim_sql = (
            _fixpoint_victim(10000 + round_index)
            if mid_fixpoint
            else SLOW_COUNT_QUERY
        )
        entries_before = len(server.result_cache)
        outcome = {}

        def run_victim():
            try:
                with harness.client(
                    retry=RetryPolicy(max_attempts=1)
                ) as victim:
                    outcome["response"] = victim.query(
                        victim_sql, deadline=60
                    )
            except (ServerError, ConnectionError, OSError) as exc:
                outcome["error"] = exc

        thread = threading.Thread(target=run_victim, daemon=True)
        thread.start()
        kill_deadline = time.monotonic() + 15
        busy = []
        while time.monotonic() < kill_deadline:
            busy = pool.busy_pids()
            if busy:
                break
            time.sleep(0.005)
        assert busy, "victim query never reached a worker"
        if mid_fixpoint:
            # Let the fixpoint get a few delta rounds in before the kill.
            time.sleep(rng.uniform(0.01, 0.1))
        os.kill(busy[0], signal.SIGKILL)
        thread.join(timeout=90)
        assert not thread.is_alive(), "victim session wedged after SIGKILL"
        error = outcome.get("error")
        if error is None:
            won_race += 1  # reply beat the kill; a correct answer is fine
        else:
            assert isinstance(error, ServerError), (
                "crash surfaced as transport failure, not a structured "
                "error: %r" % error
            )
            assert error.error_type == "WorkerCrashedError", (
                "dirty crash error: %s" % error
            )
            assert error.retryable, "WorkerCrashedError must be retryable"
            crashed += 1
            # The killed execution must not have stored anything: a
            # result-cache entry exists only after a complete reply.
            assert len(server.result_cache) == entries_before, (
                "partial result-cache entry survived a worker crash"
            )
        # The pool must recover to full strength with live processes.
        recover_deadline = time.monotonic() + 15
        while time.monotonic() < recover_deadline:
            pids = pool.pids()
            if len(pids) == workers and all(
                _pid_alive(pid) for pid in pids
            ):
                break
            time.sleep(0.02)
        pids = pool.pids()
        assert len(pids) == workers, "pool did not respawn to full strength"
    assert crashed, "worker battery never observed a crash (kills too late?)"
    # A retried request after the carnage must succeed with correct rows —
    # on the pool, not just the in-process fallback.
    with harness.client() as client:
        result = client.query(PARAM_QUERY, params=["Planning"], fresh=True)
        assert _canon(result["rows"]) == expected, "wrong rows after crashes"
        oracle = client.query(
            PARAM_QUERY, params=["Planning"], strategy="original", fresh=True
        )
        assert _canon(oracle["rows"]) == expected
    stats = pool.stats()
    assert stats["respawns"] >= crashed, "crashes without respawns"
    report["worker_crashes"] = crashed
    report["worker_won_race"] = won_race
    report["worker_respawns"] = stats["respawns"]
    report["worker_breaker_state"] = stats["breaker"]["state"]


def _pid_alive(pid):
    try:
        os.kill(pid, 0)
    except (ProcessLookupError, PermissionError):
        return False
    return True


# -- driver ----------------------------------------------------------------------


def run_worker_chaos(seed=1234, scale=0.2, crash_rounds=4, verbose=True):
    """The worker-crash battery against a multi-process server with the
    result cache enabled; returns the report dict."""
    rng = random.Random(seed)
    database = _build_database(scale)
    config = ServerConfig(
        port=0,
        max_concurrent=4,
        max_queue=8,
        default_deadline_seconds=30.0,
        workers=2,
        result_cache_capacity=64,
        # Keep the crash breaker from opening mid-battery: the point is
        # to exercise respawn + retry, not the degraded path.
        worker_crash_threshold=1000,
    )
    report = {"seed": seed}
    with ServerHarness(database, config) as harness:
        if harness.server.pool is None:
            report["skipped"] = "fork start method unavailable"
            return report
        check_worker_crashes(harness, rng, crash_rounds, report)
        report["final_workers"] = harness.server.handle_stats()["workers"]
    if verbose:
        for key, value in report.items():
            if key != "final_workers":
                print("%s: %r" % (key, value))
        print("workers: %r" % report.get("final_workers"))
    return report


def run_session_chaos(seed=1234, scale=0.2, poison_rounds=15,
                      storm_clients=12, storm_requests=4, verbose=True):
    """Run every battery against one server; returns the report dict."""
    rng = random.Random(seed)
    database = _build_database(scale)
    config = ServerConfig(
        port=0,
        max_concurrent=3,
        max_queue=3,
        default_deadline_seconds=10.0,
        breaker_cooldown_seconds=0.5,
    )
    report = {"seed": seed}
    with ServerHarness(database, config) as harness:
        check_slow_client(harness, report)
        check_garbage_frame(harness, report)
        check_mid_query_disconnect(harness, report)
        check_cache_poisoning(harness, rng, poison_rounds, report)
        check_deadline_storm(
            harness, rng, storm_clients, storm_requests, report
        )
        report["final_stats"] = harness.server.handle_stats()
    if verbose:
        for key, value in report.items():
            if key != "final_stats":
                print("%s: %r" % (key, value))
        stats = report["final_stats"]
        print("cache: %r" % stats["cache"])
        print("admission: %r" % stats["admission"])
        print("counters: %r" % stats["counters"])
    return report


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.server.chaos",
        description="Session-boundary chaos harness for the query server.",
    )
    parser.add_argument("--seed", type=int, default=1234)
    parser.add_argument("--scale", type=float, default=0.2)
    parser.add_argument("--poison-rounds", type=int, default=15)
    parser.add_argument("--storm-clients", type=int, default=12)
    parser.add_argument("--storm-requests", type=int, default=4)
    parser.add_argument("--crash-rounds", type=int, default=4)
    parser.add_argument(
        "--battery", choices=("session", "workers", "all"), default="session",
        help="which batteries to run (workers = SIGKILL the worker pool)",
    )
    options = parser.parse_args(argv)
    if options.battery in ("session", "all"):
        run_session_chaos(
            seed=options.seed,
            scale=options.scale,
            poison_rounds=options.poison_rounds,
            storm_clients=options.storm_clients,
            storm_requests=options.storm_requests,
        )
        print("session chaos: all batteries passed")
    if options.battery in ("workers", "all"):
        run_worker_chaos(
            seed=options.seed,
            scale=options.scale,
            crash_rounds=options.crash_rounds,
        )
        print("worker chaos: all batteries passed")


if __name__ == "__main__":
    main()
