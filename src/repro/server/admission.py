"""Admission control: bounded concurrency, bounded queue, load shedding.

The executor pool runs ``max_concurrent`` queries; up to ``max_queue``
more may wait behind them. Beyond that the server *sheds*: the request is
rejected immediately with :class:`~repro.errors.ServerOverloadedError`
carrying a machine-readable ``retry_after`` estimate — rejecting cheaply
at the door keeps latency bounded for the queries already admitted, which
is the difference between a slow server and a dead one.

``retry_after`` is an EWMA of recent service times scaled by the backlog
the retrying client would face: roughly how long until a pool slot frees
up for it. Clients add jitter on top (:class:`~repro.resilience.retry.
RetryPolicy`); the hint is a floor, not a schedule.
"""

from __future__ import annotations

import threading
import time

from repro.errors import ServerOverloadedError


class AdmissionController:
    """Counts in-flight work and sheds past the queue bound (thread-safe)."""

    def __init__(self, max_concurrent=8, max_queue=16,
                 default_service_seconds=0.05, ewma_alpha=0.2, clock=None,
                 parallelism=1):
        self.max_concurrent = max_concurrent
        self.max_queue = max_queue
        #: Independent execution lanes behind the gate (worker processes,
        #: or 1 for the in-process thread pool). Only the ``retry_after``
        #: estimate uses it: with N true lanes the backlog drains ~N
        #: times faster than the single-GIL estimate assumes.
        self.parallelism = max(parallelism, 1)
        self.ewma_alpha = ewma_alpha
        self.clock = clock or time.monotonic
        self._lock = threading.Lock()
        self.inflight = 0
        self.admitted = 0
        self.shed_count = 0
        self.completed = 0
        self.ewma_service_seconds = default_service_seconds

    def try_admit(self):
        """Admit or shed. Returns an opaque ticket (the admit timestamp);
        raises :class:`ServerOverloadedError` on shed. Callers must pair
        every successful admit with :meth:`release`."""
        with self._lock:
            if self.inflight >= self.max_concurrent + self.max_queue:
                self.shed_count += 1
                backlog = self.inflight - self.max_concurrent + 1
                retry_after = round(
                    self.ewma_service_seconds
                    * max(backlog, 1)
                    / max(self.max_concurrent * self.parallelism, 1),
                    4,
                )
                raise ServerOverloadedError(
                    "server at capacity (%d running, %d queued); retry in "
                    "~%.3fs" % (
                        self.max_concurrent,
                        self.inflight - self.max_concurrent,
                        retry_after,
                    ),
                    retry_after=retry_after,
                    queue_depth=self.inflight - self.max_concurrent,
                    active=self.max_concurrent,
                )
            self.inflight += 1
            self.admitted += 1
            return self.clock()

    def release(self, ticket):
        """Record completion of an admitted request; folds its service
        time into the EWMA the shed path quotes."""
        elapsed = max(self.clock() - ticket, 0.0)
        with self._lock:
            self.inflight = max(self.inflight - 1, 0)
            self.completed += 1
            self.ewma_service_seconds = (
                self.ewma_alpha * elapsed
                + (1.0 - self.ewma_alpha) * self.ewma_service_seconds
            )

    def stats(self):
        with self._lock:
            return {
                "inflight": self.inflight,
                "max_concurrent": self.max_concurrent,
                "max_queue": self.max_queue,
                "parallelism": self.parallelism,
                "admitted": self.admitted,
                "completed": self.completed,
                "shed": self.shed_count,
                "ewma_service_seconds": round(self.ewma_service_seconds, 6),
            }
