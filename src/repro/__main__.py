"""Command-line interface: an interactive SQL shell and script runner.

Usage::

    python -m repro                      # interactive shell (empty database)
    python -m repro --demo               # shell preloaded with the paper's
                                         # employee/department example
    python -m repro script.sql           # run a script file
    python -m repro script.sql --strategy correlated --explain

Shell commands (backslash-prefixed):

    \\strategy [name]    show or set the execution strategy
    \\explain on|off     print the optimized plan/graph before each query
    \\timing on|off      print execution time after each query
    \\tables             list tables and views
    \\graph <query>      print the rewritten QGM graph for a query
    \\q                  quit
"""

from __future__ import annotations

import argparse
import sys
import time

from repro import Connection, Database, ReproError
from repro.api import STRATEGIES


def format_result(result, max_rows=100):
    """Render a Result as an aligned text table."""
    rows = list(result.rows[:max_rows])
    headers = list(result.columns)
    rendered = [
        ["NULL" if v is None else str(v) for v in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    lines.append(" | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered:
        lines.append(" | ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
    total = len(result.rows)
    suffix = " (%d rows" % total
    if total > max_rows:
        suffix += ", %d shown" % max_rows
    suffix += ")"
    lines.append(suffix)
    return "\n".join(lines)


class Shell:
    """The interactive shell / script-runner state."""

    def __init__(self, database=None, strategy="emst", explain=False, timing=False):
        self.connection = Connection(database or Database())
        self.strategy = strategy
        self.explain = explain
        self.timing = timing

    # -- statement execution -----------------------------------------------------

    def run_sql(self, text, out=None):
        out = out or sys.stdout
        from repro.sql import parse_script
        from repro.sql.ast import Query

        script = parse_script(text)
        for statement in script.statements:
            if isinstance(statement, Query):
                if self.explain:
                    from repro.sql.printer import to_sql

                    out.write(
                        self.connection.explain(
                            to_sql(statement), strategy=self.strategy
                        )
                        + "\n"
                    )
                started = time.perf_counter()
                outcome = self.connection.execute_query(
                    statement, strategy=self.strategy
                )
                elapsed = time.perf_counter() - started
                out.write(format_result(outcome.result) + "\n")
                if self.timing:
                    out.write("time: %.4fs (strategy: %s)\n" % (elapsed, self.strategy))
            else:
                from repro.sql.printer import to_sql

                self.connection.run_script(to_sql(statement))
                out.write("ok\n")

    # -- shell commands ---------------------------------------------------------------

    def run_command(self, line, out=None):
        out = out or sys.stdout
        parts = line.strip().split(None, 1)
        command = parts[0]
        argument = parts[1].strip() if len(parts) > 1 else ""
        if command in ("\\q", "\\quit", "\\exit"):
            return False
        if command == "\\strategy":
            if argument:
                if argument not in STRATEGIES:
                    out.write(
                        "unknown strategy %r (one of: %s)\n"
                        % (argument, ", ".join(STRATEGIES))
                    )
                else:
                    self.strategy = argument
            out.write("strategy: %s\n" % self.strategy)
        elif command == "\\explain":
            self.explain = argument != "off"
            out.write("explain: %s\n" % ("on" if self.explain else "off"))
        elif command == "\\timing":
            self.timing = argument != "off"
            out.write("timing: %s\n" % ("on" if self.timing else "off"))
        elif command == "\\tables":
            catalog = self.connection.database.catalog
            for schema in catalog.tables():
                out.write(
                    "table %s(%s)\n"
                    % (schema.name, ", ".join(schema.column_names))
                )
            for view in catalog.views():
                out.write("view  %s\n" % view.name)
        elif command == "\\graph":
            if not argument:
                out.write("usage: \\graph <query>\n")
            else:
                out.write(
                    self.connection.explain(argument, strategy=self.strategy) + "\n"
                )
        else:
            out.write("unknown command %s (try \\q, \\strategy, \\tables)\n" % command)
        return True

    # -- the REPL ------------------------------------------------------------------------

    def repl(self, stdin=None, out=None):
        stdin = stdin or sys.stdin
        out = out or sys.stdout
        out.write(
            "repro SQL shell — strategy: %s. End statements with ';', "
            "\\q to quit.\n" % self.strategy
        )
        buffer = []
        while True:
            out.write("...> " if buffer else "sql> ")
            out.flush()
            line = stdin.readline()
            if not line:
                break
            stripped = line.strip()
            if not buffer and stripped.startswith("\\"):
                if not self.run_command(stripped, out):
                    break
                continue
            buffer.append(line)
            if stripped.endswith(";"):
                text = "".join(buffer)
                buffer = []
                try:
                    self.run_sql(text, out)
                except ReproError as error:
                    out.write("error: %s\n" % error)


def demo_database():
    """The paper's employee/department example, preloaded."""
    from repro.workloads.empdept import PAPER_VIEWS_SQL, build_empdept_database

    db = build_empdept_database(n_departments=50, employees_per_department=8)
    connection = Connection(db)
    connection.run_script(PAPER_VIEWS_SQL)
    return db


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Magic-sets SQL engine (SIGMOD'94 reproduction)",
    )
    parser.add_argument("script", nargs="?", help="SQL script file to run")
    parser.add_argument(
        "--strategy",
        default="emst",
        choices=list(STRATEGIES),
        help="execution strategy (default: emst)",
    )
    parser.add_argument(
        "--explain", action="store_true", help="print plans before each query"
    )
    parser.add_argument(
        "--timing", action="store_true", help="print execution times"
    )
    parser.add_argument(
        "--demo",
        action="store_true",
        help="preload the paper's employee/department example",
    )
    args = parser.parse_args(argv)

    database = demo_database() if args.demo else Database()
    shell = Shell(
        database, strategy=args.strategy, explain=args.explain, timing=args.timing
    )
    if args.script:
        with open(args.script) as handle:
            text = handle.read()
        try:
            shell.run_sql(text)
        except ReproError as error:
            sys.stderr.write("error: %s\n" % error)
            return 1
        return 0
    shell.repl()
    return 0


if __name__ == "__main__":
    sys.exit(main())
