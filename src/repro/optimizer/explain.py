"""Physical-plan rendering: EXPLAIN output.

Synthesises, per box, the operator pipeline the evaluator will run —
which quantifier is scanned first, which are attached by hash join vs
nested loop, where semi/anti joins and scalar bindings apply, where
duplicates are eliminated — annotated with the estimator's row counts.
"""

from __future__ import annotations

from repro.qgm import expr as qe
from repro.qgm.model import BoxKind, DistinctMode, QuantifierType
from repro.qgm.stratum import reduced_dependency_graph
from repro.optimizer.cardinality import CardinalityEstimator
from repro.engine.evaluator import _hashable_equality


def _child_name(quantifier):
    child = quantifier.input_box
    if child.kind == BoxKind.BASE:
        return child.table_name
    return child.name


def _select_pipeline(box, order_names, estimator):
    """Describe the join pipeline of one select box."""
    foreach = box.foreach_quantifiers()
    by_name = {q.name: q for q in foreach}
    ordered = [by_name[n] for n in (order_names or []) if n in by_name]
    ordered += [q for q in foreach if q not in set(ordered)]

    lines = []
    local = set(box.quantifiers)
    bound = set()
    applied = set()
    for index, quantifier in enumerate(ordered):
        applicable = []
        for predicate in box.predicates:
            if id(predicate) in applied:
                continue
            needed = {
                r.quantifier
                for r in qe.column_refs(predicate)
                if r.quantifier in local
            }
            if needed and needed <= (bound | {quantifier}) and all(
                q.qtype == QuantifierType.FOREACH for q in needed
            ):
                applicable.append(predicate)
        hash_keys = [
            p
            for p in applicable
            if _hashable_equality(p, quantifier, local, bound) is not None
        ]
        rows = estimator.rows(quantifier.input_box)
        label = "magic " if quantifier.is_magic else ""
        if index == 0:
            op = "SCAN"
        elif hash_keys:
            op = "HASHJOIN"
        else:
            op = "NLJOIN"
        detail = ""
        if applicable:
            detail = " ON " + " AND ".join(str(p) for p in applicable)
        lines.append(
            "%s %s%s (%s, ~%d rows)%s"
            % (op, label, quantifier.name, _child_name(quantifier), rows, detail)
        )
        for predicate in applicable:
            applied.add(id(predicate))
        bound.add(quantifier)

    for quantifier in box.quantifiers:
        if quantifier.qtype == QuantifierType.EXISTENTIAL:
            lines.append(
                "SEMIJOIN %s (%s)" % (quantifier.name, _child_name(quantifier))
            )
        elif quantifier.qtype == QuantifierType.ANTI:
            kind = "null-aware " if quantifier.null_aware else ""
            lines.append(
                "%sANTIJOIN %s (%s)"
                % (kind.upper(), quantifier.name, _child_name(quantifier))
            )
        elif quantifier.qtype == QuantifierType.SCALAR:
            mode = "decorrelated probe" if quantifier.decorrelated else "single row"
            lines.append(
                "SCALAR %s (%s, %s)"
                % (quantifier.name, _child_name(quantifier), mode)
            )
    residual = [p for p in box.predicates if id(p) not in applied]
    filterable = [
        p
        for p in residual
        if all(
            q.qtype == QuantifierType.FOREACH
            for q in (
                r.quantifier for r in qe.column_refs(p) if r.quantifier in local
            )
        )
    ]
    for predicate in filterable:
        lines.append("FILTER %s" % predicate)
    if box.distinct == DistinctMode.ENFORCE:
        lines.append("DISTINCT")
    return lines


def physical_plan(graph, plan=None, catalog=None):
    """Render the evaluator's physical plan for ``graph``.

    ``plan`` is a :class:`~repro.optimizer.plan.GraphPlan` (for join
    orders); without one, declaration order is assumed.
    """
    catalog = catalog or graph.catalog
    estimator = CardinalityEstimator(catalog)
    join_orders = plan.join_orders if plan is not None else {}

    components, _ = reduced_dependency_graph(graph)
    lines = []
    for component in components:
        recursive = len(component) > 1 or any(
            q.input_box is component[0] for q in component[0].quantifiers
        )
        for box in component:
            if box.kind == BoxKind.BASE:
                continue
            header = "%s %s (~%d rows)" % (box.kind, box.name, estimator.rows(box))
            if box is graph.top_box:
                header = "RETURN " + header
            elif recursive:
                header = "FIXPOINT " + header
            else:
                header = "MATERIALIZE " + header
            lines.append(header)
            if box.kind == BoxKind.SELECT:
                for line in _select_pipeline(
                    box, join_orders.get(box.box_id), estimator
                ):
                    lines.append("  " + line)
            elif box.kind == BoxKind.GROUPBY:
                keys = ", ".join(str(k) for k in box.group_keys) or "()"
                aggs = ", ".join(
                    str(c.expr)
                    for c in box.columns
                    if isinstance(c.expr, qe.QAggregate)
                )
                lines.append(
                    "  GROUPBY [%s] aggregates [%s] over %s"
                    % (keys, aggs, _child_name(box.quantifiers[0]))
                )
            elif box.kind == BoxKind.OUTERJOIN:
                left, right = box.quantifiers
                lines.append(
                    "  LEFT OUTER JOIN %s (%s) with %s (%s) ON %s"
                    % (
                        left.name,
                        _child_name(left),
                        right.name,
                        _child_name(right),
                        " AND ".join(str(p) for p in box.predicates),
                    )
                )
            else:
                inputs = ", ".join(_child_name(q) for q in box.quantifiers)
                mode = (
                    "DISTINCT"
                    if box.distinct == DistinctMode.ENFORCE
                    else "ALL"
                )
                lines.append("  %s %s over [%s]" % (box.kind, mode, inputs))
    if graph.order_by:
        keys = ", ".join(
            "#%d %s" % (ordinal + 1, "ASC" if ascending else "DESC")
            for ordinal, ascending in graph.order_by
        )
        lines.append("SORT %s" % keys)
    if graph.limit is not None:
        lines.append("LIMIT %d" % graph.limit)
    return "\n".join(lines)
