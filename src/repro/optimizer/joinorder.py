"""Join-order optimization for one select box.

Left-deep enumeration with dynamic programming over quantifier subsets
(exact up to :data:`DP_LIMIT` quantifiers, greedy beyond — the pruning the
paper notes real optimizers must use). The cost metric is the classic sum
of intermediate result cardinalities, which is what the EMST join-order
heuristic needs: a *relative* ranking of orders plus comparable totals.
"""

from __future__ import annotations

from itertools import combinations

from repro.qgm import expr as qe
from repro.qgm.model import BoxKind, QuantifierType

DP_LIMIT = 10


def _applicable_predicates(box, subset):
    """Predicates of ``box`` fully evaluable over ``subset`` (F quantifiers)."""
    local = set(box.quantifiers)
    out = []
    for predicate in box.predicates:
        needed = {
            ref.quantifier
            for ref in qe.column_refs(predicate)
            if ref.quantifier in local
        }
        foreach_needed = {q for q in needed if q.qtype == QuantifierType.FOREACH}
        if needed - foreach_needed:
            continue
        if foreach_needed and foreach_needed <= subset:
            out.append(predicate)
    return out


def _subset_cardinality(box, subset, estimator):
    predicates = _applicable_predicates(box, subset)
    cardinality = 1.0
    for quantifier in subset:
        cardinality *= estimator.rows(quantifier.input_box)
    for predicate in predicates:
        cardinality *= estimator.selectivity(predicate)
    return max(cardinality, 1.0)


def optimize_select_box(box, estimator):
    """Choose a join order for the foreach quantifiers of ``box``.

    Returns ``(order, cost, output_rows)`` where ``order`` is the list of
    quantifier names. Magic quantifiers, when present, are pinned to the
    front of the order (the magic table is the filter that everything else
    joins against — Algorithm 4.2 assumes it comes first).
    """
    foreach = box.foreach_quantifiers()
    magic = [q for q in foreach if q.is_magic]
    regular = [q for q in foreach if not q.is_magic]

    output_rows = estimator.rows(box)
    if len(regular) <= 1:
        order = [q.name for q in magic + regular]
        cost = _subset_cardinality(box, set(foreach), estimator) if foreach else 1.0
        return order, cost, output_rows

    if len(regular) <= DP_LIMIT:
        ordered = _dp_order(box, magic, regular, estimator)
    else:
        ordered = _greedy_order(box, magic, regular, estimator)
    order = [q.name for q in magic + ordered]
    cost = _order_cost(box, magic + ordered, estimator)
    return order, cost, output_rows


def _order_cost(box, ordered, estimator):
    """Sum of intermediate cardinalities of a left-deep order."""
    cost = 0.0
    prefix = set()
    for quantifier in ordered:
        prefix.add(quantifier)
        cost += _subset_cardinality(box, prefix, estimator)
    return cost


def _dp_order(box, magic, regular, estimator):
    """Exact left-deep DP over subsets of the non-magic quantifiers."""
    base = frozenset(magic)
    best = {}  # frozenset(regular subset) -> (cost, order list)
    for quantifier in regular:
        subset = frozenset([quantifier])
        cost = _subset_cardinality(box, base | subset, estimator)
        best[subset] = (cost, [quantifier])
    for size in range(2, len(regular) + 1):
        for combo in combinations(regular, size):
            subset = frozenset(combo)
            subset_card = _subset_cardinality(box, base | subset, estimator)
            candidate = None
            for quantifier in combo:
                rest = subset - {quantifier}
                prev_cost, prev_order = best[rest]
                cost = prev_cost + subset_card
                # Tie-break: on equal cost, place derived tables later in
                # the order — a later derived table can receive bindings
                # (sideways information passing / magic), while a base
                # table accessed later still has its indexes.
                tie = 0 if quantifier.input_box.kind != BoxKind.BASE else 1
                key = (cost, tie)
                if candidate is None or key < candidate[0]:
                    candidate = (key, prev_order + [quantifier])
            best[subset] = (candidate[0][0], candidate[1])
    return best[frozenset(regular)][1]


def _greedy_order(box, magic, regular, estimator):
    """Greedy smallest-next-intermediate heuristic for wide joins."""
    remaining = list(regular)
    prefix = set(magic)
    ordered = []
    while remaining:
        choice = min(
            remaining,
            key=lambda q: (
                _subset_cardinality(box, prefix | {q}, estimator),
                0 if q.input_box.kind == BoxKind.BASE else 1,
            ),
        )
        remaining.remove(choice)
        prefix.add(choice)
        ordered.append(choice)
    return ordered
