"""Whole-graph plan optimization.

``optimize_graph`` runs the per-box join-order optimizer on every select
box and aggregates a total plan cost. The result carries the *join-order
oracle* (box id → quantifier-name order) that the EMST rule consumes in
rewrite phase 2, and a comparable total cost for the §3.2 heuristic's
before/after comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.qgm.model import BoxKind
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.joinorder import optimize_select_box


@dataclass
class BoxPlan:
    """Plan information for one box."""

    box_name: str
    kind: str
    order: List[str] = field(default_factory=list)
    cost: float = 0.0
    rows: float = 0.0
    multiplicity: float = 1.0  # >1 when the box is correlated (re-evaluated)

    @property
    def total_cost(self):
        return self.cost * self.multiplicity


@dataclass
class GraphPlan:
    """The plan for a whole query graph."""

    plans: Dict[int, BoxPlan] = field(default_factory=dict)
    total_cost: float = 0.0
    optimizer_invocations: int = 1

    @property
    def join_orders(self):
        """The join-order oracle consumed by the EMST rule."""
        return {
            box_id: plan.order for box_id, plan in self.plans.items() if plan.order
        }

    def describe(self):
        lines = ["total cost: %.1f" % self.total_cost]
        for box_id in sorted(self.plans):
            plan = self.plans[box_id]
            lines.append(
                "  box %d %s %s: rows=%.1f cost=%.1f x%.0f order=(%s)"
                % (
                    box_id,
                    plan.kind,
                    plan.box_name,
                    plan.rows,
                    plan.cost,
                    plan.multiplicity,
                    " > ".join(plan.order),
                )
            )
        return "\n".join(lines)


def _correlation_multiplicity(graph, estimator):
    """Estimate how many times each correlated box gets re-evaluated: the
    cardinality of the box owning the quantifiers it references."""
    multiplicity = {}
    for box in graph.boxes():
        subtree_ids = set()
        stack = [box]
        while stack:
            current = stack.pop()
            if id(current) in subtree_ids:
                continue
            subtree_ids.add(id(current))
            for quantifier in current.quantifiers:
                stack.append(quantifier.input_box)
        owners = set()
        for quantifier_owner in _external_owners(box, subtree_ids):
            owners.add(quantifier_owner)
        if owners:
            multiplicity[id(box)] = max(
                estimator.rows(owner) for owner in owners
            )
    return multiplicity


def _external_owners(box, subtree_ids):
    from repro.qgm import expr as qe

    owners = []
    stack = [box]
    seen = set()
    while stack:
        current = stack.pop()
        if id(current) in seen:
            continue
        seen.add(id(current))
        for expression in current.all_expressions():
            for ref in qe.column_refs(expression):
                owner = ref.quantifier.parent_box
                if owner is not None and id(owner) not in subtree_ids:
                    owners.append(owner)
        for quantifier in current.quantifiers:
            stack.append(quantifier.input_box)
    return owners


def optimize_graph(graph, catalog=None):
    """Plan every box of ``graph``; returns a :class:`GraphPlan`."""
    catalog = catalog or graph.catalog
    estimator = CardinalityEstimator(catalog)
    plan = GraphPlan()
    multiplicity = _correlation_multiplicity(graph, estimator)
    total = 0.0
    for box in graph.boxes():
        if box.kind == BoxKind.BASE:
            continue
        box_plan = BoxPlan(box_name=box.name, kind=box.kind)
        box_plan.rows = estimator.rows(box)
        box_plan.multiplicity = max(multiplicity.get(id(box), 1.0), 1.0)
        if box.kind == BoxKind.SELECT:
            order, cost, rows = optimize_select_box(box, estimator)
            box_plan.order = order
            box_plan.cost = cost + rows
        elif box.kind == BoxKind.GROUPBY:
            box_plan.cost = estimator.rows(box.quantifiers[0].input_box) + box_plan.rows
        else:
            box_plan.cost = (
                sum(estimator.rows(q.input_box) for q in box.quantifiers)
                + box_plan.rows
            )
        plan.plans[box.box_id] = box_plan
        total += box_plan.total_cost
    plan.total_cost = total
    return plan
