"""Plan optimization: System-R style cardinality/cost estimation and
dynamic-programming join ordering [SAC+79, Loh88].

The paper's EMST rule consumes *join orders* ("sips") produced here; the
two-pass cost-based heuristic of §3.2 lives in
:mod:`repro.optimizer.heuristic`.
"""

from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.joinorder import optimize_select_box
from repro.optimizer.plan import GraphPlan, BoxPlan, optimize_graph

__all__ = [
    "CardinalityEstimator",
    "optimize_select_box",
    "GraphPlan",
    "BoxPlan",
    "optimize_graph",
    "HeuristicResult",
    "optimize_with_heuristic",
    "optimize_exhaustive_emst",
]


def __getattr__(name):
    # The heuristic pulls in the magic package; import it lazily to keep
    # `repro.optimizer` importable from within `repro.magic` itself.
    if name in ("HeuristicResult", "optimize_with_heuristic", "optimize_exhaustive_emst"):
        from repro.optimizer import heuristic

        return getattr(heuristic, name)
    raise AttributeError("module %r has no attribute %r" % (__name__, name))
