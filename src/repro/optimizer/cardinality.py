"""Cardinality and column-statistics estimation over QGM boxes.

The estimator walks the graph bottom-up with memoisation, propagating
row-count and per-column distinct-count estimates through selects,
group-bys and set operations, in the System-R tradition: equality to a
constant selects ``1/V`` of the rows, an equijoin selects
``1/max(V_left, V_right)``, a range predicate selects 1/3.

The estimator also consults the interbox dataflow fixpoints
(:mod:`repro.analysis.dataflow`), memoised per instance:

* a column proven to be a *key* of its box has exactly one distinct value
  per row, so its distinct count is pinned to the box's row estimate;
* ``IS [NOT] NULL`` over a column proven NOT NULL is decided, not guessed;
* the duplicate-shrink factor of ``DISTINCT`` enforcement is skipped when
  the key analysis proves the output duplicate-free without it.

Predicate lists the interpreted comparison domain
(:mod:`repro.analysis.equivalence.domains`) proves contradictory — the
``QGM604`` condition — estimate to exactly 0.0 rows instead of a
product of selectivities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.qgm import expr as qe
from repro.qgm.model import BoxKind, DistinctMode, QuantifierType

EQ_DEFAULT = 0.1
RANGE_SELECTIVITY = 1.0 / 3.0
LIKE_SELECTIVITY = 0.1
NOT_NULL_SELECTIVITY = 0.9
SEMI_JOIN_SELECTIVITY = 0.5
OR_CAP = 0.9
#: A recursive component is estimated as its non-recursive seed times this
#: fan-out factor (re-entrant references contribute one seed row). Crude,
#: but it ranks a magic-restricted closure correctly against computing the
#: closure of everything.
RECURSION_FAN = 10.0


@dataclass
class ColumnEstimate:
    """Estimated statistics of one (box, column)."""

    distinct: float = 1.0
    min_value: Optional[object] = None
    max_value: Optional[object] = None


class CardinalityEstimator:
    """Estimates row counts of boxes and selectivities of predicates."""

    def __init__(self, catalog):
        self.catalog = catalog
        self._rows = {}
        self._columns = {}
        self._cyclic = {}
        self._key_facts = {}
        self._null_facts = {}
        self._dupfree = {}
        self._contradictory = {}

    # -- dataflow facts -------------------------------------------------------

    def box_keys(self, box):
        """Fixpoint-derived unique keys of ``box`` (tuple of frozensets of
        lower-cased column names), memoised for the whole solved subgraph."""
        cached = self._key_facts.get(id(box))
        if cached is None:
            from repro.analysis.dataflow import solve_keys

            try:
                solved = solve_keys(box)
            except Exception:
                solved = {}
            for box_id, fact in solved.items():
                self._key_facts.setdefault(box_id, fact)
            cached = self._key_facts.setdefault(id(box), ())
        return cached

    def notnull_columns(self, box):
        """Columns of ``box`` proven NOT NULL by the nullability fixpoint."""
        cached = self._null_facts.get(id(box))
        if cached is None:
            from repro.analysis.dataflow import solve_nullability

            try:
                solved = solve_nullability(box)
            except Exception:
                solved = {}
            for box_id, fact in solved.items():
                self._null_facts.setdefault(box_id, fact.notnull)
            cached = self._null_facts.setdefault(id(box), frozenset())
        return cached

    def _enforcement_redundant(self, box):
        """True when ``box``'s DISTINCT enforcement removes nothing (its
        output is duplicate-free even ignoring the enforcement)."""
        cached = self._dupfree.get(id(box))
        if cached is None:
            from repro.analysis.dataflow import solve_box_keys

            try:
                cached = bool(solve_box_keys(box, ignore_enforce=True))
            except Exception:
                cached = False
            self._dupfree[id(box)] = cached
        return cached

    def _predicates_contradictory(self, predicates):
        """True when the interval domain proves ``predicates`` admit no
        row (memoised per predicate list: DP enumeration re-asks often)."""
        key = tuple(id(p) for p in predicates)
        cached = self._contradictory.get(key)
        if cached is None:
            from repro.analysis.equivalence import domains

            try:
                cached = domains.predicates_unsatisfiable(predicates)
            except Exception:
                cached = False
            self._contradictory[key] = cached
        return cached

    # -- row counts ---------------------------------------------------------

    def rows(self, box, _visiting=None):
        """Estimated output cardinality of ``box`` (≥ 1.0 for planning)."""
        cached = self._rows.get(id(box))
        if cached is not None:
            return cached
        if _visiting is None:
            _visiting = set()
        if id(box) in _visiting:
            return 1.0  # re-entrant reference contributes one seed row
        _visiting = _visiting | {id(box)}
        estimate = max(self._rows_uncached(box, _visiting), 1.0)
        # The fan factor models fixpoint growth. It is applied once per
        # recursive component — at its union box — not at every member
        # (that would compound). Magic unions converge to roughly the
        # binding set, so they get a much smaller factor; this is what lets
        # the heuristic rank a magic-restricted closure below computing the
        # closure of everything.
        if box.kind == BoxKind.UNION and self._in_cycle(box):
            estimate *= 2.0 if box.is_magic_box else RECURSION_FAN
        self._rows[id(box)] = estimate
        return estimate

    def _in_cycle(self, box):
        cached = self._cyclic.get(id(box))
        if cached is not None:
            return cached
        seen = set()
        stack = [q.input_box for q in box.quantifiers]
        cyclic = False
        while stack:
            current = stack.pop()
            if current is box:
                cyclic = True
                break
            if id(current) in seen:
                continue
            seen.add(id(current))
            for quantifier in current.quantifiers:
                stack.append(quantifier.input_box)
        self._cyclic[id(box)] = cyclic
        return cyclic

    def _rows_uncached(self, box, visiting):
        if box.kind == BoxKind.BASE:
            return float(self.catalog.statistics(box.table_name).row_count)
        if box.kind == BoxKind.SELECT:
            return self.select_cardinality(
                box, box.foreach_quantifiers(), box.predicates, visiting
            )
        if box.kind == BoxKind.GROUPBY:
            quantifier = box.quantifiers[0]
            input_rows = self.rows(quantifier.input_box, visiting)
            if not box.group_keys:
                return 1.0
            product = 1.0
            for key in box.group_keys:
                product *= self.expr_distinct(key, visiting)
            return min(product, input_rows)
        if box.kind == BoxKind.UNION:
            total = sum(self.rows(q.input_box, visiting) for q in box.quantifiers)
            if (
                box.distinct == DistinctMode.ENFORCE
                and not self._enforcement_redundant(box)
            ):
                total *= 0.8
            return total
        if box.kind == BoxKind.INTERSECT:
            return min(
                self.rows(q.input_box, visiting) for q in box.quantifiers
            ) * 0.5
        if box.kind == BoxKind.EXCEPT:
            return self.rows(box.quantifiers[0].input_box, visiting) * 0.5
        if box.kind == BoxKind.OUTERJOIN:
            left = self.rows(box.quantifiers[0].input_box, visiting)
            joined = left * self.rows(box.quantifiers[1].input_box, visiting)
            for predicate in box.predicates:
                joined *= self.selectivity(predicate, visiting)
            # Preserved-side rows always survive.
            return max(left, joined)
        return 1000.0

    def select_cardinality(self, box, quantifiers, predicates, visiting=None):
        """Cardinality of joining ``quantifiers`` under ``predicates``
        (used both for whole boxes and for DP subsets)."""
        if visiting is None:
            visiting = set()
        if predicates and self._predicates_contradictory(predicates):
            return 0.0
        cardinality = 1.0
        available = set(quantifiers)
        for quantifier in quantifiers:
            cardinality *= self.rows(quantifier.input_box, visiting)
        for predicate in predicates:
            if self._predicate_applies(predicate, available, box):
                cardinality *= self.selectivity(predicate, visiting)
        for quantifier in box.quantifiers:
            if quantifier.qtype in (QuantifierType.EXISTENTIAL, QuantifierType.ANTI):
                cardinality *= SEMI_JOIN_SELECTIVITY
        if box.distinct == DistinctMode.ENFORCE and not self._enforcement_redundant(
            box
        ):
            cardinality *= 0.9
        return cardinality

    @staticmethod
    def _predicate_applies(predicate, available, box):
        local = set(box.quantifiers)
        needed = {
            ref.quantifier
            for ref in qe.column_refs(predicate)
            if ref.quantifier in local
        }
        foreach_needed = {
            q for q in needed if q.qtype == QuantifierType.FOREACH
        }
        if needed - foreach_needed:
            return False  # involves E/A/S quantifiers: handled separately
        return foreach_needed <= available and bool(foreach_needed)

    # -- column statistics ------------------------------------------------------

    def column(self, box, name, _visiting=None):
        key = (id(box), name.lower())
        cached = self._columns.get(key)
        if cached is not None:
            return cached
        if _visiting is None:
            _visiting = set()
        if (id(box), name.lower()) in _visiting or id(box) in _visiting:
            return ColumnEstimate(distinct=100.0)
        _visiting = _visiting | {key}
        estimate = self._column_uncached(box, name, _visiting)
        if box.kind != BoxKind.BASE and any(
            fact <= {name.lower()} for fact in self.box_keys(box)
        ):
            # The column (alone) is a key: one distinct value per row.
            estimate = ColumnEstimate(
                distinct=self.rows(box, _visiting=_visiting),
                min_value=estimate.min_value,
                max_value=estimate.max_value,
            )
        self._columns[key] = estimate
        return estimate

    def _column_uncached(self, box, name, visiting):
        if box.kind == BoxKind.BASE:
            stats = self.catalog.statistics(box.table_name).column(name)
            return ColumnEstimate(
                distinct=float(max(stats.distinct_count, 1)),
                min_value=stats.min_value,
                max_value=stats.max_value,
            )
        rows = self.rows(box, _visiting=visiting)
        if box.kind in (BoxKind.UNION, BoxKind.INTERSECT, BoxKind.EXCEPT):
            child = box.quantifiers[0].input_box
            position = box.column_ordinal(name)
            child_name = child.columns[position].name
            inner = self.column(child, child_name, visiting)
            return ColumnEstimate(
                distinct=min(inner.distinct * len(box.quantifiers), rows),
                min_value=inner.min_value,
                max_value=inner.max_value,
            )
        column = box.column(name)
        if column.expr is None:
            return ColumnEstimate(distinct=rows)
        inner = self._expr_estimate(column.expr, visiting)
        # Copy before capping: the inner estimate may be a cached object
        # belonging to another (box, column).
        return ColumnEstimate(
            distinct=min(inner.distinct, rows),
            min_value=inner.min_value,
            max_value=inner.max_value,
        )

    def expr_distinct(self, expression, visiting=None):
        return self._expr_estimate(expression, visiting or set()).distinct

    def _expr_estimate(self, expression, visiting):
        if isinstance(expression, qe.QColRef):
            return self.column(
                expression.quantifier.input_box, expression.column, visiting
            )
        if isinstance(expression, qe.QLiteral):
            return ColumnEstimate(
                distinct=1.0,
                min_value=expression.value,
                max_value=expression.value,
            )
        if isinstance(expression, qe.QAggregate):
            return ColumnEstimate(distinct=100.0)
        refs = qe.column_refs(expression)
        if not refs:
            return ColumnEstimate(distinct=1.0)
        product = 1.0
        for ref in refs:
            product *= self.column(
                ref.quantifier.input_box, ref.column, visiting
            ).distinct
        return ColumnEstimate(distinct=product)

    # -- selectivities --------------------------------------------------------------

    def selectivity(self, predicate, visiting=None):
        """Estimated fraction of candidate rows satisfying ``predicate``."""
        visiting = visiting or set()
        if isinstance(predicate, qe.QBinary):
            if predicate.op == "AND":
                return self.selectivity(predicate.left, visiting) * self.selectivity(
                    predicate.right, visiting
                )
            if predicate.op == "OR":
                left = self.selectivity(predicate.left, visiting)
                right = self.selectivity(predicate.right, visiting)
                return min(left + right - left * right, OR_CAP)
            if predicate.op == "=":
                return self._equality_selectivity(predicate, visiting)
            if predicate.op == "<>":
                return 1.0 - self._equality_selectivity(predicate, visiting)
            if predicate.op in ("<", "<=", ">", ">="):
                return self._range_selectivity(predicate, visiting)
        if isinstance(predicate, qe.QUnary) and predicate.op == "NOT":
            return max(1.0 - self.selectivity(predicate.operand, visiting), 0.05)
        if isinstance(predicate, qe.QLike):
            return LIKE_SELECTIVITY if not predicate.negated else 1 - LIKE_SELECTIVITY
        if isinstance(predicate, qe.QIsNull):
            operand = predicate.operand
            if isinstance(operand, qe.QColRef) and operand.column.lower() in (
                self.notnull_columns(operand.quantifier.input_box)
            ):
                # Proven NOT NULL: the test is decided, not estimated.
                return 0.0 if not predicate.negated else 1.0
            return 0.1 if not predicate.negated else NOT_NULL_SELECTIVITY
        return 0.5

    def _range_selectivity(self, predicate, visiting):
        """Range selectivity: min/max interpolation when one side is a
        column with a numeric range and the other a constant; 1/3 default
        (the System-R magic constant) otherwise."""
        for side, other, high_side in (
            (predicate.left, predicate.right, predicate.op in (">", ">=")),
            (predicate.right, predicate.left, predicate.op in ("<", "<=")),
        ):
            if not isinstance(side, qe.QColRef):
                continue
            if not isinstance(other, qe.QLiteral):
                continue
            value = other.value
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            estimate = self._expr_estimate(side, visiting)
            low, high = estimate.min_value, estimate.max_value
            if (
                isinstance(low, (int, float))
                and isinstance(high, (int, float))
                and not isinstance(low, bool)
                and high > low
            ):
                fraction = (value - low) / (high - low)
                fraction = min(max(fraction, 0.0), 1.0)
                # high_side True: the column must be ABOVE the constant.
                selectivity = (1.0 - fraction) if high_side else fraction
                return min(max(selectivity, 0.01), 0.99)
        return RANGE_SELECTIVITY

    def _equality_selectivity(self, predicate, visiting):
        left = self._side_distinct(predicate.left, visiting)
        right = self._side_distinct(predicate.right, visiting)
        if left is None and right is None:
            return EQ_DEFAULT
        if left is None:
            return 1.0 / max(right, 1.0)
        if right is None:
            return 1.0 / max(left, 1.0)
        return 1.0 / max(left, right, 1.0)

    def _side_distinct(self, side, visiting):
        """Distinct count of a comparison side; None for constants."""
        if isinstance(side, qe.QLiteral):
            return None
        return self._expr_estimate(side, visiting).distinct
