"""The cost-based join-order heuristic of §3.2 and the three-phase rewrite
control of §3.3 (Figure 3).

``optimize_with_heuristic`` runs the full Starburst pipeline:

1. query-rewrite phase 1 (every rule except EMST — no join orders needed),
2. plan optimization pass 1 → join orders + cost of the non-magic plan,
3. query-rewrite phase 2 with the EMST rule active, consuming the orders,
4. query-rewrite phase 3 (EMST disabled) to simplify the transformed graph,
5. plan optimization pass 2 → cost of the magic plan,
6. keep whichever plan is cheaper.

Plan optimization runs exactly twice; the back edge from the plan optimizer
to the query-rewrite optimizer (Figure 2) is the hand-off of join orders
between steps 2 and 3. The §3.2 guarantee — using the EMST rule cannot
degrade the plan chosen without it — follows from step 6.

``optimize_exhaustive_emst`` is the strawman §3.2 argues against: apply
EMST once per candidate join order and plan each alternative (O(2^n) plan
optimizer invocations); the optimization-time benchmark compares the two.
"""

from __future__ import annotations

import copy as _copy
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.qgm.model import BoxKind
from repro.optimizer.plan import GraphPlan, optimize_graph


@dataclass
class HeuristicResult:
    """Everything the pipeline produced, for execution and for the
    benchmarks that reproduce Figures 2 and 3."""

    graph: object
    plan: GraphPlan
    used_emst: bool
    cost_without_emst: float
    cost_with_emst: float
    optimizer_invocations: int
    phase_firings: Dict[int, Dict[str, int]] = field(default_factory=dict)
    #: Names of special-role boxes whose DISTINCT enforcement the key
    #: fixpoint proved redundant between phases 2 and 3.
    relaxed_distinct: List[str] = field(default_factory=list)
    graph_without_emst: Optional[object] = None
    plan_without_emst: Optional[GraphPlan] = None
    #: The RuleContext of the run (per-rule timings, rollbacks, quarantines).
    context: Optional[object] = None

    @property
    def join_orders(self):
        return self.plan.join_orders


def _clear_magic_links(graph):
    """Between phases 2 and 3 the linked magic tables have served their
    purpose (the restrictions were passed down); clearing the links lets
    the merge rule fold single-use magic boxes away."""
    for box in graph.boxes():
        box.linked_magic = []


def optimize_with_heuristic(graph, catalog=None, engine=None, use_emst=True,
                            resilience=None):
    """Run the full rewrite + plan pipeline on ``graph`` (mutating it).

    Returns a :class:`HeuristicResult`. With ``use_emst=False`` only phase 1
    and one plan pass run (the baseline the heuristic compares against).
    ``resilience`` (a :class:`~repro.resilience.ResiliencePolicy`) enables
    per-firing rollback/quarantine and governor budgets inside each phase.
    """
    from repro.rewrite.engine import RewriteEngine, default_rules

    catalog = catalog or graph.catalog
    if engine is None:
        rules = default_rules(include_emst=use_emst)
        if resilience is not None:
            rules = resilience.rules_for(rules)
        engine = RewriteEngine(rules)

    phase_firings = {}

    context = engine.run_phase(graph, 1, resilience=resilience)
    phase_firings[1] = dict(context.firing_counts)

    plan_before = optimize_graph(graph, catalog)
    optimizer_invocations = 1

    if not use_emst:
        return HeuristicResult(
            graph=graph,
            plan=plan_before,
            used_emst=False,
            cost_without_emst=plan_before.total_cost,
            cost_with_emst=float("inf"),
            optimizer_invocations=optimizer_invocations,
            phase_firings=phase_firings,
            context=context,
        )

    # Keep a pristine copy of the non-magic graph: the heuristic guarantees
    # we can fall back to it when EMST does not pay off.
    snapshot = _copy.deepcopy(graph)

    before = dict(context.firing_counts)
    context = engine.run_phase(
        graph, 2, join_orders=plan_before.join_orders, context=context,
        resilience=resilience,
    )
    phase_firings[2] = _delta(before, context.firing_counts)

    # Whole-graph duplicate-freeness sweep: shed provably redundant
    # DISTINCT enforcement from magic/supplementary boxes (including
    # recursive ones) so phase 3 can merge them away.
    from repro.magic.magic_boxes import relax_proven_duplicate_free

    relaxed = [box.name for box in relax_proven_duplicate_free(graph)]

    _clear_magic_links(graph)

    before = dict(context.firing_counts)
    context = engine.run_phase(graph, 3, context=context, resilience=resilience)
    phase_firings[3] = _delta(before, context.firing_counts)

    plan_after = optimize_graph(graph, catalog)
    optimizer_invocations += 1

    used_emst = plan_after.total_cost <= plan_before.total_cost
    if used_emst:
        chosen_graph, chosen_plan = graph, plan_after
    else:
        chosen_graph, chosen_plan = snapshot, plan_before

    return HeuristicResult(
        graph=chosen_graph,
        plan=chosen_plan,
        used_emst=used_emst,
        cost_without_emst=plan_before.total_cost,
        cost_with_emst=plan_after.total_cost,
        optimizer_invocations=optimizer_invocations,
        phase_firings=phase_firings,
        relaxed_distinct=relaxed,
        graph_without_emst=snapshot,
        plan_without_emst=plan_before,
        context=context,
    )


def optimize_exhaustive_emst(graph, catalog=None, max_quantifiers=6):
    """The strawman: apply EMST under *every* join order of the top box and
    plan each alternative. Returns (best_result, optimizer_invocations).

    Exists to reproduce the paper's optimization-time argument: the number
    of plan-optimizer invocations explodes combinatorially, while the
    heuristic needs exactly two.
    """
    from repro.rewrite.engine import RewriteEngine, default_rules

    catalog = catalog or graph.catalog

    base = _copy.deepcopy(graph)
    engine = RewriteEngine(default_rules(include_emst=False))
    engine.run_phase(base, 1)
    plan_before = optimize_graph(base, catalog)
    invocations = 1

    top = base.top_box
    foreach = [q.name for q in top.foreach_quantifiers()]
    if len(foreach) > max_quantifiers:
        foreach = foreach[:max_quantifiers]

    best = None
    for permutation in itertools.permutations(foreach):
        candidate = _copy.deepcopy(base)
        orders = dict(plan_before.join_orders)
        orders[candidate.top_box.box_id] = list(permutation)
        emst_engine = RewriteEngine(default_rules(include_emst=True))
        context = emst_engine.run_phase(candidate, 2, join_orders=orders)
        _clear_magic_links(candidate)
        emst_engine.run_phase(candidate, 3, context=context)
        plan = optimize_graph(candidate, catalog)
        invocations += 1
        if best is None or plan.total_cost < best[1].total_cost:
            best = (candidate, plan)

    chosen_graph, chosen_plan = best
    if plan_before.total_cost < chosen_plan.total_cost:
        chosen_graph, chosen_plan = base, plan_before
    result = HeuristicResult(
        graph=chosen_graph,
        plan=chosen_plan,
        used_emst=chosen_graph is not base,
        cost_without_emst=plan_before.total_cost,
        cost_with_emst=chosen_plan.total_cost,
        optimizer_invocations=invocations,
    )
    return result, invocations


def _delta(before, after):
    return {
        name: count - before.get(name, 0)
        for name, count in after.items()
        if count - before.get(name, 0) > 0
    }
