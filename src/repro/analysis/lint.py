"""Command-line QGM linter.

Runs the full analysis pass suite over the query graphs built from SQL
files (or from the shipped benchmark workloads) and prints every
diagnostic, not just the first::

    python -m repro.analysis.lint queries.sql more.sql
    python -m repro.analysis.lint --workloads
    python -m repro.analysis.lint --workloads --rewritten --strict

A SQL file is processed statement by statement: ``CREATE TABLE`` /
``CREATE VIEW`` / ``INSERT`` populate a scratch catalog so later queries
resolve (and type-check) against it; each query is compiled to QGM and
analyzed — never executed. ``--workloads`` lints the paper's benchmark
suite instead (experiments A–H plus the Example 1.1 query); with
``--rewritten`` each workload query is additionally linted *after* the
full EMST rewrite pipeline, which exercises the magic/adornment checks on
graphs that actually contain magic boxes.

Exit status is 1 when any query produced an *error* diagnostic (or, under
``--strict``, a warning), 0 otherwise — suitable for CI.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Tuple

from repro.analysis.diagnostics import AnalysisReport, Severity
from repro.analysis.framework import analyze_graph


def lint_sql_text(text, database=None):
    """Lint every query in a SQL script; returns [(label, AnalysisReport)].

    DDL and INSERT statements update the scratch database so the queries
    after them see the right schemas; queries are analyzed, not run.
    """
    from repro.api import Connection
    from repro.engine import Database
    from repro.qgm import build_query_graph
    from repro.sql import parse_script
    from repro.sql.ast import CreateTable, CreateView, Delete, InsertValues, Query, Update

    database = database if database is not None else Database()
    connection = Connection(database)
    reports = []
    query_index = 0
    for statement in parse_script(text).statements:
        if isinstance(statement, CreateView):
            database.catalog.add_view(statement)
        elif isinstance(statement, CreateTable):
            connection._create_table(statement)
        elif isinstance(statement, InsertValues):
            connection._insert_values(statement)
        elif isinstance(statement, (Delete, Update)):
            continue  # data manipulation is irrelevant to graph analysis
        elif isinstance(statement, Query):
            query_index += 1
            graph = build_query_graph(statement, database.catalog)
            report = analyze_graph(graph, catalog=database.catalog)
            reports.append(("query %d" % query_index, report))
    return reports


def lint_file(path):
    """Lint one SQL file; returns [(label, AnalysisReport)]."""
    with open(path) as handle:
        text = handle.read()
    return [
        ("%s: %s" % (path, label), report)
        for label, report in lint_sql_text(text)
    ]


def _workload_targets(scale):
    """Yield (label, database, views_sql, query_sql) for the shipped
    workloads: experiments A–H plus the paper's Example 1.1 query."""
    from repro.workloads.empdept import PAPER_VIEWS_SQL, PAPER_QUERY_SQL
    from repro.workloads.empdept import build_empdept_database
    from repro.workloads.experiments import EXPERIMENTS

    db = build_empdept_database(n_departments=4, employees_per_department=3)
    yield ("empdept: paper query D", db, PAPER_VIEWS_SQL, PAPER_QUERY_SQL)
    for key in sorted(EXPERIMENTS):
        experiment = EXPERIMENTS[key]
        db, views, query = experiment.build(scale)
        yield ("experiment %s: %s" % (key, experiment.title), db, views, query)


def lint_workloads(scale=0.02, rewritten=False):
    """Lint the shipped benchmark workloads; returns [(label, report)].

    ``rewritten`` additionally analyzes each query after the full EMST
    pipeline, so the magic/adornment passes see real magic boxes.
    """
    from repro.api import Connection
    from repro.qgm import build_query_graph
    from repro.sql import parse_script

    results = []
    for label, db, views_sql, query_sql in _workload_targets(scale):
        connection = Connection(db)
        script = parse_script(views_sql + ";" + query_sql)
        for view in script.views:
            db.catalog.add_view(view)
        try:
            for query in script.queries:
                graph = build_query_graph(query, db.catalog)
                results.append(
                    (label, analyze_graph(graph, catalog=db.catalog))
                )
                if rewritten:
                    rewritten_graph, _, _, _ = connection.prepare(
                        query, strategy="emst"
                    )
                    results.append(
                        (
                            label + " [after EMST rewrite]",
                            analyze_graph(rewritten_graph, catalog=db.catalog),
                        )
                    )
        finally:
            for view in script.views:
                db.catalog.drop_view(view.name)
    return results


def _render(label, report, errors_only=False):
    lines = []
    shown = report.sorted()
    if errors_only:
        shown = [d for d in shown if d.severity == Severity.ERROR]
    for diagnostic in shown:
        lines.append("%s: %s" % (label, diagnostic.render()))
    return lines


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="Static analysis over QGM graphs built from SQL.",
    )
    parser.add_argument("files", nargs="*", help="SQL script files to lint")
    parser.add_argument(
        "--workloads",
        action="store_true",
        help="lint the shipped benchmark workloads (experiments A-H)",
    )
    parser.add_argument(
        "--rewritten",
        action="store_true",
        help="with --workloads: also lint each query after the EMST rewrite",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.02,
        help="workload build scale (default 0.02; schemas matter, rows do not)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings as errors for the exit status",
    )
    parser.add_argument(
        "--errors-only",
        action="store_true",
        help="print only error diagnostics (exit status is unchanged)",
    )
    args = parser.parse_args(argv)
    if not args.files and not args.workloads:
        parser.error("nothing to lint: pass SQL files or --workloads")

    out = sys.stdout
    results: List[Tuple[str, AnalysisReport]] = []
    status = 0
    for path in args.files:
        try:
            results.extend(lint_file(path))
        except OSError as error:
            sys.stderr.write("error: cannot read %s: %s\n" % (path, error))
            status = 2
        except Exception as error:  # parse/build failure: report, keep going
            sys.stderr.write(
                "error: %s: %s: %s\n" % (path, type(error).__name__, error)
            )
            status = 2
    if args.workloads:
        results.extend(
            lint_workloads(scale=args.scale, rewritten=args.rewritten)
        )

    errors = warnings = infos = 0
    for label, report in results:
        for line in _render(label, report, errors_only=args.errors_only):
            out.write(line + "\n")
        counts = report.counts()
        errors += counts[Severity.ERROR]
        warnings += counts[Severity.WARNING]
        infos += counts[Severity.INFO]
    out.write(
        "%d target(s): %d error(s), %d warning(s), %d info\n"
        % (len(results), errors, warnings, infos)
    )
    if errors or (args.strict and warnings):
        status = max(status, 1)
    return status


if __name__ == "__main__":
    sys.exit(main())
