"""The pluggable static-analysis pass framework.

An :class:`AnalysisPass` inspects one QGM graph and *emits* diagnostics —
it never raises on a finding, so one run of the :class:`Analyzer` pipeline
surfaces every problem at once (the contrast with the historical
:func:`~repro.qgm.validate.validate_graph`, which stops at the first).

Passes share an :class:`AnalysisContext` so expensive facts (the reachable
box list, the consumer map, strongly connected components, inferred column
types) are computed once per run regardless of how many passes need them.

Customizers register extra passes with :func:`register_pass`; they run
after the built-ins in registration order.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

from repro.analysis.diagnostics import (
    CODES,
    AnalysisReport,
    Diagnostic,
    Severity,
)


class AnalysisContext:
    """Shared, lazily computed facts about the graph under analysis."""

    def __init__(self, graph, catalog=None):
        self.graph = graph
        self.catalog = catalog if catalog is not None else graph.catalog
        self._boxes = None
        self._consumers = None
        self._components = None
        #: scratch for cross-pass products (the type pass publishes its
        #: inferred column types here for other passes / the API to read).
        self.facts: Dict[str, object] = {}

    @property
    def boxes(self):
        if self._boxes is None:
            self._boxes = self.graph.boxes()
        return self._boxes

    @property
    def consumers(self):
        """Map ``id(box)`` -> list of quantifiers ranging over it."""
        if self._consumers is None:
            self._consumers = self.graph.consumers()
        return self._consumers

    @property
    def components(self):
        """``(components, component_of)`` from the reduced dependency
        graph (SCCs collapsed; see :mod:`repro.qgm.stratum`)."""
        if self._components is None:
            from repro.qgm.stratum import reduced_dependency_graph

            self._components = reduced_dependency_graph(self.graph)
        return self._components

    def recursive_component_of(self, box):
        """The list of boxes in ``box``'s SCC when that SCC is recursive
        (more than one member, or a self-loop); None otherwise."""
        components, component_of = self.components
        index = component_of.get(id(box))
        if index is None:
            return None
        component = components[index]
        if len(component) > 1:
            return component
        only = component[0]
        if any(child is only for child in only.referenced_boxes()):
            return component
        return None


class AnalysisPass:
    """Base class for analysis passes.

    Subclasses set ``name`` and implement :meth:`run`, emitting findings
    through :meth:`emit` (which stamps the pass name and validates the
    code against the :data:`~repro.analysis.diagnostics.CODES` registry).
    """

    #: Unique pass name (used in reports, timings and the CLI).
    name = "abstract"

    def run(self, context: AnalysisContext, report: AnalysisReport) -> None:
        raise NotImplementedError

    def emit(
        self,
        report: AnalysisReport,
        code: str,
        severity: str,
        message: str,
        box=None,
        quantifier: Optional[str] = None,
        column: Optional[str] = None,
        hint: Optional[str] = None,
    ) -> Diagnostic:
        if code not in CODES:
            raise ValueError(
                "diagnostic code %r is not registered in repro.analysis."
                "diagnostics.CODES" % code
            )
        return report.add(
            Diagnostic(
                code=code,
                severity=severity,
                message=message,
                box=getattr(box, "name", box),
                box_id=getattr(box, "box_id", None),
                quantifier=quantifier,
                column=column,
                hint=hint,
                pass_name=self.name,
            )
        )


#: Extra pass factories registered by customizers (callables returning a
#: fresh AnalysisPass). They participate in every default pipeline.
_EXTRA_PASSES: List[Callable[[], AnalysisPass]] = []


def register_pass(factory: Callable[[], AnalysisPass]) -> Callable[[], AnalysisPass]:
    """Register an extra analysis pass factory (extensibility hook)."""
    _EXTRA_PASSES.append(factory)
    return factory


def default_passes() -> List[AnalysisPass]:
    """The full pipeline: structural, types, dead code, magic, dataflow,
    chase-based equivalence."""
    from repro.analysis.structural import StructuralPass
    from repro.analysis.typecheck import TypeCheckPass
    from repro.analysis.deadcode import DeadCodePass
    from repro.analysis.magic_checks import MagicWellFormednessPass
    from repro.analysis.dataflow_checks import DataflowPass
    from repro.analysis.equivalence_checks import EquivalencePass

    passes: List[AnalysisPass] = [
        StructuralPass(),
        TypeCheckPass(),
        DeadCodePass(),
        MagicWellFormednessPass(),
        DataflowPass(),
        EquivalencePass(),
    ]
    passes.extend(factory() for factory in _EXTRA_PASSES)
    return passes


def soundness_passes() -> List[AnalysisPass]:
    """The subset the rewrite-soundness checker runs after every rule
    firing: structural invariants, magic well-formedness, and the dataflow
    audit (without its per-box redundant-DISTINCT fixpoints, which would
    be quadratic when re-run per firing).

    Dead-code and type diagnostics are deliberately excluded — a rewrite
    legitimately passes through states with temporarily unreferenced boxes,
    and type facts cannot change under equivalence-preserving rules. The
    equivalence pass runs shallow (``deep=False``): no per-pair trial
    eliminations, only the bounded implied-predicate chases.
    """
    from repro.analysis.structural import StructuralPass
    from repro.analysis.magic_checks import MagicWellFormednessPass
    from repro.analysis.dataflow_checks import DataflowPass
    from repro.analysis.equivalence_checks import EquivalencePass

    return [
        StructuralPass(),
        MagicWellFormednessPass(),
        DataflowPass(check_redundant_distinct=False),
        EquivalencePass(deep=False),
    ]


class Analyzer:
    """Runs a pipeline of passes over one graph, collecting a report."""

    def __init__(self, passes: Optional[List[AnalysisPass]] = None):
        self.passes = list(passes) if passes is not None else default_passes()

    def analyze(self, graph, catalog=None) -> AnalysisReport:
        context = AnalysisContext(graph, catalog=catalog)
        report = AnalysisReport()
        for analysis_pass in self.passes:
            started = time.perf_counter()
            analysis_pass.run(context, report)
            report.pass_seconds[analysis_pass.name] = (
                report.pass_seconds.get(analysis_pass.name, 0.0)
                + time.perf_counter()
                - started
            )
        return report


def analyze_graph(graph, catalog=None, passes=None) -> AnalysisReport:
    """Convenience: one full analysis run over ``graph``."""
    return Analyzer(passes=passes).analyze(graph, catalog=catalog)


# Re-exported for callers that import everything from the framework.
__all__ = [
    "AnalysisContext",
    "AnalysisPass",
    "AnalysisReport",
    "Analyzer",
    "Diagnostic",
    "Severity",
    "analyze_graph",
    "default_passes",
    "register_pass",
    "soundness_passes",
]
