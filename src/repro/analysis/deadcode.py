"""Dead-code detection (codes ``QGM3xx``).

Two findings, both non-fatal:

* ``QGM301`` (warning) — a box that no quantifier ranges over. Such a box
  is only kept alive by magic *links* (``linked_magic``), which is a
  legitimate mid-rewrite state but dead weight in a final graph.
* ``QGM302`` (info) — an output column no consumer ever references. This
  is exactly the feed of the projection-pruning rewrite rule; the linter
  surfaces it so hand-built graphs and builders can trim themselves.
* ``QGM604`` (warning) — a select box whose predicates are contradictory
  under the interpreted comparison domain
  (:mod:`repro.analysis.equivalence.domains`): ``x < 3 AND x > 7`` and
  friends. The box provably returns no rows, which is almost always a
  query-authoring bug; everything downstream of it is dead too.
"""

from __future__ import annotations

from repro.analysis.diagnostics import Severity
from repro.analysis.framework import AnalysisContext, AnalysisPass, AnalysisReport
from repro.qgm import expr as qe
from repro.qgm.model import BoxKind

_POSITIONAL_KINDS = (BoxKind.UNION, BoxKind.INTERSECT, BoxKind.EXCEPT)


class DeadCodePass(AnalysisPass):
    """Find boxes and output columns nothing consumes."""

    name = "deadcode"

    def run(self, context: AnalysisContext, report: AnalysisReport) -> None:
        graph = context.graph
        top = graph.top_box
        if top is None:
            return

        # Reachability over quantifier edges only (boxes() also follows
        # magic links, which is how a dead box stays enumerable at all).
        live = set()
        stack = [top]
        while stack:
            box = stack.pop()
            if id(box) in live:
                continue
            live.add(id(box))
            for quantifier in box.quantifiers:
                stack.append(quantifier.input_box)

        for box in context.boxes:
            if id(box) not in live:
                self.emit(
                    report,
                    "QGM301",
                    Severity.WARNING,
                    "box %r is not referenced by any quantifier "
                    "(reachable only through magic links)" % box.name,
                    box=box,
                    hint="clear linked_magic or remove the box",
                )

        self._check_unused_columns(context, report, live)
        self._check_contradictory_predicates(context, report, live)

    def _check_contradictory_predicates(self, context, report, live) -> None:
        from repro.analysis.equivalence import domains

        for box in context.boxes:
            if box.kind != BoxKind.SELECT or id(box) not in live:
                continue
            if not box.predicates:
                continue
            if domains.predicates_unsatisfiable(box.predicates):
                self.emit(
                    report,
                    "QGM604",
                    Severity.WARNING,
                    "box %r has contradictory predicates: the box is "
                    "provably empty and returns no rows" % box.name,
                    box=box,
                    hint="the predicates admit no value; check the "
                    "ranges for a typo",
                )

    def _check_unused_columns(self, context, report, live) -> None:
        graph = context.graph
        top = graph.top_box
        # (id(box), lowered column name) pairs referenced anywhere.
        used = set()
        # Boxes whose columns are consumed positionally (set-op inputs):
        # every column counts as used.
        positional = set()
        for box in context.boxes:
            if box.kind in _POSITIONAL_KINDS:
                for quantifier in box.quantifiers:
                    positional.add(id(quantifier.input_box))
            for expression in box.all_expressions():
                for ref in qe.column_refs(expression):
                    used.add((id(ref.quantifier.input_box), ref.column.lower()))

        for box in context.boxes:
            if box is top or box.kind == BoxKind.BASE:
                continue
            if id(box) in positional or id(box) not in live:
                continue
            for column in box.columns:
                if (id(box), column.name.lower()) not in used:
                    self.emit(
                        report,
                        "QGM302",
                        Severity.INFO,
                        "box %r output column %r is never referenced by any "
                        "consumer" % (box.name, column.name),
                        box=box,
                        column=column.name,
                        hint="the projection-pruning rule can remove it",
                    )
