"""Type inference and checking over QGM expressions (codes ``QGM2xx``).

The engine itself is dynamically typed — catalog ``type_name`` s are
advisory — but when the DDL *does* declare types, this pass propagates
them from base-table schemas through select, groupby, outer-join and
set-operation boxes and flags expressions that would misbehave at run
time: comparisons of incompatible types, ``SUM``/``AVG`` over non-numeric
columns, arithmetic on strings, and set-op branches whose column types
disagree.

The lattice is deliberately small: ``INT``, ``FLOAT``, ``STR``, ``BOOL``
and the unknown ``ANY``. ``ANY`` is compatible with everything, so
untyped schemas (the common case for programmatically built tables) stay
silent. Inferred per-box column types are published in
``context.facts["column_types"]`` (``id(box) -> [type, ...]``) for other
passes and API consumers.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.diagnostics import Severity
from repro.analysis.framework import AnalysisContext, AnalysisPass, AnalysisReport
from repro.qgm import expr as qe
from repro.qgm.model import BoxKind

INT = "INT"
FLOAT = "FLOAT"
STR = "STR"
BOOL = "BOOL"
ANY = "ANY"

NUMERIC = frozenset({INT, FLOAT})

_NAME_MAP = {
    "INT": INT,
    "INTEGER": INT,
    "SMALLINT": INT,
    "BIGINT": INT,
    "FLOAT": FLOAT,
    "REAL": FLOAT,
    "DOUBLE": FLOAT,
    "DECIMAL": FLOAT,
    "NUMERIC": FLOAT,
    "STR": STR,
    "STRING": STR,
    "TEXT": STR,
    "CHAR": STR,
    "VARCHAR": STR,
    "BOOL": BOOL,
    "BOOLEAN": BOOL,
}

_ARITHMETIC_OPS = frozenset({"+", "-", "*", "/", "%"})
_NUMERIC_AGGREGATES = frozenset({"SUM", "AVG"})


def normalize_type(type_name: Optional[str]) -> str:
    """Map a declared SQL type name onto the analysis lattice."""
    if not type_name:
        return ANY
    return _NAME_MAP.get(type_name.upper(), ANY)


def join_types(left: str, right: str) -> str:
    """Least upper bound of two lattice types (conflicts widen to ANY)."""
    if left == right:
        return left
    if left in NUMERIC and right in NUMERIC:
        return FLOAT
    return ANY


def compatible(left: str, right: str) -> bool:
    """True when values of the two types may meet in a comparison."""
    if left == ANY or right == ANY:
        return True
    if left == right:
        return True
    return left in NUMERIC and right in NUMERIC


def literal_type(value: object) -> str:
    if isinstance(value, bool):  # bool before int: bool is an int subclass
        return BOOL
    if isinstance(value, int):
        return INT
    if isinstance(value, float):
        return FLOAT
    if isinstance(value, str):
        return STR
    return ANY


class TypeCheckPass(AnalysisPass):
    """Infer column types bottom-up, then check every expression."""

    name = "typecheck"

    def run(self, context: AnalysisContext, report: AnalysisReport) -> None:
        types = self._infer_column_types(context)
        context.facts["column_types"] = types
        for box in context.boxes:
            if box.kind == BoxKind.BASE:
                continue
            for expression in box.all_expressions():
                self._check_expression(box, expression, types, report)
            if box.kind in (BoxKind.UNION, BoxKind.INTERSECT, BoxKind.EXCEPT):
                self._check_setop_types(box, types, report)

    # -- inference ------------------------------------------------------------

    def _infer_column_types(self, context: AnalysisContext) -> Dict[int, List[str]]:
        """``id(box) -> [lattice type per output column]`` for every
        reachable box, producers before consumers; recursive components
        iterate twice so base-branch types flow around the cycle."""
        types: Dict[int, List[str]] = {}
        components, _ = context.components
        for component in components:
            if len(component) == 1 and not any(
                child is component[0] for child in component[0].referenced_boxes()
            ):
                box = component[0]
                types[id(box)] = self._box_types(box, types)
                continue
            # Recursive SCC: seed with ANY, then refine to a (cheap) fixpoint.
            for box in component:
                types[id(box)] = [ANY] * len(box.columns)
            for _ in range(2):
                for box in component:
                    types[id(box)] = self._box_types(box, types)
        return types

    def _box_types(self, box, types: Dict[int, List[str]]) -> List[str]:
        if box.kind == BoxKind.BASE:
            if box.schema is None:
                return [ANY] * len(box.columns)
            declared = {
                column.name.lower(): normalize_type(column.type_name)
                for column in box.schema.columns
            }
            return [declared.get(c.name.lower(), ANY) for c in box.columns]
        if box.kind in (BoxKind.UNION, BoxKind.INTERSECT, BoxKind.EXCEPT):
            out = []
            for index in range(len(box.columns)):
                merged = None
                for quantifier in box.quantifiers:
                    branch = types.get(id(quantifier.input_box))
                    if branch is None or index >= len(branch):
                        merged = ANY
                        break
                    merged = (
                        branch[index]
                        if merged is None
                        else join_types(merged, branch[index])
                    )
                out.append(merged if merged is not None else ANY)
            return out
        return [
            self._expr_type(column.expr, types) if column.expr is not None else ANY
            for column in box.columns
        ]

    def _expr_type(self, expr, types: Dict[int, List[str]]) -> str:
        if isinstance(expr, qe.QLiteral):
            return literal_type(expr.value)
        if isinstance(expr, qe.QColRef):
            produced = types.get(id(expr.quantifier.input_box))
            if produced is None:
                return ANY
            columns = expr.quantifier.input_box.columns
            lowered = expr.column.lower()
            for index, column in enumerate(columns):
                if column.name.lower() == lowered and index < len(produced):
                    return produced[index]
            return ANY
        if isinstance(expr, qe.QUnary):
            if expr.op == "NOT":
                return BOOL
            operand = self._expr_type(expr.operand, types)
            return operand if operand in NUMERIC else ANY
        if isinstance(expr, qe.QBinary):
            if expr.op in _ARITHMETIC_OPS:
                return join_types(
                    self._expr_type(expr.left, types),
                    self._expr_type(expr.right, types),
                )
            if expr.op == "||":
                return STR
            return BOOL  # comparisons, AND, OR
        if isinstance(expr, qe.QAggregate):
            if expr.func == "COUNT":
                return INT
            if expr.func == "AVG":
                return FLOAT
            if expr.arg is not None:
                arg = self._expr_type(expr.arg, types)
                if expr.func == "SUM":
                    return arg if arg in NUMERIC else ANY
                if expr.func in ("MIN", "MAX"):
                    return arg
            return ANY
        if isinstance(expr, (qe.QIsNull, qe.QLike)):
            return BOOL
        if isinstance(expr, qe.QCase):
            merged = None
            values = [value for _, value in expr.branches]
            if expr.default is not None:
                values.append(expr.default)
            for value in values:
                value_type = self._expr_type(value, types)
                merged = (
                    value_type if merged is None else join_types(merged, value_type)
                )
            return merged if merged is not None else ANY
        return ANY

    # -- checks ---------------------------------------------------------------

    def _check_expression(self, box, expression, types, report) -> None:
        for node in qe.walk(expression):
            if isinstance(node, qe.QBinary) and qe.is_comparison(node):
                left = self._expr_type(node.left, types)
                right = self._expr_type(node.right, types)
                if not compatible(left, right):
                    self.emit(
                        report,
                        "QGM201",
                        Severity.ERROR,
                        "comparison of incompatible types %s and %s: %s"
                        % (left, right, node),
                        box=box,
                        hint="cast one side or fix the predicate",
                    )
            elif isinstance(node, qe.QBinary) and node.op in _ARITHMETIC_OPS:
                for operand in (node.left, node.right):
                    operand_type = self._expr_type(operand, types)
                    if operand_type == STR:
                        self.emit(
                            report,
                            "QGM204",
                            Severity.ERROR,
                            "arithmetic %r on non-numeric operand %s (type %s)"
                            % (node.op, operand, operand_type),
                            box=box,
                            hint="use || for string concatenation",
                        )
            elif isinstance(node, qe.QLike):
                for operand in (node.operand, node.pattern):
                    operand_type = self._expr_type(operand, types)
                    if operand_type in (INT, FLOAT, BOOL):
                        self.emit(
                            report,
                            "QGM205",
                            Severity.WARNING,
                            "LIKE over non-string operand %s (type %s)"
                            % (operand, operand_type),
                            box=box,
                        )
            elif isinstance(node, qe.QAggregate):
                if node.func in _NUMERIC_AGGREGATES and node.arg is not None:
                    arg_type = self._expr_type(node.arg, types)
                    if arg_type in (STR, BOOL):
                        self.emit(
                            report,
                            "QGM202",
                            Severity.ERROR,
                            "%s over non-numeric argument %s (type %s)"
                            % (node.func, node.arg, arg_type),
                            box=box,
                            hint="SUM/AVG require numeric input",
                        )

    def _check_setop_types(self, box, types, report) -> None:
        for index, column in enumerate(box.columns):
            seen = []  # (definite type, quantifier name)
            for quantifier in box.quantifiers:
                branch = types.get(id(quantifier.input_box))
                if branch is None or index >= len(branch):
                    continue
                branch_type = branch[index]
                if branch_type == ANY:
                    continue
                for other_type, other_name in seen:
                    if not compatible(branch_type, other_type):
                        self.emit(
                            report,
                            "QGM203",
                            Severity.ERROR,
                            "%s box %r column %r has mismatched branch types: "
                            "%r is %s but %r is %s"
                            % (
                                box.kind,
                                box.name,
                                column.name,
                                other_name,
                                other_type,
                                quantifier.name,
                                branch_type,
                            ),
                            box=box,
                            quantifier=quantifier.name,
                            column=column.name,
                        )
                        break
                else:
                    seen.append((branch_type, quantifier.name))
